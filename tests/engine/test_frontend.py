"""The shared frontend: normalization, goal and variable classification."""

import pytest

from repro.baseline.builtins import BASELINE_BUILTINS
from repro.core.builtins import BUILTIN_TABLE
from repro.engine.frontend import (
    GOAL_BUILTIN,
    GOAL_CALL,
    GOAL_CUT,
    VOID_SLOT,
    Frontend,
    NormalizedClause,
)
from repro.prolog import parse_term


def normalize(text, table=BUILTIN_TABLE):
    batch = Frontend(table).expand_clause(parse_term(text))
    return batch.main


class TestGoalClassification:
    def test_user_call(self):
        norm = normalize("p(X) :- q(X)")
        (goal,) = norm.goals
        assert goal.kind == GOAL_CALL
        assert goal.indicator == ("q", 1)
        assert not goal.is_meta

    def test_builtin(self):
        norm = normalize("p(X, Y) :- Y is X + 1")
        (goal,) = norm.goals
        assert goal.kind == GOAL_BUILTIN
        assert goal.indicator == ("is", 2)

    def test_cut(self):
        norm = normalize("p(X) :- q(X), !")
        assert [g.kind for g in norm.goals] == [GOAL_CALL, GOAL_CUT]

    def test_variable_goal_is_meta_call(self):
        norm = normalize("p(G) :- G")
        (goal,) = norm.goals
        assert goal.kind == GOAL_BUILTIN
        assert goal.indicator == ("call", 1)
        assert goal.is_meta

    def test_call_1_is_meta(self):
        norm = normalize("p(G) :- call(G)")
        (goal,) = norm.goals
        assert goal.is_meta

    def test_classification_is_engine_specific(self):
        # new_vector/2 is KL0-only: builtin on the PSI, an (undefined)
        # user call on the baseline.
        kl0 = normalize("p(V) :- new_vector(V, 4)", BUILTIN_TABLE)
        dec = normalize("p(V) :- new_vector(V, 4)", BASELINE_BUILTINS)
        assert kl0.goals[0].kind == GOAL_BUILTIN
        assert dec.goals[0].kind == GOAL_CALL


class TestVariableClassification:
    def test_void_local_global(self):
        norm = normalize("p(A, B, _C) :- q(B, f(D)), r(D)")
        info = norm.var_info
        # A: single top-level occurrence -> void
        assert info["A"].slot == VOID_SLOT
        # B: two top-level occurrences -> local
        assert not info["B"].is_global and info["B"].slot >= 0
        # D: occurs nested inside f(D) -> global
        assert info["D"].is_global
        assert norm.nlocals == len(norm.local_names)
        assert norm.nglobals == len(norm.global_names)

    def test_slot_numbering_follows_first_occurrence(self):
        norm = normalize("p(A, B) :- q(A), r(B), s(A, B)")
        assert norm.local_names == ("A", "B")
        assert norm.var_info["A"].slot == 0
        assert norm.var_info["B"].slot == 1


class TestExpansion:
    def test_batch_main_identity(self):
        frontend = Frontend(BUILTIN_TABLE)
        batch = frontend.expand_clause(
            parse_term("p(X) :- (q(X) ; r(X))"))
        assert batch.main in batch.clauses
        assert batch.main.indicator == ("p", 1)
        # Disjunction expands to auxiliary clauses.
        assert len(batch.clauses) > 1
        assert batch.auxiliary

    def test_program_batch_order(self):
        frontend = Frontend(BUILTIN_TABLE)
        batch = frontend.normalize_text("a(1).\na(2).\nb(X) :- a(X).")
        assert [c.indicator for c in batch.clauses] == \
            [("a", 1), ("a", 1), ("b", 1)]
        assert all(isinstance(c, NormalizedClause) for c in batch.clauses)

    def test_aux_names_unique_across_incremental_loads(self):
        frontend = Frontend(BUILTIN_TABLE)
        first = frontend.expand_clause(parse_term("p :- (a ; b)"))
        second = frontend.expand_clause(parse_term("q :- (c ; d)"))
        assert not (first.auxiliary & second.auxiliary)

    def test_invalid_goal_rejected(self):
        from repro.errors import PrologSyntaxError
        with pytest.raises(PrologSyntaxError):
            normalize("p(X) :- 42")
