"""The differential crosscheck oracle and its CLI/registry integration."""

import json

import pytest

from repro.engine.crosscheck import (
    CrosscheckReport,
    WorkloadCheck,
    crosscheck,
    crosscheck_workload,
)
from repro.workloads import all_workloads, shared_workloads


class TestReportShape:
    def test_report_accessors(self):
        report = CrosscheckReport(checks=[
            WorkloadCheck("a", ok=True),
            WorkloadCheck("b", ok=False, detail="boom"),
        ])
        assert not report.ok
        assert [c.name for c in report.divergences] == ["b"]
        rendered = report.render()
        assert "DIVERGED" in rendered and "boom" in rendered

    def test_to_dict_is_json_serialisable(self):
        report = crosscheck(["nreverse"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["checked"] == 1
        assert payload["workloads"][0]["name"] == "nreverse"

    def test_empty_report_is_ok(self):
        assert CrosscheckReport().ok


class TestSharedWorkloads:
    def test_shared_excludes_psi_only(self):
        shared = {w.name for w in shared_workloads()}
        for name, workload in all_workloads().items():
            assert (name in shared) == (not workload.psi_only)

    def test_window_workloads_are_psi_only(self):
        shared = {w.name for w in shared_workloads()}
        assert not {"window-1", "window-2", "window-3"} & shared


class TestCrosscheckExecution:
    def test_single_workload_agrees(self):
        check = crosscheck_workload("qsort")
        assert check.ok, check.detail
        assert check.psi_answers == check.baseline_answers
        assert check.psi_answers  # answers actually captured

    def test_divergence_detected(self, monkeypatch):
        # Forge a disagreement by corrupting the baseline answers.
        from repro.eval import runner

        real = runner.run_engine

        def forged(name, engine="psi", record_trace=True):
            result = real(name, engine=engine, record_trace=record_trace)
            if engine != "psi":
                result = runner.BaselineRun(
                    stats=result.stats,
                    answers=((("X", "wrong"),),),
                    counters=result.counters)
            return result

        monkeypatch.setattr(runner, "run_engine", forged)
        check = crosscheck_workload("nreverse")
        assert not check.ok
        assert "baseline only" in check.detail or "PSI only" in check.detail

    def test_engine_crash_is_a_divergence(self, monkeypatch):
        from repro.eval import runner

        def exploding(name, engine="psi", record_trace=True):
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(runner, "run_engine", exploding)
        check = crosscheck_workload("nreverse")
        assert not check.ok
        assert "engine on fire" in check.detail


@pytest.mark.slow
class TestFullRegistry:
    def test_every_shared_workload_crosschecks(self):
        """The acceptance sweep: zero divergences across the registry.

        Served from the run cache when warm; the CI crosscheck job runs
        the same sweep through ``psi-eval crosscheck --all``.
        """
        report = crosscheck()
        assert {c.name for c in report.checks} == \
            {w.name for w in shared_workloads()}
        assert report.ok, report.render()
