"""The differential crosscheck oracle and its CLI/registry integration."""

import json

import pytest

from repro.engine.crosscheck import (
    CrosscheckReport,
    WorkloadCheck,
    crosscheck,
    crosscheck_workload,
    crosscheck_workload_indexed,
)
from repro.workloads import all_workloads, shared_workloads


class TestReportShape:
    def test_report_accessors(self):
        report = CrosscheckReport(checks=[
            WorkloadCheck("a", ok=True),
            WorkloadCheck("b", ok=False, detail="boom"),
        ])
        assert not report.ok
        assert [c.name for c in report.divergences] == ["b"]
        rendered = report.render()
        assert "DIVERGED" in rendered and "boom" in rendered

    def test_to_dict_is_json_serialisable(self):
        report = crosscheck(["nreverse"])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["checked"] == 1
        assert payload["workloads"][0]["name"] == "nreverse"

    def test_empty_report_is_ok(self):
        assert CrosscheckReport().ok


class TestSharedWorkloads:
    def test_shared_excludes_psi_only(self):
        shared = {w.name for w in shared_workloads()}
        for name, workload in all_workloads().items():
            assert (name in shared) == (not workload.psi_only)

    def test_window_workloads_are_psi_only(self):
        shared = {w.name for w in shared_workloads()}
        assert not {"window-1", "window-2", "window-3"} & shared


class TestCrosscheckExecution:
    def test_single_workload_agrees(self):
        check = crosscheck_workload("qsort")
        assert check.ok, check.detail
        assert check.psi_answers == check.baseline_answers
        assert check.psi_answers  # answers actually captured

    def test_divergence_detected(self, monkeypatch):
        # Forge a disagreement by corrupting the baseline answers.
        from repro.eval import runner

        real = runner.run_engine

        def forged(name, engine="psi", record_trace=True):
            result = real(name, engine=engine, record_trace=record_trace)
            if engine != "psi":
                result = runner.BaselineRun(
                    stats=result.stats,
                    answers=((("X", "wrong"),),),
                    counters=result.counters)
            return result

        monkeypatch.setattr(runner, "run_engine", forged)
        check = crosscheck_workload("nreverse")
        assert not check.ok
        assert "baseline only" in check.detail or "PSI only" in check.detail

    def test_engine_crash_is_a_divergence(self, monkeypatch):
        from repro.eval import runner

        def exploding(name, engine="psi", record_trace=True):
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(runner, "run_engine", exploding)
        check = crosscheck_workload("nreverse")
        assert not check.ok
        assert "engine on fire" in check.detail


@pytest.mark.slow
class TestFullRegistry:
    def test_every_shared_workload_crosschecks(self):
        """The acceptance sweep: zero divergences across the registry.

        Served from the run cache when warm; the CI crosscheck job runs
        the same sweep through ``psi-eval crosscheck --all``.
        """
        report = crosscheck()
        assert {c.name for c in report.checks} == \
            {w.name for w in shared_workloads()}
        assert report.ok, report.render()


@pytest.mark.slow
@pytest.mark.parametrize("name", sorted(all_workloads()))
class TestIndexedRegistryEquivalence:
    """The clause-indexed PSI configuration must reproduce the faithful
    answer multisets (and side-effect counters) on *every* registry
    workload — ``psi_only`` ones included, since both runs are PSI.
    The CI crosscheck job runs the same sweep through
    ``psi-eval crosscheck --all --indexed``."""

    def test_indexed_agrees_with_faithful(self, name):
        check = crosscheck_workload_indexed(name)
        assert check.ok, f"{name}: {check.detail}"
        assert check.psi_answers  # indexed answers actually captured


class TestDivergenceReproRecipe:
    def test_render_prints_the_debug_diff_command(self):
        report = CrosscheckReport(checks=[
            WorkloadCheck("ok-one", ok=True),
            WorkloadCheck("bad-one", ok=False, detail="answers differ"),
            WorkloadCheck("bad-two", ok=False, detail="counters differ"),
        ])
        rendered = report.render()
        assert "psi-eval debug --diff bad-one" in rendered
        assert "psi-eval debug --diff bad-two" in rendered
        assert "psi-eval debug --diff ok-one" not in rendered

    def test_clean_report_has_no_recipe(self):
        report = CrosscheckReport(checks=[WorkloadCheck("a", ok=True)])
        assert "psi-eval debug" not in report.render()

    def test_to_dict_lists_divergent_names(self):
        report = CrosscheckReport(checks=[
            WorkloadCheck("a", ok=True),
            WorkloadCheck("b", ok=False, detail="boom"),
        ])
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["divergent"] == ["b"]
        assert payload["interrupted"] is False
        assert payload["skipped"] == []


class TestInterruptedSweep:
    def test_partial_report_survives_keyboard_interrupt(self, monkeypatch):
        import repro.engine.crosscheck as crosscheck_module

        def check_then_interrupt(name):
            if name == "second":
                raise KeyboardInterrupt
            return WorkloadCheck(name, ok=(name != "first"),
                                 detail="" if name != "first" else "boom")

        monkeypatch.setattr(crosscheck_module, "crosscheck_workload",
                            check_then_interrupt)
        report = crosscheck(["first", "second", "third"])
        assert report.interrupted
        assert not report.ok
        assert [c.name for c in report.checks] == ["first"]
        assert report.skipped == ["second", "third"]
        assert report.divergent_names == ["first"]
        payload = report.to_dict()
        assert payload["interrupted"] is True
        assert payload["skipped"] == ["second", "third"]
        assert "INTERRUPTED" in report.render()

    def test_interrupted_but_clean_sweep_is_still_not_ok(self):
        report = CrosscheckReport(checks=[WorkloadCheck("a", ok=True)],
                                  interrupted=True, skipped=["b"])
        assert not report.ok
        assert report.to_dict()["divergent"] == []

    def test_cli_writes_the_report_json_when_interrupted(self, tmp_path,
                                                         monkeypatch,
                                                         capsys):
        import repro.engine.crosscheck as crosscheck_module

        from repro.eval.cli import main

        def interrupt_on_second(name):
            if name != "nreverse":
                raise KeyboardInterrupt
            return WorkloadCheck(name, ok=True)

        monkeypatch.setattr(crosscheck_module, "crosscheck_workload",
                            interrupt_on_second)
        out = tmp_path / "crosscheck.json"
        status = main(["crosscheck", "nreverse", "qsort",
                       "--report", str(out)])
        assert status == 1
        payload = json.loads(out.read_text())
        assert payload["interrupted"] is True
        assert payload["checked"] == 1
        assert payload["skipped"] == ["qsort"]
