"""The AbstractEngine protocol and the two adapters."""

import pytest

from repro.engine.api import (
    ENGINE_NAMES,
    AbstractEngine,
    EngineStatsFacade,
    PSIEngine,
    WAMEngine,
    create_engine,
)

PROGRAM = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
"""


@pytest.fixture(params=ENGINE_NAMES)
def engine(request):
    return create_engine(request.param)


class TestProtocol:
    def test_adapters_satisfy_protocol(self, engine):
        assert isinstance(engine, AbstractEngine)

    def test_create_engine_names(self):
        assert isinstance(create_engine("psi"), PSIEngine)
        assert isinstance(create_engine("baseline"), WAMEngine)
        assert isinstance(create_engine("dec"), WAMEngine)
        assert isinstance(create_engine("wam"), WAMEngine)
        with pytest.raises(ValueError):
            create_engine("t800")


class TestSolve:
    def test_first_solution(self, engine):
        engine.load(PROGRAM)
        answers = engine.solve("append([1,2], [3], X)")
        assert answers == ((("X", "[1,2,3]"),),)

    def test_all_solutions(self, engine):
        engine.load(PROGRAM)
        answers = engine.solve("append(A, B, [1,2])", max_solutions=None)
        assert len(answers) == 3
        assert (("A", "[1]"), ("B", "[2]")) in answers

    def test_failure_is_empty(self, engine):
        engine.load(PROGRAM)
        assert engine.solve("append([1], [2], [9])") == ()

    def test_counters_and_output(self, engine):
        engine.load("tally :- counter_inc(n), counter_inc(n), write(done).")
        engine.solve("tally")
        assert engine.counters.get("n") == 2
        assert "done" in "".join(engine.output)


class TestStatsFacade:
    def test_facade_shape(self, engine):
        engine.load(PROGRAM)
        engine.solve("append([1,2,3], [], X)")
        facade = engine.stats_facade()
        assert isinstance(facade, EngineStatsFacade)
        assert facade.engine == engine.name
        assert facade.inferences > 0
        assert facade.time_ms > 0
        assert facade.work > 0

    def test_work_units_differ_by_engine(self):
        psi, wam = create_engine("psi"), create_engine("baseline")
        for eng in (psi, wam):
            eng.load(PROGRAM)
            eng.solve("append([1], [2], X)")
        assert psi.stats_facade().work_unit == "microsteps"
        assert wam.stats_facade().work_unit == "instructions"
