"""Hand-written differential corpus: identical canonical answer
multisets on both engines across the language's behavioural corners
(arithmetic, list recursion, backtracking, cut, negation, control)."""

import pytest

from repro.engine.answers import answer_multiset
from repro.engine.api import create_engine

#: (name, program, goal) — each runs on both engines with all solutions
#: enumerated; the canonical answer multisets must be identical.
CORPUS = [
    ("arith-eval",
     "area(W, H, A) :- A is W * H.",
     "area(6, 7, A)"),
    ("arith-truncating-division",
     "d(A, B, Q, M, R) :- Q is A // B, M is A mod B, R is A rem B.",
     "d(-7, 2, Q, M, R)"),
    ("arith-comparison-backtrack",
     "n(1). n(2). n(3). n(4). big(X) :- n(X), X > 2.",
     "big(X)"),
    ("list-append-enumerate",
     """
     app([], L, L).
     app([H|T], L, [H|R]) :- app(T, L, R).
     """,
     "app(A, B, [1,2,3])"),
    ("list-naive-reverse",
     """
     app([], L, L).
     app([H|T], L, [H|R]) :- app(T, L, R).
     rev([], []).
     rev([H|T], R) :- rev(T, RT), app(RT, [H], R).
     """,
     "rev([1,2,3,4,5], R)"),
    ("backtracking-permutations",
     """
     sel(X, [X|T], T).
     sel(X, [H|T], [H|R]) :- sel(X, T, R).
     perm([], []).
     perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
     """,
     "perm([1,2,3], P)"),
    ("cut-commits-first",
     "f(1). f(2). f(3). first(X) :- f(X), !.",
     "first(X)"),
    ("cut-inside-guard",
     """
     max(X, Y, X) :- X >= Y, !.
     max(_, Y, Y).
     """,
     "max(3, 7, M)"),
    ("negation-as-failure",
     "g(1). g(3). odd_gap(X) :- g(X), \\+ g(2).",
     "odd_gap(X)"),
    ("negation-failing",
     "h(1). none(X) :- h(X), \\+ h(1).",
     "none(X)"),
    ("disjunction",
     "d(X) :- (X = left ; X = right).",
     "d(X)"),
    ("if-then-else",
     "classify(X, R) :- (X > 0 -> R = pos ; R = nonpos).",
     "classify(-2, R)"),
    ("structure-unification",
     "pair(f(X, g(Y)), X, Y).",
     "pair(f(1, g(hello)), A, B)"),
    ("partial-instantiation",
     "same(X, X).",
     "same(f(A, 2), f(1, B))"),
    ("meta-call",
     "t(42). indirect(G) :- call(G).",
     "indirect(t(X))"),
]


@pytest.mark.parametrize("name,program,goal",
                         CORPUS, ids=[c[0] for c in CORPUS])
def test_engines_agree(name, program, goal):
    multisets = {}
    for engine_name in ("psi", "baseline"):
        engine = create_engine(engine_name)
        engine.load(program)
        answers = engine.solve(goal, max_solutions=None)
        multisets[engine_name] = answer_multiset(answers)
    assert multisets["psi"] == multisets["baseline"], \
        f"{name}: engines diverge on {goal}"


def test_counters_agree_on_failure_driven_loop():
    program = """
    item(a). item(b). item(c).
    count :- item(_), counter_inc(seen), fail.
    count.
    """
    counts = {}
    for engine_name in ("psi", "baseline"):
        engine = create_engine(engine_name)
        engine.load(program)
        assert engine.solve("count") == ((),)
        counts[engine_name] = dict(engine.counters)
    assert counts["psi"] == counts["baseline"] == {"seen": 3}


# ---------------------------------------------------------------------------
# Clause-indexing mini-corpus: the first-argument shapes the selection
# analysis dispatches on, each run under THREE configurations — faithful
# PSI, clause-indexed PSI and the (always-indexing) DEC baseline.  The
# indexed configuration must never change an answer multiset: indexing
# narrows the clause *scan*, not the solution set.
# ---------------------------------------------------------------------------

#: Every first-argument kind in one predicate, with a var clause
#: interleaved (id 1) so each bucket must carry it, plus same-functor /
#: different-arity heads (f/1 vs f/2) that must not share a bucket.
_MIX = """
m(a, 1).
m(V, 2).
m(b, 3).
m(7, 4).
m([], 5).
m([H|T], 6).
m(f(X), 7).
m(f(X, Y), 8).
"""

_NIL = """
t([], empty).
t('[]', quoted).
t([_|_], cons).
t(A, any).
"""

INDEXING_CORPUS = [
    ("atom-hit", _MIX, "m(a, R)"),
    ("atom-other-bucket", _MIX, "m(b, R)"),
    ("atom-unknown-key", _MIX, "m(q, R)"),
    ("int-hit", _MIX, "m(7, R)"),
    ("int-unknown-key", _MIX, "m(8, R)"),
    ("nil", _MIX, "m([], R)"),
    ("list-cell", _MIX, "m([1,2], R)"),
    ("struct-f1", _MIX, "m(f(0), R)"),
    ("struct-f2-distinct-arity", _MIX, "m(f(0, 1), R)"),
    ("struct-unknown-functor", _MIX, "m(g(0), R)"),
    ("unbound-full-scan", _MIX, "m(W, R)"),
    # [] vs '[]' vs a list cell: the quoted atom is nil, so both nil
    # clauses share the "[]" key and a cons cell hits neither.
    ("nil-vs-quoted-nil", _NIL, "t([], R)"),
    ("quoted-nil-probe", _NIL, "t('[]', R)"),
    ("cons-vs-nil", _NIL, "t([x], R)"),
    # The dispatch argument arrives through a reference chain.
    ("deref-chain-probe",
     "eq(X, X). p(a, 1). p(V, 2). p(b, 3). d(R) :- eq(W, b), p(W, R).",
     "d(R)"),
]

#: The three configurations the indexing corpus must agree across.
ALL_CONFIGS = ("psi", "psi-indexed", "baseline")


@pytest.mark.parametrize("name,program,goal", INDEXING_CORPUS,
                         ids=[c[0] for c in INDEXING_CORPUS])
def test_indexing_corpus_agrees(name, program, goal):
    multisets = {}
    for engine_name in ALL_CONFIGS:
        engine = create_engine(engine_name)
        engine.load(program)
        answers = engine.solve(goal, max_solutions=None)
        multisets[engine_name] = answer_multiset(answers)
    assert multisets["psi"] == multisets["psi-indexed"] \
        == multisets["baseline"], f"{name}: configurations diverge on {goal}"


def test_assert_after_first_call_agrees():
    """Clauses asserted *after* the index was first built must join it."""
    results = {}
    for engine_name in ALL_CONFIGS:
        engine = create_engine(engine_name)
        engine.load("d(1, one).")
        # First call builds the dispatch structure...
        before = engine.solve("d(1, R)", max_solutions=None)
        # ...then the predicate grows: a const clause, a var clause
        # (which must join every bucket) and a second const clause.
        engine.solve("assertz(d(2, two)), assertz(d(V, var)), "
                     "assertz(d(2, late))")
        results[engine_name] = (
            answer_multiset(before),
            answer_multiset(engine.solve("d(2, R)", max_solutions=None)),
            answer_multiset(engine.solve("d(9, R)", max_solutions=None)),
            answer_multiset(engine.solve("d(X, R)", max_solutions=None)),
        )
    assert results["psi"] == results["psi-indexed"] == results["baseline"]


def test_assert_creates_new_predicate_agrees():
    results = {}
    for engine_name in ALL_CONFIGS:
        engine = create_engine(engine_name)
        engine.load("seed(ok).")
        engine.solve("assertz(fresh(a, 1)), assertz(fresh(b, 2)), "
                     "assertz(fresh(C, 3))")
        results[engine_name] = answer_multiset(
            engine.solve("fresh(b, R)", max_solutions=None))
    assert results["psi"] == results["psi-indexed"] == results["baseline"]


def test_retract_after_first_call_agrees():
    results = {}
    for engine_name in ALL_CONFIGS:
        engine = create_engine(engine_name)
        engine.load("r(a, 1). r(V, 2). r(a, 3). r(b, 4).")
        before = engine.solve("r(a, R)", max_solutions=None)
        assert engine.solve("retract(r(a, 1))")
        results[engine_name] = (
            answer_multiset(before),
            answer_multiset(engine.solve("r(a, R)", max_solutions=None)),
            answer_multiset(engine.solve("r(b, R)", max_solutions=None)),
            answer_multiset(engine.solve("r(X, R)", max_solutions=None)),
        )
    assert results["psi"] == results["psi-indexed"] == results["baseline"]
