"""Hand-written differential corpus: identical canonical answer
multisets on both engines across the language's behavioural corners
(arithmetic, list recursion, backtracking, cut, negation, control)."""

import pytest

from repro.engine.answers import answer_multiset
from repro.engine.api import create_engine

#: (name, program, goal) — each runs on both engines with all solutions
#: enumerated; the canonical answer multisets must be identical.
CORPUS = [
    ("arith-eval",
     "area(W, H, A) :- A is W * H.",
     "area(6, 7, A)"),
    ("arith-truncating-division",
     "d(A, B, Q, M, R) :- Q is A // B, M is A mod B, R is A rem B.",
     "d(-7, 2, Q, M, R)"),
    ("arith-comparison-backtrack",
     "n(1). n(2). n(3). n(4). big(X) :- n(X), X > 2.",
     "big(X)"),
    ("list-append-enumerate",
     """
     app([], L, L).
     app([H|T], L, [H|R]) :- app(T, L, R).
     """,
     "app(A, B, [1,2,3])"),
    ("list-naive-reverse",
     """
     app([], L, L).
     app([H|T], L, [H|R]) :- app(T, L, R).
     rev([], []).
     rev([H|T], R) :- rev(T, RT), app(RT, [H], R).
     """,
     "rev([1,2,3,4,5], R)"),
    ("backtracking-permutations",
     """
     sel(X, [X|T], T).
     sel(X, [H|T], [H|R]) :- sel(X, T, R).
     perm([], []).
     perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
     """,
     "perm([1,2,3], P)"),
    ("cut-commits-first",
     "f(1). f(2). f(3). first(X) :- f(X), !.",
     "first(X)"),
    ("cut-inside-guard",
     """
     max(X, Y, X) :- X >= Y, !.
     max(_, Y, Y).
     """,
     "max(3, 7, M)"),
    ("negation-as-failure",
     "g(1). g(3). odd_gap(X) :- g(X), \\+ g(2).",
     "odd_gap(X)"),
    ("negation-failing",
     "h(1). none(X) :- h(X), \\+ h(1).",
     "none(X)"),
    ("disjunction",
     "d(X) :- (X = left ; X = right).",
     "d(X)"),
    ("if-then-else",
     "classify(X, R) :- (X > 0 -> R = pos ; R = nonpos).",
     "classify(-2, R)"),
    ("structure-unification",
     "pair(f(X, g(Y)), X, Y).",
     "pair(f(1, g(hello)), A, B)"),
    ("partial-instantiation",
     "same(X, X).",
     "same(f(A, 2), f(1, B))"),
    ("meta-call",
     "t(42). indirect(G) :- call(G).",
     "indirect(t(X))"),
]


@pytest.mark.parametrize("name,program,goal",
                         CORPUS, ids=[c[0] for c in CORPUS])
def test_engines_agree(name, program, goal):
    multisets = {}
    for engine_name in ("psi", "baseline"):
        engine = create_engine(engine_name)
        engine.load(program)
        answers = engine.solve(goal, max_solutions=None)
        multisets[engine_name] = answer_multiset(answers)
    assert multisets["psi"] == multisets["baseline"], \
        f"{name}: engines diverge on {goal}"


def test_counters_agree_on_failure_driven_loop():
    program = """
    item(a). item(b). item(c).
    count :- item(_), counter_inc(seen), fail.
    count.
    """
    counts = {}
    for engine_name in ("psi", "baseline"):
        engine = create_engine(engine_name)
        engine.load(program)
        assert engine.solve("count") == ((),)
        counts[engine_name] = dict(engine.counters)
    assert counts["psi"] == counts["baseline"] == {"seen": 3}
