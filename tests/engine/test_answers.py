"""Canonical answers: renaming, multisets, expected-dict validation."""

from repro.engine.answers import (
    answer_multiset,
    canonical_answer,
    check_expected,
    render_answer,
)
from repro.prolog import parse_term
from repro.prolog.terms import Struct, Var


class TestCanonicalAnswer:
    def test_engine_specific_var_names_erased(self):
        psi = canonical_answer({"X": Var("_A1234"), "Y": Var("_A1234")})
        wam = canonical_answer({"X": Var("_B7"), "Y": Var("_B7")})
        assert psi == wam == (("X", "_G0"), ("Y", "_G0"))

    def test_aliasing_preserved(self):
        distinct = canonical_answer({"X": Var("_A1"), "Y": Var("_A2")})
        aliased = canonical_answer({"X": Var("_A1"), "Y": Var("_A1")})
        assert distinct == (("X", "_G0"), ("Y", "_G1"))
        assert aliased == (("X", "_G0"), ("Y", "_G0"))
        assert distinct != aliased

    def test_binding_order_is_name_sorted(self):
        forward = canonical_answer({"A": 1, "B": 2})
        backward = canonical_answer({"B": 2, "A": 1})
        assert forward == backward == (("A", "1"), ("B", "2"))

    def test_nested_terms_rendered_deterministically(self):
        term = parse_term("f(g(1), [a, b], X)")
        answer = canonical_answer({"T": term})
        assert answer == (("T", "f(g(1),[a,b],_G0)"),)

    def test_vars_inside_structures_renamed(self):
        term = Struct("f", (Var("_A9"), Var("_A9"), Var("_A10")))
        answer = canonical_answer({"T": term})
        assert answer == (("T", "f(_G0,_G0,_G1)"),)


class TestMultisetAndRendering:
    def test_multiset_order_insensitive(self):
        a = canonical_answer({"X": 1})
        b = canonical_answer({"X": 2})
        assert answer_multiset([a, b]) == answer_multiset([b, a])

    def test_duplicates_preserved(self):
        a = canonical_answer({"X": 1})
        assert answer_multiset([a, a]) != answer_multiset([a])

    def test_render(self):
        assert render_answer(()) == "true"
        assert render_answer((("X", "1"), ("Y", "[a]"))) == "X = 1, Y = [a]"


class TestCheckExpected:
    def answers_for(self, text):
        return (canonical_answer({"V": parse_term(text)}),)

    def test_empty_expected_always_passes(self):
        assert check_expected({}, answers=(), counters={}) == []

    def test_no_answers_fails(self):
        assert check_expected({"V": 1}, answers=(), counters={})

    def test_bare_variable_binding(self):
        answers = self.answers_for("89")
        assert check_expected({"V": 89}, answers=answers, counters={}) == []
        assert check_expected({"V": 13}, answers=answers, counters={})

    def test_first_element(self):
        good = self.answers_for("[30, 29, 28]")
        assert check_expected({"first_element": 30}, answers=good,
                              counters={}) == []
        assert check_expected({"first_element": 1}, answers=good,
                              counters={})

    def test_first_tolerates_improper_tail(self):
        # The Lisp-interpreter workloads build nil-terminated chains.
        lispy = self.answers_for("[16, 15|nil]")
        assert check_expected({"first": 16}, answers=lispy,
                              counters={}) == []

    def test_sorted_length(self):
        good = self.answers_for("[1, 2, 2, 5]")
        assert check_expected({"sorted_length": 4}, answers=good,
                              counters={}) == []
        assert check_expected({"sorted_length": 3}, answers=good,
                              counters={})
        unsorted = self.answers_for("[2, 1]")
        assert check_expected({"sorted_length": 2}, answers=unsorted,
                              counters={})

    def test_solutions_counter(self):
        answers = (canonical_answer({}),)
        assert check_expected({"solutions": 92}, answers=answers,
                              counters={"solutions": 92}) == []
        assert check_expected({"solutions": 92}, answers=answers,
                              counters={"solutions": 91})

    def test_parses_min_counter(self):
        answers = (canonical_answer({}),)
        assert check_expected({"parses_min": 2}, answers=answers,
                              counters={"parses": 5}) == []
        assert check_expected({"parses_min": 2}, answers=answers,
                              counters={})

    def test_unknown_key_reported(self):
        answers = self.answers_for("1")
        assert check_expected({"W": 1}, answers=answers, counters={})

    def test_registry_expectations_are_interpretable(self):
        # Every expected key used anywhere in the registry must be one
        # check_expected understands (or a goal variable name).
        from repro.workloads import all_workloads
        known = {"first_element", "first", "sorted_length", "solutions",
                 "parses_min"}
        for workload in all_workloads().values():
            for key in workload.expected:
                assert key in known or key.isidentifier(), \
                    f"{workload.name}: uninterpretable expected key {key!r}"
