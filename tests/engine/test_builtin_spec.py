"""The single builtin spec table and its coverage-parity contract."""

import pytest

from repro.baseline.builtins import BASELINE_BUILTINS
from repro.core.builtins import BUILTIN_TABLE
from repro.engine.builtins_spec import (
    ARITH_BINARY,
    ARITH_COMPARE,
    ARITH_UNARY,
    BUILTIN_SPECS,
    DEC_ONLY,
    DETERMINISM_CLASSES,
    KL0_ONLY,
    apply_arith_op,
    apply_compare,
    dec_indicators,
    int_div,
    int_mod,
    int_rem,
    kl0_indicators,
    shared_indicators,
)
from repro.errors import EvaluationError, TypeError_


class TestCoverageParity:
    """Each engine's dispatch table covers exactly the spec minus the
    other engine's documented exclusive allowlist."""

    def test_kl0_table_matches_spec(self):
        assert frozenset(BUILTIN_TABLE) == kl0_indicators()

    def test_baseline_table_matches_spec(self):
        assert frozenset(BASELINE_BUILTINS) == dec_indicators()

    def test_allowlists_are_disjoint_and_in_spec(self):
        assert not (KL0_ONLY & DEC_ONLY)
        assert KL0_ONLY <= frozenset(BUILTIN_SPECS)
        assert DEC_ONLY <= frozenset(BUILTIN_SPECS)

    def test_shared_surface_is_on_both_engines(self):
        shared = shared_indicators()
        assert shared <= frozenset(BUILTIN_TABLE)
        assert shared <= frozenset(BASELINE_BUILTINS)

    def test_kl0_only_contents_documented(self):
        # The allowlist is exactly the heap-vector ops + process switch.
        assert KL0_ONLY == {("new_vector", 2), ("vector_ref", 3),
                            ("vector_set", 3), ("vector_size", 2),
                            ("process_switch", 0)}
        assert DEC_ONLY == frozenset()

    def test_spec_metadata_well_formed(self):
        for indicator, spec in BUILTIN_SPECS.items():
            assert spec.indicator == indicator
            assert spec.determinism in DETERMINISM_CLASSES
            assert spec.arity >= 0


class TestSharedArithmetic:
    def test_division_truncates_towards_zero(self):
        assert int_div(7, 2) == 3
        assert int_div(-7, 2) == -3
        assert int_div(7, -2) == -3
        assert int_div(-7, -2) == 3

    def test_mod_follows_divisor_sign(self):
        assert int_mod(7, 3) == 1
        assert int_mod(-7, 3) == 2
        assert int_mod(7, -3) == -2

    def test_rem_follows_dividend_sign(self):
        assert int_rem(7, 3) == 1
        assert int_rem(-7, 3) == -1
        assert int_rem(7, -3) == 1

    @pytest.mark.parametrize("fn", [int_div, int_mod, int_rem])
    def test_division_by_zero_raises(self, fn):
        with pytest.raises(EvaluationError):
            fn(1, 0)

    def test_apply_arith_op_dispatch(self):
        assert apply_arith_op("+", [2, 3]) == 5
        assert apply_arith_op("-", [2]) == -2
        assert apply_arith_op("xor", [6, 3]) == 5
        with pytest.raises(TypeError_):
            apply_arith_op("sqrt", [4])

    def test_apply_compare(self):
        assert apply_compare("=<", 2, 2)
        assert not apply_compare(">", 2, 2)

    def test_both_engines_reference_the_shared_tables(self):
        from repro.baseline import builtins as base_b
        from repro.core import builtins as core_b
        assert core_b._ARITH_BINARY is ARITH_BINARY
        assert core_b._ARITH_UNARY is ARITH_UNARY
        assert base_b._ARITH_BINARY is ARITH_BINARY
        assert base_b._ARITH_UNARY is ARITH_UNARY

    def test_comparison_operators_complete(self):
        assert set(ARITH_COMPARE) == {"=:=", "=\\=", "<", ">", "=<", ">="}
