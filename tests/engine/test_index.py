"""Property tests for the backend-neutral clause-selection analysis.

The load-bearing invariant is the supersequence guarantee: ``select``
must return a source-ordered subsequence of the clause list containing
*every* clause the call could unify with.  We check it against the
brute-force ``reference_select`` oracle across randomized add/remove
histories, and pin the taxonomy of ``first_arg_descriptor`` on parsed
program text.
"""

import random

import pytest

from repro.engine.index import (
    KIND_CONST,
    KIND_LIST,
    KIND_STRUCT,
    KIND_VAR,
    ClauseIndex,
    build_index,
    first_arg_descriptor,
)
from repro.prolog.reader import parse_program
from repro.prolog.terms import clause_parts

#: Descriptor pool the randomized histories draw from: two integer
#: constants, two atoms (nil among them), list cells, two functors
#: (same name, different arity — they must not share a bucket), vars.
DESCRIPTORS = [
    (KIND_CONST, 1),
    (KIND_CONST, 2),
    (KIND_CONST, "a"),
    (KIND_CONST, "[]"),
    (KIND_LIST, None),
    (KIND_STRUCT, ("f", 1)),
    (KIND_STRUCT, ("f", 2)),
    (KIND_VAR, None),
]

#: Every probe a caller could present, including keys with no bucket.
PROBES = DESCRIPTORS + [
    (KIND_CONST, 99),
    (KIND_CONST, "zz"),
    (KIND_STRUCT, ("g", 3)),
]


def check_against_oracle(index: ClauseIndex):
    for kind, key in PROBES:
        got = index.select(kind, key)
        want = index.reference_select(kind, key)
        assert got == want, (kind, key, got, want)
        # Source order: strictly increasing ids within range.
        assert all(0 <= i < len(index) for i in got)
        assert got == sorted(set(got))


def clause_heads(index: ClauseIndex):
    return list(zip(index.kinds, index.keys))


def test_static_build_matches_oracle():
    index = build_index(DESCRIPTORS)
    assert len(index) == len(DESCRIPTORS)
    check_against_oracle(index)


def test_var_probe_scans_everything():
    index = build_index(DESCRIPTORS)
    assert index.select(KIND_VAR, None) == list(range(len(DESCRIPTORS)))
    assert not index.selects_exactly(KIND_VAR, None)
    assert index.selects_exactly(KIND_CONST, 1)


def test_var_clauses_appear_in_every_bucket():
    # var, const, var, struct: both non-var buckets must interleave the
    # var clauses at their source positions.
    index = build_index([(KIND_VAR, None), (KIND_CONST, 7),
                         (KIND_VAR, None), (KIND_STRUCT, ("f", 1))])
    assert index.select(KIND_CONST, 7) == [0, 1, 2]
    assert index.select(KIND_STRUCT, ("f", 1)) == [0, 2, 3]
    # Unknown keys fall back to the var chain only.
    assert index.select(KIND_CONST, 8) == [0, 2]
    assert index.select(KIND_STRUCT, ("f", 9)) == [0, 2]


def test_bucket_created_after_var_clauses_is_seeded_from_them():
    index = ClauseIndex()
    index.add_clause(KIND_VAR, None)
    index.add_clause(KIND_CONST, "a")
    # "b" bucket did not exist when the var clause arrived; creating it
    # now must still begin with the var clause.
    index.add_clause(KIND_CONST, "b")
    assert index.select(KIND_CONST, "b") == [0, 2]
    check_against_oracle(index)


def test_remove_renumbers_down():
    index = build_index(DESCRIPTORS)
    heads = clause_heads(index)
    index.remove_clause(3)          # the "[]" const clause
    heads.pop(3)
    assert clause_heads(index) == heads
    check_against_oracle(index)
    # The "[]" bucket now holds only the interleaved var clause — a
    # probe on "[]" degenerates to the var chain.
    assert index.select(KIND_CONST, "[]") == index.var_ids


def test_remove_last_bucket_member_deletes_bucket():
    index = build_index([(KIND_CONST, "a"), (KIND_CONST, "b")])
    index.remove_clause(1)
    assert "b" not in index.const_buckets
    check_against_oracle(index)


def test_randomized_add_remove_history_matches_oracle():
    rng = random.Random(19870401)
    for _ in range(30):
        index = ClauseIndex()
        model = []
        for _ in range(60):
            if model and rng.random() < 0.4:
                cid = rng.randrange(len(model))
                index.remove_clause(cid)
                model.pop(cid)
            else:
                kind, key = rng.choice(DESCRIPTORS)
                cid = index.add_clause(kind, key)
                assert cid == len(model)
                model.append((kind, key))
            assert clause_heads(index) == model
            check_against_oracle(index)


@pytest.mark.parametrize("clause,expected", [
    ("p(X, c).", (KIND_VAR, None)),
    ("p(42, X).", (KIND_CONST, 42)),
    ("p(foo).", (KIND_CONST, "foo")),
    ("p([]).", (KIND_CONST, "[]")),
    ("p([H|T]).", (KIND_LIST, None)),
    ("p([1,2]).", (KIND_LIST, None)),
    ("p(f(a, B)).", (KIND_STRUCT, ("f", 2))),
    ("p(f(a, B)) :- q(B).", (KIND_STRUCT, ("f", 2))),
    ("p.", (KIND_VAR, None)),        # arity 0: nothing to dispatch on
])
def test_first_arg_descriptor_taxonomy(clause, expected):
    parsed = parse_program(clause)
    assert len(parsed) == 1
    head, _body = clause_parts(parsed[0])
    assert first_arg_descriptor(head) == expected
