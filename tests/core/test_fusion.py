"""Unit guards for the superinstruction fusion layer.

The contract (:mod:`repro.core.fusion`): billing a superinstruction —
whether through the deferred ``emit_fused``/``emit_fused_dyn`` slot
increments or through a collector subclass's ``replay`` override —
leaves the collector in exactly the state the unfused per-op emission
run would.  These tests check that per spec, across every module for
dynamic specs, plus the table/identity invariants the machine's inline
dispatch constants depend on.
"""

from __future__ import annotations

import pytest

from repro.core import fusion, micro
from repro.core.fusion import BY_SID, SUPERINSTRUCTIONS, Superinstruction
from repro.core.micro import Module, N_MODULES
from repro.core.stats import StatsCollector


def reference_state(si: Superinstruction, module: Module):
    """Collector state after the unfused per-op run of ``si``."""
    stats = StatsCollector()
    stats.module = module
    si.replay(stats)
    return (stats.routine_counts, stats.mem_counts, stats.total_steps)


def deferred_state(si: Superinstruction, module: Module):
    """Collector state after the deferred fused-billing path."""
    stats = StatsCollector()
    stats.module = module
    if si.module is not None:
        stats.emit_fused(si)
    else:
        stats.emit_fused_dyn(si)
    # routine_counts/mem_counts/total_steps each flush the pending
    # fused slots first; reading all three also checks idempotence.
    return (stats.routine_counts, stats.mem_counts, stats.total_steps)


def spec_modules(si: Superinstruction):
    """Module contexts one spec must be equivalent under."""
    return [si.module] if si.module is not None else list(Module)


@pytest.mark.parametrize("name", sorted(SUPERINSTRUCTIONS))
class TestDeltaReplayEquivalence:
    def test_deferred_billing_matches_replay(self, name):
        si = SUPERINSTRUCTIONS[name]
        for module in spec_modules(si):
            assert deferred_state(si, module) == \
                reference_state(si, module), (
                f"{name} under {module.value}: deferred slot billing "
                f"diverged from the unfused emission run")

    def test_n_steps_matches_registry(self, name):
        si = SUPERINSTRUCTIONS[name]
        steps = sum(r.n_steps * t for r, t in si.emissions)
        steps += sum(micro.MEM_STEPS[cmd.code] * t
                     for cmd, _area, t in si.mem_ops)
        assert si.n_steps == steps


class TestRepeatedAndMixedBilling:
    def test_repeat_counts_scale_linearly(self):
        si = SUPERINSTRUCTIONS["call_dispatch"]
        a = StatsCollector()
        b = StatsCollector()
        for _ in range(5):
            a.emit_fused(si)
            si.replay(b)
        assert a.routine_counts == b.routine_counts
        assert a.mem_counts == b.mem_counts
        assert a.total_steps == b.total_steps == 5 * si.n_steps

    def test_fused_and_plain_emissions_interleave(self):
        """Deferred fused counts must fold in *on top of* direct ones."""
        si = SUPERINSTRUCTIONS["fetch_decode"]
        a = StatsCollector()
        b = StatsCollector()
        for stats in (a, b):
            stats.module = Module.UNIFY
            stats.emit(micro.R_BIND)
        a.emit_fused_dyn(si)
        si.replay(b)
        for stats in (a, b):
            stats.emit(micro.R_TRAIL_SKIP)
        assert a.routine_counts == b.routine_counts
        assert a.mem_counts == b.mem_counts

    def test_flush_is_idempotent(self):
        si = SUPERINSTRUCTIONS["cp_push_frame"]
        stats = StatsCollector()
        stats.emit_fused(si)
        first = stats.total_steps
        assert stats.total_steps == first
        assert stats.routine_counts == stats.routine_counts


class TestObservedReplay:
    def test_observed_collector_replays_unfused(self):
        """The observed collector routes fused bills through replay,
        so its profile attribution sees the per-op stream."""
        from repro.obs.profile import MicroProfile
        from repro.obs.session import ObservedStatsCollector
        from repro.obs.trace import Tracer

        si = SUPERINSTRUCTIONS["call_dispatch"]
        observed = ObservedStatsCollector(Tracer(), MicroProfile())
        observed.module = si.module
        observed.emit_fused(si)
        reference = StatsCollector()
        reference.module = si.module
        si.replay(reference)
        assert observed.routine_counts == reference.routine_counts
        assert observed.mem_counts == reference.mem_counts

    def test_recording_collector_journals_unfused_stream(self):
        from repro.obs.seqmine import RecordingStatsCollector

        si = SUPERINSTRUCTIONS["trail_push"]
        rec = RecordingStatsCollector()
        rec.module = si.module
        rec.emit_fused(si)
        reference = RecordingStatsCollector()
        reference.module = si.module
        si.replay(reference)
        assert rec.events == reference.events
        assert rec.routine_counts == reference.routine_counts


class TestTableInvariants:
    def test_required_specs_present(self):
        for name in fusion.REQUIRED:
            assert name in SUPERINSTRUCTIONS

    def test_sid_identity(self):
        assert fusion.slot_space() == len(BY_SID) * N_MODULES
        slots = set()
        for sid, si in enumerate(BY_SID):
            assert si.sid == sid
            assert si.sid6 == sid * N_MODULES
            if si.module is not None:
                assert si.slot == si.sid6 + si.module.idx
            for midx in range(N_MODULES):
                slots.add(si.sid6 + midx)
        assert len(slots) == fusion.slot_space()

    def test_base_deltas_are_module_relative(self):
        for si in BY_SID:
            for base, times in si.base_deltas:
                assert base % N_MODULES == 0
                assert times > 0

    def test_frame_specialisations_extend_clause_frame(self):
        """clause_frame/{n} = clause_frame + n slot inits."""
        base = SUPERINSTRUCTIONS["clause_frame"]
        slot_init = micro.all_routines()["control.frame_init_slot"]
        for n, si in fusion.FRAME_BY_NLOCALS.items():
            assert si.module is base.module
            assert si.n_steps == base.n_steps + n * slot_init.n_steps

    def test_generator_table_is_current(self):
        """The committed fused table must match what the generator
        renders from its embedded specs (`--check` contract)."""
        import subprocess
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        proc = subprocess.run(
            [sys.executable, str(root / "scripts" /
                                 "gen_superinstructions.py"), "--check"],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(root / "src"), "PATH": "/usr/bin:/bin"})
        assert proc.returncode == 0, proc.stdout + proc.stderr
