"""Unit tests for the work file (frame buffer) model."""

from repro.core.stats import StatsCollector
from repro.core.workfile import BUFFER_SLOTS, WorkFile


class FakeFrame:
    def __init__(self, base, nlocals):
        self.base = base
        self.nlocals = nlocals
        self.buffer_id = None


def make():
    return WorkFile(StatsCollector())


class TestBufferManagement:
    def test_acquire_alternates(self):
        wf = make()
        a = FakeFrame(0, 4)
        b = FakeFrame(4, 4)
        assert wf.acquire(a) == 0
        assert wf.acquire(b) == 1

    def test_third_acquire_evicts_first(self):
        wf = make()
        a, b, c = FakeFrame(0, 2), FakeFrame(2, 2), FakeFrame(4, 2)
        a.buffer_id = wf.acquire(a)
        b.buffer_id = wf.acquire(b)
        c.buffer_id = wf.acquire(c)
        assert a.buffer_id is None          # evicted
        assert wf.owner_of_local(4) is c
        assert wf.owner_of_local(0) is None

    def test_oversized_frame_not_buffered(self):
        wf = make()
        big = FakeFrame(0, BUFFER_SLOTS + 1)
        assert wf.acquire(big) is None

    def test_release(self):
        wf = make()
        frame = FakeFrame(0, 4)
        frame.buffer_id = wf.acquire(frame)
        wf.release(frame)
        assert frame.buffer_id is None
        assert wf.owner_of_local(0) is None

    def test_owner_lookup_by_offset_range(self):
        wf = make()
        frame = FakeFrame(10, 4)
        frame.buffer_id = wf.acquire(frame)
        assert wf.owner_of_local(10) is frame
        assert wf.owner_of_local(13) is frame
        assert wf.owner_of_local(14) is None
        assert wf.owner_of_local(9) is None

    def test_reset_clears_owners(self):
        wf = make()
        frame = FakeFrame(0, 4)
        frame.buffer_id = wf.acquire(frame)
        wf.reset()
        assert frame.buffer_id is None
        assert wf.owner_of_local(0) is None


class TestBilling:
    def test_slot_access_emits_wf_routines(self):
        wf = make()
        wf.read_slot(5)
        wf.write_slot(5)
        assert wf.stats.total_steps == 2

    def test_no_memory_traffic(self):
        wf = make()
        wf.read_slot(0)
        assert wf.stats.total_mem_accesses == 0
