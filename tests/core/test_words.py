"""Unit tests for tagged words and symbol tables."""

from repro.core.words import (
    NIL_WORD,
    SymbolTable,
    Tag,
    is_atomic_word,
    is_compound_word,
    is_var_word,
    mk_atom,
    mk_int,
    mk_ref,
    mk_unbound,
)


class TestWords:
    def test_constructors(self):
        assert mk_int(5) == (Tag.INT, 5)
        assert mk_atom(3) == (Tag.ATOM, 3)
        assert mk_ref(99) == (Tag.REF, 99)
        assert mk_unbound(7) == (Tag.UNDEF, 7)
        assert NIL_WORD == (Tag.NIL, 0)

    def test_predicates(self):
        assert is_var_word(mk_unbound(1))
        assert not is_var_word(mk_int(1))
        assert is_atomic_word(mk_int(0))
        assert is_atomic_word(NIL_WORD)
        assert not is_atomic_word((Tag.LIST, 4))
        assert is_compound_word((Tag.STRUCT, 4))
        assert is_compound_word((Tag.VECT, 4))
        assert not is_compound_word(mk_atom(1))

    def test_tag_values_are_stable_ints(self):
        # Trace encodings and packed words rely on small stable ints.
        assert Tag.UNDEF == 0 and Tag.REF == 1
        assert all(tag < 16 for tag in Tag)


class TestSymbolTable:
    def test_atom_interning(self):
        table = SymbolTable()
        a = table.atom("foo")
        b = table.atom("foo")
        c = table.atom("bar")
        assert a == b != c
        assert table.atom_name(a) == "foo"
        assert table.atom_count == 2

    def test_functor_interning(self):
        table = SymbolTable()
        f1 = table.functor("f", 2)
        f2 = table.functor("f", 3)
        f3 = table.functor("f", 2)
        assert f1 == f3 != f2
        assert table.functor_name(f2) == ("f", 3)
        assert table.functor_count == 2

    def test_same_name_atom_and_functor_independent(self):
        table = SymbolTable()
        table.atom("f")
        table.functor("f", 1)
        assert table.atom_count == 1
        assert table.functor_count == 1
