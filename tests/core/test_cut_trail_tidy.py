"""Regression tests for cut's trail tidying.

The crash scenario: a cut discards choice points but not their trail
entries; a later backtrack past the cut then untrails addresses whose
stacks were already truncated.  These tests rebuild that situation in
miniature (it originally surfaced in the WINDOW workload) and check
both correctness and the survival of legitimately-trailed bindings.
"""

import pytest

from repro.core import PSIMachine
from repro.prolog import Atom


@pytest.fixture
def m():
    machine = PSIMachine()
    machine.consult("anchor.")
    return machine


class TestTidyOnCut:
    def test_backtrack_past_cut_with_discarded_bindings(self, m):
        # commit/2 binds its fresh argument and cuts; outer/1 then fails
        # and backtracks past the cut into pick/1, whose restart reclaims
        # stacks that held the committed binding's cell.
        m.consult("""
        pick(1). pick(2).
        commit(X, Y) :- mk(Y), Y = val(X), !.
        commit(_, none).
        mk(_).
        outer(X) :- pick(X), commit(X, Y), check(X, Y).
        check(2, val(2)).
        """)
        solution = m.run("outer(X)")
        assert solution is not None
        assert solution["X"] == 2

    def test_older_bindings_survive_the_cut(self, m):
        # A binding of a cell older than the surviving choice point must
        # still be undone when that choice point is resumed.
        m.consult("""
        alt(a). alt(b).
        inner(_) :- !.
        go(A, X) :- alt(A), inner(X), X = marked(A), verify(A, X).
        verify(b, marked(b)).
        """)
        solution = m.run("go(A, X)")
        assert solution["A"] == Atom("b")

    def test_repeated_cut_fail_cycles(self, m):
        # Stress: many cut/backtrack rounds with conditional bindings in
        # between, as the window system's slot-access cuts produced.
        m.consult("""
        slot(a, 1). slot(b, 2). slot(c, 3). slot(d, 4).
        access(Name, V) :- slot(Name, V), !.
        round(0) :- !.
        round(N) :-
            access(b, V1), access(d, V2),
            S is V1 + V2, S =:= 6,
            N1 is N - 1,
            round(N1).
        sweep :- pickn(N), round(N), counter_inc(done), fail.
        sweep.
        pickn(5). pickn(9). pickn(3).
        """)
        m.run("sweep")
        assert m.counters["done"] == 3

    def test_gcell_records_survive_cut(self, m):
        # Lazy global-cell allocation records are kept by tidying, so a
        # later backtrack still resets the frame's cell cache.
        m.consult("""
        choice(1). choice(2).
        keeper(X, f(X)) :- !.
        go(C, T, Y) :- choice(C), keeper(X, T), C > 1, Y is C * 3.
        """)
        solution = m.run("go(C, T, Y)")
        assert solution["Y"] == 6

    def test_trail_area_stays_consistent(self, m):
        from repro.core.memory import Area
        m.consult("""
        p(1). p(2).
        q(X) :- p(X), X = 2, !.
        """)
        assert m.run("q(X)")["X"] == 2
        assert m.mem.top(Area.TRAIL) == len(m.trail)
