"""Golden-digest guard for the microinstruction-stream equivalence contract.

The interpreter hot path is free to change *how* it accumulates
emissions (interned counters, fused memory fan-outs, batched emits) but
never *what* is emitted: every optimisation must produce a bit-for-bit
identical :class:`~repro.core.memory.TraceRecorder` byte stream and an
equal ``routine_counts``/``mem_counts`` accounting.  These tests pin
SHA-256 digests of both, captured from the reference implementation,
for three cheap workloads covering deterministic list code
(``nreverse``), cut-heavy partitioning (``qsort``) and backtracking
search (``queens-one``).

When a digest mismatches, the per-table aggregate comparison runs
first: it names the table-level statistic that moved (module steps —
Table 2, cache commands — Table 3, per-area traffic — Table 4, branch
operations — Table 7), which localises the offending emission site far
faster than a raw digest diff.
"""

from __future__ import annotations

import hashlib
import json

import pytest

from repro.core.machine import MachineConfig
from repro.tools.collect import collect
from repro.workloads import get, shared_workloads

#: Committed digests of the reference emission stream.  Regenerate only
#: for a *deliberate* modelling change (which also moves the fidelity
#: tables): run this file with ``--regenerate-goldens`` via
#: ``python -m tests.core.test_stream_equivalence`` and paste the output.
GOLDEN = {
    "nreverse": {
        "trace_sha256": "1826a43b16b7a5ede9328e814a1f8fc3e38457f6de9f91818841f1dd223e0974",
        "stats_sha256": "585aa52fac3e7dfd512ae0df1d0751da15752ffde105ef186176e4b75d6a57e5",
        "trace_entries": 25474,
        "aggregates": {
            "total_steps": 87569,
            "module_steps": {"built": 1450, "control": 41234, "cut": 28,
                             "get_arg": 580, "trail": 4535, "unify": 39742},
            "cache_cmds": {"read": 14430, "write": 1485, "write-stack": 9559},
            "areas": {"heap": 7937, "global": 8256, "local": 186,
                      "control": 7670, "trail": 1425},
            "inferences": 527,
            "builtin_calls": 58,
        },
    },
    "qsort": {
        "trace_sha256": "7b802d17d0224201f3a96046a6bdd286dcf3844ae474c0ee9924690917d181eb",
        "stats_sha256": "4dfbfab64df561b868c98af298baee4a46055f5eaf2cb249ff8a40821589d9db",
        "trace_entries": 23895,
        "aggregates": {
            "total_steps": 87248,
            "module_steps": {"built": 5850, "control": 34170, "cut": 3975,
                             "get_arg": 1800, "trail": 6984, "unify": 34469},
            "cache_cmds": {"read": 14195, "write": 1415, "write-stack": 8285},
            "areas": {"heap": 7622, "global": 7042, "local": 754,
                      "control": 6262, "trail": 2215},
            "inferences": 378,
            "builtin_calls": 225,
        },
    },
    "queens-one": {
        "trace_sha256": "d7504556f10755406fb2e3210a328815457e24edfd1e46de91404025066af9ee",
        "stats_sha256": "0dda7221b8d320f20ccaa748754a90439cf5a22e689ce2a6fa283c53f93a388b",
        "trace_entries": 128671,
        "aggregates": {
            "total_steps": 479686,
            "module_steps": {"built": 91310, "control": 137285, "cut": 28,
                             "get_arg": 28546, "trail": 41080, "unify": 181437},
            "cache_cmds": {"read": 84630, "write": 6235, "write-stack": 37806},
            "areas": {"heap": 42001, "global": 47991, "local": 1128,
                      "control": 26374, "trail": 11177},
            "inferences": 1680,
            "builtin_calls": 2654,
        },
    },
}


def canonical_stats(stats) -> dict:
    """Order-independent plain-data form of a collector's counters."""
    return {
        "routines": sorted([module.value, routine.name, n]
                           for (module, routine), n
                           in stats.routine_counts.items() if n),
        "mem": sorted([cmd.value, area.name, n]
                      for (cmd, area), n in stats.mem_counts.items() if n),
        "inferences": stats.inferences,
        "builtin_calls": stats.builtin_calls,
    }


def stats_digest(stats) -> str:
    payload = json.dumps(canonical_stats(stats), sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


def aggregates(stats) -> dict:
    """Table-level summaries used as the diff hint on digest mismatch."""
    return {
        "total_steps": stats.total_steps,
        "module_steps": {m.value: n for m, n in sorted(
            stats.module_steps().items(), key=lambda kv: kv[0].value)},
        "cache_cmds": {c.value: n
                       for c, n in stats.cache_command_counts().items()},
        "areas": {a.name.lower(): n for a, n in sorted(
            stats.area_access_counts().items())},
        "inferences": stats.inferences,
        "builtin_calls": stats.builtin_calls,
    }


def run_workload(name: str, machine_config: MachineConfig | None = None):
    workload = get(name)
    return collect(workload.source, workload.goal,
                   all_solutions=workload.all_solutions,
                   record_trace=True, with_cache=False,
                   machine_config=machine_config,
                   setup_goals=workload.setup_goals)


@pytest.mark.parametrize("name", sorted(GOLDEN))
class TestStreamEquivalence:
    def test_stream_matches_golden(self, name):
        golden = GOLDEN[name]
        run = run_workload(name)

        # Table-level aggregates first: when the digest would mismatch,
        # this assertion names the table that moved (module steps =
        # Table 2, cache commands = Table 3, areas = Table 4).
        assert aggregates(run.stats) == golden["aggregates"], (
            f"{name}: a table-level statistic moved — the hot path no "
            f"longer emits the reference stream (see dict diff above "
            f"for which table)")

        assert len(run.trace) == golden["trace_entries"], (
            f"{name}: memory-trace length changed — an accounted access "
            f"was added or removed on the hot path")
        trace_sha = hashlib.sha256(run.trace.tobytes()).hexdigest()
        assert trace_sha == golden["trace_sha256"], (
            f"{name}: trace bytes differ but per-table aggregates agree: "
            f"the *order* of memory accesses changed (cache-visible even "
            f"though the tables are not)")
        assert stats_digest(run.stats) == golden["stats_sha256"], (
            f"{name}: per-routine counters differ but aggregates agree: "
            f"emissions moved between (module, routine) buckets")


@pytest.mark.slow
@pytest.mark.parametrize(
    "name", sorted(w.name for w in shared_workloads()))
class TestFusedRegistryEquivalence:
    """Fused dispatch must reproduce the unfused stream on *every*
    shared workload, not just the three golden-digest ones.

    The unfused run (``MachineConfig(fused=False)``) is the reference:
    identical trace bytes (memory-access order is cache-visible) and
    identical canonical counters (every (module, routine) and
    (command, area) bucket).  Catches a fusion regression on any
    registry workload the cheap goldens above would miss.
    """

    def test_fused_matches_unfused(self, name):
        fused = run_workload(name)
        unfused = run_workload(name, MachineConfig(fused=False))
        assert len(fused.trace) == len(unfused.trace), (
            f"{name}: fused run changed the memory-trace length")
        assert hashlib.sha256(fused.trace.tobytes()).hexdigest() == \
            hashlib.sha256(unfused.trace.tobytes()).hexdigest(), (
            f"{name}: fused run reordered or altered the access stream")
        assert canonical_stats(fused.stats) == \
            canonical_stats(unfused.stats), (
            f"{name}: fused billing diverged from the per-op reference")


class TestObservedStreamEquivalence:
    """The observed collector must bill exactly like the plain one."""

    def test_observed_matches_golden(self):
        from repro import obs

        name = "qsort"
        with obs.observed():
            run = run_workload(name)
        obs.reset()
        golden = GOLDEN[name]
        assert hashlib.sha256(run.trace.tobytes()).hexdigest() == \
            golden["trace_sha256"]
        assert stats_digest(run.stats) == golden["stats_sha256"]


def test_interning_invariants():
    """The flat-counter index spaces must stay mutually consistent."""
    from repro.core import micro
    from repro.core.memory import AREAS, CMD_CODE, Area
    from repro.core.stats import N_AREAS

    assert N_AREAS == len(Area) == len(AREAS)
    assert [int(a) for a in AREAS] == list(range(len(AREAS)))
    for cmd, code in CMD_CODE.items():
        assert cmd.code == code
    assert [m.idx for m in micro.MODULE_BY_INDEX] == \
        list(range(micro.N_MODULES))
    routines = micro.routines_by_rid()
    assert len(routines) == len(set(routines))
    for rid, routine in enumerate(routines):
        assert routine.rid == rid
        assert routine.pair_base == rid * micro.N_MODULES
    for cmd in micro.CMD_BY_CODE:
        assert micro.MEM_ROUTINE_BY_CODE[cmd.code] is micro.MEM_ROUTINES[cmd]
        assert micro.MEM_PAIR_BASE[cmd.code] == \
            micro.MEM_ROUTINES[cmd].pair_base
        assert micro.MEM_STEPS[cmd.code] == micro.MEM_ROUTINES[cmd].n_steps


def _regenerate() -> None:  # pragma: no cover - maintenance helper
    out = {}
    for name in sorted(GOLDEN):
        run = run_workload(name)
        out[name] = {
            "trace_sha256": hashlib.sha256(run.trace.tobytes()).hexdigest(),
            "stats_sha256": stats_digest(run.stats),
            "trace_entries": len(run.trace),
            "aggregates": aggregates(run.stats),
        }
    print(json.dumps(out, indent=2))


if __name__ == "__main__":  # pragma: no cover
    _regenerate()
