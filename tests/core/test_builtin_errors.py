"""Error behaviour of builtins and machine limits."""

import pytest

from repro.core import MachineConfig, PSIMachine
from repro.errors import (
    EvaluationError,
    ExistenceError,
    InstantiationError,
    ResourceLimitExceeded,
    TypeError_,
)


@pytest.fixture
def m():
    machine = PSIMachine()
    machine.consult("anchor.")
    return machine


class TestArithmeticErrors:
    def test_unbound(self, m):
        with pytest.raises(InstantiationError):
            m.run("X is Y + 1")

    def test_division_by_zero(self, m):
        with pytest.raises(EvaluationError):
            m.run("X is 5 // 0")
        with pytest.raises(EvaluationError):
            m.run("X is 5 mod 0")

    def test_non_evaluable_functor(self, m):
        with pytest.raises(TypeError_):
            m.run("X is foo(1)")

    def test_atom_in_expression(self, m):
        with pytest.raises(TypeError_):
            m.run("X is foo")

    def test_list_in_expression(self, m):
        with pytest.raises(TypeError_):
            m.run("X is [1]")


class TestCallErrors:
    def test_unbound_meta_call(self, m):
        with pytest.raises(InstantiationError):
            m.run("call(G)")

    def test_integer_meta_call(self, m):
        with pytest.raises(TypeError_):
            m.run("call(42)")

    def test_undefined_predicate(self, m):
        with pytest.raises(ExistenceError) as info:
            m.run("missing(1, 2)")
        assert info.value.functor == "missing"
        assert info.value.arity == 2


class TestTermErrors:
    def test_functor_unbound_both_ways(self, m):
        with pytest.raises(InstantiationError):
            m.run("functor(T, N, A)")

    def test_univ_unbound(self, m):
        with pytest.raises(InstantiationError):
            m.run("T =.. L")

    def test_univ_non_atom_head(self, m):
        with pytest.raises(TypeError_):
            m.run("T =.. [1, 2]")

    def test_counter_requires_atom(self, m):
        with pytest.raises(TypeError_):
            m.run("counter_inc(42)")

    def test_vector_bad_size(self, m):
        with pytest.raises(TypeError_):
            m.run("new_vector(V, foo)")

    def test_vector_ref_non_vector(self, m):
        with pytest.raises(TypeError_):
            m.run("vector_ref(notvec, 0, X)")


class TestLimits:
    def test_activation_limit(self):
        machine = PSIMachine(MachineConfig(max_calls=100))
        machine.consult("loop :- loop.")
        with pytest.raises(ResourceLimitExceeded):
            machine.run("loop")

    def test_word_limit(self):
        machine = PSIMachine(MachineConfig(word_limit=2000))
        machine.consult("""
        grow(N, [N|T]) :- N1 is N + 1, grow(N1, T).
        """)
        from repro.errors import MachineError
        with pytest.raises(MachineError):
            machine.run("grow(0, L)")

    def test_errors_are_repro_errors(self):
        from repro.errors import ReproError
        for cls in (EvaluationError, InstantiationError, TypeError_,
                    ExistenceError, ResourceLimitExceeded):
            assert issubclass(cls, ReproError)
