"""Tests of the PSI machine's hardware accounting behaviour.

These verify the *mechanisms* behind the paper's measurements: frame
buffering keeps deterministic tail-recursive loops off the local stack,
choice points cost 10-word control frames, the trail records
conditional bindings, instruction fetch hits the heap, and the
process-switch builtin invalidates the frame buffers.
"""

import pytest

from repro.core import PSIMachine
from repro.core.machine import CONTROL_FRAME_WORDS
from repro.core.memory import Area
from repro.core.micro import CacheCmd, Module


def machine(source: str) -> PSIMachine:
    m = PSIMachine()
    m.consult(source)
    return m


def area_count(m, cmd, area):
    return m.stats.mem_counts.get((cmd, area), 0)


class TestFrameBuffering:
    def test_tail_recursive_loop_avoids_local_stack(self):
        # Deterministic count-down: locals stay in the WF frame buffers.
        m = machine("""
        loop(0).
        loop(N) :- N > 0, N1 is N - 1, loop(N1).
        """)
        assert m.run("loop(200)") is not None
        local_traffic = (area_count(m, CacheCmd.READ, Area.LOCAL)
                         + area_count(m, CacheCmd.WRITE, Area.LOCAL)
                         + area_count(m, CacheCmd.WRITE_STACK, Area.LOCAL))
        # A memory-resident frame would cost hundreds of accesses here.
        assert local_traffic < 50

    def test_non_last_call_flushes_frame(self):
        # X stays local (the final goal is a builtin, so no TRO
        # globalisation); the call to one/1 forces the frame out of the
        # work-file buffer into the local stack.
        m = machine("""
        chain(X) :- one(X), two(X), 1 < 2.
        one(_). two(_).
        """)
        m.run("chain(5)")
        flushed = area_count(m, CacheCmd.WRITE_STACK, Area.LOCAL)
        assert flushed >= 1

    def test_instruction_fetch_hits_heap(self):
        m = machine("f(1).")
        m.run("f(X)")
        assert area_count(m, CacheCmd.READ, Area.HEAP) > 3


class TestControlStack:
    def test_choice_point_is_ten_words(self):
        m = machine("c(1). c(2).")
        before = m.mem.top(Area.CONTROL)
        m.run("c(X)")
        writes = area_count(m, CacheCmd.WRITE_STACK, Area.CONTROL)
        assert writes >= CONTROL_FRAME_WORDS
        assert writes % CONTROL_FRAME_WORDS == 0

    def test_deterministic_call_pushes_no_choice_point(self):
        m = machine("only. top :- only.")
        m.run("top")
        assert area_count(m, CacheCmd.WRITE_STACK, Area.CONTROL) == 0

    def test_control_stack_reclaimed_after_run(self):
        m = machine("""
        go :- level1, level1.
        level1 :- level2, level2.
        level2.
        """)
        m.run("go")
        # All environments popped: control stack back to (near) empty.
        assert m.mem.top(Area.CONTROL) == 0


class TestTrail:
    def test_unconditional_bindings_not_trailed(self):
        m = machine("bindme(X) :- X = 1.")
        m.run("bindme(V)")
        assert area_count(m, CacheCmd.WRITE_STACK, Area.TRAIL) == 0

    def test_conditional_bindings_trailed_and_undone(self):
        m = machine("""
        pick(a). pick(b).
        go(X) :- pick(X), X = b.
        """)
        solution = m.run("go(X)")
        assert solution is not None
        assert area_count(m, CacheCmd.WRITE_STACK, Area.TRAIL) >= 1
        assert m.stats.module_steps().get(Module.TRAIL, 0) > 0

    def test_backtracking_restores_global_stack(self):
        m = machine("""
        build(f(1, 2, 3)). build(g(7)).
        want(g(X)) .
        go(X) :- build(T), want(T), T = g(X).
        """)
        assert m.run("go(X)")["X"] == 7


class TestTRO:
    def test_local_stack_bounded_in_deep_recursion(self):
        m = machine("""
        down(0).
        down(N) :- N > 0, N1 is N - 1, down(N1).
        """)
        m.run("down(3000)")
        # Without last-call optimisation the local stack would hold
        # thousands of frames at peak; TRO keeps it flat.
        assert m.mem.top(Area.LOCAL) < 64

    def test_global_stack_grows_without_backtracking(self):
        m = machine("""
        build(0, []).
        build(N, [N|T]) :- N1 is N - 1, build(N1, T).
        """)
        m.run("build(100, L)")
        assert m.mem.top(Area.GLOBAL) >= 200   # 100 list cells


class TestProcessSwitch:
    def test_switch_adds_heap_traffic(self):
        base = machine("go :- true.")
        base.run("go")
        switched = machine("go :- process_switch.")
        switched.run("go")
        extra = (area_count(switched, CacheCmd.WRITE, Area.HEAP)
                 - area_count(base, CacheCmd.WRITE, Area.HEAP))
        assert extra >= 64   # the WF save area

    def test_switch_flushes_buffered_frame(self):
        m = machine("""
        go(X) :- Y is X + 1, process_switch, Z is Y + 1, Z > 0.
        """)
        assert m.run("go(1)") is not None
        assert area_count(m, CacheCmd.WRITE_STACK, Area.LOCAL) >= 1


class TestBuiltinCounting:
    def test_builtin_calls_counted_separately(self):
        m = machine("go :- 1 < 2, 2 < 3, sub. sub.")
        m.run("go")
        assert m.stats.builtin_calls == 2
        # inferences: the calls to go/0 and sub/0
        assert m.stats.inferences == 2


class TestRegression:
    def test_lazy_global_cells_survive_backtracking(self):
        """Regression for the stale gcell-cache bug: a frame's lazily
        allocated global cell must be re-allocated after backtracking
        truncates the global stack (previously this aliased a fresh
        cell and created a self-referential REF loop)."""
        m = machine("""
        alt(1). alt(2).
        hold(X, f(X)).
        go(X, T, Y) :- alt(A), hold(X, T), A > 1, Y is A * 10.
        """)
        solution = m.run("go(X, T, Y)")
        assert solution is not None
        assert solution["Y"] == 20
