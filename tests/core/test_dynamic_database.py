"""Tests for assert/retract on both engines."""

import pytest

from repro.baseline import WAMMachine
from repro.core import PSIMachine
from repro.core.memory import Area
from repro.core.micro import CacheCmd
from repro.errors import TypeError_

ENGINES = [PSIMachine, WAMMachine]


@pytest.fixture(params=ENGINES, ids=["psi", "wam"])
def m(request):
    machine = request.param()
    machine.consult("anchor.")
    return machine


class TestAssert:
    def test_assert_fact(self, m):
        m.run("assertz(city(tokyo))")
        assert m.run("city(tokyo)") is not None
        assert m.run("city(kyoto)") is None

    def test_assert_multiple_clause_order(self, m):
        m.run("assertz(n(1)), assertz(n(2)), assertz(n(3))")
        values = [s["X"] for s in m.solve("n(X)").all()]
        assert values == [1, 2, 3]

    def test_assert_rule(self, m):
        m.run("assertz(base(4))")
        m.run("assertz((double(X, Y) :- base(X), Y is X * 2))")
        assert m.run("double(X, Y)")["Y"] == 8

    def test_assert_alias(self, m):
        m.run("assert(thing(a))")
        assert m.run("thing(a)") is not None

    def test_asserted_structures(self, m):
        m.run("assertz(shape(circle(3)))")
        s = m.run("shape(circle(R))")
        assert s["R"] == 3

    def test_assert_then_backtrack_through(self, m):
        m.run("assertz(opt(a)), assertz(opt(b))")
        m.run("(opt(X), counter_inc(seen), fail ; true)")
        assert m.counters["seen"] == 2


class TestRetract:
    def test_retract_first_matching(self, m):
        m.run("assertz(k(1)), assertz(k(2)), assertz(k(1))")
        assert m.run("retract(k(1))") is not None
        assert [s["X"] for s in m.solve("k(X)").all()] == [2, 1]

    def test_retract_with_unification(self, m):
        m.run("assertz(pair(a, 1)), assertz(pair(b, 2))")
        s = m.run("retract(pair(b, V))")
        assert s["V"] == 2
        assert m.run("pair(b, _)") is None

    def test_retract_no_match_fails(self, m):
        m.run("assertz(q(1))")
        assert m.run("retract(q(2))") is None
        assert m.run("q(1)") is not None

    def test_retract_unknown_predicate_fails(self, m):
        assert m.run("retract(never_defined(1))") is None

    def test_retract_requires_callable(self, m):
        with pytest.raises(TypeError_):
            m.run("retract(42)")

    def test_retract_does_not_disturb_outer_choice_points(self, m):
        m.run("assertz(r(1)), assertz(r(2)), assertz(del(x))")
        m.consult("""
        sweep :- r(_), retract(del(nomatch)), counter_inc(c), fail.
        sweep.
        """)
        m.counters.clear()
        m.run("sweep")
        # retract fails twice but both r/1 alternatives must still fire...
        assert m.counters == {}
        m.consult("""
        sweep2 :- r(_), counter_inc(c2), fail.
        sweep2.
        """)
        m.run("sweep2")
        assert m.counters["c2"] == 2


class TestDatabaseLifecycle:
    def test_memo_pattern(self, m):
        m.consult("""
        memo(-1, 0).
        fib(N, F) :- memo(N, F), !.
        fib(0, 1). fib(1, 1).
        fib(N, F) :-
            N > 1,
            N1 is N - 1, N2 is N - 2,
            fib(N1, F1), fib(N2, F2),
            F is F1 + F2,
            assertz(memo(N, F)).
        """)
        assert m.run("fib(12, F)")["F"] == 233
        # memoised: the second query is a direct table lookup
        assert m.run("memo(12, F)")["F"] == 233
        assert m.run("fib(12, F)")["F"] == 233

    def test_assert_billed_as_heap_traffic_on_psi(self):
        machine = PSIMachine()
        machine.consult("anchor.")
        before = machine.stats.mem_counts.get(
            (CacheCmd.WRITE_STACK, Area.HEAP), 0)
        machine.run("assertz(big(f(1, 2, 3, 4, 5)))")
        after = machine.stats.mem_counts.get(
            (CacheCmd.WRITE_STACK, Area.HEAP), 0)
        assert after > before
