"""Packed 8-bit operands: serialisation and runtime decode accounting."""

import pytest

from repro.core import PSIMachine, micro
from repro.core.micro import BranchOp


def packed_decodes(machine):
    return sum(n for (_, routine), n in machine.stats.routine_counts.items()
               if routine in (micro.R_DECODE_PACKED, micro.R_GET_ARG_PACKED))


class TestRuntimeDecodes:
    def test_matching_packed_constants_uses_case_irn(self):
        m = PSIMachine()
        m.consult("board(b(1, 2, 3, 4)).")
        m.run("board(B)")
        assert packed_decodes(m) > 0
        assert m.stats.branch_counts()[BranchOp.CASE_IRN] > 0

    def test_variable_slots_are_packed_operands(self):
        m = PSIMachine()
        m.consult("""
        swap(A, B, C, D, r(B, A, D, C)).
        go(R) :- swap(1, 2, 3, 4, R).
        """)
        m.run("go(R)")
        assert packed_decodes(m) > 0

    def test_atoms_break_packing_runs(self):
        m = PSIMachine()
        m.consult("p(1, foo, 2).")
        proc = m.program.procedure("p", 3)
        args = proc.clauses[0].head_args
        # 1 starts a run; foo (atom) breaks it; 2 starts fresh: nothing
        # shares a word, so nothing is marked packed.
        assert not args[0].packed and not args[2].packed
        assert args[0].addr != args[2].addr

    def test_pack_limit_four_per_word(self):
        m = PSIMachine()
        m.consult("p(1, 2, 3, 4, 5, 6, 7, 8, 9).")
        args = m.program.procedure("p", 9).clauses[0].head_args
        addresses = sorted({a.addr for a in args})
        # Nine packable ints need ceil(9/4) = 3 words.
        assert len(addresses) == 3

    def test_packed_and_plain_agree_semantically(self):
        packed = PSIMachine()
        packed.consult("v(1, 2, 3).")
        plain = PSIMachine()
        plain.consult("v(1000, 2000, 3000).")
        assert packed.run("v(1, 2, 3)") is not None
        assert packed.run("v(1, 2, 9)") is None
        assert plain.run("v(1000, 2000, 3000)") is not None
        assert plain.run("v(1000, 2000, 9)") is None

    def test_code_density_improves_with_packing(self):
        m = PSIMachine()
        m.consult("""
        dense(1, 2, 3, 4).
        sparse(1000, 2000, 3000, 4000).
        """)
        dense = m.program.procedure("dense", 4).clauses[0].heap_size
        sparse = m.program.procedure("sparse", 4).clauses[0].heap_size
        assert dense < sparse
