"""TraceRecorder serialisation and random-access: lossless, equivalent.

The packed trace crosses process boundaries (worker hand-off) and
sessions (persistent run cache) as ``tobytes()`` output, and the
time-travel explorer seeks through it via ``entry``/``segment`` —
all of which must agree exactly with the canonical ``decoded()`` view.
"""

import pytest

from repro.core.memory import AREA_SHIFT, Area, TraceRecorder
from repro.core.micro import CMD_BY_CODE, CacheCmd


def _recorded() -> TraceRecorder:
    trace = TraceRecorder()
    for offset in range(50):
        trace.access(CacheCmd.READ, (Area.HEAP << AREA_SHIFT) | offset)
        trace.access(CacheCmd.WRITE_STACK,
                     (Area.CONTROL << AREA_SHIFT) | offset)
        trace.access(CacheCmd.WRITE, (Area.GLOBAL << AREA_SHIFT) | (offset * 3))
    return trace


class TestBytesRoundtrip:
    def test_tobytes_frombytes_is_lossless(self):
        trace = _recorded()
        rebuilt = TraceRecorder.frombytes(trace.tobytes())
        assert rebuilt.data == trace.data
        assert rebuilt.decoded() == trace.decoded()

    def test_empty_trace_roundtrips(self):
        rebuilt = TraceRecorder.frombytes(TraceRecorder().tobytes())
        assert len(rebuilt) == 0

    def test_workload_trace_roundtrips(self):
        from repro.eval.runner import run_psi

        trace = run_psi("nreverse", record_trace=True).trace
        rebuilt = TraceRecorder.frombytes(trace.tobytes())
        assert rebuilt.data == trace.data
        assert list(rebuilt.entries()) == rebuilt.decoded() == trace.decoded()


class TestRandomAccess:
    def test_entry_matches_decoded(self):
        trace = _recorded()
        decoded = trace.decoded()
        for index in (0, 1, 75, len(trace) - 1):
            cmd, address = trace.entry(index)
            assert (cmd, address) == decoded[index]
            assert cmd is CMD_BY_CODE[trace.data[index] & 3]

    def test_segment_is_the_packed_slice(self):
        trace = _recorded()
        segment = trace.segment(10, 40)
        assert list(segment) == list(trace.data[10:40])
        segment[0] = 0                          # a copy, not a view
        assert trace.data[10] != 0

    def test_segments_tile_the_trace(self):
        trace = _recorded()
        stitched = []
        for start in range(0, len(trace), 17):
            stitched.extend(trace.segment(start, start + 17))
        assert stitched == list(trace.data)
