"""PSI clause-indexed configuration: counters, incremental dynamic-DB
maintenance, and answer equivalence with the faithful configuration.

The faithful emission stream is pinned bit-for-bit by the golden
digests in ``tests/core/test_stream_equivalence.py``; these tests cover
the *other* half of the bargain — that ``MachineConfig(indexed=True)``
actually narrows the scan (counters move, choicepoints disappear) while
answers stay identical, and that assert/retract patch the live
:class:`~repro.engine.index.ClauseIndex` in place instead of rebuilding
it.
"""

from repro.core import PSIMachine
from repro.core.machine import MachineConfig
from repro.engine.index import ClauseIndex

BACKTRACKY = """
color(red). color(green). color(blue).
pick(red, warm).
pick(green, cool).
pick(blue, cool).
pair(C, T) :- color(C), pick(C, T).
"""


def indexed_machine(source: str) -> PSIMachine:
    machine = PSIMachine(config=MachineConfig(indexed=True))
    machine.consult(source)
    return machine


def all_bindings(machine, goal):
    return [s.bindings for s in machine.solve(goal).all()]


class TestCounters:
    def test_faithful_run_never_moves_the_counters(self):
        machine = PSIMachine()
        machine.consult(BACKTRACKY)
        assert all_bindings(machine, "pair(C, T)")
        assert machine.index_stats == {"index_hits": 0, "index_misses": 0,
                                       "choicepoints_avoided": 0}

    def test_indexed_run_hits_and_avoids_choicepoints(self):
        machine = indexed_machine(BACKTRACKY)
        # pick(green, T): the "green" bucket holds exactly one clause,
        # so dispatch is an index hit AND an avoided choicepoint.
        assert all_bindings(machine, "pick(green, T)")
        stats = machine.index_stats
        assert stats["index_hits"] >= 1
        assert stats["choicepoints_avoided"] >= 1

    def test_unbound_first_argument_counts_a_miss(self):
        machine = indexed_machine(BACKTRACKY)
        assert all_bindings(machine, "pick(C, cool)")
        assert machine.index_stats["index_misses"] >= 1

    def test_empty_selection_fails_without_choicepoint(self):
        machine = indexed_machine(BACKTRACKY)
        assert all_bindings(machine, "pick(magenta, T)") == []
        # No clause has a "magenta" bucket and none is var-headed: the
        # call fails straight from the index, no choicepoint, no trial.
        assert machine.index_stats["choicepoints_avoided"] >= 1

    def test_indexed_answers_match_faithful(self):
        faithful = PSIMachine()
        faithful.consult(BACKTRACKY)
        indexed = indexed_machine(BACKTRACKY)
        for goal in ("pair(C, T)", "pick(C, cool)", "pick(red, T)"):
            assert all_bindings(faithful, goal) == \
                all_bindings(indexed, goal)


class TestIncrementalMaintenance:
    def test_first_indexed_call_builds_the_index(self):
        machine = indexed_machine("p(a, 1). p(b, 2). p(c, 3).")
        proc = machine.program.procedure("p", 2)
        assert proc.clause_index is None
        assert all_bindings(machine, "p(b, R)")
        assert isinstance(proc.clause_index, ClauseIndex)
        assert len(proc.clause_index) == len(proc.clauses) == 3

    def test_assert_extends_the_live_index_in_place(self):
        machine = indexed_machine("p(a, 1). p(b, 2). p(c, 3).")
        assert all_bindings(machine, "p(b, R)")
        proc = machine.program.procedure("p", 2)
        index = proc.clause_index
        machine.run("assertz(p(d, 4))")
        # Same object — extended, not rebuilt — and position-aligned.
        assert proc.clause_index is index
        assert len(index) == len(proc.clauses) == 4
        assert [b["R"] for b in all_bindings(machine, "p(d, R)")] == [4]

    def test_retract_patches_the_live_index_in_place(self):
        machine = indexed_machine("p(a, 1). p(b, 2). p(b, 3). p(c, 4).")
        assert all_bindings(machine, "p(b, R)")
        proc = machine.program.procedure("p", 2)
        index = proc.clause_index
        assert machine.run("retract(p(b, 2))") is not None
        assert proc.clause_index is index
        assert len(index) == len(proc.clauses) == 3
        assert [b["R"] for b in all_bindings(machine, "p(b, R)")] == [3]
        assert [b["R"] for b in all_bindings(machine, "p(a, R)")] == [1]

    def test_backtracking_survives_renumbering_retract(self):
        # A choicepoint snapshots its candidate *clause objects*; a
        # retract between solutions renumbers ids but must not derail
        # the already-open enumeration (logical-update view).
        machine = indexed_machine(
            "q(k, 1). q(k, 2). q(k, 3).\n"
            "probe(R) :- q(k, R), maybe_cut(R).\n"
            "maybe_cut(2) :- retract(q(k, 1)), !.\n"
            "maybe_cut(R) :- R \\== 2.")
        values = [b["R"] for b in all_bindings(machine, "probe(R)")]
        assert values == [1, 2, 3]
