"""Unit tests for memory areas, addressing and trace recording."""

import pytest

from repro.core.memory import (
    Area,
    MemorySystem,
    TraceRecorder,
    decode_address,
    encode_address,
)
from repro.core.micro import CacheCmd
from repro.core.stats import NullStats, StatsCollector
from repro.core.words import Tag
from repro.errors import MachineError


@pytest.fixture
def mem():
    return MemorySystem(StatsCollector())


class TestAddressing:
    def test_roundtrip(self):
        for area in Area:
            for offset in (0, 1, 12345, (1 << 24) - 1):
                assert decode_address(encode_address(area, offset)) == (area, offset)

    def test_areas_disjoint(self):
        a = encode_address(Area.HEAP, 100)
        b = encode_address(Area.GLOBAL, 100)
        assert a != b

    def test_area_labels(self):
        assert Area.HEAP.label == "heap"
        assert Area.TRAIL.label == "trail stack"


class TestMemorySystem:
    def test_write_stack_appends_and_bills(self, mem):
        offset = mem.write_stack(Area.LOCAL, (Tag.INT, 1))
        assert offset == 0
        assert mem.read(Area.LOCAL, 0) == (Tag.INT, 1)
        counts = mem.stats.mem_counts
        assert counts[(CacheCmd.WRITE_STACK, Area.LOCAL)] == 1
        assert counts[(CacheCmd.READ, Area.LOCAL)] == 1

    def test_write_in_place(self, mem):
        mem.write_stack(Area.GLOBAL, (Tag.INT, 1))
        mem.write(Area.GLOBAL, 0, (Tag.INT, 2))
        assert mem.peek(Area.GLOBAL, 0) == (Tag.INT, 2)

    def test_settop_truncates(self, mem):
        for i in range(5):
            mem.write_stack(Area.TRAIL, (Tag.INT, i))
        mem.settop(Area.TRAIL, 2)
        assert mem.top(Area.TRAIL) == 2

    def test_settop_beyond_top_raises(self, mem):
        with pytest.raises(MachineError):
            mem.settop(Area.TRAIL, 5)

    def test_grow_is_unbilled(self, mem):
        base = mem.grow(Area.HEAP, 10)
        assert base == 0
        assert mem.top(Area.HEAP) == 10
        assert not mem.stats.mem_counts

    def test_word_limit_enforced(self):
        small = MemorySystem(NullStats(), word_limit=4)
        for _ in range(4):
            small.write_stack(Area.LOCAL, (Tag.INT, 0))
        with pytest.raises(MachineError):
            small.write_stack(Area.LOCAL, (Tag.INT, 0))

    def test_addressed_access(self, mem):
        mem.write_stack(Area.GLOBAL, (Tag.INT, 7))
        address = encode_address(Area.GLOBAL, 0)
        assert mem.read_addr(address) == (Tag.INT, 7)
        mem.write_addr(address, (Tag.INT, 8))
        assert mem.peek(Area.GLOBAL, 0) == (Tag.INT, 8)


class TestListeners:
    def test_trace_recorder_roundtrip(self, mem):
        trace = TraceRecorder()
        mem.attach(trace)
        mem.write_stack(Area.LOCAL, (Tag.INT, 0))
        mem.read(Area.LOCAL, 0)
        mem.write(Area.LOCAL, 0, (Tag.INT, 1))
        entries = list(trace.entries())
        assert entries == [
            (CacheCmd.WRITE_STACK, encode_address(Area.LOCAL, 0)),
            (CacheCmd.READ, encode_address(Area.LOCAL, 0)),
            (CacheCmd.WRITE, encode_address(Area.LOCAL, 0)),
        ]

    def test_detach_stops_recording(self, mem):
        trace = TraceRecorder()
        mem.attach(trace)
        mem.write_stack(Area.LOCAL, (Tag.INT, 0))
        mem.detach(trace)
        mem.read(Area.LOCAL, 0)
        assert len(trace) == 1

    def test_clear(self):
        trace = TraceRecorder()
        trace.access(CacheCmd.READ, 42)
        trace.clear()
        assert len(trace) == 0
