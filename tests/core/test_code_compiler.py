"""Unit tests for the KL0 code compiler and heap serialisation."""

import pytest

from repro.core.builtins import BUILTIN_TABLE
from repro.core.code import (
    BuiltinGoal,
    CallGoal,
    CConst,
    CList,
    CStruct,
    CutGoal,
    CVar,
    CVoid,
    CodeSerializer,
    Program,
)
from repro.core.memory import Area, MemorySystem
from repro.core.stats import NullStats
from repro.core.words import SymbolTable, Tag
from repro.prolog import parse_term


@pytest.fixture
def program():
    return Program(SymbolTable(), BUILTIN_TABLE)


def compile_one(program, text):
    return program.add_clause(parse_term(text))


class TestGoalClassification:
    def test_builtin_goal(self, program):
        clause = compile_one(program, "p(X) :- X is 1 + 2")
        assert isinstance(clause.body[0], BuiltinGoal)
        assert clause.body[0].name == "is"

    def test_user_call(self, program):
        clause = compile_one(program, "p :- q")
        goal = clause.body[0]
        assert isinstance(goal, CallGoal)
        assert goal.indicator == ("q", 0)

    def test_cut_goal(self, program):
        clause = compile_one(program, "p :- !, q")
        assert isinstance(clause.body[0], CutGoal)

    def test_last_goal_marked(self, program):
        clause = compile_one(program, "p :- q, r")
        assert not clause.body[0].is_last
        assert clause.body[1].is_last


class TestVariableClassification:
    def test_nested_vars_are_global(self, program):
        clause = compile_one(program, "p(f(X)) :- q(g(X))")
        head_arg = clause.head_args[0]
        assert isinstance(head_arg, CStruct)
        var = head_arg.args[0]
        assert isinstance(var, CVar) and var.is_global

    def test_top_level_only_var_is_local(self, program):
        clause = compile_one(program, "p(X) :- q(X), r(X), s")
        var = clause.head_args[0]
        assert isinstance(var, CVar) and not var.is_global
        assert clause.nlocals == 1

    def test_single_occurrence_is_void(self, program):
        clause = compile_one(program, "p(X, Y) :- q(Y), r")
        assert isinstance(clause.head_args[0], CVoid)

    def test_last_call_args_stay_local_at_compile_time(self, program):
        # Unsafe variables are globalised at *runtime* by the machine's
        # TRO (the DEC-10 method), not by the compiler: X stays a local
        # slot here.  tests/core/test_machine_hardware.py checks the
        # runtime side.
        clause = compile_one(program, "p(X) :- q(X)")
        var = clause.head_args[0]
        assert isinstance(var, CVar) and not var.is_global
        assert clause.nlocals == 1
        assert clause.nglobals == 0

    def test_non_final_user_call_keeps_locals(self, program):
        # q is followed by a builtin, so its frame is not TRO-reclaimed
        # at the call: X and Y can safely stay local.
        clause = compile_one(program, "p(X, Y) :- q(X, Y), X < Y")
        assert clause.nglobals == 0
        assert clause.nlocals == 2

    def test_first_occurrence_flags(self, program):
        clause = compile_one(program, "p(X, X) :- q")
        first, second = clause.head_args
        assert first.is_first and not second.is_first


class TestControlExpansionIntegration:
    def test_disjunction_becomes_aux_procedure(self, program):
        compile_one(program, "p(X) :- (X = 1 ; X = 2)")
        aux = [proc for proc in program.procedures.values() if proc.is_auxiliary]
        assert len(aux) == 1
        assert len(aux[0].clauses) == 2

    def test_negation_two_clauses(self, program):
        compile_one(program, "p :- \\+ q")
        aux = [proc for proc in program.procedures.values() if proc.is_auxiliary]
        assert len(aux[0].clauses) == 2


class TestSerialisation:
    def load(self, program, mem):
        serializer = CodeSerializer(mem)
        for proc in program.procedures.values():
            serializer.load_procedure(proc)

    def test_every_node_gets_an_address(self, program):
        clause = compile_one(program, "p([H|T], f(H)) :- q(T)")
        mem = MemorySystem(NullStats())
        self.load(program, mem)
        def walk(node):
            assert node.addr >= 0
            if isinstance(node, CList):
                walk(node.head)
                walk(node.tail)
            elif isinstance(node, CStruct):
                for arg in node.args:
                    walk(arg)
        for arg in clause.head_args:
            walk(arg)
        for goal in clause.body:
            assert goal.addr >= 0

    def test_preorder_addresses_increase(self, program):
        clause = compile_one(program, "p(f(a, g(b)), c) :- q")
        mem = MemorySystem(NullStats())
        self.load(program, mem)
        struct = clause.head_args[0]
        assert struct.addr < struct.args[0].addr < struct.args[1].addr

    def test_small_int_packing(self, program):
        clause = compile_one(program, "p :- q(1, 2, 3, 4, 5)")
        mem = MemorySystem(NullStats())
        self.load(program, mem)
        goal = clause.body[0]
        consts = [a for a in goal.args if isinstance(a, CConst)]
        # First int starts a packed word; the next three share it.
        assert not consts[0].packed
        assert consts[1].packed and consts[2].packed and consts[3].packed
        assert consts[0].addr == consts[1].addr == consts[3].addr
        # The fifth starts a new word.
        assert not consts[4].packed
        assert consts[4].addr != consts[0].addr

    def test_large_ints_not_packed(self, program):
        clause = compile_one(program, "p :- q(1000, 2000)")
        mem = MemorySystem(NullStats())
        self.load(program, mem)
        a, b = clause.body[0].args
        assert not a.packed and not b.packed
        assert a.addr != b.addr

    def test_descriptor_table(self, program):
        compile_one(program, "p(1). ")
        compile_one(program, "p(2). ")
        mem = MemorySystem(NullStats())
        self.load(program, mem)
        proc = program.procedure("p", 1)
        assert proc.descriptor_base >= 0
        header = mem.peek(Area.HEAP, proc.descriptor_base)
        assert header == (Tag.INT, 2)

    def test_incremental_load_preserves_loaded_clauses(self, program):
        mem = MemorySystem(NullStats())
        clause1 = compile_one(program, "p(1).")
        self.load(program, mem)
        base1 = clause1.heap_base
        compile_one(program, "p(2).")
        self.load(program, mem)
        assert clause1.heap_base == base1
