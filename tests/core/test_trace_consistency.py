"""Cross-checks between the stats collector and the memory trace.

The same access stream feeds Table 3/4 (stats counters) and Table 5
(trace replay); these tests pin the two views together on real runs.
"""

import pytest

from repro.core import PSIMachine
from repro.core.memory import Area, TraceRecorder, decode_address
from repro.core.micro import CacheCmd

PROGRAM = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
perm([], []).
perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
"""


@pytest.fixture
def run():
    machine = PSIMachine()
    machine.consult(PROGRAM)
    trace = TraceRecorder()
    machine.mem.attach(trace)
    assert machine.solve("perm([1,2,3,4], P)").count() == 24
    machine.mem.detach(trace)
    return machine, trace


class TestTraceMatchesCounters:
    def test_total_access_count(self, run):
        machine, trace = run
        assert len(trace) == machine.stats.total_mem_accesses

    def test_per_command_counts(self, run):
        machine, trace = run
        from collections import Counter
        by_cmd = Counter(cmd for cmd, _ in trace.entries())
        expected = machine.stats.cache_command_counts()
        for cmd in CacheCmd:
            assert by_cmd.get(cmd, 0) == expected[cmd]

    def test_per_area_counts(self, run):
        machine, trace = run
        from collections import Counter
        by_area = Counter(decode_address(addr)[0]
                          for _, addr in trace.entries())
        expected = machine.stats.area_access_counts()
        for area in Area:
            assert by_area.get(area, 0) == expected.get(area, 0)

    def test_addresses_within_area_tops_seen(self, run):
        machine, trace = run
        # Every traced offset was a legal offset at some point; in
        # particular none exceeds the area's high-water mark.
        high_water = {area: 0 for area in Area}
        for _, addr in trace.entries():
            area, offset = decode_address(addr)
            high_water[area] = max(high_water[area], offset)
        for area in (Area.GLOBAL, Area.LOCAL, Area.TRAIL):
            # Stacks shrink after the run; high-water must be at least
            # the final top.
            assert high_water[area] >= machine.mem.top(area) - 1 \
                or machine.mem.top(area) == 0

    def test_mem_access_rate_in_plausible_band(self, run):
        machine, _ = run
        rate = machine.stats.total_mem_accesses / machine.stats.total_steps
        assert 0.10 < rate < 0.40
