"""Property-based tests of unification on both engines.

Strategy terms mix constants, small integers, shared variables, lists
and structures.  A reference unifier over source terms provides the
oracle; the PSI interpreter and the WAM baseline must both agree with
it on success/failure, and on the witnessed bindings when unification
succeeds.
"""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.baseline import WAMMachine
from repro.core import PSIMachine
from repro.prolog import Atom, Struct, Term, Var, term_to_string

_VARS = ["X", "Y", "Z"]


def _terms(depth: int):
    base = st.one_of(
        st.sampled_from([Atom("a"), Atom("b"), Atom("[]")]),
        st.integers(min_value=0, max_value=3),
        st.sampled_from([Var(v) for v in _VARS]),
    )
    if depth == 0:
        return base
    sub = _terms(depth - 1)
    return st.one_of(
        base,
        st.builds(lambda a, b: Struct(".", (a, b)), sub, sub),
        st.builds(lambda a: Struct("f", (a,)), sub),
        st.builds(lambda a, b: Struct("g", (a, b)), sub, sub),
    )


# -- reference unifier over source terms -------------------------------------


def _walk(term: Term, subst: dict) -> Term:
    while isinstance(term, Var) and term.name in subst:
        term = subst[term.name]
    return term


class _STO(Exception):
    """Unification subject to occurs check: would build a cyclic term.

    Like DEC-10 Prolog and the PSI, the engines have no occur check, so
    such cases create rational trees that our finite-term oracle (and
    the solution decoder) cannot represent; the properties skip them.
    """


def _occurs(name: str, term: Term, subst: dict) -> bool:
    term = _walk(term, subst)
    if isinstance(term, Var):
        return term.name == name
    if isinstance(term, Struct):
        return any(_occurs(name, a, subst) for a in term.args)
    return False


def _ref_unify(t1: Term, t2: Term, subst: dict) -> bool:
    t1 = _walk(t1, subst)
    t2 = _walk(t2, subst)
    if isinstance(t1, Var):
        if isinstance(t2, Var) and t1.name == t2.name:
            return True
        if _occurs(t1.name, t2, subst):
            raise _STO
        subst[t1.name] = t2
        return True
    if isinstance(t2, Var):
        if _occurs(t2.name, t1, subst):
            raise _STO
        subst[t2.name] = t1
        return True
    if isinstance(t1, int) or isinstance(t2, int):
        return t1 == t2
    if isinstance(t1, Atom) or isinstance(t2, Atom):
        return t1 == t2
    assert isinstance(t1, Struct) and isinstance(t2, Struct)
    if t1.indicator != t2.indicator:
        return False
    return all(_ref_unify(a, b, subst) for a, b in zip(t1.args, t2.args))


def _resolve(term: Term, subst: dict) -> Term:
    term = _walk(term, subst)
    if isinstance(term, Struct):
        return Struct(term.functor, tuple(_resolve(a, subst) for a in term.args))
    return term


def _is_ground(term: Term) -> bool:
    if isinstance(term, Var):
        return False
    if isinstance(term, Struct):
        return all(_is_ground(a) for a in term.args)
    return True


# -- the properties ------------------------------------------------------------


@given(_terms(2), _terms(2))
@settings(max_examples=120, deadline=None)
def test_engines_agree_with_reference(t1, t2):
    subst: dict = {}
    try:
        expected = _ref_unify(t1, t2, subst)
    except _STO:
        assume(False)
    goal = f"{term_to_string(t1)} = {term_to_string(t2)}"

    psi = PSIMachine()
    psi.consult("anchor.")
    psi_solution = psi.run(goal)
    assert (psi_solution is not None) == expected, goal

    wam = WAMMachine()
    wam.consult("anchor.")
    wam_solution = wam.run(goal)
    assert (wam_solution is not None) == expected, goal

    if expected:
        for name in _VARS:
            reference = _resolve(Var(name), subst)
            if not _is_ground(reference):
                continue
            for solution in (psi_solution, wam_solution):
                if name in solution.bindings:
                    assert solution.bindings[name] == reference, goal


@given(_terms(2))
@settings(max_examples=80, deadline=None)
def test_unify_with_itself_succeeds(t):
    goal = f"T = {term_to_string(t)}, T = {term_to_string(t)}"
    machine = PSIMachine()
    machine.consult("anchor.")
    assert machine.run(goal) is not None


@given(_terms(2), _terms(2))
@settings(max_examples=80, deadline=None)
def test_unification_is_symmetric(t1, t2):
    try:
        _ref_unify(t1, t2, {})
    except _STO:
        assume(False)
    machine = PSIMachine()
    machine.consult("anchor.")
    forward = machine.run(f"{term_to_string(t1)} = {term_to_string(t2)}")
    backward = machine.run(f"{term_to_string(t2)} = {term_to_string(t1)}")
    assert (forward is None) == (backward is None)


@given(_terms(2), _terms(2))
@settings(max_examples=60, deadline=None)
def test_failed_unification_undoes_bindings(t1, t2):
    """After \\+(T1 = T2) the machine state is clean: X stays free."""
    subst: dict = {}
    try:
        expected = _ref_unify(t1, t2, subst)
    except _STO:
        assume(False)
    machine = PSIMachine()
    machine.consult("anchor.")
    text1, text2 = term_to_string(t1), term_to_string(t2)
    solution = machine.run(f"\\+ ({text1} = {text2}), X = probe")
    if not expected:
        assert solution is not None
        assert solution["X"] == Atom("probe")
