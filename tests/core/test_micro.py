"""Unit tests for the microinstruction accounting model."""

import pytest

from repro.core import micro
from repro.core.micro import (
    BRANCH_TYPE,
    NO_OPERATION_OPS,
    BranchOp,
    CacheCmd,
    MicroRoutine,
    MicroStep,
    S,
    WFMode,
    all_routines,
)


class TestMicroStep:
    def test_defaults(self):
        step = MicroStep()
        assert step.wf1 is None
        assert step.br is BranchOp.NOP1

    def test_source2_restricted_to_dual_port(self):
        with pytest.raises(ValueError):
            MicroStep(wf2=WFMode.WF10_3F)
        MicroStep(wf2=WFMode.WF00_0F)  # allowed


class TestMicroRoutine:
    def test_precomputed_counters_match_steps(self):
        routine = MicroRoutine("t", [
            S(wf1=WFMode.WF00_0F, dest=WFMode.WF10_3F, br=BranchOp.GOTO1),
            S(wf1=WFMode.WF00_0F, br=BranchOp.NOP2),
            S(br=BranchOp.GOTO1),
        ])
        assert routine.n_steps == 3
        assert routine.wf1_counts[WFMode.WF00_0F] == 2
        assert routine.dest_counts[WFMode.WF10_3F] == 1
        assert routine.branch_counts[BranchOp.GOTO1] == 2
        assert routine.branch_counts[BranchOp.NOP2] == 1

    def test_empty_routine_rejected(self):
        with pytest.raises(ValueError):
            MicroRoutine("empty", [])

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            micro.routine("mem.read", [S()])

    def test_wfar_auto_increment_tracking(self):
        routine = MicroRoutine("t2", [
            S(wf1=WFMode.WFAR1, auto_inc=True),
            S(dest=WFMode.WFAR2),
        ])
        assert routine.wfar_accesses == 2
        assert routine.wfar_auto_inc == 1


class TestRoutineLibrary:
    def test_every_branch_op_has_a_type(self):
        assert set(BRANCH_TYPE) == set(BranchOp)

    def test_noop_set(self):
        assert NO_OPERATION_OPS == {BranchOp.NOP1, BranchOp.NOP2, BranchOp.NOP3}

    def test_mem_routines_are_single_step(self):
        for cmd in CacheCmd:
            assert micro.MEM_ROUTINES[cmd].n_steps == 1

    def test_registry_contains_core_routines(self):
        names = set(all_routines())
        for required in ("mem.read", "unify.dispatch", "control.cp_push",
                         "trail.push", "cut.execute", "built.entry",
                         "get_arg.fetch", "wf.frame_read"):
            assert required in names

    def test_trail_buffer_uses_wfar2(self):
        assert micro.R_TRAIL_BUF.dest_counts.get(WFMode.WFAR2, 0) == 1

    def test_frame_buffer_uses_wfar1_or_base(self):
        assert micro.R_FRAME_READ_BUF.wf1_counts.get(WFMode.WFAR1, 0) == 1
        assert micro.R_FRAME_READ_BUF_BASE.wf1_counts.get(WFMode.PDR_CDR, 0) == 1

    def test_tag_dispatch_routines_use_case_tag(self):
        assert micro.R_DECODE.branch_counts.get(BranchOp.CASE_TAG, 0) == 1
        assert micro.R_DECODE_PACKED.branch_counts.get(BranchOp.CASE_IRN, 0) == 1
