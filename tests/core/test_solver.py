"""Tests for the Solver / Solution query API."""

import pytest

from repro.core import PSIMachine
from repro.prolog import Atom


@pytest.fixture
def m():
    machine = PSIMachine()
    machine.consult("""
    color(red). color(green). color(blue).
    pair(X, Y) :- color(X), color(Y).
    """)
    return machine


class TestSolver:
    def test_next_enumerates_in_order(self, m):
        solver = m.solve("color(C)")
        assert solver.next()["C"] == Atom("red")
        assert solver.next()["C"] == Atom("green")
        assert solver.next()["C"] == Atom("blue")
        assert solver.next() is None

    def test_exhausted_solver_stays_exhausted(self, m):
        solver = m.solve("color(C)")
        solver.all()
        assert solver.next() is None
        assert solver.next() is None

    def test_all_with_limit(self, m):
        solver = m.solve("pair(X, Y)")
        assert len(solver.all(limit=4)) == 4

    def test_count(self, m):
        assert m.solve("pair(X, Y)").count() == 9

    def test_failing_goal(self, m):
        solver = m.solve("color(purple)")
        assert solver.next() is None

    def test_sequential_queries_on_one_machine(self, m):
        assert m.run("color(red)") is not None
        assert m.run("color(blue)") is not None
        assert m.solve("color(C)").count() == 3

    def test_solution_mapping_interface(self, m):
        solution = m.run("pair(X, Y)")
        assert "X" in solution and "Z" not in solution
        assert solution["X"] == Atom("red")
        assert "X=" in repr(solution)

    def test_goal_with_no_variables(self, m):
        solution = m.run("color(red)")
        assert solution.bindings == {}

    def test_anonymous_variables_not_reported(self, m):
        solution = m.run("pair(_, Y)")
        assert list(solution.bindings) == ["Y"]

    def test_term_goal_accepted(self, m):
        from repro.prolog import Struct, Var
        solution = m.run(Struct("color", (Var("C"),)))
        assert solution["C"] == Atom("red")


class TestMachineReuse:
    def test_consult_after_query(self, m):
        m.run("color(red)")
        m.consult("shade(dark). shade(light).")
        assert m.solve("shade(S)").count() == 2

    def test_stats_accumulate_across_queries(self, m):
        m.run("color(red)")
        first = m.stats.total_steps
        m.run("color(green)")
        assert m.stats.total_steps > first

    def test_output_accumulates(self, m):
        m.run("write(a)")
        m.run("write(b)")
        assert "".join(m.output) == "ab"
