"""Prolog semantics tests for the PSI machine.

These check the machine as a language implementation: unification,
backtracking order, cut, control constructs, arithmetic.  Hardware
accounting is tested separately.
"""

import pytest

from repro.core import PSIMachine
from repro.prolog import Atom, Struct, list_elements, parse_term, term_to_string

LISTS = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"""


@pytest.fixture
def m():
    machine = PSIMachine()
    machine.consult(LISTS)
    return machine


def as_list(term):
    return list_elements(term)


class TestBasicResolution:
    def test_fact(self, m):
        m.consult("likes(mary, wine).")
        assert m.run("likes(mary, wine)") is not None
        assert m.run("likes(mary, beer)") is None

    def test_undefined_predicate_raises(self, m):
        from repro.errors import ExistenceError
        with pytest.raises(ExistenceError):
            m.run("no_such_thing(1)")

    def test_append_forward(self, m):
        s = m.run("append([1,2], [3], X)")
        assert as_list(s["X"]) == [1, 2, 3]

    def test_append_backward_enumerates_all_splits(self, m):
        solutions = m.solve("append(A, B, [1,2,3])").all()
        assert len(solutions) == 4
        assert as_list(solutions[0]["A"]) == []
        assert as_list(solutions[3]["A"]) == [1, 2, 3]

    def test_member_enumeration_order(self, m):
        values = [s["X"] for s in m.solve("member(X, [a,b,c])").all()]
        assert values == [Atom("a"), Atom("b"), Atom("c")]

    def test_nrev(self, m):
        s = m.run("nrev([1,2,3,4,5,6,7,8], R)")
        assert as_list(s["R"]) == [8, 7, 6, 5, 4, 3, 2, 1]

    def test_deep_recursion(self, m):
        m.consult("""
        count(0) :- !.
        count(N) :- N1 is N - 1, count(N1).
        """)
        assert m.run("count(5000)") is not None


class TestUnification:
    def test_structure_unification(self, m):
        s = m.run("= (f(X, g(Y)), f(1, g(2)))" .replace("= (", "=("))
        assert s["X"] == 1 and s["Y"] == 2

    def test_unification_failure(self, m):
        assert m.run("f(1) = f(2)") is None
        assert m.run("f(1) = g(1)") is None
        assert m.run("f(1) = f(1, 2)") is None

    def test_var_to_var_aliasing(self, m):
        s = m.run("X = Y, Y = 42, Z = X")
        assert s["X"] == 42 and s["Z"] == 42

    def test_shared_structure(self, m):
        s = m.run("X = f(Y), Y = 3, X = f(Z)")
        assert s["Z"] == 3

    def test_atoms_vs_integers_distinct(self, m):
        assert m.run("foo = 1") is None

    def test_nil_unifies_with_nil(self, m):
        assert m.run("[] = []") is not None

    def test_not_unify_builtin(self, m):
        assert m.run("\\=(f(X), g(Y))") is not None
        assert m.run("\\=(f(X), f(Y))") is None
        # An unbound variable unifies with anything, so X \= 1 fails...
        assert m.run("\\=(X, 1)") is None
        # ...and the trial unification must not leave bindings behind.
        s = m.run("\\=(f(X), g(X)), X = 2")
        assert s["X"] == 2


class TestBacktrackingAndCut:
    def test_cut_commits_to_first_solution(self, m):
        m.consult("""
        first(X, L) :- member(X, L), !.
        """)
        assert m.solve("first(X, [a,b,c])").count() == 1

    def test_cut_inside_clause_keeps_outer_choices(self, m):
        m.consult("""
        pick(1). pick(2).
        chosen(X) :- pick(X), marker.
        marker :- !.
        """)
        assert m.solve("chosen(X)").count() == 2

    def test_cut_discards_alternative_clauses(self, m):
        m.consult("""
        classify(X, small) :- X < 10, !.
        classify(_, big).
        """)
        values = [s["R"] for s in m.solve("classify(5, R)").all()]
        assert values == [Atom("small")]

    def test_fail_driven_loop_with_counter(self, m):
        m.consult("""
        each :- member(_, [a,b,c,d]), counter_inc(n), fail.
        each.
        """)
        m.run("each")
        assert m.counters["n"] == 4

    def test_deterministic_retry_after_failure(self, m):
        m.consult("""
        road(a, b). road(b, c). road(a, d). road(d, c).
        path(X, X).
        path(X, Z) :- road(X, Y), path(Y, Z).
        """)
        assert m.solve("path(a, c)").count() == 2


class TestControlConstructs:
    def test_disjunction(self, m):
        values = [s["X"] for s in m.solve("(X = 1 ; X = 2 ; X = 3)").all()]
        assert values == [1, 2, 3]

    def test_if_then_else_true_branch(self, m):
        s = m.run("(1 < 2 -> R = yes ; R = no)")
        assert s["R"] == Atom("yes")

    def test_if_then_else_false_branch(self, m):
        s = m.run("(2 < 1 -> R = yes ; R = no)")
        assert s["R"] == Atom("no")

    def test_if_then_commits_condition(self, m):
        m.consult("cond(1). cond(2).")
        solutions = m.solve("(cond(X) -> true ; fail)").all()
        assert [s["X"] for s in solutions] == [1]

    def test_bare_if_then_fails_when_condition_fails(self, m):
        assert m.run("(fail -> true)") is None

    def test_negation_as_failure(self, m):
        assert m.run("\\+ member(5, [1,2,3])") is not None
        assert m.run("\\+ member(2, [1,2,3])") is None

    def test_negation_leaves_no_bindings(self, m):
        s = m.run("\\+ (X = 1, fail), X = 7")
        assert s["X"] == 7

    def test_meta_call(self, m):
        s = m.run("G = member(X, [1,2]), call(G)")
        assert s["X"] == 1

    def test_meta_call_of_builtin(self, m):
        s = m.run("G = (3 < 5), call(G)")
        assert s is not None


class TestArithmetic:
    @pytest.mark.parametrize("expr,value", [
        ("1 + 2", 3),
        ("2 * 3 + 4", 10),
        ("7 - 10", -3),
        ("7 // 2", 3),
        ("-7 // 2", -3),      # truncating division, DEC-10 style
        ("7 mod 3", 1),
        ("1 << 4", 16),
        ("255 /\\ 15", 15),
        ("-(3 + 4)", -7),
        ("abs(-9)", 9),
        ("min(3, 5)", 3),
        ("max(3, 5)", 5),
    ])
    def test_is(self, m, expr, value):
        s = m.run(f"X is {expr}")
        assert s["X"] == value

    def test_comparisons(self, m):
        assert m.run("3 < 5") is not None
        assert m.run("5 < 3") is None
        assert m.run("3 =< 3") is not None
        assert m.run("4 >= 5") is None
        assert m.run("2 + 2 =:= 4") is not None
        assert m.run("2 + 2 =\\= 5") is not None

    def test_division_by_zero_raises(self, m):
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError):
            m.run("X is 1 // 0")

    def test_unbound_in_expression_raises(self, m):
        from repro.errors import InstantiationError
        with pytest.raises(InstantiationError):
            m.run("X is Y + 1")


class TestTermInspection:
    def test_functor_decompose(self, m):
        s = m.run("functor(foo(a, b), N, A)")
        assert s["N"] == Atom("foo") and s["A"] == 2

    def test_functor_construct(self, m):
        s = m.run("functor(T, foo, 2), T = foo(X, Y), X = 1")
        assert s["X"] == 1

    def test_functor_of_atomic(self, m):
        s = m.run("functor(99, N, A)")
        assert s["N"] == 99 and s["A"] == 0

    def test_arg(self, m):
        s = m.run("arg(2, foo(a, b, c), X)")
        assert s["X"] == Atom("b")

    def test_arg_out_of_range_fails(self, m):
        assert m.run("arg(4, foo(a, b, c), X)") is None

    def test_univ_decompose(self, m):
        s = m.run("foo(1, 2) =.. L")
        assert as_list(s["L"]) == [Atom("foo"), 1, 2]

    def test_univ_construct(self, m):
        s = m.run("T =.. [foo, 1, 2]")
        assert s["T"] == Struct("foo", (1, 2))

    def test_length(self, m):
        s = m.run("length([a,b,c], N)")
        assert s["N"] == 3

    def test_length_generates(self, m):
        s = m.run("length(L, 3)")
        assert len(as_list(s["L"])) == 3

    def test_type_tests(self, m):
        assert m.run("var(X)") is not None
        assert m.run("X = 1, var(X)") is None
        assert m.run("nonvar(foo)") is not None
        assert m.run("atom(foo)") is not None
        assert m.run("atom(1)") is None
        assert m.run("atom([])") is not None
        assert m.run("integer(3)") is not None
        assert m.run("atomic(3)") is not None
        assert m.run("compound(f(1))") is not None
        assert m.run("compound([1])") is not None
        assert m.run("is_list([1,2])") is not None
        assert m.run("is_list([1|_])") is None

    def test_structural_equality(self, m):
        assert m.run("f(X) == f(X)") is None or True  # distinct queries rename
        s = m.run("X = f(Y), X == f(Y)")
        assert s is not None
        assert m.run("f(1) == f(1)") is not None
        assert m.run("f(1) \\== f(2)") is not None

    def test_standard_order(self, m):
        assert m.run("1 @< foo") is not None
        assert m.run("foo @< f(1)") is not None
        assert m.run("f(1) @< f(2)") is not None
        assert m.run("compare(<, 1, 2)") is not None
        s = m.run("compare(O, f(1), 1)")
        assert s["O"] == Atom(">")


class TestHeapVectors:
    def test_vector_lifecycle(self, m):
        s = m.run("new_vector(V, 4), vector_set(V, 0, 11), "
                  "vector_ref(V, 0, X), vector_size(V, S)")
        assert s["X"] == 11 and s["S"] == 4

    def test_vector_default_zero(self, m):
        s = m.run("new_vector(V, 2), vector_ref(V, 1, X)")
        assert s["X"] == 0

    def test_vector_out_of_range(self, m):
        from repro.errors import EvaluationError
        with pytest.raises(EvaluationError):
            m.run("new_vector(V, 2), vector_ref(V, 5, X)")

    def test_vector_set_is_destructive(self, m):
        s = m.run("new_vector(V, 1), vector_set(V, 0, 1), "
                  "vector_set(V, 0, 2), vector_ref(V, 0, X)")
        assert s["X"] == 2


class TestOutput:
    def test_write_collects_output(self, m):
        m.run("write(hello), nl, write(f(1, 2))")
        assert "".join(m.output) == "hello\nf(1,2)"

    def test_tab(self, m):
        m.output.clear()
        m.run("tab(3)")
        assert "".join(m.output) == "   "


class TestSolutionDecoding:
    def test_unbound_query_var_decodes_as_var(self, m):
        s = m.run("X = f(_)")
        assert isinstance(s["X"], Struct)

    def test_long_list_decodes_without_recursion_error(self, m):
        m.consult("""
        build(0, []) :- !.
        build(N, [N|T]) :- N1 is N - 1, build(N1, T).
        """)
        s = m.run("build(2000, L)")
        assert len(as_list(s["L"])) == 2000

    def test_term_to_string_of_solution(self, m):
        s = m.run("append([1], [x], R)")
        assert term_to_string(s["R"]) == "[1,x]"


class TestGoalDispatch:
    def test_unknown_goal_kind_raises_typed_error(self, m):
        """A body goal of a class the dispatcher has no arm for must
        fail loudly, naming the class — not fall through silently."""
        from repro.errors import MachineError, UnknownGoalKind

        class RogueGoal:
            def __repr__(self):
                return "RogueGoal()"

        m.consult("p :- q.\nq.")
        clause = m.program.procedure("p", 0).clauses[0]
        # Replace the whole body: appending after the final call would
        # be unreachable (the last call passes the continuation through).
        clause.body = (RogueGoal(),)
        with pytest.raises(UnknownGoalKind, match="RogueGoal") as exc_info:
            m.run("p")
        assert isinstance(exc_info.value, MachineError)
        assert isinstance(exc_info.value.goal, RogueGoal)
