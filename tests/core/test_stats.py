"""Unit tests for the stats collector's derived tables."""

import pytest

from repro.core import micro
from repro.core.memory import Area
from repro.core.micro import BranchOp, CacheCmd, Module, WFMode
from repro.core.stats import StatsCollector


@pytest.fixture
def stats():
    return StatsCollector()


class TestStepAccounting:
    def test_total_steps(self, stats):
        stats.emit(micro.R_DEREF_STEP, 5)            # 1-step routine
        stats.emit(micro.R_CALL_SETUP)               # 4-step routine
        assert stats.total_steps == 5 + micro.R_CALL_SETUP.n_steps

    def test_module_attribution(self, stats):
        stats.module = Module.UNIFY
        stats.emit(micro.R_DEREF_STEP, 10)
        stats.module = Module.CONTROL
        stats.emit(micro.R_DEREF_STEP, 10)
        steps = stats.module_steps()
        assert steps[Module.UNIFY] == 10
        assert steps[Module.CONTROL] == 10
        ratios = stats.module_ratios()
        assert ratios[Module.UNIFY] == pytest.approx(50.0)

    def test_emit_in_overrides_module(self, stats):
        stats.module = Module.CONTROL
        stats.emit_in(Module.TRAIL, micro.R_TRAIL_PUSH)
        assert stats.module_steps()[Module.TRAIL] == micro.R_TRAIL_PUSH.n_steps

    def test_empty_collector_ratios(self, stats):
        assert stats.module_ratios()[Module.CONTROL] == 0.0
        assert stats.cache_command_ratios()[CacheCmd.READ] == 0.0
        assert stats.area_access_ratios() == {}


class TestMemoryAccounting:
    def test_mem_access_bills_one_step(self, stats):
        stats.mem_access(CacheCmd.READ, Area.HEAP)
        assert stats.total_steps == 1
        assert stats.total_mem_accesses == 1

    def test_cache_command_ratio(self, stats):
        stats.emit(micro.R_DEREF_STEP, 8)
        stats.mem_access(CacheCmd.READ, Area.HEAP)
        stats.mem_access(CacheCmd.WRITE_STACK, Area.LOCAL)
        ratios = stats.cache_command_ratios()
        assert ratios[CacheCmd.READ] == pytest.approx(10.0)
        assert ratios[CacheCmd.WRITE_STACK] == pytest.approx(10.0)

    def test_area_ratios(self, stats):
        stats.mem_access(CacheCmd.READ, Area.HEAP)
        stats.mem_access(CacheCmd.READ, Area.HEAP)
        stats.mem_access(CacheCmd.READ, Area.GLOBAL)
        ratios = stats.area_access_ratios()
        assert ratios[Area.HEAP] == pytest.approx(200 / 3)


class TestWFTables:
    def test_field_counts(self, stats):
        stats.emit(micro.R_FRAME_READ_BUF, 3)    # wf1=@WFAR1
        counts = stats.wf_field_counts()
        assert counts["source1"][WFMode.WFAR1] == 3

    def test_table_percentages(self, stats):
        stats.emit(micro.R_FRAME_READ_BUF, 1)
        table = stats.wf_table()
        share, of_steps = table["source1"][WFMode.WFAR1]
        assert share == pytest.approx(100.0)
        assert of_steps == pytest.approx(100.0)

    def test_field_totals_bounded_by_100(self, stats):
        stats.emit(micro.R_CALL_SETUP, 4)
        totals = stats.wf_field_totals()
        for value in totals.values():
            assert 0.0 <= value <= 100.0

    def test_auto_increment_ratio(self, stats):
        stats.emit(micro.R_FRAME_READ_BUF, 9)      # auto_inc
        stats.emit(micro.R_GET_ARG_VAR_BUF, 1)     # auto_inc as well
        assert stats.wfar_auto_increment_ratio() == pytest.approx(1.0)
        assert StatsCollector().wfar_auto_increment_ratio() == 0.0


class TestBranchTables:
    def test_ratios_sum_to_100(self, stats):
        stats.emit(micro.R_CALL_SETUP, 2)
        stats.emit(micro.R_UNIFY_DISPATCH, 5)
        total = sum(stats.branch_ratios().values())
        assert total == pytest.approx(100.0)

    def test_branch_operation_rate(self, stats):
        stats.emit(micro.R_DEREF_STEP, 1)       # CASE_TAG: a branch
        stats.emit(micro.R_FRAME_READ_BUF, 1)   # NOP1: not a branch
        assert stats.branch_operation_rate() == pytest.approx(50.0)


class TestMerge:
    def test_merge_adds_counts(self):
        a = StatsCollector()
        b = StatsCollector()
        a.emit(micro.R_DEREF_STEP, 2)
        b.emit(micro.R_DEREF_STEP, 3)
        b.inferences = 7
        a.merge(b)
        assert a.total_steps == 5
        assert a.inferences == 7
