"""Sanity checks on the DEC-2060 cost model."""

from repro.baseline import WAMMachine
from repro.baseline.isa import COSTS_NS, DYNAMIC_COSTS_NS, Op


class TestCostTable:
    def test_every_opcode_priced(self):
        assert set(COSTS_NS) == set(Op)
        for op, cost in COSTS_NS.items():
            assert cost >= 0, op

    def test_calibrated_structure_penalty(self):
        # The paper's qualitative claim: structure unification is where
        # compiled code loses ground.  The fitted table must encode it.
        assert COSTS_NS[Op.GET_STRUCTURE] > 3 * COSTS_NS[Op.GET_LIST]
        assert DYNAMIC_COSTS_NS["general_unify_node"] > \
            2 * COSTS_NS[Op.UNIFY_VALUE]

    def test_fastcode_arith_cheap(self):
        assert COSTS_NS[Op.BUILTIN_ARITH] < COSTS_NS[Op.GET_STRUCTURE]

    def test_indexing_cheaper_than_choice_points(self):
        assert COSTS_NS[Op.SWITCH_ON_CONSTANT] < COSTS_NS[Op.TRY]


class TestTimeAccounting:
    def test_time_accumulates(self):
        m = WAMMachine()
        m.consult("f(1). f(2).")
        m.run("f(X)")
        first = m.stats.time_ns
        m.run("f(2)")
        assert m.stats.time_ns > first

    def test_instruction_counts_complete(self):
        m = WAMMachine()
        m.consult("loop(0). loop(N) :- N > 0, N1 is N - 1, loop(N1).")
        m.run("loop(50)")
        stats = m.stats
        assert stats.instr_counts.get(Op.EXECUTE, 0) >= 50
        assert stats.instr_counts.get(Op.BUILTIN_ARITH, 0) >= 100
        assert stats.total_instructions == sum(stats.instr_counts.values())

    def test_lips_computation(self):
        m = WAMMachine()
        m.consult("f(1).")
        m.run("f(X)")
        assert m.stats.lips > 0

    def test_indexed_lookup_cheaper_than_scan(self):
        indexed = WAMMachine()
        indexed.consult("\n".join(f"k({i}, v{i})." for i in range(20)))
        indexed.run("k(19, V)")
        scan = WAMMachine()
        scan.consult("\n".join(f"s(X, v{i}) :- X =:= {i}." for i in range(20)))
        scan.run("s(19, V)")
        assert indexed.stats.time_ns < scan.stats.time_ns
