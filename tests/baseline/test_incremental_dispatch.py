"""Baseline dynamic predicates must not re-run the compiler.

``assertz`` splices the new clause body at the end of the procedure's
code and regenerates only the (O(#clauses)) dispatch prologue;
``retract`` patches the TRY/RETRY/TRUST chains and switch tables in
place.  Neither path may call :func:`assemble_procedure` — a heavy
assert/retract loop used to pay a full recompilation per retraction.
"""

import pytest

import repro.baseline.machine as baseline_machine
from repro.baseline import WAMMachine


@pytest.fixture
def machine():
    m = WAMMachine()
    m.consult("seed(s0). seed(s1).")
    return m


def solutions(machine, goal):
    return [s.bindings for s in machine.solve(goal).all()]


def test_assert_retract_loop_never_reassembles(machine, monkeypatch):
    # The predicate exists (assembled once at consult time) before the
    # dynamic loop starts — from then on the compiler must stay cold.
    machine.consult("ev(init, -1).")
    calls = []
    real = baseline_machine.assemble_procedure

    def counting(proc):
        calls.append(proc.functor)
        return real(proc)

    monkeypatch.setattr(baseline_machine, "assemble_procedure", counting)
    # 60 asserts then 60 retracts on one predicate: zero reassemblies
    # of it (each goal still assembles its own one-shot $query_N proc).
    for i in range(60):
        assert machine.run(f"assertz(ev(k{i % 7}, {i}))") is not None
    for i in range(60):
        assert machine.run(f"retract(ev(k{i % 7}, {i}))") is not None
    assert [name for name in calls if not name.startswith("$query")] == []
    assert [s["V"] for s in solutions(machine, "ev(K, V)")] == [-1]


def test_asserted_clauses_dispatch_correctly(machine):
    machine.run("assertz(route(a, 1)), assertz(route(b, 2)), "
                "assertz(route(V, 0)), assertz(route(a, 3))")
    assert [s["R"] for s in solutions(machine, "route(a, R)")] == [1, 0, 3]
    assert [s["R"] for s in solutions(machine, "route(b, R)")] == [2, 0]
    assert [s["R"] for s in solutions(machine, "route(zz, R)")] == [0]


def test_retract_middle_clause_patches_chain(machine):
    machine.run("assertz(c(x, 1)), assertz(c(x, 2)), assertz(c(x, 3))")
    assert machine.run("retract(c(x, 2))") is not None
    assert [s["R"] for s in solutions(machine, "c(x, R)")] == [1, 3]


def test_retract_down_to_one_clause_then_zero(machine):
    machine.run("assertz(d(p, 1)), assertz(d(q, 2))")
    assert machine.run("retract(d(p, 1))") is not None
    # One clause left: the patched chain degenerates to a jump.
    assert [s["R"] for s in solutions(machine, "d(q, R)")] == [2]
    assert solutions(machine, "d(p, R)") == []
    assert machine.run("retract(d(q, 2))") is not None
    # Zero clauses left: the entry now fails outright...
    assert solutions(machine, "d(W, R)") == []
    # ...and a later assert brings the predicate back to life.
    assert machine.run("assertz(d(r, 9))") is not None
    assert [s["R"] for s in solutions(machine, "d(r, R)")] == [9]


def test_retract_during_enumeration_keeps_remaining_answers(machine):
    # Open a choicepoint over e/2, retract an *untried* clause from
    # inside the enumeration: the live chain addresses must stay valid
    # because patching rewrites instructions in place, never moves them.
    machine.run("assertz(e(k, 1)), assertz(e(k, 2)), assertz(e(k, 3))")
    machine.consult("""
        sweep(R) :- e(k, R), tick(R).
        tick(1) :- retract(e(k, 2)), !.
        tick(R) :- R \\== 1.
    """)
    values = [s["R"] for s in solutions(machine, "sweep(R)")]
    # DEC-10/WAM immediate-update semantics: clause 2 was retracted
    # before the enumeration reached it, 1 and 3 survive.
    assert values == [1, 3]
