"""Prolog semantics tests for the WAM baseline."""

import pytest

from repro.baseline import WAMMachine
from repro.prolog import Atom, Struct, list_elements

LISTS = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"""


@pytest.fixture
def m():
    machine = WAMMachine()
    machine.consult(LISTS)
    return machine


class TestResolution:
    def test_fact(self, m):
        m.consult("likes(mary, wine).")
        assert m.run("likes(mary, wine)") is not None
        assert m.run("likes(mary, beer)") is None

    def test_append(self, m):
        s = m.run("append([1,2], [3], X)")
        assert list_elements(s["X"]) == [1, 2, 3]

    def test_append_enumeration(self, m):
        assert m.solve("append(A, B, [1,2,3])").count() == 4

    def test_member_order(self, m):
        assert [s["X"] for s in m.solve("member(X, [a,b])").all()] == \
            [Atom("a"), Atom("b")]

    def test_nrev(self, m):
        s = m.run("nrev([1,2,3,4], R)")
        assert list_elements(s["R"]) == [4, 3, 2, 1]

    def test_deep_recursion(self, m):
        m.consult("count(0) :- !. count(N) :- N1 is N - 1, count(N1).")
        assert m.run("count(20000)") is not None


class TestIndexing:
    def test_constant_dispatch(self, m):
        m.consult("""
        color(red, 1). color(green, 2). color(blue, 3).
        """)
        s = m.run("color(green, X)")
        assert s["X"] == 2
        # Indexed dispatch must not leave a choice point: exactly 1 solution.
        assert m.solve("color(blue, X)").count() == 1

    def test_structure_dispatch(self, m):
        m.consult("""
        shape(circle(R), A) :- A is R * R * 3.
        shape(square(S), A) :- A is S * S.
        """)
        assert m.run("shape(square(4), A)")["A"] == 16

    def test_var_argument_tries_all(self, m):
        m.consult("f(a). f(b). f(c).")
        assert m.solve("f(X)").count() == 3

    def test_mixed_first_args(self, m):
        m.consult("""
        g(1, one). g(2, two). g(foo, sym). g([], nil_case). g([_|_], cons).
        """)
        assert m.run("g(2, X)")["X"] == Atom("two")
        assert m.run("g(foo, X)")["X"] == Atom("sym")
        assert m.run("g([], X)")["X"] == Atom("nil_case")
        assert m.run("g([1], X)")["X"] == Atom("cons")


class TestCutAndControl:
    def test_neck_cut(self, m):
        m.consult("""
        sign(X, neg) :- X < 0, !.
        sign(0, zero) :- !.
        sign(_, pos).
        """)
        assert m.run("sign(-3, S)")["S"] == Atom("neg")
        assert m.run("sign(0, S)")["S"] == Atom("zero")
        assert m.run("sign(9, S)")["S"] == Atom("pos")
        assert m.solve("sign(-3, S)").count() == 1

    def test_deep_cut(self, m):
        m.consult("""
        pick(L, X) :- member(X, L), X > 2, !.
        """)
        assert m.solve("pick([1,3,4], X)").count() == 1

    def test_if_then_else(self, m):
        s = m.run("(1 < 2 -> R = yes ; R = no)")
        assert s["R"] == Atom("yes")
        s = m.run("(2 < 1 -> R = yes ; R = no)")
        assert s["R"] == Atom("no")

    def test_disjunction(self, m):
        assert [s["X"] for s in m.solve("(X = 1 ; X = 2)").all()] == [1, 2]

    def test_negation(self, m):
        assert m.run("\\+ member(9, [1,2])") is not None
        assert m.run("\\+ member(1, [1,2])") is None

    def test_meta_call(self, m):
        s = m.run("G = member(X, [5]), call(G)")
        assert s["X"] == 5

    def test_failure_driven_loop(self, m):
        m.consult("loop :- member(_, [a,b,c]), counter_inc(k), fail. loop.")
        m.run("loop")
        assert m.counters["k"] == 3


class TestBuiltins:
    def test_arith(self, m):
        assert m.run("X is 2 + 3 * 4")["X"] == 14
        assert m.run("X is -7 // 2")["X"] == -3
        assert m.run("3 =< 3") is not None

    def test_functor_arg_univ(self, m):
        assert m.run("functor(f(a, b), N, A)")["N"] == Atom("f")
        assert m.run("arg(1, f(a, b), X)")["X"] == Atom("a")
        assert list_elements(m.run("f(1) =.. L")["L"]) == [Atom("f"), 1]
        assert m.run("T =.. [g, 1]")["T"] == Struct("g", (1,))

    def test_type_tests(self, m):
        assert m.run("var(X)") is not None
        assert m.run("X = 1, integer(X)") is not None
        assert m.run("atom(foo)") is not None

    def test_structural_compare(self, m):
        assert m.run("f(1) == f(1)") is not None
        assert m.run("f(1) \\== f(2)") is not None
        assert m.run("1 @< foo") is not None

    def test_length(self, m):
        assert m.run("length([a,b], N)")["N"] == 2

    def test_not_unify(self, m):
        assert m.run("\\=(f(1), f(2))") is not None
        assert m.run("\\=(X, 1)") is None


class TestEnvironmentSafety:
    def test_unsafe_variable_survives_deallocate(self, m):
        # Y passed in the last call after deallocate must not dangle.
        m.consult("""
        outer(R) :- mk(X), use(X, R).
        mk(X) :- X = val(1).
        use(val(N), R) :- R is N + 1.
        """)
        assert m.run("outer(R)")["R"] == 2

    def test_unbound_permanent_in_last_call(self, m):
        m.consult("""
        go(R) :- step1(A), step2(A, R).
        step1(_).
        step2(A, A).
        """)
        assert m.run("go(R)") is not None

    def test_permanent_inside_structure(self, m):
        m.consult("""
        wrap(R) :- p(X), q(X), R = f(X).
        p(_). q(7).
        """)
        assert m.run("wrap(R)")["R"] == Struct("f", (7,))
