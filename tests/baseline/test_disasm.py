"""Tests for the WAM disassembler."""

from repro.baseline import WAMMachine
from repro.baseline.disasm import disassemble, disassemble_instr, disassemble_machine
from repro.baseline.isa import Instr, Op


def machine_with(source):
    m = WAMMachine()
    m.consult(source)
    return m


class TestInstr:
    def test_register_operands(self):
        text = disassemble_instr(Instr(Op.GET_VARIABLE, ("x", 3), 0))
        assert "X3" in text and text.startswith("get_variable")

    def test_permanent_operands(self):
        text = disassemble_instr(Instr(Op.PUT_VALUE, ("y", 1), 2))
        assert "Y1" in text

    def test_functor_operand(self):
        text = disassemble_instr(Instr(Op.GET_STRUCTURE, ("f", 2), 0))
        assert "f/2" in text

    def test_jump_target(self):
        assert "L7" in disassemble_instr(Instr(Op.TRY, 7))

    def test_label_column(self):
        assert disassemble_instr(Instr(Op.PROCEED), 12).startswith("L12")


class TestProcedureListing:
    def test_lists_all_instructions(self):
        m = machine_with("f(a). f(b).")
        proc = m.procedures[("f", 1)]
        text = disassemble(proc)
        assert text.count("\n") == len(proc.code)
        assert "% f/1: 2 clause(s)" in text

    def test_switch_rendered(self):
        m = machine_with("c(red, 1). c(blue, 2).")
        text = disassemble(m.procedures[("c", 2)])
        assert "switch_on_term" in text
        assert "switch_on_constant" in text
        assert "'red'->L" in text or "red" in text

    def test_jump_targets_marked(self):
        m = machine_with("f(a). f(X) :- g(X). g(_).")
        text = disassemble(m.procedures[("f", 1)])
        assert ">" in text   # at least one instruction is a branch target

    def test_machine_listing_skips_internals(self):
        m = machine_with("p :- (a ; b). a. b.")
        m.solve("p")   # creates $query_1
        text = disassemble_machine(m)
        assert "% p/0" in text
        # Internal predicates get no section of their own (references
        # from user code may still mention them).
        assert "% $query" not in text
        assert "% $dsj" not in text

    def test_fastcode_visible(self):
        m = machine_with("inc(X, Y) :- Y is X + 1.")
        text = disassemble(m.procedures[("inc", 2)])
        assert "builtin_arith" in text
