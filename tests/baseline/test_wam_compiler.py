"""Unit tests for the WAM clause compiler and indexing assembly."""

import pytest

from repro.baseline.builtins import BASELINE_BUILTINS
from repro.baseline.compiler import (
    ClauseCompiler,
    CompiledProcedure,
    KIND_CONST,
    KIND_LIST,
    KIND_STRUCT,
    KIND_VAR,
    assemble_procedure,
    first_arg_descriptor,
)
from repro.baseline.isa import Op
from repro.engine.frontend import Frontend
from repro.prolog import parse_term


def compile_clause(text):
    batch = Frontend(BASELINE_BUILTINS).expand_clause(parse_term(text))
    return ClauseCompiler(batch.main, BASELINE_BUILTINS).compile()


def ops(compiled):
    return [i.op for i in compiled.code]


class TestFirstArgDescriptor:
    @pytest.mark.parametrize("text,kind", [
        ("p(X)", KIND_VAR),
        ("p(1)", KIND_CONST),
        ("p(foo)", KIND_CONST),
        ("p([])", KIND_CONST),
        ("p([H|T])", KIND_LIST),
        ("p(f(X))", KIND_STRUCT),
        ("p", KIND_VAR),
    ])
    def test_kinds(self, text, kind):
        head, _ = parse_term(text), None
        assert first_arg_descriptor(head)[0] == kind


class TestClauseCompilation:
    def test_fact_compiles_to_gets_and_proceed(self):
        compiled = compile_clause("p(1, foo)")
        assert ops(compiled) == [Op.GET_CONSTANT, Op.GET_CONSTANT, Op.PROCEED]

    def test_chain_rule_uses_execute(self):
        compiled = compile_clause("p(X) :- q(X)")
        sequence = ops(compiled)
        assert Op.EXECUTE in sequence
        assert Op.CALL not in sequence
        assert Op.ALLOCATE not in sequence

    def test_two_calls_need_environment(self):
        compiled = compile_clause("p(X) :- q(X), r(X)")
        sequence = ops(compiled)
        assert sequence[0] == Op.ALLOCATE
        assert Op.CALL in sequence
        assert Op.DEALLOCATE in sequence
        assert sequence[-1] == Op.EXECUTE
        assert compiled.n_permanents == 1    # X survives the first call

    def test_head_structure_flattening(self):
        compiled = compile_clause("p(f(g(X)))")
        sequence = ops(compiled)
        # get_structure f/1, unify_variable Xtemp, then deferred
        # get_structure g/1 against the temp.
        assert sequence.count(Op.GET_STRUCTURE) == 2
        assert Op.UNIFY_VARIABLE in sequence

    def test_nested_list_head(self):
        compiled = compile_clause("p([a, b])")
        sequence = ops(compiled)
        assert sequence.count(Op.GET_LIST) == 2
        assert Op.UNIFY_NIL in sequence

    def test_body_structure_built_bottom_up(self):
        compiled = compile_clause("p :- q(f(g(1)))")
        sequence = ops(compiled)
        first_put = sequence.index(Op.PUT_STRUCTURE)
        # inner g/1 put before outer f/1
        inner = compiled.code[first_put]
        assert inner[1] == ("g", 1)

    def test_neck_cut(self):
        compiled = compile_clause("p(X) :- !, q(X)")
        assert Op.NECK_CUT in ops(compiled)

    def test_deep_cut_uses_get_level(self):
        compiled = compile_clause("p(X) :- q(X), !, r(X)")
        sequence = ops(compiled)
        assert Op.GET_LEVEL in sequence
        assert Op.CUT in sequence

    def test_builtin_inline_fastcode(self):
        compiled = compile_clause("p(X, Y) :- Y is X + 1")
        sequence = ops(compiled)
        # Arithmetic compiles to the fast-code instruction: no argument
        # terms are built, no call.
        assert Op.BUILTIN_ARITH in sequence
        assert Op.PUT_STRUCTURE not in sequence
        assert Op.CALL not in sequence

    def test_non_arith_builtin_inline(self):
        compiled = compile_clause("p(X) :- write(X)")
        assert Op.BUILTIN in ops(compiled)

    def test_fastcode_falls_back_on_list_argument(self):
        compiled = compile_clause("p(X) :- X is [1]")
        assert Op.BUILTIN in ops(compiled)
        assert Op.BUILTIN_ARITH not in ops(compiled)

    def test_meta_call_forces_environment(self):
        compiled = compile_clause("p(G, X) :- call(G), X > 0")
        sequence = ops(compiled)
        assert Op.ALLOCATE in sequence
        assert Op.DEALLOCATE in sequence

    def test_unsafe_value_in_last_call(self):
        compiled = compile_clause("p(R) :- q(X), r(X, R)")
        assert Op.PUT_UNSAFE_VALUE in ops(compiled)

    def test_permanent_in_structure_uses_local_value(self):
        compiled = compile_clause("p(X) :- q(X), s(f(X))")
        assert Op.UNIFY_LOCAL_VALUE in ops(compiled)


class TestIndexing:
    def make_proc(self, clause_texts):
        proc = CompiledProcedure("t", 1)
        for text in clause_texts:
            proc.clauses.append(compile_clause(text))
        assemble_procedure(proc)
        return proc

    def test_all_const_first_args_get_switch(self):
        proc = self.make_proc(["t(a)", "t(b)", "t(c)"])
        assert proc.code[0].op == Op.SWITCH_ON_TERM
        assert any(i.op == Op.SWITCH_ON_CONSTANT for i in proc.code)

    def test_var_clause_prevents_indexing(self):
        proc = self.make_proc(["t(a)", "t(X)"])
        assert proc.code[0].op == Op.TRY

    def test_single_clause_no_dispatch(self):
        proc = self.make_proc(["t(a)"])
        assert proc.code[0].op == Op.GET_CONSTANT

    def test_bucket_chain_for_duplicate_keys(self):
        proc = self.make_proc(["t(a)", "t(a)", "t(b)"])
        switch = next(i for i in proc.code if i.op == Op.SWITCH_ON_CONSTANT)
        table = switch[1]
        # 'a' bucket points at a try/trust chain; 'b' directly at the body.
        a_target = table["a"]
        assert proc.code[a_target].op == Op.TRY
        b_target = table["b"]
        assert proc.code[b_target].op != Op.TRY

    def test_branch_targets_in_range(self):
        proc = self.make_proc(["t([])", "t([H|T]) :- t(T)", "t(f(X)) :- t(X)"])
        for instr in proc.code:
            if instr.op in (Op.TRY, Op.RETRY, Op.TRUST):
                assert 0 <= instr[1] < len(proc.code)
            if instr.op == Op.SWITCH_ON_TERM:
                for target in instr[1:]:
                    assert target == -1 or 0 <= target < len(proc.code)
