"""Shared fixtures: keep the persistent run cache out of the repo tree."""

import pytest


@pytest.fixture(scope="session", autouse=True)
def _isolated_run_cache(tmp_path_factory):
    """Point ``.psi-cache`` at a session-scoped temp dir for every test.

    Tests still exercise the disk-cache code paths (and benefit from
    cross-test hits within one session), but never write into the
    working tree or see entries from a previous session.  Session scope
    guarantees the redirect is in place before any module-scoped
    fixture collects a run.
    """
    patch = pytest.MonkeyPatch()
    root = tmp_path_factory.getbasetemp() / "psi-run-cache"
    patch.setenv("PSI_CACHE_DIR", str(root))
    yield
    patch.undo()
