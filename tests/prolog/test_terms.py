"""Unit tests for the term AST helpers."""

import pytest

from repro.prolog import (
    Atom,
    NIL,
    Struct,
    Var,
    clause_parts,
    cons,
    flatten_conjunction,
    is_cons,
    is_nil,
    list_elements,
    make_list,
    parse_term,
    term_variables,
)
from repro.prolog.terms import iter_subterms


class TestConstruction:
    def test_struct_requires_args(self):
        with pytest.raises(ValueError):
            Struct("f", ())

    def test_indicator(self):
        assert Struct("f", (1, 2)).indicator == ("f", 2)
        assert Struct("f", (1, 2)).arity == 2

    def test_cons_and_nil(self):
        cell = cons(1, NIL)
        assert is_cons(cell)
        assert is_nil(cell.args[1])
        assert not is_cons(NIL)
        assert not is_nil(Atom("nil"))

    def test_make_list_roundtrip(self):
        term = make_list([1, 2, 3])
        assert list_elements(term) == [1, 2, 3]

    def test_make_list_with_tail(self):
        term = make_list([1], tail=Var("T"))
        assert term.args[1] == Var("T")

    def test_list_elements_rejects_partial(self):
        with pytest.raises(ValueError):
            list_elements(make_list([1], tail=Var("T")))


class TestTraversal:
    def test_iter_subterms_preorder(self):
        term = parse_term("f(g(a), b)")
        subs = list(iter_subterms(term))
        assert subs[0] == term
        assert Atom("a") in subs and Atom("b") in subs
        assert len(subs) == 4  # f, g, a, b

    def test_term_variables_order_and_dedup(self):
        term = parse_term("f(X, g(Y, X), Z)")
        assert term_variables(term) == [Var("X"), Var("Y"), Var("Z")]

    def test_term_variables_ground(self):
        assert term_variables(parse_term("f(a, 1)")) == []

    def test_deep_term_traversal_is_iterative(self):
        term = make_list(list(range(5000)))
        names = term_variables(term)
        assert names == []


class TestClauseParts:
    def test_fact(self):
        head, body = clause_parts(parse_term("p(1)"))
        assert head == Struct("p", (1,))
        assert body == []

    def test_rule(self):
        head, body = clause_parts(parse_term("p :- q, r, s"))
        assert head == Atom("p")
        assert [g.name for g in body] == ["q", "r", "s"]

    def test_flatten_left_nested(self):
        term = parse_term("((a, b), c)")
        assert [g.name for g in flatten_conjunction(term)] == ["a", "b", "c"]

    def test_disjunction_left_as_single_goal(self):
        _, body = clause_parts(parse_term("p :- (a ; b), c"))
        assert len(body) == 2
        assert isinstance(body[0], Struct) and body[0].functor == ";"
