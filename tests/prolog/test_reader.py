"""Unit tests for the operator-precedence reader."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog import (
    Atom,
    Struct,
    Var,
    list_elements,
    make_list,
    parse_program,
    parse_term,
)


class TestPrimaries:
    def test_atom(self):
        assert parse_term("foo") == Atom("foo")

    def test_integer(self):
        assert parse_term("42") == 42

    def test_negative_integer(self):
        assert parse_term("-7") == -7

    def test_variable(self):
        assert parse_term("X") == Var("X")

    def test_anonymous_variables_are_distinct(self):
        term = parse_term("f(_, _)")
        assert isinstance(term, Struct)
        assert term.args[0] != term.args[1]

    def test_compound(self):
        assert parse_term("f(a, X)") == Struct("f", (Atom("a"), Var("X")))

    def test_nested_compound(self):
        term = parse_term("f(g(h(1)))")
        assert term == Struct("f", (Struct("g", (Struct("h", (1,)),)),))

    def test_string_becomes_code_list(self):
        assert parse_term('"ab"') == make_list([97, 98])

    def test_curly_braces(self):
        assert parse_term("{a}") == Struct("{}", (Atom("a"),))
        assert parse_term("{}") == Atom("{}")


class TestLists:
    def test_empty_list(self):
        assert parse_term("[]") == Atom("[]")

    def test_proper_list(self):
        assert list_elements(parse_term("[1,2,3]")) == [1, 2, 3]

    def test_list_with_tail(self):
        term = parse_term("[a|T]")
        assert term == Struct(".", (Atom("a"), Var("T")))

    def test_multi_element_tail(self):
        term = parse_term("[a,b|T]")
        assert term == Struct(".", (Atom("a"), Struct(".", (Atom("b"), Var("T")))))

    def test_nested_lists(self):
        assert list_elements(parse_term("[[1],[2,3]]"))[0] == make_list([1])


class TestOperators:
    def test_infix_priority(self):
        # 1 + 2 * 3 parses as 1 + (2 * 3)
        term = parse_term("1 + 2 * 3")
        assert term == Struct("+", (1, Struct("*", (2, 3))))

    def test_left_associativity(self):
        # 1 - 2 - 3 parses as (1 - 2) - 3
        term = parse_term("1 - 2 - 3")
        assert term == Struct("-", (Struct("-", (1, 2)), 3))

    def test_right_associativity_of_comma(self):
        term = parse_term("(a, b, c)")
        assert term == Struct(",", (Atom("a"), Struct(",", (Atom("b"), Atom("c")))))

    def test_clause_operator(self):
        term = parse_term("h :- b")
        assert term == Struct(":-", (Atom("h"), Atom("b")))

    def test_xfx_does_not_chain(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("a = b = c.")

    def test_prefix_minus_on_expression(self):
        term = parse_term("X is -Y")
        assert term == Struct("is", (Var("X"), Struct("-", (Var("Y"),))))

    def test_parenthesised_operator_atom(self):
        term = parse_term("f(a + b)")
        assert term == Struct("f", (Struct("+", (Atom("a"), Atom("b"))),))

    def test_comma_separates_args_not_operator(self):
        term = parse_term("f(a, b)")
        assert isinstance(term, Struct)
        assert term.arity == 2

    def test_if_then_else(self):
        term = parse_term("(C -> T ; E)")
        assert term == Struct(";", (Struct("->", (Var("C"), Var("T"))), Var("E")))

    def test_negation_operator(self):
        assert parse_term("\\+ a") == Struct("\\+", (Atom("a"),))

    def test_univ(self):
        assert parse_term("X =.. L") == Struct("=..", (Var("X"), Var("L")))

    def test_comparison_chain_in_conjunction(self):
        term = parse_term("(X < 3, Y > 4)")
        assert term == Struct(",", (Struct("<", (Var("X"), 3)),
                                    Struct(">", (Var("Y"), 4))))


class TestPrograms:
    def test_multiple_clauses(self):
        clauses = parse_program("a. b. c :- a, b.")
        assert len(clauses) == 3

    def test_missing_period_raises(self):
        with pytest.raises(PrologSyntaxError):
            parse_program("a :- b c.")

    def test_empty_program(self):
        assert parse_program("") == []

    def test_comments_between_clauses(self):
        clauses = parse_program("a. % one\n/* two */ b.")
        assert len(clauses) == 2


class TestErrorMessages:
    def test_error_carries_location(self):
        with pytest.raises(PrologSyntaxError) as info:
            parse_program("a :-\n )b.")
        assert "line 2" in str(info.value)

    def test_unbalanced_paren(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("f(a")

    def test_unbalanced_bracket(self):
        with pytest.raises(PrologSyntaxError):
            parse_term("[a, b")
