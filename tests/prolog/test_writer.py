"""Writer tests including the reader/writer round-trip property."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prolog import Atom, Struct, Var, make_list, parse_term
from repro.prolog.writer import atom_needs_quotes, term_to_string


class TestWriter:
    def test_atom(self):
        assert term_to_string(Atom("foo")) == "foo"

    def test_quoted_atom(self):
        assert term_to_string(Atom("hello world")) == "'hello world'"

    def test_unquoted_mode(self):
        assert term_to_string(Atom("hello world"), quoted=False) == "hello world"

    def test_integer(self):
        assert term_to_string(42) == "42"
        assert term_to_string(-3) == "-3"

    def test_list(self):
        assert term_to_string(make_list([1, 2, 3])) == "[1,2,3]"

    def test_partial_list(self):
        assert term_to_string(Struct(".", (1, Var("T")))) == "[1|T]"

    def test_operator_output(self):
        term = Struct("+", (1, Struct("*", (2, 3))))
        assert term_to_string(term) == "1 + 2 * 3"

    def test_operator_needs_parens(self):
        term = Struct("*", (Struct("+", (1, 2)), 3))
        assert term_to_string(term) == "(1 + 2) * 3"

    def test_clause(self):
        term = Struct(":-", (Atom("h"), Atom("b")))
        assert term_to_string(term) == "h :- b"

    def test_negative_int_under_minus_functor(self):
        # -(3) must not print as -3 (which would read back as an integer).
        term = Struct("-", (3,))
        assert parse_term(term_to_string(term)) == term

    def test_atom_needing_quotes(self):
        assert atom_needs_quotes("hello world")
        assert atom_needs_quotes("Abc")
        assert not atom_needs_quotes("foo")
        assert not atom_needs_quotes("+")
        assert not atom_needs_quotes("[]")


# -- round-trip property -----------------------------------------------------

_atom_names = st.one_of(
    st.from_regex(r"[a-z][a-zA-Z0-9_]{0,6}", fullmatch=True),
    st.sampled_from(["+", "-", "*", "is", "=", "foo bar", "it's", "[]"]),
)

_var_names = st.from_regex(r"[A-Z][a-zA-Z0-9_]{0,4}", fullmatch=True)


def _terms(depth: int):
    base = st.one_of(
        st.integers(min_value=-1_000_000, max_value=1_000_000),
        _atom_names.map(Atom),
        _var_names.map(Var),
    )
    if depth == 0:
        return base
    sub = _terms(depth - 1)
    compound = st.builds(
        lambda name, args: Struct(name, tuple(args)),
        st.from_regex(r"[a-z][a-z0-9_]{0,5}", fullmatch=True),
        st.lists(sub, min_size=1, max_size=3),
    )
    lists = st.builds(lambda items: make_list(items), st.lists(sub, max_size=3))
    return st.one_of(base, compound, lists)


@given(_terms(3))
@settings(max_examples=300, deadline=None)
def test_write_parse_roundtrip(term):
    """parse(write(t)) == t for generated ground-ish terms."""
    assert parse_term(term_to_string(term)) == term
