"""Tests for the shared control-construct expander."""

from repro.prolog import Atom, Struct, Var, parse_term
from repro.prolog.transform import ControlExpander, TransformResult


def expand(text):
    expander = ControlExpander()
    result = TransformResult()
    main = expander.expand_clause(parse_term(text), result)
    return main, result


class TestFlattening:
    def test_fact(self):
        main, result = expand("p(1)")
        assert main.body == ()
        assert len(result.clauses) == 1

    def test_conjunction_flattened(self):
        main, _ = expand("p :- a, b, c")
        assert [g.name for g in main.body] == ["a", "b", "c"]

    def test_nested_conjunction(self):
        main, _ = expand("p :- (a, b), (c, d)")
        assert len(main.body) == 4


class TestDisjunction:
    def test_creates_aux_predicate(self):
        main, result = expand("p(X) :- (X = 1 ; X = 2)")
        assert len(main.body) == 1
        aux_goal = main.body[0]
        assert isinstance(aux_goal, Struct)
        assert aux_goal.functor.startswith("$dsj")
        # two auxiliary clauses, one per branch
        aux_clauses = [c for c in result.clauses if c is not main]
        assert len(aux_clauses) == 2
        assert result.auxiliary == {(aux_goal.functor, aux_goal.arity)}

    def test_aux_head_carries_construct_vars(self):
        main, _ = expand("p(X, Y) :- (X = 1 ; Y = 2)")
        aux_goal = main.body[0]
        assert set(aux_goal.args) == {Var("X"), Var("Y")}

    def test_variable_free_disjunction_gets_atom_head(self):
        main, result = expand("p :- (a ; b)")
        assert isinstance(main.body[0], Atom)

    def test_multi_branch(self):
        _, result = expand("p(X) :- (X = 1 ; X = 2 ; X = 3)")
        aux_clauses = [c for c in result.clauses[:-1]]
        assert len(aux_clauses) == 3


class TestIfThenElse:
    def test_condition_gets_cut(self):
        _, result = expand("p(X, R) :- (X > 0 -> R = pos ; R = neg)")
        then_clause = result.clauses[0]
        body_names = [g.name if isinstance(g, Atom) else g.functor
                      for g in then_clause.body]
        assert body_names == [">", "!", "="]

    def test_bare_if_then_gets_fail_branch(self):
        _, result = expand("p(X) :- (X > 0 -> true)")
        else_clause = result.clauses[1]
        assert [g.name for g in else_clause.body] == ["fail"]


class TestNegation:
    def test_two_clauses(self):
        main, result = expand("p(X) :- \\+ q(X)")
        aux_goal = main.body[0]
        assert aux_goal.functor.startswith("$not")
        aux_clauses = [c for c in result.clauses if c is not main]
        assert len(aux_clauses) == 2
        first, second = aux_clauses
        names = [g.name if isinstance(g, Atom) else g.functor
                 for g in first.body]
        assert names == ["q", "!", "fail"]
        assert second.body == ()

    def test_not_synonym(self):
        main, _ = expand("p(X) :- not(q(X))")
        assert main.body[0].functor.startswith("$not")


class TestNesting:
    def test_disjunction_inside_negation(self):
        _, result = expand("p(X) :- \\+ (X = 1 ; X = 2)")
        functors = {c.indicator[0][:4] for c in result.clauses}
        assert "$not" in functors
        assert "$dsj" in functors

    def test_unique_aux_names(self):
        expander = ControlExpander()
        result = TransformResult()
        expander.expand_clause(parse_term("p :- (a ; b)"), result)
        expander.expand_clause(parse_term("q :- (c ; d)"), result)
        names = {c.indicator for c in result.clauses
                 if c.indicator[0].startswith("$dsj")}
        assert len(names) == 2
