"""Unit tests for the Prolog tokenizer."""

import pytest

from repro.errors import PrologSyntaxError
from repro.prolog.tokens import Token, TokenKind, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def texts(text):
    return [t.text for t in tokenize(text)][:-1]  # drop EOF


class TestBasicTokens:
    def test_empty_input_gives_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_lowercase_identifier_is_atom(self):
        token = tokenize("hello")[0]
        assert token.kind is TokenKind.ATOM
        assert token.value == "hello"

    def test_uppercase_identifier_is_var(self):
        assert tokenize("Hello")[0].kind is TokenKind.VAR

    def test_underscore_is_var(self):
        assert tokenize("_")[0].kind is TokenKind.VAR
        assert tokenize("_foo")[0].kind is TokenKind.VAR

    def test_integer(self):
        token = tokenize("42")[0]
        assert token.kind is TokenKind.INT
        assert token.value == 42

    def test_character_code(self):
        assert tokenize("0'a")[0].value == ord("a")
        assert tokenize("0' ")[0].value == ord(" ")
        assert tokenize(r"0'\n")[0].value == 10

    def test_atom_followed_by_paren_is_open_ct(self):
        token = tokenize("foo(")[0]
        assert token.kind is TokenKind.OPEN_CT
        assert token.value == "foo"

    def test_atom_space_paren_is_not_open_ct(self):
        tokens = tokenize("foo (")
        assert tokens[0].kind is TokenKind.ATOM
        assert tokens[1].kind is TokenKind.PUNCT

    def test_symbolic_atoms(self):
        for symbol in [":-", "=..", "=:=", "\\+", "->", "@<", ">="]:
            token = tokenize(symbol + " ")[0]
            assert token.kind is TokenKind.ATOM, symbol
            assert token.value == symbol

    def test_solo_atoms(self):
        assert tokenize("!")[0].kind is TokenKind.ATOM
        assert tokenize(";")[0].kind is TokenKind.ATOM

    def test_punct(self):
        assert texts("( ) [ ] { } , |") == list("()[]{},|")


class TestQuotedAtoms:
    def test_simple(self):
        token = tokenize("'hello world'")[0]
        assert token.kind is TokenKind.ATOM
        assert token.value == "hello world"

    def test_doubled_quote_escape(self):
        assert tokenize("'it''s'")[0].value == "it's"

    def test_backslash_escape(self):
        assert tokenize(r"'a\nb'")[0].value == "a\nb"

    def test_quoted_functor(self):
        token = tokenize("'my functor'(")[0]
        assert token.kind is TokenKind.OPEN_CT
        assert token.value == "my functor"

    def test_unterminated_raises(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("'oops")


class TestStringsAndComments:
    def test_string_token(self):
        token = tokenize('"abc"')[0]
        assert token.kind is TokenKind.STRING
        assert token.value == "abc"

    def test_line_comment_skipped(self):
        assert kinds("a % comment\nb")[:2] == [TokenKind.ATOM, TokenKind.ATOM]

    def test_block_comment_skipped(self):
        assert texts("a /* hi */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("a /* oops")


class TestClauseEnd:
    def test_period_before_whitespace_is_end(self):
        tokens = tokenize("a.")
        assert tokens[1].kind is TokenKind.END

    def test_period_before_newline_is_end(self):
        assert tokenize("a.\n")[1].kind is TokenKind.END

    def test_symbolic_run_containing_period_is_atom(self):
        assert tokenize("=..")[0].value == "=.."

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestErrorCases:
    def test_unexpected_character(self):
        with pytest.raises(PrologSyntaxError):
            tokenize("\x01")

    def test_unknown_escape(self):
        with pytest.raises(PrologSyntaxError):
            tokenize(r"'\q'")
