"""Smoke tests: every example script runs to completion."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # Examples print; run them as __main__ and require some output.
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 50


def test_examples_exist():
    assert len(EXAMPLES) >= 4
    names = {p.stem for p in EXAMPLES}
    assert "quickstart" in names
