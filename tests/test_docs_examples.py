"""Documentation smoke tests: the commands the docs show must work.

Extracts every fenced shell block from the user-facing documents and

* parse-validates each ``psi-eval`` / ``python -m repro.eval.cli``
  command against the real argument parser (so CLI drift — a renamed
  flag, a removed target — fails the suite instead of rotting in the
  docs),
* checks that referenced script/test paths exist,
* executes the cheap commands end to end (``cache info``/``clear``).

Slow commands (``psi-eval all``, the profile of a practical-scale
workload) are deliberately parse-checked only.
"""

from __future__ import annotations

import pathlib
import re
import shlex

import pytest

from repro.eval.cli import build_parser

REPO = pathlib.Path(__file__).resolve().parent.parent

DOCS = [
    "README.md",
    "EXPERIMENTS.md",
    "docs/ARCHITECTURE.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVING.md",
]

_SHELL_LANGS = {"sh", "bash", "shell", "text", ""}
_PLACEHOLDER = re.compile(r"<([^<>]+)>")


def _shell_blocks(text: str) -> list[str]:
    """Fenced blocks whose info string is shell-ish (line-based: a lazy
    regex would mis-pair closing fences with the next opener)."""
    blocks: list[str] = []
    lang: str | None = None       # None = outside any fence
    current: list[str] = []
    for raw in text.splitlines():
        stripped = raw.strip()
        if stripped.startswith("```"):
            if lang is None:
                lang = stripped[3:].strip()
                current = []
            else:
                if lang in _SHELL_LANGS:
                    blocks.append("\n".join(current))
                lang = None
            continue
        if lang is not None:
            current.append(raw)
    return blocks


def shell_lines() -> list[tuple[str, str]]:
    """Every command line inside a fenced shell block, with its source doc."""
    lines: list[tuple[str, str]] = []
    for doc in DOCS:
        for block in _shell_blocks((REPO / doc).read_text()):
            for raw in block.splitlines():
                line = raw.split("#", 1)[0].strip()
                if line.startswith("$ "):       # transcript-style prompt
                    line = line[2:].strip()
                if line:
                    lines.append((doc, line))
    return lines


def _normalise(line: str) -> list[str] | None:
    """Turn a doc command line into psi-eval argv, or None if not psi-eval."""
    # `<a|b|c>` placeholders mean "one of": substitute the first option.
    line = _PLACEHOLDER.sub(lambda m: m.group(1).split("|")[0], line)
    try:
        tokens = shlex.split(line)
    except ValueError:
        return None
    # Strip leading VAR=VALUE environment assignments.
    while tokens and re.fullmatch(r"[A-Za-z_][A-Za-z_0-9]*=.*", tokens[0]):
        tokens.pop(0)
    if not tokens:
        return None
    if tokens[0] == "psi-eval":
        return tokens[1:]
    if tokens[:3] == ["python", "-m", "repro.eval.cli"]:
        return tokens[3:]
    return None


PSI_EVAL_LINES = [(doc, line) for doc, line in shell_lines()
                  if _normalise(line) is not None]


def test_docs_contain_psi_eval_examples():
    """The extraction itself must keep working (guards the regexes)."""
    assert len(PSI_EVAL_LINES) >= 8
    docs = {doc for doc, _ in PSI_EVAL_LINES}
    assert "README.md" in docs


@pytest.mark.parametrize("doc,line", PSI_EVAL_LINES,
                         ids=[f"{d}:{c}" for d, c in PSI_EVAL_LINES])
def test_psi_eval_commands_parse(doc, line):
    argv = _normalise(line)
    try:
        # parse_intermixed_args, exactly as cli.main() parses: documented
        # commands may put flags before positionals (psi-eval debug --diff
        # qsort), which plain parse_args rejects.
        args = build_parser().parse_intermixed_args(argv)
    except SystemExit:
        pytest.fail(f"{doc}: documented command no longer parses: {line!r}")
    assert args.target


def test_referenced_scripts_exist():
    for doc, line in shell_lines():
        tokens = line.split()
        if len(tokens) >= 2 and tokens[0] == "python" and \
                tokens[1].endswith(".py"):
            assert (REPO / tokens[1]).exists(), \
                f"{doc} references missing script {tokens[1]}"
        if tokens and tokens[0] == "pytest":
            for token in tokens[1:]:
                if token.startswith("-"):
                    continue
                assert (REPO / token.rstrip("/")).exists(), \
                    f"{doc} references missing pytest path {token}"


def test_cache_admin_commands_run(tmp_path, monkeypatch, capsys):
    """The documented cache workflow, executed for real."""
    from repro.eval.cli import main

    monkeypatch.setenv("PSI_CACHE_DIR", str(tmp_path))
    assert main(["cache", "info"]) == 0
    assert "0 entries" in capsys.readouterr().out
    assert main(["cache", "clear"]) == 0
    assert "removed 0" in capsys.readouterr().out


def test_profile_command_runs_end_to_end(tmp_path, capsys):
    """`psi-eval profile` on the smallest workload: all artifacts appear."""
    import json

    from repro.eval.cli import main

    assert main(["profile", "bup-2", "--out", str(tmp_path), "--top", "3"]) == 0
    out = capsys.readouterr().out
    assert "bup-2" in out and "total" in out
    chrome = json.loads((tmp_path / "bup-2.trace.json").read_text())
    assert isinstance(chrome["traceEvents"], list) and chrome["traceEvents"]
    collapsed = (tmp_path / "bup-2.collapsed.txt").read_text().splitlines()
    assert collapsed and all(" " in line for line in collapsed)
    jsonl = (tmp_path / "bup-2.trace.jsonl").read_text().splitlines()
    assert json.loads(jsonl[0])["meta"]["clock"] == "microsteps"
