"""Tracer unit tests: ring buffers, slices, exports, round-trips."""

import io
import json

import pytest

from repro.obs.trace import (
    SCHEMA_VERSION,
    STEP_NS,
    RingBuffer,
    TraceEvent,
    Tracer,
    read_jsonl,
)


class TestRingBuffer:
    def test_append_and_order(self):
        ring = RingBuffer(4)
        for i in range(3):
            ring.append(i)
        assert list(ring) == [0, 1, 2]
        assert len(ring) == 3
        assert ring.dropped == 0

    def test_overflow_drops_oldest(self):
        ring = RingBuffer(3)
        for i in range(5):
            ring.append(i)
        assert list(ring) == [2, 3, 4]
        assert len(ring) == 3
        assert ring.dropped == 2

    def test_exact_capacity_boundary(self):
        ring = RingBuffer(2)
        ring.append("a")
        ring.append("b")
        assert list(ring) == ["a", "b"]
        assert ring.dropped == 0
        ring.append("c")
        assert list(ring) == ["b", "c"]
        assert ring.dropped == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingBuffer(0)


class TestSlices:
    def test_begin_implicitly_ends_previous(self):
        tracer = Tracer()
        tracer.begin_slice("calls", "a/1", 0)
        tracer.begin_slice("calls", "b/2", 10)
        tracer.finish(25)
        events = tracer.events("calls")
        assert [(e.name, e.ts, e.dur) for e in events] == [
            ("a/1", 0, 10), ("b/2", 10, 15)]

    def test_zero_length_slice_not_recorded(self):
        tracer = Tracer()
        tracer.begin_slice("calls", "a/1", 5)
        tracer.begin_slice("calls", "b/2", 5)   # a/1 lasted 0 steps
        tracer.finish(9)
        assert [e.name for e in tracer.events("calls")] == ["b/2"]

    def test_merged_events_sorted_by_ts(self):
        tracer = Tracer()
        tracer.instant("stacks", "late", 100)
        tracer.counter("cache", "hit_ratio", 50, 97.0)
        tracer.complete("calls", "a/1", 0, 10)
        assert [e.ts for e in tracer.events()] == [0, 50, 100]


class TestJsonlRoundTrip:
    def _tracer(self) -> Tracer:
        tracer = Tracer(capacity=16)
        tracer.complete("calls", "a/1", 0, 10, {"module": "control"})
        tracer.instant("stacks", "top.local", 4)
        tracer.counter("cache", "hit_ratio", 8, 96.5)
        return tracer

    def test_round_trip_preserves_events(self):
        tracer = self._tracer()
        buf = io.StringIO()
        written = tracer.to_jsonl(buf)
        meta, events = read_jsonl(buf.getvalue().splitlines())
        assert written == len(events) == 3
        assert meta["schema"] == SCHEMA_VERSION
        assert meta["clock"] == "microsteps"
        assert meta["step_ns"] == STEP_NS
        assert events == tracer.events()

    def test_every_line_is_json(self):
        buf = io.StringIO()
        self._tracer().to_jsonl(buf)
        lines = buf.getvalue().splitlines()
        assert len(lines) == 4            # header + 3 events
        for line in lines:
            json.loads(line)

    def test_event_equality_is_structural(self):
        a = TraceEvent(1, 2, "X", "calls", "p/1", {"k": 1})
        b = TraceEvent(1, 2, "X", "calls", "p/1", {"k": 1})
        c = TraceEvent(1, 3, "X", "calls", "p/1", {"k": 1})
        assert a == b
        assert a != c


class TestChromeExport:
    def test_valid_trace_event_json(self):
        tracer = Tracer()
        tracer.complete("calls", "a/1", 0, 10)
        tracer.instant("stacks", "top.local", 4)
        tracer.counter("cache", "hit_ratio", 8, 96.5)
        buf = io.StringIO()
        count = tracer.to_chrome(buf, process_name="unit")
        doc = json.loads(buf.getvalue())
        assert count == 3
        events = doc["traceEvents"]
        # 1 process_name + 3 thread_name metadata events + 3 events
        assert len(events) == 7
        metadata = [e for e in events if e["ph"] == "M"]
        assert {"process_name", "thread_name"} == {e["name"] for e in metadata}
        span = next(e for e in events if e["ph"] == "X")
        assert span["name"] == "a/1"
        # 10 steps at STEP_NS ns/step, exported in microseconds
        assert span["dur"] == pytest.approx(10 * STEP_NS / 1000.0)
        counter = next(e for e in events if e["ph"] == "C")
        assert counter["args"] == {"value": 96.5}
        instant = next(e for e in events if e["ph"] == "i")
        assert instant["s"] == "t"

    def test_tracks_get_distinct_threads(self):
        tracer = Tracer()
        tracer.complete("calls", "a/1", 0, 1)
        tracer.complete("micro", "proceed", 0, 1)
        buf = io.StringIO()
        tracer.to_chrome(buf)
        doc = json.loads(buf.getvalue())
        tids = {e["cat"]: e["tid"] for e in doc["traceEvents"] if "cat" in e}
        assert len(set(tids.values())) == 2


def test_dropped_counts_survive_metadata():
    tracer = Tracer(capacity=2)
    for i in range(5):
        tracer.instant("stacks", "x", i)
    assert tracer.dropped == {"stacks": 3}
    assert tracer.metadata()["dropped"] == {"stacks": 3}
    assert len(tracer) == 2
