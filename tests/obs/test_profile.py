"""Profiler tests: exact attribution, collapsed stacks, top table."""

import io

import pytest

from repro.core.micro import Module
from repro.obs.profile import MicroProfile


class TestAttribution:
    def test_add_accumulates(self):
        profile = MicroProfile()
        profile.add("a/1", Module.CONTROL, 10)
        profile.add("a/1", Module.CONTROL, 5)
        profile.add("a/1", Module.UNIFY, 3)
        assert profile.total_steps == 18
        assert profile.by_predicate()["a/1"] == 18
        assert profile.by_module()[Module.CONTROL] == 15

    def test_sampled_mode_weights_every_nth(self):
        profile = MicroProfile(sample_interval=4)
        for _ in range(8):
            profile.add_sampled("a/1", Module.CONTROL, 2)
        # Emissions 4 and 8 are attributed, each weighted x4.
        assert profile.total_steps == 2 * 2 * 4

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            MicroProfile(sample_interval=0)

    def test_merge(self):
        a, b = MicroProfile(), MicroProfile()
        a.add("p/1", Module.CONTROL, 1)
        b.add("p/1", Module.CONTROL, 2)
        b.add("q/2", Module.UNIFY, 3)
        a.merge(b)
        assert a.samples[("p/1", Module.CONTROL)] == 3
        assert a.total_steps == 6


class TestCollapsedStacks:
    def test_format_and_determinism(self):
        profile = MicroProfile()
        profile.add("b/2", Module.UNIFY, 7)
        profile.add("a/1", Module.CONTROL, 3)
        lines = profile.collapsed_stacks()
        assert lines == ["a/1;control 3", "b/2;unify 7"]   # sorted
        assert profile.collapsed_stacks(root="run") == [
            "run;a/1;control 3", "run;b/2;unify 7"]

    def test_zero_sample_lines_omitted(self):
        profile = MicroProfile()
        profile.add("a/1", Module.CONTROL, 0)
        assert profile.collapsed_stacks() == []

    def test_write_collapsed(self):
        profile = MicroProfile()
        profile.add("a/1", Module.CONTROL, 3)
        buf = io.StringIO()
        assert profile.write_collapsed(buf) == 1
        assert buf.getvalue() == "a/1;control 3\n"


class TestTopTable:
    def test_totals_row_and_other(self):
        profile = MicroProfile()
        for i in range(5):
            profile.add(f"p{i}/1", Module.CONTROL, 10 * (i + 1))
        table = profile.top_table(top=2)
        assert "(other)" in table
        assert table.splitlines()[-1].split()[:2] == ["total", "150"]

    def test_empty(self):
        assert MicroProfile().top_table() == "no samples"


def test_observed_run_attribution_sums_to_total_steps():
    """The tentpole invariant: profile total == stats total, exactly."""
    from repro import obs
    from repro.tools.collect import collect
    from repro.workloads import get

    workload = get("qsort")
    with obs.observed():
        run = collect(workload.source, workload.goal,
                      all_solutions=workload.all_solutions,
                      record_trace=False,
                      setup_goals=workload.setup_goals)
    obs.reset()
    observation = run.observation
    assert observation.profile.total_steps == run.stats.total_steps
    assert observation.total_steps == run.stats.total_steps
    # Collapsed stacks carry the same total.
    total = sum(int(line.rsplit(" ", 1)[1])
                for line in observation.profile.collapsed_stacks())
    assert total == run.stats.total_steps
    # Real predicates dominate; the startup placeholder is negligible.
    by_predicate = observation.profile.by_predicate()
    assert by_predicate.most_common(1)[0][0].endswith(tuple("0123456789"))
