"""Paper-drift scoring tests: pure scorers, aggregation, the CLI gate."""

import json
import types

import pytest

from repro.eval import paper_data
from repro.obs import fidelity
from repro.obs.fidelity import (
    CellDrift,
    FidelityReport,
    TableFidelity,
    _cell,
    score_figure1,
    score_table1,
    score_table3,
)


class TestCellMath:
    def test_ratio_kind_uses_relative_error(self):
        cell = _cell("ratio", 0.25, "r", "c", paper=2.0, measured=2.5)
        assert cell.error == pytest.approx(0.25)
        assert cell.drift == pytest.approx(1.0)
        assert cell.within

    def test_percent_kind_uses_absolute_points(self):
        cell = _cell("percent", 5.0, "r", "c", paper=40.0, measured=47.5)
        assert cell.error == pytest.approx(7.5)
        assert cell.drift == pytest.approx(1.5)
        assert not cell.within

    def test_unknown_kind_raises(self):
        with pytest.raises(ValueError):
            _cell("absolute", 1.0, "r", "c", 1.0, 1.0)

    def test_zero_paper_value_does_not_divide_by_zero(self):
        cell = _cell("ratio", 0.25, "r", "c", paper=0.0, measured=0.1)
        assert cell.drift > 1.0


class TestScorers:
    def test_table1_scores_the_ratio_column(self):
        rows = [types.SimpleNamespace(name="nrev", paper_ratio=1.5, ratio=1.4),
                types.SimpleNamespace(name="qsort", paper_ratio=1.0, ratio=2.0)]
        table = score_table1(rows)
        assert table.kind == "ratio"
        assert len(table.cells) == 2
        in_band, out_band = table.cells
        assert in_band.within and not out_band.within
        assert table.score == pytest.approx(50.0)

    def test_table3_skips_rows_without_paper_values(self):
        row = types.SimpleNamespace(program="bup", paper=(20.0, 8.0, 12.0,
                                                          20.0, 40.0),
                                    read=21.0, write_stack=9.0, write=11.0,
                                    write_total=20.0, total=41.0)
        silent = types.SimpleNamespace(program="x", paper=None)
        table = score_table3([row, silent])
        assert {c.row for c in table.cells} == {"bup"}
        assert len(table.cells) == 5
        assert table.score == 100.0

    def test_figure1_single_saturation_cell(self):
        result = types.SimpleNamespace(
            saturation_capacity=paper_data.FIGURE1_SATURATION_WORDS)
        table = score_figure1(result)
        assert len(table.cells) == 1
        assert table.cells[0].within
        assert table.score == 100.0


def _table(name: str, drifts) -> TableFidelity:
    cells = tuple(CellDrift(row=f"r{i}", col="c", paper=1.0, measured=1.0,
                            error=d, drift=d) for i, d in enumerate(drifts))
    return TableFidelity(name, "ratio", 1.0, cells)


class TestAggregation:
    def test_overall_is_equal_weight_mean_of_table_scores(self):
        report = FidelityReport(tables=(
            _table("a", [0.5, 0.5]),            # 100
            _table("b", [0.5, 2.0, 2.0, 2.0]),  # 25
        ))
        assert report.overall_score == pytest.approx(62.5)
        assert report.overall_drift == pytest.approx(37.5)
        assert report.total_cells == 6
        assert report.total_within == 3

    def test_pass_fail_threshold(self):
        tables = (_table("a", [2.0]),)         # 0% in band -> drift 100
        assert FidelityReport(tables=tables, threshold=100.0).passed
        assert not FidelityReport(tables=tables, threshold=50.0).passed

    def test_to_dict_schema_and_cell_limit(self):
        report = FidelityReport(tables=(_table("a", [0.1, 3.0, 2.0]),))
        doc = report.to_dict(cell_limit=2)
        assert doc["schema"] == fidelity.JSON_SCHEMA_VERSION
        assert set(doc) == {"schema", "threshold", "passed", "overall",
                            "tables"}
        table_doc = doc["tables"]["a"]
        assert table_doc["cells"] == 3
        assert len(table_doc["worst_cells"]) == 2
        # worst first
        assert table_doc["worst_cells"][0]["drift"] == pytest.approx(3.0)
        json.dumps(doc)                        # plain data

    def test_render_names_the_worst_cell_and_verdict(self):
        report = FidelityReport(tables=(_table("a", [0.1, 3.0]),),
                                threshold=10.0)
        text = report.render()
        assert "r1" in text and "FAIL" in text

    def test_collect_rejects_unknown_tables(self):
        with pytest.raises(ValueError):
            fidelity.collect(tables=["table9"])


class TestBands:
    def test_every_scoreable_artifact_has_a_band(self):
        assert set(paper_data.FIDELITY_BANDS) == set(fidelity.TABLES)
        for band in paper_data.FIDELITY_BANDS.values():
            assert band["kind"] in ("ratio", "percent")
            assert band["tolerance"] > 0


class TestCliGate:
    """`psi-eval fidelity` must exit non-zero above threshold — both ways."""

    @pytest.fixture()
    def fake_collect(self, monkeypatch):
        def _install(drifts):
            def collect(tables=None, threshold=fidelity.DEFAULT_MAX_DRIFT):
                return FidelityReport(tables=(_table("table2", drifts),),
                                      threshold=threshold)
            monkeypatch.setattr(fidelity, "collect", collect)
        return _install

    def test_exit_zero_below_threshold(self, fake_collect, capsys):
        from repro.eval.cli import main
        fake_collect([0.1, 0.2])
        assert main(["fidelity"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_exit_one_above_threshold(self, fake_collect, capsys):
        from repro.eval.cli import main
        fake_collect([2.0, 3.0, 4.0])          # 0% in band
        assert main(["fidelity"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_max_drift_flag_moves_the_gate(self, fake_collect):
        from repro.eval.cli import main
        fake_collect([0.5, 2.0])               # 50% in band, drift 50
        assert main(["fidelity", "--max-drift", "60"]) == 0
        assert main(["fidelity", "--max-drift", "40"]) == 1

    def test_json_output_is_parseable_and_carries_verdict(self, fake_collect,
                                                          capsys):
        from repro.eval.cli import main
        fake_collect([0.5])
        assert main(["fidelity", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["passed"] is True
        assert doc["tables"]["table2"]["score"] == 100.0

    def test_append_history_writes_an_entry(self, fake_collect, tmp_path,
                                            monkeypatch):
        from repro.eval.cli import main
        from repro.eval.history import HistoryStore
        monkeypatch.setenv("PSI_HISTORY_DIR", str(tmp_path))
        fake_collect([0.5])
        assert main(["fidelity", "--append-history"]) == 0
        entries = HistoryStore().entries()
        assert len(entries) == 1
        assert entries[0]["kind"] == "fidelity"
        assert entries[0]["fidelity"]["overall"]["score"] == 100.0
