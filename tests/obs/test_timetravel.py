"""Time-travel state reconstruction: checkpointed seek == cold replay.

The contract that makes the explorer trustworthy: the state rebuilt
from the nearest checkpoint plus a short replay must be *identical* —
full snapshot equality, cache LRU order included — to a cold replay of
the whole prefix.  Checked here for real workload traces at stride
boundaries, N=0 and N=last, plus targeted synthetic-trace tests of the
reclaim/backtrack inference and the differential-mode pinpointing.
"""

import pytest

from repro.core.machine import CONTROL_FRAME_WORDS
from repro.core.memory import AREA_SHIFT, Area
from repro.obs.statelog import read_statelog, write_statelog
from repro.obs.timetravel import (
    AUTO_TARGET_CHECKPOINTS,
    Divergence,
    ReplayState,
    TraceExplorer,
    auto_stride,
    first_divergence,
)

WORKLOADS = ("nreverse", "qsort", "queens-one")


def _packed(code: int, area: int, offset: int) -> int:
    return (((area << AREA_SHIFT) | offset) << 2) | code


@pytest.fixture(scope="module")
def explorers():
    """One built explorer (plus its run) per workload, shared module-wide."""
    from repro.eval.runner import run_psi

    built = {}
    for name in WORKLOADS:
        run = run_psi(name, record_trace=True)
        built[name] = (run, TraceExplorer(run.trace))
    return built


class TestAutoStride:
    def test_minimum_is_256(self):
        assert auto_stride(0) == 256
        assert auto_stride(10_000) == 256

    def test_power_of_two_and_bounded_count(self):
        for n in (10_000, 128_671, 570_327, 5_000_000):
            stride = auto_stride(n)
            assert stride & (stride - 1) == 0
            assert n // stride <= AUTO_TARGET_CHECKPOINTS


class TestSeekEquivalence:
    @pytest.mark.parametrize("name", WORKLOADS)
    def test_checkpointed_seek_matches_cold_replay(self, explorers, name):
        _, explorer = explorers[name]
        n, stride = explorer.n_steps, explorer.stride
        assert n > stride, "workload trace too short to exercise seeking"
        targets = {0, 1, stride - 1, stride, stride + 1,
                   3 * stride, n // 2, n - 1, n}
        for step in sorted(targets):
            assert explorer.state_at(step) == explorer.cold_state_at(step), \
                f"{name}: seek to microstep {step} diverged from cold replay"

    @pytest.mark.parametrize("name", WORKLOADS)
    def test_final_state_is_the_full_replay(self, explorers, name):
        _, explorer = explorers[name]
        assert explorer.final == explorer.cold_state_at(explorer.n_steps)
        assert explorer.final.step == explorer.n_steps

    def test_explicit_stride_changes_checkpoints_not_states(self, explorers):
        run, auto = explorers["nreverse"]
        coarse = TraceExplorer(run.trace, stride=4096)
        assert len(coarse.checkpoint_steps) < len(auto.checkpoint_steps)
        for step in (0, 5000, auto.n_steps):
            assert coarse.state_at(step) == auto.state_at(step)

    def test_seek_out_of_range(self, explorers):
        _, explorer = explorers["nreverse"]
        with pytest.raises(IndexError):
            explorer.state_at(explorer.n_steps + 1)
        with pytest.raises(IndexError):
            explorer.cold_state_at(-1)


class TestObservedExtents:
    def test_reads_and_writes_raise_top(self):
        state = ReplayState(with_cache=False)
        state.apply(_packed(0, Area.HEAP, 9))       # READ heap[9]
        assert state.areas[Area.HEAP].top == 10
        state.apply(_packed(1, Area.HEAP, 4))       # WRITE below top
        assert state.areas[Area.HEAP].top == 10
        assert state.registers["HP"] == 10

    def test_write_stack_below_top_is_a_reclaim(self):
        state = ReplayState(with_cache=False)
        for offset in range(6):
            state.apply(_packed(2, Area.TRAIL, offset))
        state.apply(_packed(2, Area.TRAIL, 2))      # push below top: settop
        trail = state.areas[Area.TRAIL]
        assert trail.reclaims == 1
        assert trail.reclaimed_words == 6 - 2
        assert trail.top == 3
        assert trail.high_water == 6
        assert state.backtracks == 0                # trail, not control

    def test_control_reclaim_counts_as_backtrack(self):
        state = ReplayState(with_cache=False)
        for offset in range(2 * CONTROL_FRAME_WORDS):
            state.apply(_packed(2, Area.CONTROL, offset))
        assert state.control_depth == 2
        assert state.control_frames == [0, CONTROL_FRAME_WORDS]
        state.apply(_packed(2, Area.CONTROL, 0))    # pop back to frame 0
        assert state.backtracks == 1
        assert state.control_depth == 0             # 1 word of a new frame

    def test_snapshot_roundtrip_preserves_future_behaviour(self):
        entries = [_packed(code, area, offset)
                   for offset in range(40)
                   for area, code in ((Area.HEAP, 0), (Area.GLOBAL, 2),
                                      (Area.CONTROL, 2))]
        half = len(entries) // 2
        state = ReplayState()
        state.apply_many(entries[:half])
        resumed = ReplayState.from_snapshot(state.snapshot())
        assert resumed == state
        state.apply_many(entries[half:])
        resumed.apply_many(entries[half:])
        assert resumed == state                      # LRU order survived


class TestTimeline:
    def test_timeline_covers_the_whole_trace(self, explorers):
        _, explorer = explorers["nreverse"]
        points = explorer.timeline
        assert points[-1].step == explorer.n_steps
        assert sum(sum(p.area_accesses) for p in points) == explorer.n_steps
        assert sum(p.backtracks for p in points) == explorer.final.backtracks
        final_stats = explorer.final.cache.stats
        assert sum(p.hits for p in points) == final_stats.hits
        assert sum(p.misses for p in points) == final_stats.misses

    def test_empty_trace(self):
        explorer = TraceExplorer([])
        assert explorer.n_steps == 0
        assert explorer.timeline == []
        assert explorer.state_at(0) == explorer.final


class TestFirstDivergence:
    ANSWERS = ((("X", "a"),), (("X", "b"),), (("X", "c"),))
    MARKS = (100, 220, 300)

    def test_agreement_is_none(self):
        assert first_divergence("w", self.ANSWERS, self.MARKS,
                                self.ANSWERS, 400) is None

    def test_diverging_answer_pinpoints_its_mark(self):
        other = (self.ANSWERS[0], (("X", "WRONG"),), self.ANSWERS[2])
        div = first_divergence("w", self.ANSWERS, self.MARKS, other, 400)
        assert isinstance(div, Divergence)
        assert (div.kind, div.index, div.microstep) == ("answer", 1, 220)
        assert "microstep 220/400" in div.describe()

    def test_psi_missing_answers(self):
        div = first_divergence("w", self.ANSWERS[:2], self.MARKS[:2],
                               self.ANSWERS, 400)
        assert (div.kind, div.index) == ("psi_missing", 2)

    def test_other_missing_answers(self):
        div = first_divergence("w", self.ANSWERS, self.MARKS,
                               self.ANSWERS[:1], 400)
        assert (div.kind, div.index, div.microstep) == \
            ("other_missing", 1, 220)

    def test_no_marks_falls_back_to_total(self):
        other = ((("X", "WRONG"),),)
        div = first_divergence("w", self.ANSWERS[:1], (), other, 400)
        assert div.microstep == 400


class TestAnswerMarks:
    def test_marks_align_with_answers_and_trace(self, explorers):
        for name in WORKLOADS:
            run, explorer = explorers[name]
            assert len(run.answer_marks) == len(run.answers)
            assert all(0 < mark <= explorer.n_steps
                       for mark in run.answer_marks)
            assert list(run.answer_marks) == sorted(run.answer_marks)

    def test_marks_survive_the_summary_roundtrip(self, explorers):
        run, _ = explorers["nreverse"]
        assert run.to_summary().to_collected_run().answer_marks \
            == run.answer_marks


class TestStatelog:
    def test_roundtrip(self, tmp_path, explorers):
        run, explorer = explorers["nreverse"]
        path = tmp_path / "state.jsonl"
        count = write_statelog(path, explorer, goal=run.goal,
                               stats=run.stats)
        header, states = read_statelog(path)
        assert count == len(states)
        assert header["entries"] == explorer.n_steps
        assert header["stride"] == explorer.stride
        assert header["stats"]["total_steps"] == run.stats.total_steps
        assert states[0]["step"] == 0
        assert states[-1]["step"] == explorer.n_steps
        final = states[-1]
        assert final["registers"] == explorer.final.registers
        assert final["backtracks"] == explorer.final.backtracks
        assert final["cache"]["hits"] == explorer.final.cache.stats.hits

    def test_rejects_non_statelog(self, tmp_path):
        path = tmp_path / "bogus.jsonl"
        path.write_text('{"type": "state"}\n')
        with pytest.raises(ValueError):
            read_statelog(path)
