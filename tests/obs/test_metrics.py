"""Metrics registry tests, including parallel-merge == serial equality."""

import pytest

from repro import obs
from repro.obs.metrics import (
    LATENCY_MS_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


class TestInstruments:
    def test_counter(self):
        c = Counter("n")
        c.inc()
        c.inc(4)
        assert c.value == 5
        other = Counter("n")
        other.inc(2)
        c.merge_dict(other.to_dict())
        assert c.value == 7

    def test_gauge_envelope(self):
        g = Gauge("x")
        g.set(5.0)
        g.set(2.0)
        g.set(3.0)
        assert (g.value, g.min, g.max) == (3.0, 2.0, 5.0)

    def test_gauge_merge_sums_and_widens(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(3.0)
        b.set(10.0)
        b.set(7.0)
        a.merge_dict(b.to_dict())
        assert (a.value, a.min, a.max) == (10.0, 3.0, 10.0)

    def test_histogram_buckets_upper_inclusive(self):
        h = Histogram("h", boundaries=(10.0, 20.0))
        for value in (5.0, 10.0, 15.0, 20.0, 25.0):
            h.observe(value)
        assert h.buckets == [2, 2, 1]        # <=10, <=20, overflow
        assert h.count == 5
        assert h.mean == pytest.approx(15.0)

    def test_histogram_merge_requires_same_boundaries(self):
        a = Histogram("h", boundaries=(1.0,))
        b = Histogram("h", boundaries=(2.0,))
        with pytest.raises(ValueError):
            a.merge_dict(b.to_dict())


class TestHistogramPercentile:
    def test_empty_histogram_returns_none(self):
        h = Histogram("h")
        assert h.percentile(50) is None
        assert h.percentile(0) is None

    def test_out_of_range_quantile_raises(self):
        h = Histogram("h")
        h.observe(50.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(100.5)

    def test_single_sample_stays_inside_its_bucket(self):
        h = Histogram("h", boundaries=(10.0, 20.0))
        h.observe(15.0)                     # lands in (10, 20]
        for q in (0, 50, 100):
            p = h.percentile(q)
            assert 10.0 <= p <= 20.0

    def test_single_sample_in_first_bucket_clamps_at_zero(self):
        h = Histogram("h", boundaries=(10.0, 20.0))
        h.observe(5.0)
        assert 0.0 <= h.percentile(50) <= 10.0

    def test_overflow_bucket_reports_largest_boundary(self):
        # The estimator cannot see past the last boundary.
        h = Histogram("h", boundaries=(10.0,))
        h.observe(1000.0)
        assert h.percentile(99) == 10.0

    def test_boundaryless_histogram_falls_back_to_mean(self):
        h = Histogram("h", boundaries=())
        h.observe(3.0)
        h.observe(5.0)
        assert h.percentile(50) == pytest.approx(4.0)

    def test_interpolation_is_monotonic(self):
        h = Histogram("h", boundaries=(10.0, 20.0, 30.0))
        for value in (5.0, 12.0, 15.0, 22.0, 28.0, 29.0):
            h.observe(value)
        quantiles = [h.percentile(q) for q in (10, 25, 50, 75, 90, 100)]
        assert quantiles == sorted(quantiles)
        assert quantiles[-1] <= 30.0

    def test_merged_snapshot_percentiles_match_union(self):
        # run_many folds worker snapshots into the parent registry; a
        # percentile of the merged histogram must equal the percentile
        # of one histogram fed every observation directly.
        parts = ([12.0, 55.0, 81.0], [91.0, 97.0, 99.2], [50.0, 85.0])
        workers = []
        for values in parts:
            h = Histogram("h")
            for value in values:
                h.observe(value)
            workers.append(h)

        merged = Histogram("h")
        for worker in workers:
            merged.merge_dict(worker.to_dict())
        direct = Histogram("h")
        for values in parts:
            for value in values:
                direct.observe(value)

        assert merged.to_dict() == direct.to_dict()
        for q in (0, 25, 50, 75, 90, 99, 100):
            assert merged.percentile(q) == pytest.approx(direct.percentile(q))

    def test_quantiles_summary_shape(self):
        # The dict the serve 'metrics' endpoint returns for latencies.
        h = Histogram("h", boundaries=LATENCY_MS_BUCKETS)
        assert h.quantiles() == {"count": 0, "mean": 0.0, "p50": None,
                                 "p90": None, "p99": None}
        for value in (0.4, 3.0, 8.0, 40.0, 900.0):
            h.observe(value)
        summary = h.quantiles(qs=(50.0, 99.0))
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(sum((0.4, 3.0, 8.0, 40.0,
                                                     900.0)) / 5)
        assert 2.0 <= summary["p50"] <= 10.0
        assert 500.0 <= summary["p99"] <= 1000.0
        assert "p90" not in summary

    def test_latency_buckets_are_valid_boundaries(self):
        # Sorted (the Histogram constructor enforces it) and spanning
        # sub-ms cache hits through ~30 s cold practical-scale runs.
        h = Histogram("h", boundaries=LATENCY_MS_BUCKETS)
        assert h.boundaries[0] <= 1.0
        assert h.boundaries[-1] >= 30000.0
        h.observe(0.01)
        h.observe(60000.0)                  # overflow bucket
        assert h.count == 2


class TestRegistry:
    def test_create_on_first_use_and_kind_clash(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        assert reg.counter("a").value == 1
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_merge_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(97.0)
        snapshot = reg.snapshot()

        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot

        # Merging the snapshot twice doubles every additive quantity.
        rebuilt.merge(snapshot)
        assert rebuilt.value("c") == 6
        assert rebuilt.value("g") == 3.0
        assert rebuilt.get("h").count == 2

    def test_snapshot_is_plain_data(self):
        import json
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(50.0)
        json.dumps(reg.snapshot())       # must not raise


WORKLOADS = ["nreverse", "qsort"]


def _metrics_after(run_fn) -> dict:
    """Global metrics snapshot after running WORKLOADS via ``run_fn``."""
    from repro.eval import runner
    runner.clear_cache()
    runner.set_disk_cache(False)
    obs.reset()
    obs.enable()
    try:
        run_fn()
        return obs.global_metrics().snapshot()
    finally:
        runner.set_disk_cache(True)
        runner.clear_cache()
        obs.reset()


def test_parallel_worker_merge_equals_serial():
    """run_many across processes must aggregate to the serial metrics."""
    from repro.eval import runner

    def serial():
        for name in WORKLOADS:
            runner.run_psi(name, record_trace=False)

    def parallel():
        runner.run_many(WORKLOADS, jobs=2, record_trace=False)

    serial_snapshot = _metrics_after(serial)
    parallel_snapshot = _metrics_after(parallel)
    assert serial_snapshot == parallel_snapshot
    assert serial_snapshot["psi.runs"]["value"] == len(WORKLOADS)
    assert serial_snapshot["psi.microsteps"]["value"] > 0


def test_cached_runs_contribute_no_metrics(tmp_path, monkeypatch):
    """A disk-cache hit skips execution, so it adds nothing to metrics."""
    from repro.eval import runner

    monkeypatch.setenv("PSI_CACHE_DIR", str(tmp_path))
    runner.clear_cache()
    runner.set_disk_cache(True)
    obs.reset()
    obs.enable()
    try:
        runner.run_psi("nreverse")          # miss: executes, records
        assert obs.global_metrics().value("psi.runs") == 1
        runner.clear_cache()                # drop the in-memory tier only
        run = runner.run_psi("nreverse")    # disk hit: no execution
        assert run.observation is None
        assert obs.global_metrics().value("psi.runs") == 1
    finally:
        runner.clear_cache()
        obs.reset()
