"""Differential profiling tests: snapshots, reconciliation, end-to-end."""

import json

import pytest

from repro.core.micro import Module
from repro.obs.diffprof import (
    diff_profiles,
    diff_snapshot_files,
    is_snapshot_file,
    read_snapshot,
)
from repro.obs.profile import MicroProfile


def _profile(samples: dict) -> MicroProfile:
    profile = MicroProfile()
    for (predicate, module), steps in samples.items():
        profile.add(predicate, module, steps)
    return profile


class TestProfileSnapshotRoundTrip:
    def test_to_dict_from_dict_is_lossless(self):
        profile = _profile({("a/1", Module.UNIFY): 10,
                            ("b/2", Module.CONTROL): 7})
        rebuilt = MicroProfile.from_dict(profile.to_dict())
        assert rebuilt.samples == profile.samples
        assert rebuilt.total_steps == profile.total_steps

    def test_save_load(self, tmp_path):
        profile = _profile({("a/1", Module.UNIFY): 10})
        path = tmp_path / "p.json"
        profile.save(path)
        assert MicroProfile.load(path).samples == profile.samples


class TestDiff:
    def test_deltas_and_hotspot_classification(self):
        base = _profile({("a/1", Module.UNIFY): 10,
                         ("gone/0", Module.CONTROL): 5})
        current = _profile({("a/1", Module.UNIFY): 14,
                            ("new/0", Module.TRAIL): 3})
        diff = diff_profiles(base, current)
        by_key = {(d.predicate, d.module): d for d in diff.deltas}
        assert by_key[("a/1", "unify")].delta == 4
        assert by_key[("new/0", "trail")].is_new
        assert by_key[("gone/0", "control")].vanished
        assert [d.predicate for d in diff.new_hotspots] == ["new/0"]
        assert [d.predicate for d in diff.vanished_hotspots] == ["gone/0"]

    def test_reconciliation_exact(self):
        base = _profile({("a/1", Module.UNIFY): 10,
                         ("b/2", Module.CONTROL): 5})
        current = _profile({("a/1", Module.UNIFY): 12})
        diff = diff_profiles(base, current)
        assert diff.reconciles()
        assert sum(d.delta for d in diff.deltas) == diff.total_delta
        assert diff.base_total == 15 and diff.current_total == 12

    def test_tampered_totals_flag_mismatch(self):
        base = _profile({("a/1", Module.UNIFY): 10})
        diff = diff_profiles(base, base)
        broken = type(diff)(base_label="b", current_label="c",
                            base_total=999, current_total=diff.current_total,
                            deltas=diff.deltas)
        assert not broken.reconciles()
        assert "MISMATCH" in broken.render()

    def test_render_mentions_totals_and_reconciliation(self):
        base = _profile({("a/1", Module.UNIFY): 10})
        current = _profile({("a/1", Module.UNIFY): 13})
        text = diff_profiles(base, current).render()
        assert "10 -> current 13" in text
        assert "+3 steps" in text
        assert "reconciled" in text


class TestSnapshotFiles:
    def _write(self, path, total=10, metrics=None):
        data = {"kind": "psi-profile-snapshot", "schema": 1,
                "workload": "w", "total_steps": total,
                "profile": _profile({("a/1", Module.UNIFY): total}).to_dict(),
                "metrics": metrics}
        path.write_text(json.dumps(data))

    def test_read_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text(json.dumps({"kind": "metrics"}))
        with pytest.raises(ValueError):
            read_snapshot(path)
        assert not is_snapshot_file(path)
        assert not is_snapshot_file(tmp_path / "missing.json")

    def test_diff_snapshot_files_with_metrics(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        self._write(a, total=10,
                    metrics={"psi.runs": {"kind": "counter", "value": 1}})
        self._write(b, total=12,
                    metrics={"psi.runs": {"kind": "counter", "value": 3}})
        text = diff_snapshot_files(a, b)
        assert "microstep deltas" in text
        assert "counter metric deltas" in text
        assert "psi.runs" in text


def test_end_to_end_profile_then_diff(tmp_path, capsys):
    """`psi-eval profile` twice, then `psi-eval diff` on the snapshots:
    the report must reconcile each side against its run's total steps."""
    from repro.eval.cli import main

    assert main(["profile", "nreverse", "qsort",
                 "--out", str(tmp_path)]) == 0
    capsys.readouterr()
    base = tmp_path / "nreverse.profile.json"
    current = tmp_path / "qsort.profile.json"
    assert is_snapshot_file(base) and is_snapshot_file(current)

    # The snapshot's profile total equals the run's recorded total.
    for path in (base, current):
        data = read_snapshot(path)
        assert data["profile"]["total_steps"] == data["total_steps"]

    assert main(["diff", str(base), str(current)]) == 0
    out = capsys.readouterr().out
    assert "reconciled" in out and "MISMATCH" not in out
