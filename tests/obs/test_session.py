"""Session-level tests: disabled mode, determinism, cache purity."""

import io
import pickle

import pytest

from repro import obs
from repro.core.stats import StatsCollector
from repro.tools.collect import collect
from repro.workloads import get


@pytest.fixture(autouse=True)
def _clean_obs():
    obs.reset()
    yield
    obs.reset()


def _collect(name: str):
    workload = get(name)
    return collect(workload.source, workload.goal,
                   all_solutions=workload.all_solutions,
                   record_trace=False,
                   setup_goals=workload.setup_goals)


class TestDisabledMode:
    def test_no_observation_and_plain_collector(self):
        assert not obs.enabled()
        run = _collect("nreverse")
        assert run.observation is None
        assert type(run.stats) is StatsCollector
        assert run.machine.mem.observer is None

    def test_enable_disable_toggle(self):
        obs.enable()
        assert obs.enabled()
        obs.disable()
        assert not obs.enabled()

    def test_observed_context_restores_state(self):
        assert not obs.enabled()
        with obs.observed(trace_capacity=128):
            assert obs.enabled()
            assert obs.config().trace_capacity == 128
        assert not obs.enabled()
        assert obs.config().trace_capacity != 128

    def test_enable_rejects_config_plus_overrides(self):
        from repro.obs.session import ObsConfig
        with pytest.raises(ValueError):
            obs.enable(ObsConfig(), trace_capacity=1)


class TestObservedRun:
    def test_observed_counters_match_plain_run(self):
        plain = _collect("nreverse")
        with obs.observed():
            observed = _collect("nreverse")
        assert observed.stats.routine_counts == plain.stats.routine_counts
        assert observed.stats.mem_counts == plain.stats.mem_counts
        assert observed.stats.total_steps == plain.stats.total_steps
        assert observed.stats.inferences == plain.stats.inferences

    def test_traces_are_deterministic(self):
        def jsonl() -> str:
            with obs.observed():
                run = _collect("nreverse")
            buf = io.StringIO()
            run.observation.write_jsonl(buf)
            return buf.getvalue()

        first, second = jsonl(), jsonl()
        assert first == second            # byte-identical, not just similar

    def test_observation_has_all_tracks(self):
        with obs.observed():
            run = _collect("nreverse")
        tracer = run.observation.tracer
        assert tracer.events("calls"), "predicate slices missing"
        assert tracer.events("micro"), "sampled microroutine spans missing"
        assert tracer.events("stacks"), "stack reclaim events missing"
        assert tracer.events("cache"), "cache window samples missing"

    def test_stack_events_only_on_shrink(self):
        with obs.observed():
            run = _collect("nreverse")
        for event in run.observation.tracer.events("stacks"):
            assert event.ph == "C"
            assert event.name.startswith("top.")


class TestCachePurity:
    def test_summary_is_identical_with_and_without_obs(self):
        """The disk cache must store the same bytes either way."""
        plain = _collect("nreverse").to_summary()
        with obs.observed():
            observed = _collect("nreverse").to_summary()
        assert observed.metrics is None
        assert type(observed.stats) is StatsCollector
        assert pickle.dumps(observed, protocol=pickle.HIGHEST_PROTOCOL) == \
            pickle.dumps(plain, protocol=pickle.HIGHEST_PROTOCOL)

    def test_rebuilt_run_has_no_observation(self):
        with obs.observed():
            summary = _collect("nreverse").to_summary()
        rebuilt = summary.to_collected_run()
        assert rebuilt.observation is None
