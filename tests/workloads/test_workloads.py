"""Workload correctness: every benchmark runs and computes the right answer,
on the PSI machine and (where applicable) identically on the baseline."""

import pytest

from repro.baseline import WAMMachine
from repro.core import PSIMachine
from repro.prolog import Atom, Struct, is_cons, list_elements
from repro.workloads import all_workloads, get, hardware_eval_workloads, table1_workloads

# Keep test runtime sane: the heavy goals get a smaller stand-in goal
# that exercises the same code.
LIGHT_GOALS = {
    "queens-all": "queens(6, Qs)",
    "lisp-tarai": "eval_([tarai, 4, 2, 0], [], V)",
    "lisp-fib": "run_fib(V)",
    "harmonizer-3": "run_harmonizer2(Cs)",
}


def psi_for(name):
    w = get(name)
    m = PSIMachine()
    m.consult(w.source)
    return m, w


def wam_for(name):
    w = get(name)
    m = WAMMachine()
    m.consult(w.source)
    return m, w


class TestRegistry:
    def test_table1_has_19_rows(self):
        assert len(table1_workloads()) == 19

    def test_hardware_eval_has_7_programs(self):
        assert len(hardware_eval_workloads()) == 7

    def test_paper_ids_unique(self):
        ids = [w.paper_id for w in all_workloads().values()]
        assert len(ids) == len(set(ids))

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            get("no-such-workload")


class TestContestPrograms:
    def test_nreverse_result(self):
        m, w = psi_for("nreverse")
        s = m.run(w.goal)
        assert list_elements(s["R"]) == list(range(30, 0, -1))

    def test_qsort_result(self):
        m, w = psi_for("qsort")
        values = list_elements(m.run(w.goal)["R"])
        assert values == sorted(values)
        assert len(values) == 50

    def test_tree_result(self):
        m, w = psi_for("tree")
        assert m.run(w.goal)["N"] == 36

    def test_lisp_tarai(self):
        m, _ = psi_for("lisp-tarai")
        assert m.run("eval_([tarai, 4, 2, 0], [], V)")["V"] == 4

    def test_lisp_fib(self):
        m, w = psi_for("lisp-fib")
        assert m.run(w.goal)["V"] == 89

    def test_lisp_nreverse(self):
        m, w = psi_for("lisp-nreverse")
        result = m.run(w.goal)["V"]
        assert is_cons(result)
        assert result.args[0] == 16     # reversed list starts with 16

    def test_queens_one(self):
        m, w = psi_for("queens-one")
        qs = list_elements(m.run(w.goal)["Qs"])
        assert sorted(qs) == list(range(1, 9))

    def test_queens_all_count(self):
        m, _ = psi_for("queens-all")
        m.run("queens_all")
        assert m.counters["solutions"] == 92

    def test_reverse_function(self):
        m, w = psi_for("reverse-function")
        values = list_elements(m.run(w.goal)["R"])
        assert values[0] == 400 and values[-1] == 1

    def test_slow_reverse(self):
        m, w = psi_for("slow-reverse")
        assert list_elements(m.run(w.goal)["R"]) == [6, 5, 4, 3, 2, 1]


class TestParsers:
    def test_bup_parses(self):
        m, w = psi_for("bup-2")
        sem = m.run(w.goal)["Sem"]
        assert isinstance(sem, Struct) and sem.functor == "sent"

    def test_bup3_is_ambiguous(self):
        m, w = psi_for("bup-3")
        m.run(w.goal)
        assert m.counters["parses"] >= 2

    def test_bup_rejects_ungrammatical(self):
        m, _ = psi_for("bup-1")
        assert m.run("parse([man, the, saw], S)") is None

    def test_lcp_parses(self):
        m, w = psi_for("lcp-2")
        tree = m.run(w.goal)["T"]
        assert isinstance(tree, Struct) and tree.functor == "s"

    def test_lcp_nearly_deterministic(self):
        # The committed parse comes first; the per-category termination
        # clauses leave at most a couple of residual re-derivations.
        m, w = psi_for("lcp-1")
        assert 1 <= m.solve(w.goal).count() <= 3


class TestHarmonizer:
    def test_harmonizes_and_cadences(self):
        m, w = psi_for("harmonizer-1")
        chords = list_elements(m.run(w.goal)["Cs"])
        assert len(chords) == 8
        final = chords[-1]
        assert final.args[0] == Atom("i")       # ends on the tonic
        penultimate = chords[-2]
        assert penultimate.args[1] == 5          # after the dominant

    def test_longer_melody_harmonizes(self):
        m, w = psi_for("harmonizer-2")
        assert len(list_elements(m.run(w.goal)["Cs"])) == 12

    def test_backtracking_grows_with_length(self):
        m1, w1 = psi_for("harmonizer-1")
        m1.run(w1.goal)
        m2, w2 = psi_for("harmonizer-2")
        m2.run(w2.goal)
        assert m2.stats.total_steps > 2 * m1.stats.total_steps


class TestWindowAndPuzzle:
    def test_window1_runs(self):
        m, w = psi_for("window-1")
        assert m.run(w.goal) is not None

    def test_window_uses_heap_vectors(self):
        from repro.core.memory import Area
        from repro.core.micro import CacheCmd
        m, w = psi_for("window-1")
        m.run(w.goal)
        writes = m.stats.mem_counts.get((CacheCmd.WRITE, Area.HEAP), 0)
        assert writes > 100      # destructive vector updates hit the heap

    def test_window_marked_psi_only(self):
        assert get("window-2").psi_only

    def test_puzzle_solves_in_8_moves(self):
        m, w = psi_for("puzzle8")
        moves = list_elements(m.run(w.goal)["Moves"])
        assert len(moves) == 7

    def test_puzzle_has_no_cut_steps(self):
        from repro.core.micro import Module
        m, w = psi_for("puzzle8")
        m.run(w.goal)
        assert m.stats.module_ratios()[Module.CUT] == 0.0


class TestEngineAgreement:
    """Differential testing: both engines must compute the same answers."""

    @pytest.mark.parametrize("name", [
        w.name for w in table1_workloads()
    ])
    def test_psi_and_wam_agree(self, name):
        workload = get(name)
        goal = LIGHT_GOALS.get(name, workload.goal)
        psi, _ = psi_for(name)
        wam, _ = wam_for(name)
        psi_solution = psi.run(goal)
        wam_solution = wam.run(goal)
        assert (psi_solution is None) == (wam_solution is None)
        if psi_solution is not None:
            # Compare rendered terms: structural == on 400-deep lists
            # exceeds Python's recursion limit.
            from repro.prolog import term_to_string
            psi_rendered = {k: term_to_string(v)
                            for k, v in psi_solution.bindings.items()}
            wam_rendered = {k: term_to_string(v)
                            for k, v in wam_solution.bindings.items()}
            assert psi_rendered == wam_rendered
        psi_counters = {k: v for k, v in psi.counters.items()
                        if not k.startswith("$")}
        wam_counters = {k: v for k, v in wam.counters.items()
                        if not k.startswith("$")}
        assert psi_counters == wam_counters
