"""Profile-shape tests per workload: quick versions of the paper's
characterisations, run on reduced goals so the whole file stays fast."""

import pytest

from repro.core import PSIMachine
from repro.core.memory import Area
from repro.core.micro import CacheCmd, Module
from repro.workloads import get


def run(name, goal=None):
    w = get(name)
    m = PSIMachine()
    m.consult(w.source)
    solution = m.run(goal or w.goal)
    assert solution is not None or goal is not None
    return m


class TestWindowProfile:
    def test_builtin_call_majority(self):
        m = run("window-1", "run_window(3, 3, 0)")
        calls = m.stats.inferences + m.stats.builtin_calls
        assert m.stats.builtin_calls / calls > 0.5

    def test_little_backtracking(self):
        m = run("window-1", "run_window(3, 3, 0)")
        assert m.stats.module_ratios()[Module.TRAIL] < 4.0

    def test_cut_present(self):
        m = run("window-1", "run_window(3, 3, 0)")
        assert m.stats.module_ratios()[Module.CUT] > 1.0

    def test_heap_writes_from_vectors(self):
        m = run("window-1", "run_window(3, 3, 0)")
        assert m.stats.mem_counts.get((CacheCmd.WRITE, Area.HEAP), 0) > 50


class TestBupProfile:
    def test_unification_heavy(self):
        m = run("bup-2")
        ratios = m.stats.module_ratios()
        assert ratios[Module.UNIFY] > 30.0

    def test_global_stack_prominent(self):
        m = run("bup-2")
        areas = m.stats.area_access_ratios()
        assert areas[Area.GLOBAL] > 15.0

    def test_builtin_call_rate_high(self):
        m = run("bup-2")
        calls = m.stats.inferences + m.stats.builtin_calls
        assert m.stats.builtin_calls / calls > 0.4


class TestHarmonizerProfile:
    def test_unify_dominates(self):
        m = run("harmonizer-1")
        ratios = m.stats.module_ratios()
        assert ratios[Module.UNIFY] == max(ratios.values())

    def test_trail_activity_visible(self):
        m = run("harmonizer-1")
        assert m.stats.module_ratios()[Module.TRAIL] > 2.0


class TestPuzzleProfile:
    def test_no_cut(self):
        m = run("puzzle8", "start_board(B, Bl), ids(B, Bl, 1, 4, M)")
        assert m.stats.module_ratios()[Module.CUT] == 0.0

    def test_builtins_and_arith_heavy(self):
        m = run("puzzle8", "start_board(B, Bl), ids(B, Bl, 1, 4, M)")
        ratios = m.stats.module_ratios()
        assert ratios[Module.BUILT] + ratios[Module.GET_ARG] > 15.0


class TestLcpProfile:
    def test_lcp_cheaper_than_bup_per_word(self):
        # The expert parser does far less work per sentence word.
        lcp = run("lcp-2")
        bup = run("bup-2")
        assert lcp.stats.total_steps < bup.stats.total_steps

    def test_lcp_deterministic_backtracking_low(self):
        m = run("lcp-2")
        assert m.stats.module_ratios()[Module.TRAIL] < 6.0


class TestScaling:
    @pytest.mark.parametrize("small,big", [
        ("bup-1", "bup-2"),
        ("lcp-1", "lcp-2"),
        ("harmonizer-1", "harmonizer-2"),
    ])
    def test_bigger_variant_costs_more(self, small, big):
        a = run(small)
        b = run(big)
        assert b.stats.total_steps > a.stats.total_steps
