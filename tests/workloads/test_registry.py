"""Registry invariants across all workloads."""

from repro.prolog import parse_program
from repro.workloads import all_workloads, hardware_eval_workloads, table1_workloads


class TestRegistryInvariants:
    def test_all_sources_parse(self):
        for workload in all_workloads().values():
            clauses = parse_program(workload.source)
            assert clauses, workload.name

    def test_goals_parse(self):
        from repro.prolog import parse_term
        for workload in all_workloads().values():
            parse_term(workload.goal)

    def test_every_workload_described(self):
        for workload in all_workloads().values():
            assert workload.description, workload.name
            assert workload.title, workload.name

    def test_table1_order_matches_paper_ids(self):
        ids = [w.paper_id for w in table1_workloads()]
        assert ids == [f"({i})" for i in range(1, 20)]

    def test_psi_only_flags(self):
        psi_only = {w.name for w in all_workloads().values() if w.psi_only}
        assert psi_only == {"window-1", "window-2", "window-3"}

    def test_hardware_eval_runs_only_psi_capable_or_window(self):
        for workload in hardware_eval_workloads():
            assert workload.name.startswith("window") or not workload.psi_only

    def test_goal_predicates_defined(self):
        # Every goal's main functor must be defined by its source.
        from repro.prolog import Atom, Struct, parse_term
        from repro.prolog.transform import ControlExpander
        for workload in all_workloads().values():
            expander = ControlExpander()
            result = expander.expand_program(parse_program(workload.source))
            defined = {c.indicator for c in result.clauses}
            goal = parse_term(workload.goal)
            goals = [goal]
            while goals:
                g = goals.pop()
                if isinstance(g, Struct) and g.functor == ",":
                    goals.extend(g.args)
                    continue
                indicator = (g.name, 0) if isinstance(g, Atom) \
                    else (g.functor, g.arity)
                builtinish = indicator[0] in ("counter_inc", "counter_value")
                assert builtinish or indicator in defined, (
                    workload.name, indicator)
