"""Differential fuzzing: both engines must agree on randomly generated
(but terminating) Datalog-style programs and queries.

The generator builds a random fact database and a conjunctive query
with shared variables; solution *multisets* (as sorted binding lists)
must match between the PSI interpreter and the WAM baseline — this
exercises clause order, indexing, backtracking and cut interactions far
beyond the hand-written cases.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline import WAMMachine
from repro.core import PSIMachine
from repro.prolog import term_to_string

CONSTANTS = ["a", "b", "c", "d", "1", "2", "3"]
PREDICATES = ["p", "q"]
VARS = ["X", "Y", "Z"]

facts_strategy = st.lists(
    st.tuples(st.sampled_from(PREDICATES),
              st.sampled_from(CONSTANTS),
              st.sampled_from(CONSTANTS)),
    min_size=1, max_size=12)

goal_strategy = st.lists(
    st.tuples(st.sampled_from(PREDICATES),
              st.sampled_from(VARS + CONSTANTS),
              st.sampled_from(VARS + CONSTANTS)),
    min_size=1, max_size=3)


def program_text(facts):
    lines = [f"{p}({a}, {b})." for p, a, b in facts]
    # Make sure both predicates exist so calls never raise.
    lines.append("p(zz, zz).")
    lines.append("q(zz, zz).")
    return "\n".join(lines)


def goal_text(goals):
    return ", ".join(f"{p}({a}, {b})" for p, a, b in goals)


def solutions_of(machine_cls, program, goal):
    machine = machine_cls()
    machine.consult(program)
    solver = machine.solve(goal)
    rendered = []
    for solution in solver.all(limit=500):
        rendered.append(tuple(sorted(
            (name, term_to_string(value))
            for name, value in solution.bindings.items())))
    return sorted(rendered)


@given(facts_strategy, goal_strategy)
@settings(max_examples=80, deadline=None)
def test_conjunctive_queries_agree(facts, goals):
    program = program_text(facts)
    goal = goal_text(goals)
    assert solutions_of(PSIMachine, program, goal) == \
        solutions_of(WAMMachine, program, goal)


@given(facts_strategy, goal_strategy)
@settings(max_examples=40, deadline=None)
def test_negated_queries_agree(facts, goals):
    program = program_text(facts)
    inner = goal_text(goals[:1])
    goal = f"\\+ ({inner})"
    psi = solutions_of(PSIMachine, program, goal)
    wam = solutions_of(WAMMachine, program, goal)
    assert (psi == []) == (wam == [])


@given(facts_strategy, st.sampled_from(PREDICATES))
@settings(max_examples=40, deadline=None)
def test_first_solution_with_cut_agrees(facts, pred):
    program = program_text(facts) + f"\nfirst(A, B) :- {pred}(A, B), !."
    psi = solutions_of(PSIMachine, program, "first(A, B)")
    wam = solutions_of(WAMMachine, program, "first(A, B)")
    assert len(psi) == len(wam) == 1
    assert psi == wam


@given(facts_strategy)
@settings(max_examples=30, deadline=None)
def test_aggregation_by_failure_loop_agrees(facts):
    program = program_text(facts) + """
count_all :- p(_, _), counter_inc(n), fail.
count_all.
"""
    psi = PSIMachine(); psi.consult(program); psi.run("count_all")
    wam = WAMMachine(); wam.consult(program); wam.run("count_all")
    assert psi.counters.get("n") == wam.counters.get("n")
