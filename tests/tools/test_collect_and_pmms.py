"""Integration tests for COLLECT, MAP and PMMS."""

import pytest

from repro.core.memory import TraceRecorder
from repro.core.micro import BranchOp, CacheCmd, Module, WFMode
from repro.memsys import CacheConfig, WritePolicy
from repro.tools import (
    branch_analysis,
    capacity_sweep,
    collect,
    compare_associativity,
    compare_write_policy,
    module_analysis,
    performance_improvement,
    routine_histogram,
    simulate,
    wf_analysis,
)

PROGRAM = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
"""


@pytest.fixture(scope="module")
def run():
    return collect(PROGRAM, "nrev([1,2,3,4,5,6,7,8,9,10], R)")


class TestCollect:
    def test_success_and_counts(self, run):
        assert run.succeeded
        assert run.steps > 0
        assert run.stats.inferences > 50

    def test_trace_recorded(self, run):
        assert run.trace is not None
        assert len(run.trace) == run.stats.total_mem_accesses

    def test_trace_roundtrip(self, run):
        entries = list(run.trace.entries())
        assert all(isinstance(cmd, CacheCmd) for cmd, _ in entries[:10])

    def test_online_cache_attached(self, run):
        assert run.cache is not None
        assert run.cache.stats.accesses == run.stats.total_mem_accesses

    def test_timing_positive(self, run):
        assert run.time_ms > 0
        assert run.lips > 0

    def test_setup_goals_excluded(self):
        with_setup = collect(PROGRAM + "\nsetup. ", "nrev([1,2], R)",
                             setup_goals=("setup",))
        assert with_setup.succeeded

    def test_failed_setup_raises(self):
        with pytest.raises(RuntimeError):
            collect(PROGRAM, "nrev([1], R)", setup_goals=("fail",))

    def test_collector_totals_match_trace_totals(self, run):
        """Billing and trace notification are paired at every memory
        site, so the totals ``collect`` hands the deferred cache replay
        (derived from the collector) must equal a counting pass over
        the packed trace — the invariant the replay shortcut rests on."""
        from repro.memsys.cache import count_entries_packed
        from repro.tools.collect import _totals_from_stats

        assert _totals_from_stats(run.stats) == count_entries_packed(
            run.trace.data)

    def test_listeners_detached_after_run(self, run):
        assert run.machine.mem.listeners == []


class TestMap:
    def test_module_analysis_sums_to_100(self, run):
        ratios = module_analysis(run.stats)
        assert sum(ratios.values()) == pytest.approx(100.0)
        assert ratios[Module.UNIFY] > 0

    def test_branch_analysis_sums_to_100(self, run):
        rows = branch_analysis(run.stats)
        assert sum(r.percent for r in rows) == pytest.approx(100.0)
        assert {r.branch_type for r in rows} == {1, 2, 3}

    def test_wf_analysis_covers_all_modes(self, run):
        rows = wf_analysis(run.stats)
        assert {r.mode for r in rows} == set(WFMode)

    def test_routine_histogram_sorted(self, run):
        rows = routine_histogram(run.stats, top=10)
        counts = [r[2] for r in rows]
        assert counts == sorted(counts, reverse=True)


class TestPMMS:
    def test_simulate_counts_all_accesses(self, run):
        stats = simulate(run.trace)
        assert stats.accesses == len(run.trace)

    def test_offline_matches_online(self, run):
        """Replaying the trace must agree exactly with the online cache."""
        stats = simulate(run.trace, CacheConfig())
        assert stats.hits == run.cache.stats.hits
        assert stats.misses == run.cache.stats.misses
        assert stats.writebacks == run.cache.stats.writebacks

    def test_capacity_sweep_monotone_hit_trend(self, run):
        points = capacity_sweep(run.trace, run.steps, (8, 128, 8192))
        assert points[0].hit_ratio <= points[-1].hit_ratio + 1.0
        assert points[-1].hit_ratio > 90.0

    def test_improvement_positive(self, run):
        improvement, stats = performance_improvement(
            run.trace, run.steps, CacheConfig())
        assert improvement > 0
        assert stats.hit_ratio > 90.0

    def test_store_in_beats_store_through(self, run):
        result = compare_write_policy(run.trace, run.steps)
        assert result.improvement_a > result.improvement_b

    def test_two_sets_at_least_one_set(self, run):
        result = compare_associativity(run.trace, run.steps,
                                       set_capacity_words=512)
        assert result.improvement_a >= result.improvement_b - 1.0

    def test_empty_trace(self):
        stats = simulate(TraceRecorder())
        assert stats.accesses == 0
        assert stats.hit_ratio == 100.0
