"""Detailed MAP-tool tests over a controlled stats stream."""

import pytest

from repro.core import micro
from repro.core.micro import BranchOp, Module, WFMode
from repro.core.stats import StatsCollector
from repro.tools.map import branch_analysis, module_analysis, routine_histogram, wf_analysis


@pytest.fixture
def stats():
    collector = StatsCollector()
    collector.module = Module.UNIFY
    collector.emit(micro.R_UNIFY_DISPATCH, 10)
    collector.module = Module.CONTROL
    collector.emit(micro.R_CALL_SETUP, 5)
    collector.module = Module.CUT
    collector.emit(micro.R_CUT, 1)
    return collector


class TestBranchAnalysis:
    def test_rows_cover_all_sixteen_ops(self, stats):
        rows = branch_analysis(stats)
        assert len(rows) == 16
        assert sum(r.percent for r in rows) == pytest.approx(100.0)

    def test_types_assigned(self, stats):
        rows = {r.op: r for r in branch_analysis(stats)}
        assert rows[BranchOp.GOTO2].branch_type == 2
        assert rows[BranchOp.NOP3].branch_type == 3


class TestWFAnalysis:
    def test_source2_only_dual_port(self, stats):
        rows = {r.mode: r for r in wf_analysis(stats)}
        assert rows[WFMode.WF00_0F].source2 is not None
        assert rows[WFMode.WF10_3F].source2 is None

    def test_constant_has_no_dest(self, stats):
        rows = {r.mode: r for r in wf_analysis(stats)}
        assert rows[WFMode.CONSTANT].dest is None


class TestModuleAnalysis:
    def test_matches_collector(self, stats):
        ratios = module_analysis(stats)
        assert ratios[Module.CUT] > 0
        assert sum(ratios.values()) == pytest.approx(100.0)


class TestRoutineHistogram:
    def test_counts_are_step_weighted(self, stats):
        rows = routine_histogram(stats)
        by_name = {(module, name): steps for module, name, steps in rows}
        assert by_name[("unify", "unify.dispatch")] == \
            10 * micro.R_UNIFY_DISPATCH.n_steps

    def test_top_limits_output(self, stats):
        assert len(routine_histogram(stats, top=2)) == 2
