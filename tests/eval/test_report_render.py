"""Rendering tests for the report formatter edge cases."""

from repro.eval.report import _cell, _is_numeric, fmt_ms, format_table


class TestCellFormatting:
    def test_float_precision_scales(self):
        assert _cell(0.07) == "0.07"
        assert _cell(3.14159) == "3.1"
        assert _cell(1234.5) == "1234"
        assert _cell(0.0) == "0.0"

    def test_negative_floats_mirror_positives(self):
        # Drift deltas are often small and negative: a negative must
        # render exactly as its positive counterpart plus the sign.
        for value in (0.04, 0.07, 3.14159, 1234.5):
            assert _cell(-value) == "-" + _cell(value)

    def test_tiny_values_collapse_to_zero_without_sign(self):
        # Anything that would round to zero is plain "0.0" — never the
        # "-0.00" the old per-branch formatting produced.
        assert _cell(-0.004) == "0.0"
        assert _cell(0.004) == "0.0"
        assert _cell(-0.0) == "0.0"

    def test_none_renders_dash(self):
        assert _cell(None) == "-"

    def test_strings_pass_through(self):
        assert _cell("abc") == "abc"

    def test_numeric_detection(self):
        assert _is_numeric("3.4")
        assert _is_numeric("-7")
        assert not _is_numeric("x1")
        assert not _is_numeric("")

    def test_fmt_ms(self):
        assert fmt_ms(12.345) == "12.35"
        assert fmt_ms(1234.5) == "1234"


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text

    def test_numbers_right_aligned(self):
        text = format_table(["name", "value"], [("x", 1), ("long-name", 22)])
        lines = text.splitlines()
        assert lines[-1].endswith("22")
        assert lines[-2].rstrip().endswith("1")

    def test_title_optional(self):
        with_title = format_table(["a"], [(1,)], title="T")
        without = format_table(["a"], [(1,)])
        assert with_title.splitlines()[0] == "T"
        assert len(with_title.splitlines()) == len(without.splitlines()) + 1
