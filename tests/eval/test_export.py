"""Tests for the JSON/CSV exporters (no heavy runs: synthetic rows)."""

import json

import pytest

from repro.core.memory import Area
from repro.core.micro import BranchOp, Module, WFMode
from repro.eval import export
from repro.eval.figure1 import Figure1Result
from repro.eval.table1 import Table1Row
from repro.eval.table2 import Table2Row
from repro.eval.table4 import Table4Row
from repro.tools.pmms import SweepPoint


def sample_table1():
    return [Table1Row("nreverse", "(1)", "nreverse (30)", 10.0, 7.0, 0.7,
                      13.6, 9.48, 0.70, 500)]


class TestConverters:
    def test_table1(self):
        data = export.table1_to_dict(sample_table1())
        assert data[0]["ratio"] == 0.7
        assert data[0]["program"] == "nreverse (30)"

    def test_table2(self):
        row = Table2Row("bup", {m: 10.0 for m in Module}, {}, 55.0)
        data = export.table2_to_dict([row])
        assert data[0]["unify"] == 10.0
        assert data[0]["builtin_call_rate"] == 55.0

    def test_table4(self):
        row = Table4Row("bup", {a: 20.0 for a in Area}, None)
        data = export.table4_to_dict([row])
        assert data[0]["heap"] == 20.0

    def test_figure1(self):
        result = Figure1Result([SweepPoint(8, 50.0, 30.0),
                                SweepPoint(8192, 99.0, 100.0)])
        data = export.figure1_to_dict(result)
        assert data[0]["capacity_words"] == 8
        assert data[1]["improvement_percent"] == 100.0


class TestWriters:
    def test_write_json(self, tmp_path):
        path = tmp_path / "t1.json"
        export.write_json(export.table1_to_dict(sample_table1()), path)
        loaded = json.loads(path.read_text())
        assert loaded[0]["id"] == "(1)"

    def test_write_csv(self, tmp_path):
        path = tmp_path / "t1.csv"
        export.write_csv(export.table1_to_dict(sample_table1()), path)
        text = path.read_text().splitlines()
        assert text[0].startswith("id,program")
        assert len(text) == 2

    def test_write_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        export.write_csv([], path)
        assert path.read_text() == ""


class TestEndToEndSmall:
    def test_figure1_export_roundtrip(self, tmp_path):
        from repro.eval import figure1, runner
        runner.clear_cache()
        result = figure1.generate("lcp-1", capacities=(8, 8192))
        path = tmp_path / "figure1.json"
        export.write_json(export.figure1_to_dict(result), path)
        loaded = json.loads(path.read_text())
        assert len(loaded) == 2
        runner.clear_cache()
