"""Parallel execution and persistent run-cache behaviour.

The contract of the whole pipeline: serial, process-parallel and
disk-cached execution render **byte-identical** tables and figures, and
a damaged or stale cache entry is detected and recomputed, never
trusted.  Fast workloads keep the whole module in seconds.
"""

import pathlib

import pytest

from repro.eval import figure1, runner, table3, table4, table5
from repro.eval.run_cache import RunCache, run_key
from repro.tools.collect import RunSummary

FAST_PROGRAMS = {"bup": "bup-1", "lcp": "lcp-1", "lcp2": "lcp-2"}
FIGURE1_WORKLOAD = "lcp-2"
FIGURE1_CAPACITIES = (8, 256, 8192)


def render_everything() -> str:
    """Tables 3/4/5 + Figure 1 over the fast workloads, one big string."""
    parts = [
        table3.render(table3.generate(FAST_PROGRAMS)),
        table4.render(table4.generate(FAST_PROGRAMS)),
        table5.render(table5.generate(FAST_PROGRAMS)),
        figure1.render(figure1.generate(FIGURE1_WORKLOAD,
                                        capacities=FIGURE1_CAPACITIES)),
    ]
    return "\n\n".join(parts)


@pytest.fixture()
def fresh(tmp_path, monkeypatch):
    """Isolated disk cache + clean per-process caches."""
    monkeypatch.setenv("PSI_CACHE_DIR", str(tmp_path / "psi-cache"))
    runner.clear_cache()
    runner.set_disk_cache(True)
    yield tmp_path / "psi-cache"
    runner.set_disk_cache(True)
    runner.clear_cache()


class TestParallelDeterminism:
    def test_jobs4_renders_byte_identical(self, fresh):
        runner.set_disk_cache(False)
        serial = render_everything()

        runner.clear_cache()
        runs = runner.run_many(FAST_PROGRAMS.values(), jobs=4)
        assert set(runs) == set(FAST_PROGRAMS.values())
        parallel = render_everything()
        assert parallel == serial

    def test_parallel_populates_process_cache(self, fresh):
        runner.set_disk_cache(False)
        runs = runner.run_many(["bup-1", "lcp-1"], jobs=2)
        for name, run in runs.items():
            assert runner.run_psi(name) is run

    def test_run_many_serial_fallback(self, fresh):
        runner.set_disk_cache(False)
        runs = runner.run_many(["bup-1", "bup-1", "lcp-1"], jobs=None)
        assert list(runs) == ["bup-1", "lcp-1"]


class TestDiskCache:
    def test_disk_cached_renders_byte_identical(self, fresh):
        first = render_everything()
        assert runner.CACHE_EVENTS["disk_miss"] > 0
        stored = RunCache().entries()
        assert stored, "runs were not persisted"

        runner.clear_cache()          # drop the per-process tier only
        cached = render_everything()
        assert runner.CACHE_EVENTS["disk_hit"] > 0
        assert runner.CACHE_EVENTS["disk_miss"] == 0
        assert cached == first

    def test_no_disk_cache_bypasses(self, fresh):
        runner.set_disk_cache(False)
        runner.run_psi("lcp-1")
        assert RunCache().entries() == []
        assert runner.CACHE_EVENTS["disk_miss"] == 0

    def test_corrupted_entry_recomputed(self, fresh):
        run = runner.run_psi("lcp-1")
        reference = run.stats.total_steps
        (entry,) = RunCache().entries()

        # Flip bytes in the payload: the digest check must reject it.
        blob = bytearray(entry.read_bytes())
        blob[-20:] = b"\x00" * 20
        entry.write_bytes(bytes(blob))

        runner.clear_cache()
        rerun = runner.run_psi("lcp-1")
        assert runner.CACHE_EVENTS["disk_hit"] == 0
        assert runner.CACHE_EVENTS["disk_miss"] == 1
        assert rerun.stats.total_steps == reference
        # The bad entry was discarded and replaced by a valid one.
        assert RunCache().load(entry.stem) is not None

    def test_stale_key_not_trusted(self, fresh):
        """An entry filed under the wrong key (stale hash) is a miss."""
        runner.run_psi("lcp-1")
        (entry,) = RunCache().entries()
        wrong = entry.with_name("0" * 64 + ".run")
        entry.rename(wrong)

        cache = RunCache()
        assert cache.load("0" * 64) is None          # header key mismatch
        assert not wrong.exists()

    def test_truncated_entry_is_miss(self, fresh):
        runner.run_psi("lcp-1")
        (entry,) = RunCache().entries()
        entry.write_bytes(entry.read_bytes()[:40])
        runner.clear_cache()
        assert runner.run_psi("lcp-1").succeeded
        assert runner.CACHE_EVENTS["disk_miss"] == 1

    def test_cache_clear(self, fresh):
        runner.run_psi("lcp-1")
        cache = RunCache()
        assert len(cache.entries()) == 1
        assert cache.clear() == 1
        assert cache.entries() == []

    def test_key_depends_on_inputs(self):
        base = dict(source="p.", goal="p", setup_goals=(), all_solutions=False,
                    machine_config="m", cache_config="c")
        key = run_key(**base)
        assert key != run_key(**{**base, "goal": "q"})
        assert key != run_key(**{**base, "source": "p2."})
        assert key != run_key(**{**base, "setup_goals": ("s",)})
        assert key != run_key(**{**base, "all_solutions": True})
        assert key != run_key(**{**base, "machine_config": "m2"})
        assert key == run_key(**base)

    def test_fresh_runs_always_record_no_upgrade_needed(self, fresh):
        """Real executions record the trace unconditionally, so a later
        ``record_trace=True`` caller is served from the memory tier
        without the trace-upgrade double execution."""
        runner.set_disk_cache(False)
        first = runner.run_psi("lcp-1", record_trace=False)
        assert first.trace is not None
        upgraded = runner.run_psi("lcp-1", record_trace=True)
        assert upgraded is first
        assert runner.CACHE_EVENTS["trace_upgrade"] == 0
        assert runner.CACHE_EVENTS["memory_hit"] == 1

    def test_trace_upgrade_logged_for_stale_no_trace_entry(self, fresh,
                                                           caplog):
        """A memory-tier entry without a trace (e.g. rebuilt from an old
        disk summary) still triggers the visible, counted re-run."""
        import dataclasses

        runner.set_disk_cache(False)
        first = runner.run_psi("lcp-1")
        runner._PSI_CACHE["lcp-1"] = dataclasses.replace(first, trace=None)
        with caplog.at_level("WARNING", logger="repro.eval.runner"):
            upgraded = runner.run_psi("lcp-1", record_trace=True)
        assert upgraded.trace is not None
        assert runner.CACHE_EVENTS["trace_upgrade"] == 1
        assert any("re-running to record one" in message
                   for message in caplog.messages)

    def test_disk_cache_stores_traced_variant(self, fresh):
        """A no-trace request still persists (and later serves) the trace."""
        runner.run_psi("lcp-1", record_trace=False)
        runner.clear_cache()
        run = runner.run_psi("lcp-1", record_trace=True)
        assert runner.CACHE_EVENTS["disk_hit"] == 1
        assert runner.CACHE_EVENTS["trace_upgrade"] == 0
        assert run.trace is not None

    def test_summary_round_trip_preserves_renderable_stats(self, fresh):
        run = runner.run_psi("bup-1")
        rebuilt = run.to_summary().to_collected_run()
        assert rebuilt.machine is None
        assert rebuilt.steps == run.steps
        assert rebuilt.time_ms == run.time_ms
        assert rebuilt.stats.routine_counts == run.stats.routine_counts
        assert rebuilt.stats.mem_counts == run.stats.mem_counts
        assert list(rebuilt.trace.entries()) == list(run.trace.entries())
        assert rebuilt.cache.stats.hit_ratio == run.cache.stats.hit_ratio

    def test_load_rejects_non_summary_payload(self, fresh, tmp_path):
        import hashlib
        import pickle

        cache = RunCache(tmp_path / "other")
        key = "a" * 64
        payload = pickle.dumps({"not": "a summary"})
        blob = b"".join([b"psi-run-cache\n", key.encode() + b"\n",
                         hashlib.sha256(payload).hexdigest().encode() + b"\n",
                         payload])
        cache.root.mkdir(parents=True)
        (cache.root / f"{key}.run").write_bytes(blob)
        assert cache.load(key) is None
