"""Run-history store tests: append/stamp, resolve, render, compare."""

import json

import pytest

from repro.eval.history import HistoryStore, render_entry_diff


@pytest.fixture()
def store(tmp_path, monkeypatch):
    monkeypatch.setenv("PSI_HISTORY_DIR", str(tmp_path / "hist"))
    return HistoryStore()


def _fidelity_payload(score: float, table_score: float) -> dict:
    return {"fidelity": {
        "overall": {"score": score, "drift": round(100 - score, 2)},
        "tables": {"table2": {"score": table_score}},
    }}


class TestAppend:
    def test_entries_are_stamped_and_appended_in_order(self, store):
        first = store.append("fidelity", _fidelity_payload(80.0, 70.0))
        second = store.append("bench", {"bench": {"obs": {
            "enabled_overhead_pct": 47.7}}})
        assert first["schema"] == 1
        assert first["kind"] == "fidelity"
        assert first["ts"] and first["code_version"]
        entries = store.entries()
        assert [e["kind"] for e in entries] == ["fidelity", "bench"]
        assert entries[0]["fidelity"]["overall"]["score"] == 80.0

    def test_append_only_one_json_object_per_line(self, store):
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        store.append("fidelity", _fidelity_payload(90.0, 80.0))
        lines = store.path.read_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_corrupt_lines_are_skipped(self, store):
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        with store.path.open("a") as fp:
            fp.write("{not json\n")
        store.append("fidelity", _fidelity_payload(90.0, 80.0))
        assert len(store.entries()) == 2

    def test_env_override_controls_location(self, store, tmp_path):
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        assert store.path.is_relative_to(tmp_path / "hist")


class TestResolve:
    def test_by_index_including_negative(self, store):
        a = store.append("fidelity", _fidelity_payload(80.0, 70.0))
        b = store.append("fidelity", _fidelity_payload(90.0, 80.0))
        assert store.resolve(0)["fidelity"] == a["fidelity"]
        assert store.resolve(-1)["fidelity"] == b["fidelity"]
        assert store.resolve("-2")["fidelity"] == a["fidelity"]

    def test_by_timestamp_prefix_prefers_newest_match(self, store):
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        newest = store.append("fidelity", _fidelity_payload(90.0, 80.0))
        prefix = newest["ts"][:4]              # the year matches both
        assert store.resolve(prefix)["fidelity"] == newest["fidelity"]

    def test_lookup_errors(self, store):
        with pytest.raises(LookupError):
            store.resolve(0)                   # empty store
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        with pytest.raises(LookupError):
            store.resolve(5)                   # index out of range
        with pytest.raises(LookupError):
            store.resolve("deadbeef")          # no such prefix


class TestRenderAndCompare:
    def test_render_lists_entries_with_scores(self, store):
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        text = store.render()
        assert "run history" in text and "80.0" in text

    def test_render_last_limits_rows(self, store):
        for score in (70.0, 80.0, 90.0):
            store.append("fidelity", _fidelity_payload(score, score))
        text = store.render(last=1)
        assert "90.0" in text and "70.0" not in text

    def test_render_empty_store(self, store):
        assert "no history entries" in store.render()

    def test_compare_reports_fidelity_deltas(self, store):
        store.append("fidelity", _fidelity_payload(80.0, 70.0))
        store.append("fidelity", _fidelity_payload(90.0, 85.0))
        text = store.compare(-2, -1)
        assert "fidelity score deltas" in text
        assert "15.0" in text                  # table2: 70 -> 85
        assert "10.0" in text                  # overall: 80 -> 90

    def test_compare_reports_bench_deltas(self, store):
        store.append("bench", {"bench": {"eval_all": {"serial_cold_s": 120.0}}})
        store.append("bench", {"bench": {"eval_all": {"serial_cold_s": 110.5}}})
        text = store.compare(-2, -1)
        assert "benchmark deltas" in text
        assert "eval_all.serial_cold_s" in text
        assert "-9.5" in text

    def test_disjoint_entries_say_so(self):
        text = render_entry_diff({"ts": "t0"}, {"ts": "t1"})
        assert "no comparable sections" in text
