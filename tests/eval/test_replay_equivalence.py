"""Replay equivalence: the batched single-pass path vs the reference.

``simulate_many`` (decode once, ``Cache.access_many``, miss-only
counting) must produce **bit-identical** ``CacheStats`` to N independent
``simulate`` calls — over real workload traces, for all of Figure 1's
capacities and both §4.2 ablation pairs.  Any divergence would silently
corrupt the paper's reported numbers, so the comparison is exhaustive:
every per-area counter, every per-command counter, every event count.
"""

from dataclasses import replace

import pytest

from repro.eval import runner
from repro.memsys import CacheConfig, WritePolicy
from repro.tools.pmms import (
    FIGURE1_CAPACITIES,
    capacity_sweep,
    simulate,
    simulate_many,
)

WORKLOADS = ["lcp-2", "bup-1"]


def assert_stats_identical(reference, batched, context):
    __tracebackhide__ = True
    for area in reference.per_area:
        ref, got = reference.per_area[area], batched.per_area[area]
        assert (ref.hits, ref.misses) == (got.hits, got.misses), \
            f"{context}: area {area.label} diverged"
    for cmd in reference.per_cmd_hits:
        assert reference.per_cmd_hits[cmd] == batched.per_cmd_hits[cmd], \
            f"{context}: {cmd.value} hits diverged"
        assert reference.per_cmd_misses[cmd] == batched.per_cmd_misses[cmd], \
            f"{context}: {cmd.value} misses diverged"
    assert reference.block_fetches == batched.block_fetches, context
    assert reference.writebacks == batched.writebacks, context
    assert reference.through_writes == batched.through_writes, context


def figure1_configs():
    base = CacheConfig()
    configs = []
    for capacity in FIGURE1_CAPACITIES:
        ways = min(base.ways, max(1, capacity // base.block_words))
        configs.append(replace(base, capacity_words=capacity, ways=ways))
    return configs


def ablation_configs():
    base = CacheConfig()
    return [
        CacheConfig(capacity_words=8192, ways=2),    # two 4KW sets
        CacheConfig(capacity_words=4096, ways=1),    # one 4KW set
        replace(base, policy=WritePolicy.STORE_IN),
        replace(base, policy=WritePolicy.STORE_THROUGH),
    ]


@pytest.fixture(scope="module", params=WORKLOADS)
def trace(request):
    runner.clear_cache()
    run = runner.run_psi(request.param, record_trace=True)
    yield run.trace
    runner.clear_cache()


class TestSimulateManyEquivalence:
    def test_figure1_capacities_bit_identical(self, trace):
        configs = figure1_configs()
        batched = simulate_many(trace, configs)
        for config, stats in zip(configs, batched):
            assert_stats_identical(simulate(trace, config), stats,
                                   f"capacity {config.capacity_words}")

    def test_ablation_pairs_bit_identical(self, trace):
        configs = ablation_configs()
        batched = simulate_many(trace, configs)
        for config, stats in zip(configs, batched):
            assert_stats_identical(
                simulate(trace, config), stats,
                f"{config.capacity_words}w/{config.ways}way/{config.policy}")

    def test_decoded_entries_accepted(self, trace):
        """Studies accept a pre-decoded entry list in place of the trace."""
        (from_trace,) = simulate_many(trace, [CacheConfig()])
        (from_entries,) = simulate_many(trace.decoded(), [CacheConfig()])
        assert_stats_identical(from_trace, from_entries, "decoded input")

    def test_capacity_sweep_matches_reference_points(self, trace):
        """The sweep built on simulate_many reproduces per-point numbers."""
        capacities = (8, 256, 8192)
        points = capacity_sweep(trace, steps=len(trace) * 5,
                                capacities=capacities)
        for point, config in zip(points, (
                CacheConfig(capacity_words=8, ways=2),
                CacheConfig(capacity_words=256, ways=2),
                CacheConfig(capacity_words=8192, ways=2))):
            reference = simulate(trace, config)
            assert point.hit_ratio == reference.hit_ratio


class TestAccessManyIncremental:
    def test_totals_offload_matches_self_counting(self, trace):
        """access_many with precomputed totals == access_many without."""
        from repro.memsys import Cache, count_entries

        entries = trace.decoded()
        with_totals = Cache(CacheConfig())
        with_totals.access_many(entries, count_entries(entries))
        self_counting = Cache(CacheConfig())
        self_counting.access_many(entries)
        assert_stats_identical(self_counting.stats, with_totals.stats,
                               "totals offload")

    def test_packed_self_counting_matches_reference(self, trace):
        """access_many_packed without totals == the per-access reference."""
        from repro.memsys import Cache, count_entries_packed

        for config in ablation_configs():
            packed = Cache(config)
            packed.access_many_packed(trace.data)
            assert_stats_identical(simulate(trace, config), packed.stats,
                                   f"packed self-counting {config.policy}")

    def test_count_entries_packed_matches_decoded(self, trace):
        from repro.memsys import count_entries, count_entries_packed

        area_d, cmd_d = count_entries(trace.decoded())
        area_p, cmd_p = count_entries_packed(trace.data)
        assert list(area_p) == [area_d[i] for i in sorted(area_d)]
        from repro.core.micro import CMD_BY_CODE
        assert list(cmd_p) == [cmd_d[cmd] for cmd in CMD_BY_CODE]
