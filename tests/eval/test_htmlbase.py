"""Shared HTML helpers: behaviour, and the dashboard byte-identity pin.

``repro.eval.htmlbase`` was extracted verbatim from
``repro.eval.htmlreport``; the SHA-256 pins below were computed on the
pre-extraction dashboard builder over a fixed synthetic fidelity
report.  If either hash moves, the shared helpers changed dashboard
output — which the extraction promised never to do.  (A deliberate
dashboard redesign should update the pins in the same commit and say
so; this test exists to make silent drift impossible.)
"""

import hashlib
import types

import pytest

from repro.eval import htmlbase
from repro.eval.htmlreport import build_dashboard
from repro.obs.fidelity import CellDrift, FidelityReport, TableFidelity

#: SHA-256 of the full dashboard (figure 1 + history) over the fixture
#: below, computed before the htmlbase extraction.
GOLDEN_FULL = "11b66f7b814c348727f1a41b2eabec0e25b85e5c3dd32dec48ff64498c5b9160"
#: SHA-256 of the bare dashboard — ``build_dashboard(report)`` alone.
GOLDEN_BARE = "743f697208e9c72fc493bd0677a37b901fb425e2161daeb2b9736de2e69649ed"


def _table(name: str, drifts) -> TableFidelity:
    cells = tuple(CellDrift(row=f"prog{i}", col="colA", paper=10.0 + i,
                            measured=10.0 + i + d, error=d, drift=d)
                  for i, d in enumerate(drifts))
    return TableFidelity(name, "percent", 5.0, cells)


def _figure1():
    points = [types.SimpleNamespace(capacity_words=c, hit_ratio=90.0 + i,
                                    improvement_percent=5.0 * (i + 1))
              for i, c in enumerate((128, 256, 512, 1024))]
    return types.SimpleNamespace(points=points, saturation_capacity=512)


def _history():
    return [{"fidelity": {"overall": {"score": 75.0}},
             "bench": {"eval_all": {"serial_cold_s": 120.0}}},
            {"fidelity": {"overall": {"score": 81.4}},
             "bench": {"eval_all": {"serial_cold_s": 119.2},
                       "obs": {"enabled_overhead_pct": 47.7}}}]


@pytest.fixture()
def report():
    return FidelityReport(tables=(_table("table2", [0.4, 1.8]),
                                  _table("table6", [0.2, 3.1, -0.7])))


class TestByteIdentityPin:
    def test_full_dashboard_unchanged(self, report):
        html = build_dashboard(report, figure1_result=_figure1(),
                               history_entries=_history(),
                               generated="2026-01-01T00:00:00")
        assert hashlib.sha256(html.encode()).hexdigest() == GOLDEN_FULL

    def test_bare_dashboard_unchanged(self, report):
        html = build_dashboard(report)
        assert hashlib.sha256(html.encode()).hexdigest() == GOLDEN_BARE


class TestPageSkeleton:
    def test_page_is_one_self_contained_document(self):
        html = htmlbase.page("A & B", "<p>body</p>")
        assert html.startswith("<!DOCTYPE html>\n")
        assert html.endswith("</body></html>\n")
        assert "<title>A &amp; B</title>" in html
        assert htmlbase.BASE_CSS in html
        assert "<script>" not in html

    def test_script_block_only_when_requested(self):
        html = htmlbase.page("t", "b", script="console.log(1)")
        assert "<script>console.log(1)</script></body>" in html

    def test_extra_css_appends_after_base(self):
        html = htmlbase.page("t", "b", extra_css=".extra{}")
        assert f"{htmlbase.BASE_CSS}.extra{{}}</style>" in html


class TestHelpers:
    def test_esc(self):
        assert htmlbase.esc('<a href="x">') == "&lt;a href=&quot;x&quot;&gt;"

    def test_fmt(self):
        assert htmlbase.fmt(3.0) == "3"
        assert htmlbase.fmt(3.14159) == "3.14"
        assert htmlbase.fmt(123.456) == "123.5"

    def test_round_bar_carries_tooltip(self):
        bar = htmlbase.round_bar(0, 0, 50, 10, "var(--measured)", "a<b")
        assert "<title>a&lt;b</title>" in bar and bar.startswith("<path")

    def test_legend(self):
        html = htmlbase.legend((("measured", "var(--measured)"),))
        assert "measured" in html and 'class="legend"' in html

    def test_sparkline_empty_and_single(self):
        assert htmlbase.sparkline([], "x") == ""
        assert "1 entry" in htmlbase.sparkline([5.0], "x")
