"""Concurrency tests for the run cache's file locking.

The contract under test (``RunCache.load_or_compute``): when N
processes miss the same key simultaneously, exactly one computes —
the others block on the per-key ``flock`` and then load the stored
entry — and the store is never corrupted.  On platforms without
``fcntl`` the lock degrades to safe recompute over atomic renames.
"""

import multiprocessing
import os
import time

from repro.eval import run_cache as run_cache_mod
from repro.eval.run_cache import RunCache
from repro.tools.collect import RunSummary, StatsCollector

PROCESSES = 4
KEY = "deadbeef" * 8


def _summary(goal: str = "locked?") -> RunSummary:
    return RunSummary(goal=goal, succeeded=True, solutions=1,
                      stats=StatsCollector(), trace_bytes=None,
                      cache_stats=None, cache_config=None)


def _contend(root, side_effect_path, barrier, results):
    """One contender: barrier-synchronised load_or_compute on KEY.

    ``compute`` sleeps while holding the key lock and appends its pid
    to a side-effect file — the exactly-once assertion counts lines.
    """
    cache = RunCache(root)

    def compute() -> RunSummary:
        time.sleep(0.3)
        with open(side_effect_path, "a") as fp:
            fp.write(f"{os.getpid()}\n")
        return _summary()

    barrier.wait()
    summary, outcome = cache.load_or_compute(KEY, compute)
    results.put((os.getpid(), outcome, summary.goal))


def test_n_processes_one_key_exactly_once(tmp_path):
    root = tmp_path / "cache"
    side_effect = tmp_path / "computed.log"
    side_effect.touch()
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(PROCESSES)
    results = context.Queue()
    procs = [context.Process(target=_contend,
                             args=(str(root), str(side_effect), barrier,
                                   results))
             for _ in range(PROCESSES)]
    for proc in procs:
        proc.start()
    outcomes = [results.get(timeout=60) for _ in range(PROCESSES)]
    for proc in procs:
        proc.join(timeout=60)
        assert proc.exitcode == 0

    # Exactly one compute ran, every process got the stored summary.
    assert len(side_effect.read_text().splitlines()) == 1
    by_outcome = {}
    for _, outcome, goal in outcomes:
        assert goal == "locked?"
        by_outcome.setdefault(outcome, 0)
        by_outcome[outcome] += 1
    assert by_outcome.get("computed", 0) == 1
    # The rest waited on the lock (or, if slow to start, hit directly).
    assert (by_outcome.get("wait_hit", 0) + by_outcome.get("hit", 0)
            == PROCESSES - 1)

    # Store integrity: one entry, no temp-file debris, loadable.
    assert len(list(root.glob("*.run"))) == 1
    assert list(root.glob("*.tmp*")) == []
    assert RunCache(root).load(KEY).goal == "locked?"


def test_usable_narrowing_recomputes_under_lock(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.store(KEY, _summary("no-trace"))
    summary, outcome = cache.load_or_compute(
        KEY, lambda: _summary("with-trace"),
        usable=lambda s: s.goal == "with-trace")
    assert outcome == "computed"
    assert summary.goal == "with-trace"
    # And the stored entry was upgraded in place.
    assert cache.load(KEY).goal == "with-trace"


def test_no_fcntl_fallback_recomputes_safely(tmp_path, monkeypatch):
    """Without fcntl the lock is a no-op and compute runs unguarded —
    still correct (atomic rename, last writer wins), just not
    exactly-once."""
    monkeypatch.setattr(run_cache_mod, "fcntl", None)
    cache = RunCache(tmp_path / "cache")
    with cache.lock(KEY) as locked:
        assert locked is False
    summary, outcome = cache.load_or_compute(KEY, _summary)
    assert outcome == "computed"
    assert cache.load(KEY).goal == summary.goal
    assert list((tmp_path / "cache").glob("*.lock")) == []


def test_clear_sweeps_lock_files(tmp_path):
    cache = RunCache(tmp_path / "cache")
    cache.store(KEY, _summary())
    with cache.lock(KEY):
        pass
    assert list(cache.root.glob("*.lock")) != []
    assert cache.clear() == 1            # lock files are not counted
    assert list(cache.root.glob("*.lock")) == []
    assert cache.entries() == []


def _run_psi_contender(cache_dir, barrier, results):
    """Fork-inherited interpreter state is reset so every process takes
    the disk-tier path on the same key, concurrently."""
    os.environ["PSI_CACHE_DIR"] = cache_dir
    from repro.eval import runner

    runner.clear_cache()
    runner.set_disk_cache(True)
    barrier.wait()
    run = runner.run_psi("nreverse", record_trace=False)
    results.put((dict(runner.CACHE_EVENTS),
                 [list(map(list, answer)) for answer in run.answers]))


def _run_spec_contender(cache_dir, spec_name, barrier, results):
    """Like :func:`_run_psi_contender`, parameterized by run spec."""
    os.environ["PSI_CACHE_DIR"] = cache_dir
    from repro.eval import runner

    runner.clear_cache()
    runner.set_disk_cache(True)
    barrier.wait()
    run = runner.run_spec("nreverse", spec_name, record_trace=False)
    results.put((spec_name, dict(runner.CACHE_EVENTS), run.steps))


def test_concurrent_cold_start_two_specs_computes_once_each(tmp_path):
    """N processes race TWO specs on one cold cache: exactly one
    interpretation per spec, one labelled disk entry per spec, and no
    contender is ever served the other spec's entry."""
    context = multiprocessing.get_context("fork")
    spec_names = ["faithful", "indexed"] * 2
    barrier = context.Barrier(len(spec_names))
    results = context.Queue()
    procs = [context.Process(target=_run_spec_contender,
                             args=(str(tmp_path), name, barrier, results))
             for name in spec_names]
    for proc in procs:
        proc.start()
    outcomes = [results.get(timeout=120) for _ in range(len(spec_names))]
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    for spec_name in ("faithful", "indexed"):
        events = [e for name, e, _ in outcomes if name == spec_name]
        assert len(events) == 2
        assert sum(e.get(f"disk_compute:{spec_name}", 0)
                   for e in events) == 1
        assert all(e.get(f"disk_compute:{spec_name}", 0)
                   + e.get(f"disk_wait_hit:{spec_name}", 0)
                   + e.get(f"disk_hit:{spec_name}", 0) == 1 for e in events)
        # No cross-spec pollution: a contender never touches the other
        # spec's cache key.
        other = "indexed" if spec_name == "faithful" else "faithful"
        assert all(not any(key.endswith(f":{other}") for key in e)
                   for e in events)

    # Two disk entries — one per spec fingerprint — each labelled with
    # its spec name, no temp-file debris.
    cache = RunCache(tmp_path)
    runs = sorted(tmp_path.glob("*.run"))
    assert len(runs) == 2
    assert sorted(cache.entry_label(path) for path in runs) \
        == ["faithful", "indexed"]
    assert list(tmp_path.glob("*.tmp*")) == []

    # Indexing narrows the clause scan, so the two specs' modelled
    # step counts differ — a cross-spec mixup would equalise them.
    steps = {name: n for name, _, n in outcomes}
    assert steps["faithful"] != steps["indexed"]


def test_run_psi_concurrent_cold_start_computes_once(tmp_path):
    """The full stack: N ``run_psi`` processes race one cold cache key;
    one interprets, the rest block on the lock and load its entry."""
    context = multiprocessing.get_context("fork")
    barrier = context.Barrier(3)
    results = context.Queue()
    procs = [context.Process(target=_run_psi_contender,
                             args=(str(tmp_path), barrier, results))
             for _ in range(3)]
    for proc in procs:
        proc.start()
    outcomes = [results.get(timeout=120) for _ in range(3)]
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0

    events = [e for e, _ in outcomes]
    answers = [a for _, a in outcomes]
    assert answers[0] == answers[1] == answers[2]
    assert sum(e.get("disk_compute", 0) for e in events) == 1
    assert all(e.get("disk_compute", 0) + e.get("disk_wait_hit", 0)
               + e.get("disk_hit", 0) == 1 for e in events)
    assert len(list(tmp_path.glob("*.run"))) == 1
    assert list(tmp_path.glob("*.tmp*")) == []
