"""Dashboard tests: structure, content, and strict self-containment."""

import types
from html.parser import HTMLParser

import pytest

from repro.eval.htmlreport import build_dashboard
from repro.obs.fidelity import CellDrift, FidelityReport, TableFidelity


def _table(name: str, drifts) -> TableFidelity:
    cells = tuple(CellDrift(row=f"prog{i}", col="colA", paper=10.0 + i,
                            measured=10.0 + i + d, error=d, drift=d)
                  for i, d in enumerate(drifts))
    return TableFidelity(name, "percent", 5.0, cells)


def _figure1():
    points = [types.SimpleNamespace(capacity_words=c, hit_ratio=90.0 + i,
                                    improvement_percent=5.0 * (i + 1))
              for i, c in enumerate((128, 256, 512, 1024))]
    return types.SimpleNamespace(points=points, saturation_capacity=512)


def _history():
    return [{"fidelity": {"overall": {"score": 75.0}},
             "bench": {"eval_all": {"serial_cold_s": 120.0}}},
            {"fidelity": {"overall": {"score": 81.4}},
             "bench": {"eval_all": {"serial_cold_s": 119.2},
                       "obs": {"enabled_overhead_pct": 47.7}}}]


@pytest.fixture()
def report():
    return FidelityReport(tables=(_table("table2", [0.4, 1.8]),
                                  _table("table6", [0.2])))


@pytest.fixture()
def html(report):
    return build_dashboard(report, figure1_result=_figure1(),
                           history_entries=_history(),
                           generated="2026-08-06T00:00:00")


class _Auditor(HTMLParser):
    """Collects every attribute that could reference an external resource."""

    EXTERNAL_ATTRS = ("src", "href", "xlink:href", "data", "poster", "srcset")

    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.external = []
        self.tags = []
        self.scripts = 0

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        if tag == "script":
            self.scripts += 1
        for name, value in attrs:
            if name.lower() in self.EXTERNAL_ATTRS and value:
                self.external.append((tag, name, value))


def _audit(html: str) -> _Auditor:
    auditor = _Auditor()
    auditor.feed(html)
    auditor.close()
    return auditor


class TestSelfContainment:
    def test_zero_external_references(self, html):
        audit = _audit(html)
        assert audit.external == []

    def test_no_scripts_no_imports(self, html):
        audit = _audit(html)
        assert audit.scripts == 0
        assert "@import" not in html
        assert "url(" not in html

    def test_is_a_complete_document(self, html):
        assert html.startswith("<!DOCTYPE html>")
        audit = _audit(html)
        for tag in ("html", "head", "style", "body", "svg"):
            assert tag in audit.tags


class TestContent:
    def test_scorecard_and_tables_present(self, report, html):
        assert f"{report.overall_score:.1f}" in html
        assert "table2" in html and "table6" in html
        assert "prog1" in html                 # worst cell appears

    def test_legend_and_table_view(self, html):
        assert "measured" in html and "paper" in html
        assert "<details>" in html and "table view" in html

    def test_figure1_marks_paper_saturation(self, html):
        assert "paper saturation" in html
        assert "512" in html

    def test_history_sparklines(self, html):
        assert "fidelity score" in html
        assert "serial cold" in html

    def test_dark_mode_palette_defined(self, html):
        assert "prefers-color-scheme: dark" in html
        assert "--measured" in html and "--paper" in html

    def test_optional_sections_degrade(self, report):
        html = build_dashboard(report)
        audit = _audit(html)
        assert audit.external == []
        assert "paper saturation" not in html

    def test_labels_are_escaped(self):
        table = TableFidelity("table2", "percent", 5.0, (
            CellDrift(row="<evil>", col="a&b", paper=1.0, measured=2.0,
                      error=1.0, drift=0.2),))
        html = build_dashboard(FidelityReport(tables=(table,)))
        assert "<evil>" not in html
        assert "&lt;evil&gt;" in html
