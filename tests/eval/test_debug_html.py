"""The debug explorer artifact: self-contained, complete, divergence-aware.

Same discipline as the dashboard — zero external references — with the
explorer's one liberty: inline ``<script>`` blocks (the scrubber), and
only those (a JSON data island plus the scrubber logic, both embedded).
"""

import json
import re
from html.parser import HTMLParser

import pytest

from repro.eval import debughtml
from repro.eval.cli import main
from repro.obs.timetravel import TraceExplorer, first_divergence


@pytest.fixture(scope="module")
def nreverse():
    from repro.eval.runner import run_psi

    run = run_psi("nreverse", record_trace=True)
    return run, TraceExplorer(run.trace)


@pytest.fixture(scope="module")
def explorer_html(nreverse):
    run, explorer = nreverse
    return debughtml.build_explorer("nreverse", run, explorer,
                                    generated="2026-01-01T00:00:00")


class _Auditor(HTMLParser):
    """Collects every attribute that could reference an external resource."""

    EXTERNAL_ATTRS = ("src", "href", "xlink:href", "data", "poster", "srcset")

    def __init__(self):
        super().__init__()
        self.external = []
        self.scripts = 0

    def handle_starttag(self, tag, attrs):
        if tag == "script":
            self.scripts += 1
        for key, value in attrs:
            if key in self.EXTERNAL_ATTRS and value:
                self.external.append((tag, key, value))


def _audit(html: str) -> _Auditor:
    auditor = _Auditor()
    auditor.feed(html)
    return auditor


class TestSelfContainment:
    def test_zero_external_references(self, explorer_html):
        auditor = _audit(explorer_html)
        assert auditor.external == []

    def test_exactly_the_two_inline_scripts(self, explorer_html):
        # The JSON data island plus the scrubber logic — nothing else.
        assert _audit(explorer_html).scripts == 2
        assert 'src=' not in explorer_html.split("viz-root")[0]

    def test_diff_page_is_script_free_and_self_contained(self, nreverse):
        run, explorer = nreverse
        html = debughtml.build_diff("nreverse", None, run, run.answers,
                                    explorer)
        auditor = _audit(html)
        assert auditor.external == [] and auditor.scripts == 0


class TestExplorerContent:
    def test_page_anatomy(self, explorer_html, nreverse):
        _, explorer = nreverse
        assert "PSI time-travel explorer — nreverse" in explorer_html
        assert 'id="scrub"' in explorer_html
        assert 'id="tt-data"' in explorer_html
        assert "Cache timeline" in explorer_html
        assert "Choicepoints and backtracking" in explorer_html
        assert f"{explorer.n_steps} memory microsteps" in explorer_html

    def test_data_island_parses_and_matches_the_run(self, explorer_html,
                                                    nreverse):
        _, explorer = nreverse
        island = re.search(r'id="tt-data">(.*?)</script>', explorer_html,
                           re.S).group(1)
        data = json.loads(island)
        assert data["entries"] == explorer.n_steps
        assert len(data["states"]) <= debughtml.MAX_SCRUB_STATES + 1
        final = data["states"][-1]
        assert final["step"] == explorer.n_steps
        assert final["backtracks"] == explorer.final.backtracks
        registers = dict(zip(data["registers"],
                             (a["top"] for a in final["areas"])))
        assert registers == explorer.final.registers

    def test_heat_strips_cover_every_touched_area(self, explorer_html,
                                                  nreverse):
        _, explorer = nreverse
        for area_index, area_state in enumerate(explorer.final.areas):
            if area_state.high_water:
                assert f'id="heat-{area_index}"' in explorer_html

    def test_answer_marks_are_jump_targets(self, explorer_html, nreverse):
        run, _ = nreverse
        for mark in run.answer_marks:
            assert f'data-jump="{mark}"' in explorer_html


class TestDiffPage:
    def test_divergence_rendered_side_by_side(self, nreverse):
        run, explorer = nreverse
        wrong = ((("X", "WRONG"),),)
        divergence = first_divergence("nreverse", run.answers,
                                      run.answer_marks, wrong,
                                      explorer.n_steps)
        assert divergence is not None and divergence.index == 0
        html = debughtml.build_diff("nreverse", divergence, run, wrong,
                                    explorer)
        assert "First-divergence report — nreverse" in html
        assert 'class="diverged"' in html
        assert f"diverging microstep ({divergence.microstep})" in html
        assert "WRONG" in html
        assert _audit(html).external == []

    def test_agreement_page_says_so(self, nreverse):
        run, explorer = nreverse
        html = debughtml.build_diff("nreverse", None, run, run.answers,
                                    explorer)
        assert "the engines agree" in html


class TestCli:
    def test_debug_writes_the_explorer(self, tmp_path, capsys):
        out = tmp_path / "explorer.html"
        assert main(["debug", "nreverse", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert f"wrote {out}" in text
        html = out.read_text()
        assert _audit(html).external == []
        assert "PSI time-travel explorer — nreverse" in html

    def test_debug_step_prints_state(self, capsys):
        assert main(["debug", "nreverse", "--step", "0"]) == 0
        text = capsys.readouterr().out
        assert "state at microstep 0" in text
        assert "HP=0" in text

    def test_debug_step_out_of_range(self):
        with pytest.raises(SystemExit):
            main(["debug", "nreverse", "--step", "999999999"])

    def test_debug_diff_agreeing_workload(self, tmp_path, capsys):
        out = tmp_path / "diff.html"
        assert main(["debug", "--diff", "nreverse", "--out", str(out)]) == 0
        assert "engines agree" in capsys.readouterr().out
        assert "the engines agree" in out.read_text()

    def test_debug_diff_seeded_divergence_exits_1(self, tmp_path, capsys,
                                                  monkeypatch):
        from repro.eval import runner
        from repro.eval.specs import get_spec

        real = runner.run_spec

        def forged(name, spec=None, record_trace=True):
            result = real(name, spec, record_trace=record_trace)
            if get_spec(spec).engine != "baseline":
                return result
            return runner.BaselineRun(stats=result.stats,
                                      answers=((("X", "WRONG"),),),
                                      counters=result.counters)

        monkeypatch.setattr(runner, "run_spec", forged)
        out = tmp_path / "diff.html"
        assert main(["debug", "--diff", "nreverse", "--out", str(out)]) == 1
        assert "diverges at PSI microstep" in capsys.readouterr().out
        assert 'class="diverged"' in out.read_text()

    def test_debug_requires_a_workload(self):
        with pytest.raises(SystemExit):
            main(["debug"])
