"""Tests for the evaluation harness (fast workloads only).

The full-table regeneration lives in benchmarks/; these tests check the
plumbing: caching, row construction, rendering and the CLI, using the
quick benchmarks so the whole module runs in seconds.
"""

import pytest

from repro.core.memory import Area
from repro.core.micro import Module, WFMode
from repro.eval import figure1, paper_data, runner, table1, table2, table3, table4, table5, table6, table7
from repro.eval.report import format_table


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


FAST = {"window": "bup-1", "puzzle8": "lcp-1", "bup": "bup-1",
        "harmonizer": "lcp-2"}


class TestRunner:
    def test_run_psi_caches(self):
        first = runner.run_psi("lcp-1")
        second = runner.run_psi("lcp-1")
        assert first is second

    def test_trace_upgrade_reruns(self):
        light = runner.run_psi("lcp-1", record_trace=False)
        with_trace = runner.run_psi("lcp-1", record_trace=True)
        assert with_trace.trace is not None

    def test_run_baseline(self):
        stats = runner.run_baseline("lcp-1")
        assert stats.time_ms > 0

    def test_psi_only_workload_rejected_on_baseline(self):
        with pytest.raises(ValueError):
            runner.run_baseline("window-1")


class TestTable1:
    def test_subset_generation(self):
        rows = table1.generate(["nreverse", "lcp-1"])
        assert len(rows) == 2
        for row in rows:
            assert row.psi_ms > 0 and row.dec_ms > 0
            assert row.ratio == pytest.approx(row.dec_ms / row.psi_ms)
        text = table1.render(rows)
        assert "nreverse" in text and "DEC/PSI" in text

    def test_winner_agreement_logic(self):
        row = table1.Table1Row("x", "(0)", "x", 10.0, 12.0, 1.2,
                               10.0, 13.0, 1.3, 100)
        assert table1._winner_agrees(row)
        row_no = table1.Table1Row("x", "(0)", "x", 10.0, 8.0, 0.8,
                                  10.0, 13.0, 1.3, 100)
        assert not table1._winner_agrees(row_no)
        near_tie = table1.Table1Row("x", "(0)", "x", 10.0, 10.4, 1.04,
                                    10.0, 9.6, 0.96, 100)
        assert table1._winner_agrees(near_tie)


class TestProfileTables:
    def test_table2_rows(self):
        rows = table2.generate(FAST)
        assert len(rows) == 4
        for row in rows:
            assert sum(row.ratios.values()) == pytest.approx(100.0)
        assert "program" in table2.render(rows)

    def test_table3_rows(self):
        rows = table3.generate({"bup": "bup-1"})
        row = rows[0]
        assert row.total == pytest.approx(row.read + row.write_total)
        assert 0 < row.total < 100
        assert "write-stack" in table3.render(rows)

    def test_table4_rows(self):
        rows = table4.generate({"bup": "bup-1"})
        total = sum(rows[0].ratios.values())
        assert total == pytest.approx(100.0, abs=0.5)
        table4.render(rows)

    def test_table5_rows(self):
        rows = table5.generate({"bup": "bup-1"})
        row = rows[0]
        for area in (Area.HEAP, Area.GLOBAL):
            assert 0 < row.ratios[area] <= 100.0
        table5.render(rows)

    def test_table6(self):
        result = table6.generate("bup-1")
        assert set(result.totals) == {"source1", "source2", "dest"}
        assert 0 < result.direct_share <= 100
        text = table6.render(result)
        assert "@WFAR1" in text

    def test_table7(self):
        result = table7.generate({"bup": "bup-1"})
        assert sum(result.ratios["bup"].values()) == pytest.approx(100.0)
        assert 0 < result.branch_rates["bup"] < 100
        table7.render(result)

    def test_figure1_small(self):
        result = figure1.generate("lcp-2", capacities=(8, 256, 8192))
        assert len(result.points) == 3
        assert result.saturation_capacity in (8, 256, 8192)
        figure1.render(result)


class TestReport:
    def test_format_table_alignment(self):
        text = format_table(["a", "bee"], [(1, 2.5), (30, "x")], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title + header + rule + 2 rows

    def test_paper_data_complete(self):
        assert len(paper_data.TABLE1) == 19
        assert len(paper_data.TABLE7) == 16
        for values in paper_data.TABLE5.values():
            assert len(values) == 6


class TestCLI:
    def test_cli_runs_table6(self, capsys, monkeypatch):
        from repro.eval import cli, table6 as t6
        monkeypatch.setattr(t6, "WORKLOAD", "bup-1")
        assert cli.main(["table6"]) == 0
        out = capsys.readouterr().out
        assert "work file" in out.lower()

    def test_cli_rejects_unknown_target(self):
        from repro.eval import cli
        with pytest.raises(SystemExit):
            cli.main(["table99"])
