"""The run-spec registry and the spec-parameterized runner path.

Covers the registry contracts (fingerprint identity, aliases,
registration guards, the process default), the deprecated wrapper
functions' object-identity with the spec path, and the acceptance
property of the refactor: a non-faithful spec's runs are disk-cached
under their own fingerprint, so a second invocation performs zero
engine executions.
"""

import dataclasses

import pytest

from repro.core.machine import MachineConfig
from repro.eval import runner, specs
from repro.eval.specs import RunSpec, get_spec, register_spec, unregister_spec


@pytest.fixture(autouse=True)
def _pristine_registry():
    """Every test starts and ends on the built-in registry + default."""
    yield
    for name in list(specs.all_specs()):
        if name not in ("faithful", "indexed", "unfused", "baseline"):
            unregister_spec(name)
    specs.set_default_spec("faithful")


class TestRegistry:
    def test_builtins_present(self):
        assert set(specs.spec_names()) >= {"faithful", "indexed",
                                           "unfused", "baseline"}
        assert get_spec("faithful").engine == "psi"
        assert get_spec("indexed").machine_config.indexed is True
        assert get_spec("unfused").machine_config.fused is False
        assert get_spec("baseline").engine == "baseline"

    def test_legacy_engine_aliases_resolve(self):
        assert get_spec("psi") is get_spec("faithful")
        assert get_spec("psi-indexed") is get_spec("indexed")
        assert get_spec("dec") is get_spec("baseline")
        assert get_spec("wam") is get_spec("baseline")

    def test_get_spec_passthrough_and_default(self):
        spec = get_spec("indexed")
        assert get_spec(spec) is spec
        assert get_spec(None) is specs.default_spec()

    def test_unknown_spec_raises(self):
        with pytest.raises(ValueError, match="unknown run spec"):
            get_spec("no-such-spec")

    def test_register_guards(self):
        with pytest.raises(ValueError, match="already registered"):
            register_spec(RunSpec(name="faithful"))
        with pytest.raises(ValueError, match="reserved spec alias"):
            register_spec(RunSpec(name="psi"))
        with pytest.raises(ValueError, match="unknown engine"):
            register_spec(RunSpec(name="turbo", engine="quantum"))

    def test_register_and_unregister(self):
        spec = register_spec(RunSpec(
            name="indexed-unfused",
            machine_config=MachineConfig(indexed=True, fused=False)))
        assert get_spec("indexed-unfused") is spec
        unregister_spec("indexed-unfused")
        with pytest.raises(ValueError):
            get_spec("indexed-unfused")
        # Built-ins survive an (attempted) unregister.
        unregister_spec("faithful")
        assert get_spec("faithful").name == "faithful"

    def test_default_spec_switch(self):
        assert specs.default_spec().name == "faithful"
        specs.set_default_spec("indexed")
        assert specs.default_spec().name == "indexed"

    def test_assert_faithful_gate(self):
        specs.assert_faithful("unit test")          # faithful: no raise
        specs.set_default_spec("indexed")
        with pytest.raises(RuntimeError, match="faithful"):
            specs.assert_faithful("unit test")


class TestFingerprint:
    def test_name_excluded_from_fingerprint(self):
        a = RunSpec(name="a")
        b = RunSpec(name="b")
        assert a.fingerprint == b.fingerprint
        assert a != b                       # identity is (name, fingerprint)

    def test_configuration_changes_fingerprint(self):
        base = RunSpec(name="x")
        for variant in (
            RunSpec(name="x", machine_config=MachineConfig(indexed=True)),
            RunSpec(name="x", machine_config=MachineConfig(fused=False)),
            RunSpec(name="x", engine="baseline"),
            RunSpec(name="x", with_cache=False),
            RunSpec(name="x", all_solutions=True),
            RunSpec(name="x", record_trace=False),
        ):
            assert variant.fingerprint != base.fingerprint

    def test_description_does_not_change_fingerprint(self):
        assert (RunSpec(name="x", description="why").fingerprint
                == RunSpec(name="x").fingerprint)

    def test_specs_are_hashable_dict_keys(self):
        tiers = {get_spec("faithful"): 1, get_spec("indexed"): 2}
        assert tiers[get_spec("psi")] == 1


class TestDeprecatedWrappers:
    def test_run_psi_is_object_identical_to_spec_path(self):
        runner.clear_cache()
        with pytest.warns(DeprecationWarning, match="run_psi"):
            legacy = runner.run_psi("nreverse", record_trace=False)
        assert legacy is runner.run_spec("nreverse", "faithful",
                                         record_trace=False)

    def test_run_psi_indexed_is_object_identical_to_spec_path(self):
        runner.clear_cache()
        with pytest.warns(DeprecationWarning, match="run_psi_indexed"):
            legacy = runner.run_psi_indexed("nreverse")
        assert legacy is runner.run_spec("nreverse", "indexed",
                                         record_trace=False)

    def test_run_baseline_is_object_identical_to_spec_path(self):
        runner.clear_cache()
        with pytest.warns(DeprecationWarning, match="run_baseline"):
            legacy = runner.run_baseline("nreverse")
        assert legacy is runner.run_spec("nreverse", "baseline")

    def test_run_engine_resolves_spec_names(self):
        runner.clear_cache()
        via_engine = runner.run_engine("nreverse", engine="psi",
                                       record_trace=False)
        assert via_engine is runner.run_spec("nreverse", "faithful",
                                             record_trace=False)
        via_spec_name = runner.run_engine("nreverse", engine="indexed",
                                          record_trace=False)
        assert via_spec_name is runner.run_spec("nreverse", "indexed",
                                                record_trace=False)


class TestSpecCaching:
    def test_indexed_second_invocation_zero_engine_executions(self):
        """The acceptance property: after one cold pass, re-deriving the
        indexed comparison performs zero interpretations — both specs
        are served from their fingerprint-keyed disk entries."""
        from repro.eval import indexed

        runner.clear_cache(disk=True)
        runner.set_disk_cache(True)
        indexed.compare_workload("nreverse")
        first = dict(runner.CACHE_EVENTS)
        assert first.get("disk_compute:indexed", 0) == 1

        runner.clear_cache()            # memory tier only; disk persists
        indexed.compare_workload("nreverse")
        second = dict(runner.CACHE_EVENTS)
        assert second.get("disk_compute", 0) == 0
        assert second.get("disk_hit:indexed", 0) == 1
        assert second.get("disk_hit:faithful", 0) == 1

    def test_specs_do_not_share_memo_entries(self):
        runner.clear_cache()
        faithful = runner.run_spec("nreverse", "faithful",
                                   record_trace=False)
        indexed = runner.run_spec("nreverse", "indexed", record_trace=False)
        assert faithful is not indexed
        # Indexing narrows the clause scan, so the modelled step
        # counts must differ — a shared cache slot would equalise them.
        assert faithful.steps != indexed.steps
        assert faithful is runner.run_spec("nreverse", "faithful",
                                           record_trace=False)

    def test_registered_spec_runs_and_caches(self):
        spec = register_spec(RunSpec(
            name="indexed-unfused",
            machine_config=MachineConfig(indexed=True, fused=False)))
        runner.clear_cache()
        run = runner.run_spec("nreverse", "indexed-unfused",
                              record_trace=False)
        assert run.succeeded
        # Same modelled steps as `indexed` (fusion never changes the
        # step count), distinct cache identity.
        assert run.steps == runner.run_spec("nreverse", "indexed",
                                            record_trace=False).steps
        assert spec.fingerprint != get_spec("indexed").fingerprint

    def test_run_spec_configs_are_not_aliased_to_registry(self):
        """A live machine must never mutate the registry's config."""
        runner.clear_cache()
        before = dataclasses.replace(get_spec("faithful").machine_config)
        runner.run_spec("nreverse", "faithful", record_trace=False)
        assert get_spec("faithful").machine_config == before


class TestCreateEngine:
    def test_spec_names_are_engine_names(self):
        from repro.engine.api import create_engine

        engine = create_engine("unfused")
        engine.load("append([], L, L). "
                    "append([H|T], L, [H|R]) :- append(T, L, R).")
        assert engine.solve("append([1,2], [3], X)")
        with pytest.raises(ValueError, match="unknown engine"):
            create_engine("no-such-spec")

    def test_registered_spec_becomes_engine_name(self):
        from repro.engine.api import create_engine

        register_spec(RunSpec(
            name="indexed-unfused",
            machine_config=MachineConfig(indexed=True, fused=False)))
        engine = create_engine("indexed-unfused")
        assert engine.name == "indexed-unfused"
        engine.load("append([], L, L). "
                    "append([H|T], L, [H|R]) :- append(T, L, R).")
        assert engine.solve("append([1], [2], X)")
