"""Wire-protocol unit tests: framing, codecs, config canonicalisation."""

import struct

import pytest

from repro.memsys import CacheConfig, WritePolicy
from repro.serve.protocol import (
    HEADER,
    MAX_MESSAGE_BYTES,
    ProtocolError,
    cache_config_from_json,
    cache_config_to_json,
    canonical_config_key,
    decode_frames,
    encode_message,
)


def test_encode_decode_roundtrip():
    message = {"id": 7, "op": "solve", "workload": "nreverse"}
    frame = encode_message(message)
    assert frame[:HEADER.size] == struct.pack(">I", len(frame) - HEADER.size)
    messages, tail = decode_frames(frame)
    assert messages == [message]
    assert tail == b""


def test_decode_frames_handles_coalesced_and_partial_frames():
    a = encode_message({"id": 1, "op": "ping"})
    b = encode_message({"id": 2, "op": "health"})
    # Two complete frames plus a split third: TCP gives no message
    # boundaries, so the decoder must return the unconsumed tail.
    c = encode_message({"id": 3, "op": "metrics"})
    stream = a + b + c[:5]
    messages, tail = decode_frames(stream)
    assert [m["id"] for m in messages] == [1, 2]
    assert tail == c[:5]
    messages, tail = decode_frames(tail + c[5:])
    assert [m["id"] for m in messages] == [3]
    assert tail == b""


def test_decode_frames_empty_and_header_only():
    assert decode_frames(b"") == ([], b"")
    partial_header = b"\x00\x00"
    assert decode_frames(partial_header) == ([], partial_header)


def test_oversized_frame_rejected_without_buffering():
    bogus = struct.pack(">I", MAX_MESSAGE_BYTES + 1)
    with pytest.raises(ProtocolError, match="exceeds"):
        decode_frames(bogus)


def test_encode_rejects_oversized_message():
    with pytest.raises(ProtocolError, match="exceeds"):
        encode_message({"blob": "x" * (MAX_MESSAGE_BYTES + 1)})


def test_non_object_and_undecodable_bodies_rejected():
    body = b"[1,2,3]"
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(ProtocolError, match="JSON object"):
        decode_frames(frame)
    garbage = b"\xff\xfe not json"
    frame = struct.pack(">I", len(garbage)) + garbage
    with pytest.raises(ProtocolError, match="undecodable"):
        decode_frames(frame)


def test_cache_config_json_roundtrip():
    config = CacheConfig(capacity_words=1024, ways=1,
                         policy=WritePolicy.STORE_THROUGH)
    data = cache_config_to_json(config)
    assert cache_config_from_json(data) == config


def test_cache_config_unknown_field_rejected():
    with pytest.raises(ProtocolError, match="capcity_words"):
        cache_config_from_json({"capcity_words": 1024})


def test_cache_config_geometry_validation_applies():
    with pytest.raises(ValueError):
        cache_config_from_json({"capacity_words": 7})


def test_canonical_key_fills_defaults():
    # {} and the explicit default spelling must deduplicate to one
    # simulated configuration inside a replay batch.
    default = CacheConfig()
    explicit = cache_config_to_json(default)
    assert canonical_config_key({}) == canonical_config_key(explicit)
    assert (canonical_config_key({"capacity_words": 1024})
            != canonical_config_key({}))
