"""ReplayBatcher unit tests against a fake worker pool.

The batching contract under test: same-workload replay requests inside
one window coalesce into a single pool call over the deduplicated
config union, and every request gets back exactly its own configs'
stats, in its own order.  Worker failures propagate to every waiter.
"""

import asyncio

from repro.obs.metrics import MetricsRegistry
from repro.serve.batcher import ReplayBatcher


class FakePool:
    """Echoes each config back as its own 'stats' entry."""

    def __init__(self, fail=False):
        self.calls = []
        self.fail = fail

    async def run(self, fn, workload, spec, configs):
        self.calls.append((workload, spec, configs))
        await asyncio.sleep(0)       # yield, like a real executor hop
        if self.fail:
            raise RuntimeError("worker exploded")
        return {
            "workload": workload,
            "spec": spec,
            "trace_entries": 42,
            "stats": [dict(config, echoed=True) for config in configs],
            "worker_pid": 999,
        }


def test_concurrent_requests_coalesce_to_one_pool_call():
    pool = FakePool()
    metrics = MetricsRegistry()

    async def scenario():
        batcher = ReplayBatcher(pool, window_s=0.02, metrics=metrics)
        return await asyncio.gather(
            batcher.submit("w", [{"capacity_words": 1024}]),
            batcher.submit("w", [{"capacity_words": 8192}]),
            batcher.submit("w", [{"capacity_words": 1024}, {}]),
        )

    r1, r2, r3 = asyncio.run(scenario())
    assert len(pool.calls) == 1
    _, spec, union = pool.calls[0]
    assert spec == "faithful"
    # 1024 is requested twice, and {} canonicalises to the default
    # geometry (capacity 8192) so it merges with the explicit 8192:
    # four requested configs, two simulated.
    assert len(union) == 2
    assert [s["capacity_words"] for s in r1["stats"]] == [1024]
    assert [s["capacity_words"] for s in r2["stats"]] == [8192]
    assert [s["capacity_words"] for s in r3["stats"]] == [1024, 8192]
    for result in (r1, r2, r3):
        assert result["batch_size"] == 3
        assert result["batched_configs"] == 2
        assert result["trace_entries"] == 42
    assert metrics.value("serve.replay.batches") == 1
    assert metrics.value("serve.replay.requests") == 3
    assert metrics.value("serve.replay.configs_requested") == 4
    assert metrics.value("serve.replay.configs_simulated") == 2


def test_different_workloads_do_not_batch():
    pool = FakePool()

    async def scenario():
        batcher = ReplayBatcher(pool, window_s=0.02)
        return await asyncio.gather(batcher.submit("a", [{}]),
                                    batcher.submit("b", [{}]))

    ra, rb = asyncio.run(scenario())
    assert len(pool.calls) == 2
    assert ra["workload"] == "a" and rb["workload"] == "b"
    assert ra["batch_size"] == rb["batch_size"] == 1


def test_different_specs_do_not_batch():
    pool = FakePool()

    async def scenario():
        batcher = ReplayBatcher(pool, window_s=0.02)
        return await asyncio.gather(
            batcher.submit("w", [{}]),
            batcher.submit("w", [{}], spec="indexed"))

    rf, ri = asyncio.run(scenario())
    assert len(pool.calls) == 2
    assert {call[1] for call in pool.calls} == {"faithful", "indexed"}
    assert rf["spec"] == "faithful" and ri["spec"] == "indexed"
    assert rf["batch_size"] == ri["batch_size"] == 1


def test_max_configs_flushes_before_window():
    pool = FakePool()

    async def scenario():
        # A 10 s window: only the max_configs early-flush path can
        # complete this test within its timeout.
        batcher = ReplayBatcher(pool, window_s=10.0, max_configs=2)
        return await asyncio.wait_for(
            batcher.submit("w", [{"capacity_words": 1024},
                                 {"capacity_words": 8192}]),
            timeout=5.0)

    result = asyncio.run(scenario())
    assert len(pool.calls) == 1
    assert result["batched_configs"] == 2


def test_worker_failure_propagates_to_every_waiter():
    pool = FakePool(fail=True)

    async def scenario():
        batcher = ReplayBatcher(pool, window_s=0.02)
        return await asyncio.gather(
            batcher.submit("w", [{}]),
            batcher.submit("w", [{"capacity_words": 1024}]),
            return_exceptions=True)

    results = asyncio.run(scenario())
    assert len(results) == 2
    for exc in results:
        assert isinstance(exc, RuntimeError)
        assert "worker exploded" in str(exc)


def test_pending_counts_parked_waiters():
    pool = FakePool()

    async def scenario():
        batcher = ReplayBatcher(pool, window_s=0.05)
        task = asyncio.create_task(batcher.submit("w", [{}]))
        await asyncio.sleep(0.01)    # inside the window
        parked = batcher.pending()
        await task
        return parked, batcher.pending()

    parked, after = asyncio.run(scenario())
    assert parked == 1
    assert after == 0
