"""End-to-end tests of ``psi-eval serve`` over a real subprocess.

One server boots per module (ephemeral port parsed from the ready
line, worker pool of 2); tests drive it with real protocol clients —
concurrently, from threads — and check the serving answers against the
same engines run locally.  The teardown drains the server and asserts
a clean (status 0) exit, so graceful shutdown is under test on every
run of this module.
"""

import json
import os
import re
import subprocess
import sys
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.client import ServeClient, ServeError
from repro.serve.protocol import cache_config_from_json, cache_stats_to_json

#: Cheap workloads, so the module stays tier-1 affordable.
WORKLOADS = ("nreverse", "qsort", "queens-one")

READY_RE = re.compile(r"listening on ([\d.]+):(\d+)")


@pytest.fixture(scope="module")
def server():
    """A live ``psi-eval serve`` subprocess; drained clean at teardown.

    A long batch window (100 ms) makes the concurrent-replay test
    coalesce deterministically; the suite's session ``PSI_CACHE_DIR``
    redirect is inherited through the environment, so the server's
    workers share (and file-lock) the same disk cache as the local
    comparison runs below.
    """
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.eval.cli", "serve",
         "--port", "0", "--workers", "2", "--batch-window-ms", "100"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    line = proc.stdout.readline()
    match = READY_RE.search(line)
    if not match:
        proc.kill()
        pytest.fail(f"server did not announce readiness: {line!r}")
    yield match.group(1), int(match.group(2))
    with ServeClient(match.group(1), int(match.group(2))) as client:
        drained = client.drain()
    assert drained["drained"] is True
    assert proc.wait(timeout=60) == 0, "server exited uncleanly after drain"


def test_ping_and_workloads(server):
    host, port = server
    with ServeClient(host, port) as client:
        assert client.ping() == {"pong": True}
        names = {w["name"] for w in client.request("workloads")["workloads"]}
    assert set(WORKLOADS) <= names


def test_concurrent_solves_match_local_engines(server):
    """Served answers == locally-run answers, as canonical multisets."""
    from repro.engine.answers import answer_multiset
    from repro.eval.runner import run_engine

    host, port = server
    jobs = [(name, engine) for name in WORKLOADS
            for engine in ("psi", "baseline")]

    def solve(job):
        name, engine = job
        with ServeClient(host, port) as client:
            return client.solve(name, engine=engine)

    with ThreadPoolExecutor(max_workers=len(jobs)) as executor:
        results = list(executor.map(solve, jobs))

    for (name, engine), served in zip(jobs, results):
        assert served["succeeded"], f"{engine} {name} failed server-side"
        assert served["engine"] == engine
        local = run_engine(name, engine=engine, record_trace=False)
        served_answers = [tuple(tuple(pair) for pair in answer)
                          for answer in served["answers"]]
        assert (answer_multiset(served_answers)
                == answer_multiset(local.answers)), \
            f"served {engine} answers diverged for {name}"
        assert served["counters"] == dict(local.counters)


def test_psi_solve_reports_run_shape(server):
    host, port = server
    with ServeClient(host, port) as client:
        result = client.solve("nreverse")
    assert result["work_unit"] == "microsteps"
    assert result["steps"] > 0
    assert result["solutions"] == 1
    assert result["worker_pid"] != os.getpid()


def test_concurrent_replays_batch_and_match_serial(server):
    """Batched replay statistics are byte-identical to local serial
    ``simulate`` — the equivalence contract, end to end."""
    from repro.eval.runner import run_spec
    from repro.tools.pmms import simulate

    host, port = server
    configs = [{"capacity_words": 1024}, {"capacity_words": 8192},
               {"capacity_words": 4096, "ways": 1}, {}]

    def replay(config):
        with ServeClient(host, port) as client:
            return client.replay("qsort", [config])

    with ThreadPoolExecutor(max_workers=len(configs)) as executor:
        results = list(executor.map(replay, configs))

    trace = run_spec("qsort", "faithful", record_trace=True).trace
    for config, served in zip(configs, results):
        local_stats = cache_stats_to_json(
            simulate(trace, cache_config_from_json(config)))
        assert served["trace_entries"] == len(trace)
        assert len(served["stats"]) == 1
        assert (json.dumps(served["stats"][0], sort_keys=True)
                == json.dumps(local_stats, sort_keys=True)), \
            f"batched replay diverged from serial for {config}"
    # The 100 ms window plus simultaneous submission must coalesce at
    # least some of the four single-config requests into one batch.
    assert any(r["batch_size"] > 1 for r in results)


def test_indexed_spec_solve_matches_local_indexed_engine(server):
    """A ``spec: indexed`` request equals a local indexed-spec run —
    same answers, same counters (including the indexing counters that
    distinguish it from the faithful spec)."""
    from repro.engine.answers import answer_multiset
    from repro.eval.runner import run_spec

    host, port = server
    with ServeClient(host, port) as client:
        served = client.solve("qsort", spec="indexed")
    assert served["succeeded"]
    assert served["spec"] == "indexed"
    assert served["engine"] == "psi"
    local = run_spec("qsort", "indexed", record_trace=False)
    served_answers = [tuple(tuple(pair) for pair in answer)
                      for answer in served["answers"]]
    assert (answer_multiset(served_answers)
            == answer_multiset(local.answers))
    assert served["counters"] == dict(local.counters)
    assert served["steps"] == local.steps


def test_indexed_spec_replay_is_partitioned_from_faithful(server):
    """Replays under different specs never share a batch, and each
    reports its own spec's trace length."""
    from repro.eval.runner import run_spec

    host, port = server

    def replay(spec):
        with ServeClient(host, port) as client:
            return client.replay("qsort", [{}], spec=spec)

    with ThreadPoolExecutor(max_workers=2) as executor:
        faithful, indexed = list(executor.map(replay,
                                              ("faithful", "indexed")))
    assert faithful["spec"] == "faithful"
    assert indexed["spec"] == "indexed"
    local_indexed = run_spec("qsort", "indexed", record_trace=True)
    assert indexed["trace_entries"] == len(local_indexed.trace)


def test_baseline_spec_replay_is_rejected(server):
    host, port = server
    with ServeClient(host, port) as client:
        with pytest.raises(ServeError, match="records no PMMS trace"):
            client.replay("qsort", [{}], spec="baseline")
        with pytest.raises(ServeError, match="unknown run spec"):
            client.solve("qsort", spec="no-such-spec")


def test_application_errors_leave_connection_usable(server):
    host, port = server
    with ServeClient(host, port) as client:
        with pytest.raises(ServeError, match="unknown workload"):
            client.solve("no-such-workload")
        with pytest.raises(ServeError, match="unknown cache config"):
            client.replay("nreverse", [{"capcity_words": 64}])
        with pytest.raises(ServeError, match="unknown op"):
            client.request("frobnicate")
        # The connection survives ok:false responses.
        assert client.ping() == {"pong": True}


def test_health_and_metrics_endpoints(server):
    host, port = server
    with ServeClient(host, port) as client:
        client.solve("nreverse")
        health = client.health()
        metrics = client.metrics()
    assert health["status"] == "ok"
    assert health["draining"] is False
    assert health["pool"]["workers"] == 2
    assert health["pool"]["failed"] == 0
    assert health["requests_total"] >= 1
    snapshot = metrics["server"]
    assert snapshot["serve.op.solve"]["value"] >= 1
    assert snapshot["serve.latency_ms"]["kind"] == "histogram"
    assert metrics["latency_ms"]["count"] >= 1
    assert metrics["latency_ms"]["p50"] is not None


def test_fidelity_endpoint(server):
    host, port = server
    with ServeClient(host, port, timeout=1200) as client:
        report = client.request("fidelity", tables=["table2"])
    assert set(report) >= {"overall", "passed", "tables"}
    assert "table2" in report["tables"]
