"""Unit and property tests for the PMMS cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memory import Area, encode_address
from repro.core.micro import CacheCmd
from repro.memsys import Cache, CacheConfig, WritePolicy

R = CacheCmd.READ
W = CacheCmd.WRITE
WS = CacheCmd.WRITE_STACK


def addr(offset, area=Area.HEAP):
    return encode_address(area, offset)


class TestConfig:
    def test_default_is_paper_spec(self):
        config = CacheConfig()
        assert config.capacity_words == 8192
        assert config.ways == 2
        assert config.block_words == 4
        assert config.policy == WritePolicy.STORE_IN
        assert config.sets == 1024

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(capacity_words=100)       # not multiple of ways*block
        with pytest.raises(ValueError):
            CacheConfig(capacity_words=4, ways=2)  # smaller than one set
        with pytest.raises(ValueError):
            CacheConfig(policy="write-weird")


class TestBasicBehaviour:
    def test_cold_miss_then_hit(self):
        cache = Cache()
        assert cache.access(R, addr(0)) is False
        assert cache.access(R, addr(0)) is True

    def test_block_granularity(self):
        cache = Cache()
        cache.access(R, addr(0))
        # words 1-3 share the 4-word block
        assert cache.access(R, addr(1)) is True
        assert cache.access(R, addr(3)) is True
        assert cache.access(R, addr(4)) is False

    def test_distinct_areas_do_not_alias(self):
        cache = Cache()
        cache.access(R, addr(0, Area.HEAP))
        assert cache.access(R, addr(0, Area.GLOBAL)) is False

    def test_lru_within_set(self):
        # direct conflict: 3 blocks mapping to the same set of 2 ways
        config = CacheConfig(capacity_words=8, ways=2, block_words=4)
        cache = Cache(config)  # one set
        cache.access(R, addr(0))
        cache.access(R, addr(4))
        cache.access(R, addr(0))          # 0 is MRU now
        cache.access(R, addr(8))          # evicts 4
        assert cache.access(R, addr(0)) is True
        assert cache.access(R, addr(4)) is False

    def test_per_area_stats(self):
        cache = Cache()
        cache.access(R, addr(0, Area.LOCAL))
        cache.access(R, addr(0, Area.LOCAL))
        stats = cache.stats
        assert stats.per_area[Area.LOCAL].hits == 1
        assert stats.per_area[Area.LOCAL].misses == 1
        assert stats.per_area[Area.LOCAL].hit_ratio == 50.0

    def test_unused_area_reports_100(self):
        cache = Cache()
        assert cache.stats.area_hit_ratio(Area.TRAIL) == 100.0


class TestWriteBehaviour:
    def test_write_stack_miss_skips_fetch(self):
        cache = Cache()
        cache.access(WS, addr(0))
        assert cache.stats.block_fetches == 0
        # but the block is now resident
        assert cache.access(R, addr(0)) is True

    def test_plain_write_miss_fetches(self):
        cache = Cache()
        cache.access(W, addr(0))
        assert cache.stats.block_fetches == 1

    def test_dirty_eviction_writes_back(self):
        config = CacheConfig(capacity_words=8, ways=2, block_words=4)
        cache = Cache(config)
        cache.access(W, addr(0))       # dirty
        cache.access(R, addr(4))
        cache.access(R, addr(8))       # evicts block 0 (LRU), dirty
        assert cache.stats.writebacks == 1

    def test_clean_eviction_no_writeback(self):
        config = CacheConfig(capacity_words=8, ways=2, block_words=4)
        cache = Cache(config)
        cache.access(R, addr(0))
        cache.access(R, addr(4))
        cache.access(R, addr(8))
        assert cache.stats.writebacks == 0

    def test_store_through_counts_word_writes(self):
        cache = Cache(CacheConfig(policy=WritePolicy.STORE_THROUGH))
        cache.access(W, addr(0))       # miss, no allocate
        assert cache.stats.through_writes == 1
        assert cache.access(R, addr(0)) is False   # was not allocated
        cache.access(W, addr(0))       # hit after the read allocated it
        assert cache.stats.through_writes == 2

    def test_store_through_never_writes_back(self):
        config = CacheConfig(capacity_words=8, ways=2, block_words=4,
                             policy=WritePolicy.STORE_THROUGH)
        cache = Cache(config)
        cache.access(R, addr(0))
        cache.access(W, addr(0))
        cache.access(R, addr(4))
        cache.access(R, addr(8))
        assert cache.stats.writebacks == 0

    def test_flush_writes_back_all_dirty(self):
        cache = Cache()
        cache.access(W, addr(0))
        cache.access(W, addr(16))
        assert cache.flush() == 2
        assert cache.flush() == 0


class TestInvariants:
    @given(st.lists(st.tuples(
        st.sampled_from([R, W, WS]),
        st.integers(min_value=0, max_value=2000),
        st.sampled_from(list(Area))), max_size=400))
    @settings(max_examples=100, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, accesses):
        cache = Cache(CacheConfig(capacity_words=64, ways=2, block_words=4))
        for cmd, offset, area in accesses:
            cache.access(cmd, addr(offset, area))
        stats = cache.stats
        assert stats.hits + stats.misses == len(accesses)
        per_cmd = sum(stats.per_cmd_hits.values()) + sum(stats.per_cmd_misses.values())
        assert per_cmd == len(accesses)

    @given(st.lists(st.integers(min_value=0, max_value=511), min_size=1,
                    max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_capacity_monotonicity_fully_associative(self, offsets):
        """For fully-associative LRU, a larger cache never hits less
        (inclusion property)."""
        small = Cache(CacheConfig(capacity_words=16, ways=4, block_words=4))
        large = Cache(CacheConfig(capacity_words=64, ways=16, block_words=4))
        for offset in offsets:
            small.access(R, addr(offset))
            large.access(R, addr(offset))
        assert large.stats.hits >= small.stats.hits

    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_resident_blocks_bounded(self, offsets):
        config = CacheConfig(capacity_words=32, ways=2, block_words=4)
        cache = Cache(config)
        for offset in offsets:
            cache.access(R, addr(offset))
        assert cache.resident_blocks <= config.capacity_words // config.block_words

    def test_reset_clears_everything(self):
        cache = Cache()
        cache.access(W, addr(0))
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_blocks == 0
        assert cache.access(R, addr(0)) is False
