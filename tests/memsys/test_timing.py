"""Tests for the timing model."""

from repro.core.memory import Area, encode_address
from repro.core.micro import CacheCmd
from repro.memsys import (
    CYCLE_NS,
    Cache,
    CacheConfig,
    MISS_NS,
    TRANSFER_NS,
    execution_time,
    improvement_ratio,
    time_without_cache,
)


class TestExecutionTime:
    def test_no_cache_stats_is_pure_compute(self):
        timing = execution_time(1000, None)
        assert timing.total_ns == 1000 * CYCLE_NS
        assert timing.total_ms == 1000 * CYCLE_NS / 1e6

    def test_miss_stall_accounting(self):
        cache = Cache()
        cache.access(CacheCmd.READ, encode_address(Area.HEAP, 0))   # miss+fetch
        cache.access(CacheCmd.READ, encode_address(Area.HEAP, 0))   # hit
        timing = execution_time(10, cache.stats)
        assert timing.compute_ns == 10 * CYCLE_NS
        assert timing.miss_stall_ns == MISS_NS - CYCLE_NS
        assert timing.writeback_ns == 0

    def test_writeback_accounting(self):
        cache = Cache(CacheConfig(capacity_words=8, ways=2, block_words=4))
        cache.access(CacheCmd.WRITE, encode_address(Area.HEAP, 0))
        cache.access(CacheCmd.READ, encode_address(Area.HEAP, 4))
        cache.access(CacheCmd.READ, encode_address(Area.HEAP, 8))  # evict dirty
        timing = execution_time(10, cache.stats)
        assert timing.writeback_ns == TRANSFER_NS

    def test_time_without_cache(self):
        timing = time_without_cache(100, 20)
        assert timing.compute_ns == 100 * CYCLE_NS
        assert timing.miss_stall_ns == 20 * (MISS_NS - CYCLE_NS)


class TestImprovementRatio:
    def test_definition(self):
        # (Tnc/Tc - 1) x 100
        assert improvement_ratio(200, 100) == 100.0
        assert improvement_ratio(100, 100) == 0.0

    def test_zero_denominator(self):
        assert improvement_ratio(100, 0) == 0.0

    def test_perfect_cache_beats_no_cache(self):
        cache = Cache()
        address = encode_address(Area.LOCAL, 0)
        for _ in range(1000):
            cache.access(CacheCmd.READ, address)
        t_c = execution_time(2000, cache.stats).total_ns
        t_nc = time_without_cache(2000, cache.stats.accesses).total_ns
        assert improvement_ratio(t_nc, t_c) > 100.0
