"""The PSI production cache configuration constant and its paper spec."""

from repro.memsys import CYCLE_NS, MISS_NS, PSI_CACHE, TRANSFER_NS, WritePolicy


class TestProductionConfig:
    def test_spec_matches_section_2_2(self):
        # (a) 8K words capacity
        assert PSI_CACHE.capacity_words == 8192
        # (b) two-set set associative
        assert PSI_CACHE.ways == 2
        # (c) store-in (write-back)
        assert PSI_CACHE.policy == WritePolicy.STORE_IN
        # (e) four-word block size
        assert PSI_CACHE.block_words == 4
        # (g) specialised write-stack command skips read-in
        assert PSI_CACHE.write_stack_no_fetch

    def test_timing_constants(self):
        # (d) 200ns hit / 800ns miss; (f) 800ns block transfer
        assert CYCLE_NS == 200
        assert MISS_NS == 800
        assert TRANSFER_NS == 800

    def test_geometry_derivation(self):
        assert PSI_CACHE.sets == 8192 // (2 * 4)
