"""PMMS sweep behaviour on synthetic traces with known locality."""

import pytest

from repro.core.memory import Area, TraceRecorder, encode_address
from repro.core.micro import CacheCmd
from repro.memsys import CacheConfig
from repro.tools.pmms import (
    capacity_sweep,
    compare_associativity,
    compare_write_policy,
    performance_improvement,
    simulate,
)

R = CacheCmd.READ
WS = CacheCmd.WRITE_STACK


def trace_of(pairs):
    trace = TraceRecorder()
    for cmd, offset in pairs:
        trace.access(cmd, encode_address(Area.HEAP, offset))
    return trace


def looping_trace(working_set: int, repeats: int):
    return trace_of([(R, i) for _ in range(repeats) for i in range(working_set)])


class TestCapacitySweep:
    def test_knee_at_working_set_size(self):
        # A 256-word loop: hit ratio jumps once capacity >= 256.
        trace = looping_trace(256, 8)
        points = {p.capacity_words: p for p in capacity_sweep(
            trace, steps=len(trace) * 5, capacities=(64, 128, 256, 512))}
        # Below capacity only the intra-block locality survives (3 of 4
        # sequential words hit); at capacity the loop fits entirely.
        assert points[256].hit_ratio > 95.0
        assert points[64].hit_ratio < 80.0
        assert points[512].hit_ratio >= points[256].hit_ratio
        assert points[256].hit_ratio - points[64].hit_ratio > 15.0

    def test_block_prefetch_gives_hits_even_when_thrashing(self):
        # Sequential scan: 3 of 4 words per block hit regardless of size.
        trace = looping_trace(4096, 2)
        points = capacity_sweep(trace, steps=len(trace) * 5, capacities=(8,))
        assert 70.0 < points[0].hit_ratio < 80.0

    def test_improvement_monotone_for_nested_working_sets(self):
        trace = looping_trace(512, 6)
        points = capacity_sweep(trace, steps=len(trace) * 5,
                                capacities=(8, 64, 512, 4096))
        improvements = [p.improvement_percent for p in points]
        assert improvements == sorted(improvements)


class TestPolicyComparison:
    def test_write_heavy_trace_prefers_store_in(self):
        pairs = []
        for repeat in range(6):
            for i in range(128):
                pairs.append((WS, i))
        trace = trace_of(pairs)
        result = compare_write_policy(trace, steps=len(trace) * 5)
        assert result.improvement_a > result.improvement_b

    def test_read_only_trace_policies_equal(self):
        trace = looping_trace(128, 6)
        result = compare_write_policy(trace, steps=len(trace) * 5)
        assert result.improvement_a == pytest.approx(result.improvement_b)


class TestAssociativityComparison:
    def test_conflict_trace_prefers_two_sets(self):
        # Two blocks that collide in a direct-mapped cache of 4096 words
        # but coexist in a 2-way arrangement.
        pairs = []
        for _ in range(200):
            pairs.append((R, 0))
            pairs.append((R, 4096))
        trace = trace_of(pairs)
        result = compare_associativity(trace, steps=len(trace) * 5,
                                       set_capacity_words=4096)
        assert result.improvement_a > result.improvement_b

    def test_friendly_trace_no_loss(self):
        trace = looping_trace(64, 10)
        result = compare_associativity(trace, steps=len(trace) * 5)
        assert abs(result.difference) < 1.0


class TestPerformanceImprovement:
    def test_perfect_locality_gives_max_improvement(self):
        trace = looping_trace(8, 500)
        improvement, stats = performance_improvement(
            trace, steps=len(trace) * 5, config=CacheConfig())
        assert stats.hit_ratio > 99.0
        # With a 20% access rate and 600ns saved per access:
        # Tnc/Tc - 1 ~ (accesses * 600) / (steps * 200)
        assert 50.0 < improvement < 65.0

    def test_zero_capacity_equivalent(self):
        # The smallest legal cache still catches block locality only.
        trace = trace_of([(R, i * 64) for i in range(64)] * 4)
        stats = simulate(trace, CacheConfig(capacity_words=8, ways=2))
        assert stats.hit_ratio < 10.0
