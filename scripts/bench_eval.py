#!/usr/bin/env python
"""Benchmark the evaluation pipeline: replay, parallelism, run cache.

Times the three layers this harness optimises and writes the results to
``BENCH_eval.json`` so the performance trajectory is tracked PR over PR:

* **replay** — the Figure 1 + §4.2-ablation replay stage: one
  ``simulate`` per configuration (the old per-config path, 15 full
  trace decodes) vs one ``simulate_many`` pass (decode once, batched
  accesses, miss-only counting).
* **eval all** — wall-clock of ``psi-eval all`` as a subprocess:
  serial without the disk cache (the from-scratch path), ``--jobs N``
  cold (first parallel run, populates ``.psi-cache``), and ``--jobs N``
  warm (disk cache hot — the steady state of repeated invocations).
* **spec_cache** — cold vs warm ``psi-eval indexed --all``: both PSI
  columns of the indexed report run through the unified run-spec path
  (:mod:`repro.eval.specs`), so the second invocation is served from
  the spec-fingerprinted disk cache.  The speedup is the payoff of
  non-faithful specs being first-class cache citizens.
* **fused vs unfused** — the same workload with the superinstruction
  dispatch (:mod:`repro.core.fusion`) enabled vs ``fused=False``.
  Verifies the modelled step count is identical both ways, records the
  wall-clock speedup, and **fails** when it falls below
  ``--min-fused-speedup`` — the floor that keeps the fused hot path
  from silently eroding.  Runs in ``--throughput-only`` mode too.
* **indexed vs faithful** — the clause-indexed PSI configuration
  (``MachineConfig(indexed=True)``, first-argument selection through
  :mod:`repro.engine.index`) vs the faithful one over the
  backtracking-heavy workload subset
  (:data:`repro.eval.indexed.BACKTRACKING_HEAVY`).  Answer multisets
  must match; the geomean *modelled-step* speedup is recorded and
  **fails** below ``--min-indexed-speedup`` (default 1.15).  Runs in
  ``--throughput-only`` mode too.
* **throughput** — interpreter steps per second (obs off and on) on a
  cheap workload.  A *rate*, so it tracks the emission hot path's cost
  per step independent of workload-set changes; the run **fails** when
  the obs-off rate drops more than ``--max-regress`` percent below the
  previous ``BENCH_eval.json``.  ``--throughput-only`` runs just this
  stage — the CI perf-smoke mode.
* **debug_replay** — time-travel seek latency
  (:mod:`repro.obs.timetravel`): builds the checkpointed explorer over
  a recorded trace, then times ``state_at`` seeks against cold
  from-scratch replays to the same microsteps.  Records the build
  time, both seek times, and the speedup, so the checkpoint stride
  auto-sizing keeps paying for itself PR over PR.
* **obs** — interpreter wall-clock with the observability layer
  (:mod:`repro.obs`) disabled vs enabled, on one mid-size workload.
  The disabled number is the one that matters: observability must be
  zero-cost when off, so the script compares the new ``serial_cold_s``
  against the previous ``BENCH_eval.json`` and **fails** if the
  from-scratch pipeline regressed by more than ``--max-regress``
  percent (default 2).  The enabled path has a budget too:
  ``--max-obs-overhead`` (default 150%) fails the run when tracing +
  profiling cost more than that on top of the disabled interpreter
  (the percentage is measured against the fused disabled-path time,
  which observed runs cannot use — see the flag's help text).

Results also **append** to the run-history store
(``results/history/history.jsonl``, disable with ``--no-history``), so
``psi-eval history show`` charts the trajectory while
``BENCH_eval.json`` stays the latest-snapshot view.

Usage::

    python scripts/bench_eval.py              # full benchmark (~5 min)
    python scripts/bench_eval.py --replay-only
    python scripts/bench_eval.py --throughput-only   # CI perf smoke
    python scripts/bench_eval.py --jobs 8 --output BENCH_eval.json
    python scripts/bench_eval.py --max-obs-overhead 50 --no-history
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import subprocess
import sys
import tempfile
import time
from dataclasses import replace

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))


def bench_replay() -> dict:
    """Per-config simulate vs single-pass simulate_many, same 15 configs."""
    from repro.eval.runner import run_spec
    from repro.memsys import CacheConfig, WritePolicy
    from repro.tools.pmms import FIGURE1_CAPACITIES, simulate, simulate_many

    run = run_spec("window-1", "faithful", record_trace=True)
    trace = run.trace

    base = CacheConfig()
    configs = []
    for capacity in FIGURE1_CAPACITIES:
        ways = min(base.ways, max(1, capacity // base.block_words))
        configs.append(replace(base, capacity_words=capacity, ways=ways))
    configs += [
        CacheConfig(capacity_words=8192, ways=2),    # assoc: two 4KW sets
        CacheConfig(capacity_words=4096, ways=1),    # assoc: one 4KW set
        base,                                        # policy: store-in
        replace(base, policy=WritePolicy.STORE_THROUGH),
    ]

    t0 = time.perf_counter()
    per_config = [simulate(trace, config) for config in configs]
    t_per_config = time.perf_counter() - t0

    t0 = time.perf_counter()
    single_pass = simulate_many(trace, configs)
    t_single_pass = time.perf_counter() - t0

    for old, new in zip(per_config, single_pass):
        identical = (old.hits, old.misses, old.block_fetches, old.writebacks,
                     old.through_writes) == (new.hits, new.misses,
                                             new.block_fetches, new.writebacks,
                                             new.through_writes)
        if not identical:
            raise AssertionError("single-pass replay diverged from per-config")

    return {
        "trace_entries": len(trace),
        "configs": len(configs),
        "per_config_s": round(t_per_config, 3),
        "single_pass_s": round(t_single_pass, 3),
        "speedup": round(t_per_config / t_single_pass, 2),
    }


def _run_all(cache_dir: str, *extra_args: str) -> float:
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"),
               PSI_CACHE_DIR=cache_dir)
    t0 = time.perf_counter()
    subprocess.run([sys.executable, "-m", "repro.eval.cli", "all",
                    *extra_args],
                   check=True, cwd=REPO, env=env,
                   stdout=subprocess.DEVNULL)
    return time.perf_counter() - t0


def bench_eval_all(jobs: int) -> dict:
    with tempfile.TemporaryDirectory(prefix="psi-bench-cache-") as cache_dir:
        serial_cold = _run_all(cache_dir, "--no-disk-cache")
        jobs_cold = _run_all(cache_dir, "--jobs", str(jobs))
        jobs_warm = _run_all(cache_dir, "--jobs", str(jobs))
        serial_warm = _run_all(cache_dir)
    return {
        "jobs": jobs,
        "serial_cold_s": round(serial_cold, 2),
        "jobs_cold_s": round(jobs_cold, 2),
        "jobs_warm_s": round(jobs_warm, 2),
        "serial_warm_s": round(serial_warm, 2),
        "speedup_jobs_warm": round(serial_cold / jobs_warm, 2),
        "speedup_serial_warm": round(serial_cold / serial_warm, 2),
    }


def bench_spec_cache() -> dict:
    """Cold vs warm ``psi-eval indexed --all`` in a throwaway cache dir.

    Cold executes every workload under both the faithful and indexed
    run specs and stores each under its spec-fingerprinted key; warm
    must be served entirely from disk (both specs), so the ratio
    tracks how much of the indexed report's cost the spec-keyed run
    cache absorbs.
    """
    with tempfile.TemporaryDirectory(prefix="psi-bench-spec-") as cache_dir:
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"),
                   PSI_CACHE_DIR=cache_dir)

        def run_once() -> float:
            t0 = time.perf_counter()
            subprocess.run([sys.executable, "-m", "repro.eval.cli",
                            "indexed", "--all"],
                           check=True, cwd=REPO, env=env,
                           stdout=subprocess.DEVNULL)
            return time.perf_counter() - t0

        cold = run_once()
        warm = run_once()
    return {
        "cold_s": round(cold, 2),
        "warm_s": round(warm, 2),
        "speedup": round(cold / warm, 2) if warm else 0.0,
    }


def bench_obs(workload_name: str = "window-1", repeats: int = 3) -> dict:
    """Observability overhead: same workload, obs disabled vs enabled.

    Uses the best of ``repeats`` in-process runs each way.  The enabled
    overhead is informational (tracing/profiling is opt-in); the
    disabled path's cost is checked by the ``serial_cold_s`` regression
    assertion in :func:`main`.
    """
    from repro import obs
    from repro.tools.collect import collect
    from repro.workloads import get

    workload = get(workload_name)

    def run_once() -> float:
        t0 = time.perf_counter()
        collect(workload.source, workload.goal,
                all_solutions=workload.all_solutions,
                record_trace=False,
                setup_goals=workload.setup_goals)
        return time.perf_counter() - t0

    run_once()                       # warm-up: imports, code objects
    disabled = min(run_once() for _ in range(repeats))
    with obs.observed():
        enabled = min(run_once() for _ in range(repeats))
    obs.reset()
    return {
        "workload": workload_name,
        "disabled_s": round(disabled, 3),
        "enabled_s": round(enabled, 3),
        "enabled_overhead_pct": round(100.0 * (enabled - disabled) / disabled, 1),
    }


def bench_throughput(workload_name: str = "qsort", repeats: int = 5) -> dict:
    """Interpreter throughput: microinstruction steps emitted per second.

    Unlike the wall-clock stages this is a *rate*, so it is comparable
    across PRs even when the workload set changes: the step count is a
    property of the modelled machine (pinned by the golden-digest
    tests), so steps/s moves only when the hot path's real cost per
    emitted step moves.  Measured obs-off and obs-on (best of
    ``repeats``), on a cheap workload so the CI perf-smoke job stays
    fast.
    """
    from repro import obs
    from repro.tools.collect import collect
    from repro.workloads import get

    workload = get(workload_name)

    def run_once() -> tuple[float, int]:
        t0 = time.perf_counter()
        run = collect(workload.source, workload.goal,
                      all_solutions=workload.all_solutions,
                      record_trace=False,
                      setup_goals=workload.setup_goals)
        return time.perf_counter() - t0, run.stats.total_steps

    run_once()                       # warm-up: imports, code objects
    disabled_s, steps = min(run_once() for _ in range(repeats))
    with obs.observed():
        enabled_s, _ = min(run_once() for _ in range(repeats))
    obs.reset()
    return {
        "workload": workload_name,
        "steps": steps,
        "disabled_steps_per_sec": round(steps / disabled_s),
        "enabled_steps_per_sec": round(steps / enabled_s),
    }


def bench_fused(workload_name: str = "qsort", repeats: int = 5) -> dict:
    """Superinstruction dispatch on vs off, same workload, best-of-N.

    The two runs must bill the exact same modelled step count (the
    equivalence contract); the ratio of their wall-clocks is the
    realised fusion speedup on the interpreter hot path.
    """
    from repro.core.machine import MachineConfig
    from repro.tools.collect import collect
    from repro.workloads import get

    workload = get(workload_name)

    def run_once(config) -> tuple[float, int]:
        t0 = time.perf_counter()
        run = collect(workload.source, workload.goal,
                      all_solutions=workload.all_solutions,
                      record_trace=False, with_cache=False,
                      machine_config=config,
                      setup_goals=workload.setup_goals)
        return time.perf_counter() - t0, run.stats.total_steps

    fused_config = MachineConfig()
    unfused_config = MachineConfig(fused=False)
    run_once(fused_config)           # warm-up: imports, code objects
    fused_s, fused_steps = min(run_once(fused_config)
                               for _ in range(repeats))
    unfused_s, unfused_steps = min(run_once(unfused_config)
                                   for _ in range(repeats))
    if fused_steps != unfused_steps:
        raise AssertionError(
            f"fused dispatch changed the modelled step count "
            f"({fused_steps} vs {unfused_steps})")
    return {
        "workload": workload_name,
        "steps": fused_steps,
        "fused_s": round(fused_s, 3),
        "unfused_s": round(unfused_s, 3),
        "speedup": round(unfused_s / fused_s, 2),
    }


def bench_indexed() -> dict:
    """Clause-indexed vs faithful PSI over the backtracking-heavy subset.

    Both configurations run through :func:`repro.eval.indexed
    .compare_workload` (faithful side cache-served, indexed side
    uncached); the answer multisets must match on every workload, and
    the *modelled step* geomean speedup is the gated number — steps are
    deterministic, so the floor cannot flake on a loaded CI runner the
    way wall-clock would.  Modelled-time speedup is recorded alongside
    (it folds in the cache simulation).
    """
    from repro.eval.indexed import (
        BACKTRACKING_HEAVY,
        compare_workload,
        geomean,
    )

    rows = [compare_workload(name) for name in BACKTRACKING_HEAVY]
    diverged = [row.name for row in rows if not row.answers_equal]
    if diverged:
        raise AssertionError("indexed configuration changed answers on: "
                             + ", ".join(diverged))
    return {
        "workloads": {
            row.name: {
                "faithful_steps": row.faithful_steps,
                "indexed_steps": row.indexed_steps,
                "step_speedup": round(row.step_speedup, 3),
                "choicepoints_avoided": row.choicepoints_avoided,
            } for row in rows
        },
        "geomean_step_speedup": round(
            geomean([row.step_speedup for row in rows]), 3),
        "geomean_time_speedup": round(
            geomean([row.time_speedup for row in rows]), 3),
    }


def bench_debug_replay(workload_name: str = "nreverse",
                       seeks: int = 32) -> dict:
    """Checkpointed seek vs cold replay, over one recorded trace.

    Seeks to ``seeks`` microsteps spread across the trace.  A warm
    seek restores the nearest checkpoint and replays at most one
    stride; a cold seek replays from microstep 0 every time.  The
    ratio is the payoff of the checkpoint structure — it should grow
    with trace length (cold is O(n) per seek, warm is O(stride)).
    """
    from repro.eval.runner import run_spec
    from repro.obs.timetravel import TraceExplorer

    run = run_spec(workload_name, "faithful", record_trace=True)

    t0 = time.perf_counter()
    explorer = TraceExplorer(run.trace)
    build_s = time.perf_counter() - t0

    n = explorer.n_steps
    targets = sorted({(i * n) // seeks for i in range(1, seeks + 1)})

    t0 = time.perf_counter()
    for step in targets:
        explorer.state_at(step)
    warm_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    for step in targets:
        explorer.cold_state_at(step)
    cold_s = time.perf_counter() - t0

    return {
        "workload": workload_name,
        "trace_entries": n,
        "stride": explorer.stride,
        "checkpoints": len(explorer.checkpoint_steps),
        "seeks": len(targets),
        "build_s": round(build_s, 3),
        "warm_seek_s": round(warm_s, 3),
        "cold_seek_s": round(cold_s, 3),
        "speedup": round(cold_s / warm_s, 2) if warm_s else 0.0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=4,
                        help="process count for the parallel stage (default 4)")
    parser.add_argument("--replay-only", action="store_true",
                        help="skip the (slow) psi-eval all stage")
    parser.add_argument("--throughput-only", action="store_true",
                        help="run only the steps/s stage and its floor "
                             "check — the CI perf-smoke mode; does not "
                             "rewrite the snapshot file")
    parser.add_argument("--output", default=str(REPO / "BENCH_eval.json"),
                        help="where to write the results JSON")
    parser.add_argument("--max-regress", type=float, default=2.0, metavar="PCT",
                        help="fail if serial_cold_s regressed more than this "
                             "percent vs the previous results file (default 2)")
    parser.add_argument("--min-fused-speedup", type=float, default=1.1,
                        metavar="X",
                        help="fail if the fused dispatch runs less than this "
                             "many times faster than the per-op loop "
                             "(default 1.1)")
    parser.add_argument("--min-indexed-speedup", type=float, default=1.15,
                        metavar="X",
                        help="fail if the clause-indexed configuration's "
                             "geomean modelled-step speedup over the "
                             "faithful one, on the backtracking-heavy "
                             "workload subset, falls below this floor "
                             "(default 1.15)")
    parser.add_argument("--max-obs-overhead", type=float, default=150.0,
                        metavar="PCT",
                        help="fail if the obs-enabled interpreter overhead "
                             "exceeds this percent of the disabled run "
                             "(default 150) — the enabled-cost budget beside "
                             "the zero-cost-when-disabled guarantee.  The "
                             "budget is relative: superinstruction fusion "
                             "made the disabled path ~2.5x faster while "
                             "observed runs still take the per-op reference "
                             "loop (the fused gate excludes instrumented "
                             "collectors), so the same absolute per-step "
                             "obs cost now reads as a larger percentage")
    parser.add_argument("--no-history", action="store_true",
                        help="do not append the results to the run-history "
                             "store (results/history/)")
    args = parser.parse_args(argv)

    previous = None
    previous_path = pathlib.Path(args.output)
    if previous_path.exists():
        try:
            previous = json.loads(previous_path.read_text())
        except (OSError, ValueError):
            previous = None

    results = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
    }

    failures = []

    print("throughput stage (interpreter steps/s, obs off vs on)...")
    results["throughput"] = bench_throughput()
    tp = results["throughput"]
    print(f"  disabled {tp['disabled_steps_per_sec']:,} steps/s  "
          f"enabled {tp['enabled_steps_per_sec']:,} steps/s  "
          f"({tp['steps']:,} steps, workload {tp['workload']})")
    prev_tp = ((previous or {}).get("throughput") or {}) \
        .get("disabled_steps_per_sec")
    if prev_tp:
        delta = 100.0 * (tp["disabled_steps_per_sec"] - prev_tp) / prev_tp
        tp["vs_previous_pct"] = round(delta, 1)
        print(f"  disabled steps/s vs previous: {delta:+.1f}% "
              f"({prev_tp:,} -> {tp['disabled_steps_per_sec']:,})")
        if delta < -args.max_regress:
            failures.append(
                f"disabled throughput dropped {delta:+.1f}% below the "
                f"recorded floor (limit -{args.max_regress}%) — the "
                f"emission hot path slowed down")

    print("fused dispatch stage (superinstructions on vs off)...")
    results["fused_vs_unfused"] = bench_fused()
    fv = results["fused_vs_unfused"]
    print(f"  fused {fv['fused_s']}s  unfused {fv['unfused_s']}s  "
          f"speedup {fv['speedup']}x  ({fv['steps']:,} steps, "
          f"workload {fv['workload']})")
    if fv["speedup"] < args.min_fused_speedup:
        failures.append(
            f"fused dispatch speedup {fv['speedup']}x fell below the "
            f"floor ({args.min_fused_speedup}x) — the superinstruction "
            f"hot path eroded")

    print("indexed_vs_faithful stage (clause-indexed PSI configuration)...")
    results["indexed_vs_faithful"] = bench_indexed()
    iv = results["indexed_vs_faithful"]
    print(f"  geomean step speedup {iv['geomean_step_speedup']}x  "
          f"modelled-time {iv['geomean_time_speedup']}x  "
          f"({len(iv['workloads'])} backtracking-heavy workloads)")
    if iv["geomean_step_speedup"] < args.min_indexed_speedup:
        failures.append(
            f"indexed-vs-faithful geomean step speedup "
            f"{iv['geomean_step_speedup']}x fell below the floor "
            f"({args.min_indexed_speedup}x) — clause selection stopped "
            f"narrowing the scan")

    if args.throughput_only:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0

    print("replay stage (Figure 1 + ablations, 15 configurations)...")
    results["replay"] = bench_replay()
    print(f"  per-config {results['replay']['per_config_s']}s  "
          f"single-pass {results['replay']['single_pass_s']}s  "
          f"speedup {results['replay']['speedup']}x")

    print("debug_replay stage (checkpointed seek vs cold replay)...")
    results["debug_replay"] = bench_debug_replay()
    dr = results["debug_replay"]
    print(f"  build {dr['build_s']}s  warm seeks {dr['warm_seek_s']}s  "
          f"cold seeks {dr['cold_seek_s']}s  speedup {dr['speedup']}x  "
          f"({dr['trace_entries']:,} entries, stride {dr['stride']}, "
          f"{dr['seeks']} seeks)")

    print("obs stage (observability disabled vs enabled)...")
    results["obs"] = bench_obs()
    print(f"  disabled {results['obs']['disabled_s']}s  "
          f"enabled {results['obs']['enabled_s']}s  "
          f"(enabled overhead {results['obs']['enabled_overhead_pct']}%)")

    overhead = results["obs"]["enabled_overhead_pct"]
    if overhead > args.max_obs_overhead:
        failures.append(f"obs enabled overhead {overhead:+.1f}% exceeds the "
                        f"budget ({args.max_obs_overhead}%)")
    if not args.replay_only:
        print(f"psi-eval all (serial / --jobs {args.jobs} cold / warm)...")
        results["eval_all"] = bench_eval_all(args.jobs)
        ea = results["eval_all"]
        print(f"  serial cold {ea['serial_cold_s']}s  "
              f"jobs cold {ea['jobs_cold_s']}s  "
              f"jobs warm {ea['jobs_warm_s']}s  "
              f"(warm speedup {ea['speedup_jobs_warm']}x)")
        prev_cold = ((previous or {}).get("eval_all") or {}).get("serial_cold_s")
        if prev_cold:
            delta = 100.0 * (ea["serial_cold_s"] - prev_cold) / prev_cold
            ea["vs_previous_serial_cold_pct"] = round(delta, 1)
            print(f"  serial cold vs previous: {delta:+.1f}% "
                  f"({prev_cold}s -> {ea['serial_cold_s']}s)")
            if delta > args.max_regress:
                failures.append(
                    f"serial_cold_s regressed {delta:+.1f}% "
                    f"(limit {args.max_regress}%) — the disabled "
                    f"observability path must stay free")

        print("spec_cache stage (psi-eval indexed --all, cold vs warm)...")
        results["spec_cache"] = bench_spec_cache()
        sc = results["spec_cache"]
        print(f"  cold {sc['cold_s']}s  warm {sc['warm_s']}s  "
              f"speedup {sc['speedup']}x")

    # The "serve" stage is owned by scripts/load_gen.py, which merges
    # into this file; carry it over so a bench rerun doesn't clobber it.
    if previous and "serve" in previous:
        results["serve"] = previous["serve"]

    output = pathlib.Path(args.output)
    output.write_text(json.dumps(results, indent=2) + "\n")
    print(f"wrote {output}")

    if not args.no_history:
        # BENCH_eval.json stays the latest-snapshot view; the history
        # store keeps the trend (`psi-eval history show`).
        from repro.eval.history import HistoryStore
        store = HistoryStore()
        store.append("bench", {"bench": {
            key: results[key]
            for key in ("throughput", "fused_vs_unfused",
                        "indexed_vs_faithful", "replay",
                        "debug_replay", "obs", "eval_all", "spec_cache")
            if key in results}})
        print(f"appended bench entry to {store.path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
