#!/usr/bin/env python
"""Load generator for ``psi-eval serve``: latency and throughput.

Boots a server subprocess (ephemeral port, parsed from the ready line),
warms the worker pool, then drives the **full workload registry** from
``--concurrency`` client threads — each thread owns one
:class:`~repro.serve.client.ServeClient` connection and pulls requests
from a shared, seed-shuffled queue.  The request mix mirrors what the
service exists to serve:

* ``solve`` on the PSI engine for every workload,
* ``solve`` under the ``indexed`` run spec for every workload (the
  spec-parameterized traffic, disk-cached under its own fingerprint),
* ``solve`` on the baseline engine for every non-KL0-only workload
  (the crosscheck traffic), and
* ``replay`` with a small config sweep per workload (the batchable
  traffic — concurrent replays of one workload coalesce into single
  ``simulate_many`` passes server-side).

Every request's wall-clock latency is recorded client-side; the report
gives exact (not histogram-estimated) p50/p95/p99 plus throughput
(requests per second over the measured phase), per-op breakdowns, the
server's own metrics snapshot at drain time, and the batching
efficiency (configs simulated / configs requested).  The run **fails**
on any request error, a throughput of zero, or an unclean server exit
after drain.

The results land in two places:

* ``--report PATH`` — the full JSON report (CI uploads this artifact);
* ``BENCH_eval.json`` under a new ``"serve"`` stage (suppressed by
  ``--quick`` and ``--no-bench``), next to the other tracked stages.

Usage::

    PYTHONPATH=src python scripts/load_gen.py              # full run
    PYTHONPATH=src python scripts/load_gen.py --quick      # CI smoke
    PYTHONPATH=src python scripts/load_gen.py --concurrency 16 --workers 4
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import queue
import random
import re
import subprocess
import sys
import tempfile
import threading
import time

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402

#: Cheap workloads for ``--quick`` (the CI smoke): small step counts,
#: still covering solve/crosscheck/replay traffic shapes.
QUICK_WORKLOADS = ("nreverse", "qsort", "queens-one", "lisp-fib")

#: Cache capacities swept per replay request (words).  Two entries so
#: batching has a union to merge; kept small so replay stays the cheap
#: op it is in production.
REPLAY_CAPACITIES = (1024, 8192)

READY_RE = re.compile(r"listening on ([\d.]+):(\d+)")


def boot_server(workers: int, cache_dir: str | None) -> tuple:
    """Start ``psi-eval serve`` on an ephemeral port; return (proc, host, port)."""
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    if cache_dir is not None:
        env["PSI_CACHE_DIR"] = cache_dir
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.eval.cli", "serve",
         "--port", "0", "--workers", str(workers)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=REPO, env=env)
    line = proc.stdout.readline()
    match = READY_RE.search(line)
    if not match:
        proc.kill()
        raise RuntimeError(f"server did not announce readiness: {line!r}")
    return proc, match.group(1), int(match.group(2))


def build_requests(workloads: list[dict], seed: int) -> list[tuple]:
    """The deterministic request mix, shuffled so concurrent threads
    interleave ops and workloads (which is what exercises batching)."""
    requests: list[tuple] = []
    for info in workloads:
        name = info["name"]
        requests.append(("solve", name, {"engine": "psi"}))
        requests.append(("solve", name, {"spec": "indexed"}))
        if not info["psi_only"]:
            requests.append(("solve", name, {"engine": "baseline"}))
        requests.append(("replay", name, {"configs": [
            {"capacity_words": capacity} for capacity in REPLAY_CAPACITIES]}))
        requests.append(("replay", name, {"configs": [{}]}))
    random.Random(seed).shuffle(requests)
    return requests


def run_phase(host: str, port: int, requests: list[tuple],
              concurrency: int) -> dict:
    """Drive ``requests`` from ``concurrency`` threads; measure each."""
    work: queue.Queue = queue.Queue()
    for item in requests:
        work.put(item)
    records: list[dict] = []
    errors: list[str] = []
    lock = threading.Lock()

    def worker() -> None:
        with ServeClient(host, port) as client:
            while True:
                try:
                    op, workload, fields = work.get_nowait()
                except queue.Empty:
                    return
                t0 = time.perf_counter()
                try:
                    result = client.request(op, workload=workload, **fields)
                    record = {"op": op, "workload": workload,
                              "latency_ms": (time.perf_counter() - t0) * 1e3}
                    if op == "replay":
                        record["batch_size"] = result["batch_size"]
                    with lock:
                        records.append(record)
                except (ServeError, Exception) as exc:  # noqa: B014
                    with lock:
                        errors.append(f"{op} {workload}: {exc}")

    threads = [threading.Thread(target=worker, name=f"load-gen-{i}")
               for i in range(concurrency)]
    t0 = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - t0

    latencies = sorted(r["latency_ms"] for r in records)

    def pct(q: float) -> float:
        if not latencies:
            return 0.0
        index = min(len(latencies) - 1, int(q / 100.0 * len(latencies)))
        return round(latencies[index], 2)

    by_op: dict[str, list[float]] = {}
    for record in records:
        by_op.setdefault(record["op"], []).append(record["latency_ms"])
    batched = [r for r in records
               if r["op"] == "replay" and r.get("batch_size", 1) > 1]
    return {
        "requests": len(records),
        "errors": errors,
        "elapsed_s": round(elapsed, 3),
        "throughput_rps": round(len(records) / elapsed, 2) if elapsed else 0.0,
        "latency_ms": {"p50": pct(50), "p95": pct(95), "p99": pct(99),
                       "max": round(latencies[-1], 2) if latencies else 0.0},
        "by_op": {op: {"count": len(vals),
                       "mean_ms": round(sum(vals) / len(vals), 2)}
                  for op, vals in sorted(by_op.items())},
        "replay_requests_batched": len(batched),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--concurrency", type=int, default=8,
                        help="client threads (default 8)")
    parser.add_argument("--workers", type=int, default=4,
                        help="server worker processes (default 4)")
    parser.add_argument("--rounds", type=int, default=2,
                        help="measured passes over the request mix "
                             "(default 2; the first follows a warm-up "
                             "pass, so it runs against hot caches)")
    parser.add_argument("--seed", type=int, default=1987,
                        help="shuffle seed for the request mix")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: 4 cheap workloads, concurrency 4, "
                             "1 round, no BENCH_eval.json update")
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the full JSON report here")
    parser.add_argument("--no-bench", action="store_true",
                        help="do not update BENCH_eval.json")
    parser.add_argument("--bench", default=str(REPO / "BENCH_eval.json"),
                        help="the benchmark snapshot file to update")
    parser.add_argument("--keep-cache", action="store_true",
                        help="serve from the repo .psi-cache instead of a "
                             "throwaway temp cache")
    args = parser.parse_args(argv)

    if args.quick:
        args.concurrency = min(args.concurrency, 4)
        args.workers = min(args.workers, 2)
        args.rounds = 1

    cache_ctx = (tempfile.TemporaryDirectory(prefix="psi-loadgen-cache-")
                 if not args.keep_cache else None)
    cache_dir = cache_ctx.name if cache_ctx else None
    proc, host, port = boot_server(args.workers, cache_dir)
    print(f"server up on {host}:{port} "
          f"({args.workers} workers, pid {proc.pid})")

    failures: list[str] = []
    try:
        with ServeClient(host, port) as client:
            workloads = client.request("workloads")["workloads"]
            if args.quick:
                workloads = [w for w in workloads
                             if w["name"] in QUICK_WORKLOADS]
            print(f"registry: {len(workloads)} workload(s)")

            requests = build_requests(workloads, args.seed)
            print(f"warm-up pass ({len(requests)} requests, "
                  f"concurrency {args.concurrency})...")
            t0 = time.perf_counter()
            warmup = run_phase(host, port, requests, args.concurrency)
            print(f"  warm-up done in {time.perf_counter() - t0:.1f}s "
                  f"({warmup['requests']} ok, {len(warmup['errors'])} err)")
            failures.extend(warmup["errors"])

            measured_requests = requests * args.rounds
            print(f"measured phase ({len(measured_requests)} requests)...")
            phase = run_phase(host, port, measured_requests,
                              args.concurrency)
            failures.extend(phase["errors"])
            print(f"  {phase['requests']} requests in {phase['elapsed_s']}s "
                  f"= {phase['throughput_rps']} req/s; "
                  f"p50 {phase['latency_ms']['p50']} ms, "
                  f"p99 {phase['latency_ms']['p99']} ms; "
                  f"{phase['replay_requests_batched']} replay(s) batched")

            server_metrics = client.request("metrics")["server"]
            health = client.request("health")
            drain = client.drain()
            print(f"  drained: {drain['summary']}")
    finally:
        try:
            returncode = proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            returncode = proc.wait()
            failures.append("server did not exit within 60s of drain")
        if cache_ctx is not None:
            cache_ctx.cleanup()
    if returncode != 0:
        failures.append(f"server exited with status {returncode}")
    if phase["throughput_rps"] <= 0:
        failures.append("measured throughput was zero")

    batches = server_metrics.get("serve.replay.batches", {}).get("value", 0)
    simulated = server_metrics.get("serve.replay.configs_simulated",
                                   {}).get("value", 0)
    requested = server_metrics.get("serve.replay.configs_requested",
                                   {}).get("value", 0)
    report = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "quick": args.quick,
        "concurrency": args.concurrency,
        "workers": args.workers,
        "workloads": len(workloads),
        "rounds": args.rounds,
        "warmup": warmup,
        "measured": phase,
        "batching": {"batches": batches,
                     "configs_requested": requested,
                     "configs_simulated": simulated,
                     "dedup_ratio": (round(requested / simulated, 2)
                                     if simulated else None)},
        "server_health_final": health,
        "server_metrics": server_metrics,
        "failures": failures,
    }
    if args.report:
        path = pathlib.Path(args.report)
        path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path}")

    if not args.quick and not args.no_bench:
        bench_path = pathlib.Path(args.bench)
        bench = (json.loads(bench_path.read_text())
                 if bench_path.exists() else {})
        bench["serve"] = {
            "concurrency": args.concurrency,
            "workers": args.workers,
            "workloads": len(workloads),
            "requests": phase["requests"],
            "throughput_rps": phase["throughput_rps"],
            "p50_ms": phase["latency_ms"]["p50"],
            "p99_ms": phase["latency_ms"]["p99"],
            "replay_dedup_ratio": report["batching"]["dedup_ratio"],
        }
        bench_path.write_text(json.dumps(bench, indent=2) + "\n")
        print(f"updated {bench_path} ('serve' stage)")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
