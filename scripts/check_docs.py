#!/usr/bin/env python
"""Check internal references in the repo's Markdown documentation.

Two reference classes are verified against the working tree:

* Markdown links ``[text](target)`` whose target is not an external
  URL or an in-page anchor — the target (with any ``#fragment``
  stripped) must exist relative to the linking file;
* backtick-quoted repo paths like ``docs/OBSERVABILITY.md`` or
  ``scripts/bench_eval.py`` — these rot silently when files move (the
  exact drift class this script exists to catch), so each must exist
  relative to the repo root or the referencing file.

When checking the default set, a **CLI coverage** gate additionally
requires every ``psi-eval`` subcommand (the real ``_TARGETS`` registry
imported from ``repro.eval.cli``) to appear as ``psi-eval <command>``
in at least one default document — a new subcommand cannot ship
undocumented.  A **run-spec coverage** gate does the same for the
spec surface: the ``--spec``/``--specs`` flags and every built-in run
spec name (the live :mod:`repro.eval.specs` registry) must each appear
somewhere in the default documents.

Exit status 0 when everything resolves, 1 with a report otherwise.

Usage::

    python scripts/check_docs.py          # check the standard doc set
    python scripts/check_docs.py README.md docs/*.md
"""

from __future__ import annotations

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

#: The user-facing documents checked by default (CI runs this set).
DEFAULT_DOCS = [
    "README.md",
    "EXPERIMENTS.md",
    "DESIGN.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/ENGINES.md",
    "docs/OBSERVABILITY.md",
    "docs/SERVING.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: Backticked tokens that look like repo file paths (must contain a
#: slash or be a root-level doc, and end in a known text extension).
_BACKTICK_PATH = re.compile(
    r"`([A-Za-z0-9_\-./]+\.(?:md|py|json|txt|toml|yml))`")
_EXTERNAL = ("http://", "https://", "mailto:")


def _strip_code_blocks(text: str) -> str:
    """Remove fenced blocks — example output may contain path-like text."""
    out: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if line.strip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def _exists(target: str, doc: pathlib.Path) -> bool:
    relative_to_doc = (doc.parent / target).resolve()
    relative_to_repo = (REPO / target).resolve()
    return relative_to_doc.exists() or relative_to_repo.exists()


def check(doc: pathlib.Path) -> list[str]:
    """All broken references in one document."""
    text = _strip_code_blocks(doc.read_text())
    problems: list[str] = []
    for match in _LINK.finditer(text):
        target = match.group(1)
        if target.startswith(_EXTERNAL) or target.startswith("#"):
            continue
        path = target.split("#", 1)[0]
        if path and not _exists(path, doc):
            problems.append(f"broken link: ({target})")
    for match in _BACKTICK_PATH.finditer(text):
        target = match.group(1)
        # Bare file names without a directory are only checked when
        # they resolve nowhere at all AND name a doc-like file; module
        # references such as `table1.py` inside prose stay informal.
        if "/" not in target and not _exists(target, doc):
            if target.endswith(".md"):
                problems.append(f"missing document: `{target}`")
            continue
        if "/" in target and not _exists(target, doc):
            problems.append(f"missing path: `{target}`")
    return problems


def check_cli_coverage(names: list[str]) -> list[str]:
    """Every ``psi-eval`` subcommand must appear in ≥1 document.

    Searched over the FULL text (code fences included — that is where
    command examples live).  Imports the live target registry, so a
    subcommand added to the CLI fails here until it is documented.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.eval.cli import _TARGETS

    corpus = "\n".join((REPO / name).read_text() for name in names
                       if (REPO / name).exists())
    problems: list[str] = []
    for command in sorted(_TARGETS):
        if not re.search(rf"psi-eval\s+{re.escape(command)}\b", corpus):
            problems.append(
                f"undocumented psi-eval subcommand: {command!r} "
                f"(add a `psi-eval {command}` example to one of the "
                f"default documents)")
    return problems


def check_spec_coverage(names: list[str]) -> list[str]:
    """The run-spec CLI surface must appear in the documents.

    ``--spec`` and ``--specs`` are the configuration axis the CLI
    exposes (``psi-eval run --spec``, ``psi-eval crosscheck --specs``);
    they and every built-in run spec name must show up somewhere in
    the default doc set, code fences included.
    """
    sys.path.insert(0, str(REPO / "src"))
    from repro.eval.specs import spec_names

    corpus = "\n".join((REPO / name).read_text() for name in names
                       if (REPO / name).exists())
    problems: list[str] = []
    for flag in ("--spec", "--specs"):
        if not re.search(rf"{re.escape(flag)}\b", corpus):
            problems.append(
                f"undocumented run-spec flag: {flag!r} (add a psi-eval "
                f"example using it to one of the default documents)")
    for name in spec_names():
        if not re.search(rf"\b{re.escape(name)}\b", corpus):
            problems.append(
                f"undocumented run spec: {name!r} (mention it in the "
                f"run-spec documentation)")
    return problems


def main(argv: list[str] | None = None) -> int:
    names = (argv if argv else None) or DEFAULT_DOCS
    failures = 0
    for name in names:
        doc = (REPO / name) if not pathlib.Path(name).is_absolute() \
            else pathlib.Path(name)
        if not doc.exists():
            print(f"{name}: file not found")
            failures += 1
            continue
        problems = check(doc)
        for problem in problems:
            print(f"{name}: {problem}")
        failures += len(problems)
    if not argv:                 # default set: the coverage gates too
        for gate in (check_cli_coverage, check_spec_coverage):
            coverage_problems = gate(names)
            for problem in coverage_problems:
                print(problem)
            failures += len(coverage_problems)
    if failures:
        print(f"\n{failures} broken reference(s)")
        return 1
    print(f"ok: {len(names)} document(s), all internal references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
