#!/usr/bin/env python
"""Calibration tool for the DEC-2060 cost model (development use).

Runs the PSI side of Table 1 once, then evaluates candidate cost-table
scalings on the DEC side against the paper's ratios.  The shipped
values in ``repro/baseline/isa.py`` are the fixed point of this fit;
rerun with ``--params g,alpha,beta,uv,lambda,gamma,delta`` to explore.
"""

from __future__ import annotations

import math
import sys

from repro.baseline import WAMMachine, isa
from repro.baseline.isa import Op
from repro.tools import collect
from repro.workloads import get

NAMES = ["nreverse", "qsort", "tree", "lisp-fib", "lisp-nreverse",
         "queens-one", "reverse-function", "slow-reverse", "bup-1", "bup-2",
         "harmonizer-1", "harmonizer-2", "lcp-2", "lcp-3"]
PAPER = {"nreverse": 0.70, "qsort": 0.96, "tree": 1.18, "lisp-fib": 1.09,
         "lisp-nreverse": 1.12, "queens-one": 1.01, "reverse-function": 1.09,
         "slow-reverse": 0.90, "bup-1": 1.21, "bup-2": 1.40,
         "harmonizer-1": 1.58, "harmonizer-2": 1.42, "lcp-2": 0.77,
         "lcp-3": 0.78}

BASE_COSTS = dict(isa.COSTS_NS)
BASE_DYN = dict(isa.DYNAMIC_COSTS_NS)

ALPHA = [Op.GET_STRUCTURE, Op.PUT_STRUCTURE, Op.SWITCH_ON_STRUCTURE,
         Op.GET_VALUE, Op.UNIFY_LOCAL_VALUE]
ALPHA_DYN = ["general_unify_node"]
BETA = [Op.TRY, Op.RETRY, Op.TRUST, Op.TRY_ME_ELSE, Op.RETRY_ME_ELSE,
        Op.TRUST_ME]
BETA_DYN = ["backtrack", "untrail_entry", "trail_entry"]
LAMBDA = [Op.GET_LIST, Op.UNIFY_VARIABLE, Op.UNIFY_CONSTANT, Op.UNIFY_NIL,
          Op.GET_CONSTANT, Op.GET_NIL, Op.PUT_LIST, Op.PUT_CONSTANT,
          Op.PUT_NIL]
GAMMA = [Op.CALL, Op.EXECUTE, Op.PROCEED, Op.ALLOCATE, Op.DEALLOCATE,
         Op.PUT_VALUE, Op.PUT_VARIABLE, Op.GET_VARIABLE,
         Op.PUT_UNSAFE_VALUE, Op.SWITCH_ON_TERM, Op.SWITCH_ON_CONSTANT]
DELTA = [Op.BUILTIN, Op.BUILTIN_ARITH]
DELTA_DYN = ["builtin_step", "arith_node"]


def apply_params(g, alpha, beta, uv, lam, gamma, delta):
    for op in isa.COSTS_NS:
        isa.COSTS_NS[op] = int(BASE_COSTS[op] * g)
    for key in isa.DYNAMIC_COSTS_NS:
        isa.DYNAMIC_COSTS_NS[key] = int(BASE_DYN[key] * g)
    groups = [(ALPHA, alpha), (BETA, beta), (LAMBDA, lam), (GAMMA, gamma),
              (DELTA, delta), ([Op.UNIFY_VALUE], uv)]
    for ops_, factor in groups:
        for op in ops_:
            isa.COSTS_NS[op] = int(BASE_COSTS[op] * g * factor)
    for key, factor in [(k, alpha) for k in ALPHA_DYN] \
            + [(k, beta) for k in BETA_DYN] \
            + [("heap_cell", lam)] \
            + [(k, delta) for k in DELTA_DYN]:
        isa.DYNAMIC_COSTS_NS[key] = int(BASE_DYN[key] * g * factor)


def main() -> int:
    psi_ms = {}
    for name in NAMES:
        w = get(name)
        psi_ms[name] = collect(w.source, w.goal, record_trace=False).time_ms
    if len(sys.argv) > 1:
        params = tuple(float(x) for x in sys.argv[1].split(","))
    else:
        params = (1.0,) * 7   # evaluate the shipped table as-is
    apply_params(*params)
    err = 0.0
    for name in NAMES:
        w = get(name)
        wam = WAMMachine()
        wam.consult(w.source)
        assert wam.run(w.goal) is not None, name
        ratio = wam.stats.time_ms / psi_ms[name]
        err += (math.log(ratio) - math.log(PAPER[name])) ** 2
        print(f"{name:18s} measured {ratio:5.2f}  paper {PAPER[name]:5.2f}")
    print(f"params={params} log-ratio error={err:.4f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
