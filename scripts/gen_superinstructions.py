#!/usr/bin/env python
"""Regenerate ``src/repro/core/fused_table.py`` from mining evidence.

The machine binds a fixed set of superinstruction names at its fused
dispatch sites, so those specs (``REQUIRED_SPECS`` below) are embedded
here and always emitted.  What mining decides is

* the ``clause_frame/{n}`` specialisation set (``FRAME_NLOCALS``): the
  most frequent frame sizes in the corpus get a dedicated
  superinstruction, everything else takes the generic ``clause_frame``
  plus a separate ``frame_init_slot`` emission, and
* the ranked ``MINED`` evidence table committed alongside the specs,
  so a reviewer can see *why* each fused shape earns its place.

The output is deterministic: the interpreter is deterministic, the
corpus is a fixed list, and every collection is sorted before writing.
Every generated spec is validated by actually constructing its
:class:`~repro.core.fusion.Superinstruction` before the file is
replaced.

Usage::

    PYTHONPATH=src python scripts/gen_superinstructions.py [--check]

``--check`` regenerates to a string and fails (exit 1) if the committed
table differs — the CI guard against hand edits.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs import seqmine  # noqa: E402

TABLE_PATH = REPO / "src" / "repro" / "core" / "fused_table.py"

#: Moderate, diverse corpus: list/structure benchmarks, deep recursion,
#: backtracking search, and the two application families (parsing,
#: connection-graph proof) — enough coverage to rank sequences without
#: re-running the heavyweight evaluation workloads.
CORPUS = ("nreverse", "qsort", "tree", "lisp-fib", "queens-one",
          "bup-1", "lcp-1", "harmonizer-1")

#: How many ranked candidates to commit as evidence.
MINED_TOP = 24

#: How many ``clause_frame/{n}`` specialisations to keep.
FRAME_SPECIALISATIONS = 4

#: The dispatch shapes the machine binds by name — must stay in sync
#: with ``repro.core.fusion.REQUIRED`` (guarded there by an import-time
#: check and by ``tests/core/test_fusion.py``).
REQUIRED_SPECS = {
    "call_dispatch": {
        "module": "control",
        "emit": (("control.goal_fetch", 1), ("control.call_setup", 1),
                 ("built.step", 1), ("control.proc_lookup", 1)),
        "mem": (("read", "heap", 2),),
    },
    "cp_push_frame": {
        "module": "control",
        "emit": (("control.cp_push", 1), ("wf.general", 1)),
        "mem": (("write-stack", "control", 10),),
    },
    "clause_try": {
        "module": "control",
        "emit": (("control.clause_try", 1),),
        "mem": (("read", "heap", 1),),
    },
    "clause_frame": {
        "module": "control",
        "emit": (("control.clause_try", 1), ("control.frame_alloc", 1),
                 ("control.switch_buffer", 1)),
        "mem": (("read", "heap", 1),),
    },
    "proceed_resume": {
        "module": "control",
        "emit": (("control.env_pop", 1),),
        "mem": (("read", "control", 4),),
    },
    "fail": {
        "module": "control",
        "emit": (("control.backtrack", 1), ("control.fail_dispatch", 1)),
        "mem": (),
    },
    "cp_restore_resume": {
        "module": "control",
        "emit": (("control.cp_restore", 1),),
        "mem": (("read", "control", 4),),
    },
    "untrail_entry": {
        "module": "trail",
        "emit": (("trail.untrail_entry", 1),),
        "mem": (("read", "trail", 1),),
    },
    "trail_push": {
        "module": "trail",
        "emit": (("trail.push", 1),),
        "mem": (("write-stack", "trail", 1),),
    },
    "fetch_decode": {
        "module": None,
        "emit": (("decode", 1),),
        "mem": (("read", "heap", 1),),
    },
    "fetch_decode_packed": {
        "module": None,
        "emit": (("decode.packed", 1),),
        "mem": (("read", "heap", 1),),
    },
    "fetch_struct": {
        "module": None,
        "emit": (("decode", 1), ("decode.opcode", 1)),
        "mem": (("read", "heap", 2),),
    },
    "fetch_struct_packed": {
        "module": None,
        "emit": (("decode.packed", 1), ("decode.opcode", 1)),
        "mem": (("read", "heap", 2),),
    },
    "bind_skip": {
        "module": None,
        "emit": (("unify.bind", 1), ("trail.skip", 1)),
        "mem": (),
    },
    "push_var": {
        "module": None,
        "emit": (("unify.build_var", 1),),
        "mem": (("write-stack", "global", 1),),
    },
    "build_list": {
        "module": None,
        "emit": (("unify.build_cell", 1),),
        "mem": (("write-stack", "global", 2),),
    },
    "get_arg": {
        "module": None,
        "emit": (("get_arg.fetch", 1),),
        "mem": (("read", "heap", 1),),
    },
    "get_arg_packed": {
        "module": None,
        "emit": (("get_arg.packed", 1),),
        "mem": (("read", "heap", 1),),
    },
    "get_arg_void": {
        "module": None,
        "emit": (("get_arg.fetch", 1),),
        "mem": (("read", "heap", 1), ("write-stack", "global", 1)),
    },
    "get_arg_var_buf": {
        "module": None,
        "emit": (("get_arg.fetch", 1), ("get_arg.var_buffer", 1)),
        "mem": (("read", "heap", 1),),
    },
    "get_arg_var_buf_base": {
        "module": None,
        "emit": (("get_arg.fetch", 1), ("get_arg.var_buffer_base", 1)),
        "mem": (("read", "heap", 1),),
    },
    "get_arg_var_mem": {
        "module": None,
        "emit": (("get_arg.fetch", 1), ("get_arg.var_mem", 1)),
        "mem": (("read", "heap", 1), ("read", "local", 1)),
    },
    "get_arg_var_buf_packed": {
        "module": None,
        "emit": (("get_arg.packed", 1), ("get_arg.var_buffer", 1)),
        "mem": (("read", "heap", 1),),
    },
    "get_arg_var_buf_base_packed": {
        "module": None,
        "emit": (("get_arg.packed", 1), ("get_arg.var_buffer_base", 1)),
        "mem": (("read", "heap", 1),),
    },
    "get_arg_var_mem_packed": {
        "module": None,
        "emit": (("get_arg.packed", 1), ("get_arg.var_mem", 1)),
        "mem": (("read", "heap", 1), ("read", "local", 1)),
    },
    "deref_buf": {
        "module": None,
        "emit": (("unify.deref_step", 1), ("wf.frame_read", 1)),
        "mem": (),
    },
    "deref_buf_base": {
        "module": None,
        "emit": (("unify.deref_step", 1), ("wf.frame_read_base", 1)),
        "mem": (),
    },
    "deref_read/heap": {
        "module": None,
        "emit": (("unify.deref_step", 1),),
        "mem": (("read", "heap", 1),),
    },
    "deref_read/global": {
        "module": None,
        "emit": (("unify.deref_step", 1),),
        "mem": (("read", "global", 1),),
    },
    "deref_read/local": {
        "module": None,
        "emit": (("unify.deref_step", 1),),
        "mem": (("read", "local", 1),),
    },
    "deref_read/control": {
        "module": None,
        "emit": (("unify.deref_step", 1),),
        "mem": (("read", "control", 1),),
    },
    "deref_read/trail": {
        "module": None,
        "emit": (("unify.deref_step", 1),),
        "mem": (("read", "trail", 1),),
    },
}

HEADER = '''"""Selected superinstruction table (ahead-of-time generated).

DO NOT EDIT BY HAND — regenerate with::

    PYTHONPATH=src python scripts/gen_superinstructions.py

The generator mines packed emission journals of registry workloads
(:mod:`repro.obs.seqmine`) for the hottest micro-op n-grams, merges
them with the statically-required dispatch shapes the machine binds by
name (:data:`repro.core.fusion.REQUIRED`), and rewrites this module.
``MINED`` keeps the ranked evidence the selection was based on.

Spec format: ``module`` is an interpreter-module value string, or
``None`` for dynamic (ambient-module) billing; ``emit`` lists
``(routine_name, times)``; ``mem`` lists ``(command, area, times)``.
"""

# fmt: off
'''


def frame_nlocals_histogram(journals) -> Counter:
    """How often each frame size occurs (``frame.init_slot×n`` tokens)."""
    from repro.core import micro
    base = micro.R_FRAME_INIT_SLOT.pair_base
    hist: Counter = Counter()
    for events in journals:
        for token in events:
            if (token & 0xFFFF) - (token & 0xFFFF) % 6 == base:
                hist[token >> 19] += 1
    return hist


def select_frame_nlocals(hist: Counter) -> tuple[int, ...]:
    """The most frequent frame sizes, specialised in ascending order."""
    ranked = sorted(hist.items(), key=lambda kv: (-kv[1], kv[0]))
    return tuple(sorted(n for n, _ in ranked[:FRAME_SPECIALISATIONS]))


def build_specs(frame_nlocals: tuple[int, ...]) -> dict:
    specs = dict(REQUIRED_SPECS)
    base = REQUIRED_SPECS["clause_frame"]
    for n in frame_nlocals:
        specs[f"clause_frame/{n}"] = {
            "module": base["module"],
            "emit": base["emit"] + (("control.frame_init_slot", n),),
            "mem": base["mem"],
        }
    return specs


def render_spec(name: str, spec: dict) -> str:
    lines = [f'    "{name}": {{']
    lines.append(f'        "module": {spec["module"]!r},')
    emit = spec["emit"]
    if not emit:
        lines.append('        "emit": (),')
    else:
        parts = [f'({r!r}, {t})' for r, t in emit]
        body = "(" + ",\n                 ".join(
            _wrap(parts, width=60)) + ("," if len(emit) == 1 else "") + ")"
        lines.append(f'        "emit": {body},')
    mem = spec["mem"]
    if not mem:
        lines.append('        "mem": (),')
    else:
        parts = [f'({c!r}, {a!r}, {t})' for c, a, t in mem]
        body = ("(" + ", ".join(parts)
                + ("," if len(mem) == 1 else "") + ")")
        lines.append(f'        "mem": {body},')
    lines.append("    },")
    return "\n".join(lines)


def _wrap(parts: list[str], width: int) -> list[str]:
    """Group ``parts`` into comma-joined lines no wider than ``width``."""
    lines: list[str] = []
    current = ""
    for part in parts:
        if current and len(current) + len(part) + 2 > width:
            lines.append(current)
            current = part
        else:
            current = f"{current}, {part}" if current else part
    if current:
        lines.append(current)
    return lines


def render(specs: dict, frame_nlocals: tuple[int, ...],
           mined) -> str:
    out = [HEADER, "\nSPECS = {"]
    for name, spec in specs.items():
        out.append(render_spec(name, spec))
    out.append("}")
    out.append("")
    out.append('#: nlocals values with a dedicated ``clause_frame/{n}``'
               " specialisation.")
    out.append(f"FRAME_NLOCALS = {frame_nlocals!r}")
    out.append("")
    out.append("#: Ranked mining evidence the selection above was derived"
               " from: (ops,")
    out.append(f"#: occurrences, total unfused steps) over {CORPUS!r},")
    out.append("#: most step-heavy first (regenerated with the table).")
    if not mined:
        out.append("MINED = ()")
    else:
        out.append("MINED = (")
        for cand in mined:
            ops = tuple(seqmine.token_label(t) for t in cand.tokens)
            out.append(f"    ({ops!r},")
            out.append(f"     {cand.count}, {cand.steps}),")
        out.append(")")
    out.append("")
    return "\n".join(out)


def validate(specs: dict) -> None:
    """Construct every Superinstruction; raises on a bad spec."""
    from repro.core import fusion
    for name, spec in specs.items():
        fusion._build(name, spec)
    missing = [name for name in fusion.REQUIRED if name not in specs]
    if missing:
        raise SystemExit(f"generated table misses required specs: {missing}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="verify the committed table is up to date")
    args = parser.parse_args()

    journals = [seqmine.record_workload(name).events for name in CORPUS]
    total: Counter = Counter()
    for events in journals:
        total.update(seqmine.ngram_counts(events))
    mined = seqmine.rank(total, top=MINED_TOP)
    frame_nlocals = select_frame_nlocals(frame_nlocals_histogram(journals))

    specs = build_specs(frame_nlocals)
    validate(specs)
    text = render(specs, frame_nlocals, mined)

    if args.check:
        committed = TABLE_PATH.read_text()
        if committed != text:
            sys.stderr.write(
                "fused_table.py is stale — regenerate with "
                "PYTHONPATH=src python scripts/gen_superinstructions.py\n")
            return 1
        print("fused_table.py is up to date")
        return 0

    TABLE_PATH.write_text(text)
    print(f"wrote {TABLE_PATH} ({len(specs)} specs, "
          f"frame specialisations {frame_nlocals}, "
          f"{len(mined)} mined candidates)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
