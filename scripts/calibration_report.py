#!/usr/bin/env python
"""Print every reproduced table/figure next to the paper's values.

Development tool used while calibrating microroutine weights and the
DEC cost table; the same output is available per-artifact through
``psi-eval``.  The committed snapshot lives in results/eval_report.txt
and is regenerated in CI with ``--output results/eval_report.txt``
(the job fails on an uncommitted diff, so the checked-in report can
never go stale).
"""

import argparse
import io
import pathlib
import sys

from repro.eval import (
    ablations,
    figure1,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


def render_report(stream) -> None:
    sections = [
        ("table1", lambda: table1.render(table1.generate())),
        ("table2", lambda: table2.render(table2.generate())),
        ("table3", lambda: table3.render(table3.generate())),
        ("table4", lambda: table4.render(table4.generate())),
        ("table5", lambda: table5.render(table5.generate())),
        ("table6", lambda: table6.render(table6.generate())),
        ("table7", lambda: table7.render(table7.generate())),
        ("figure1", lambda: figure1.render(figure1.generate())),
        ("ablations", lambda: ablations.render(ablations.generate())),
    ]
    for name, render in sections:
        print(f"== {name} ==", file=stream, flush=True)
        print(render(), file=stream)
        print(file=stream)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=None, metavar="FILE",
                        help="write the report to FILE instead of stdout "
                             "(e.g. results/eval_report.txt)")
    args = parser.parse_args(argv)
    if args.output is None:
        render_report(sys.stdout)
        return
    buffer = io.StringIO()
    render_report(buffer)
    path = pathlib.Path(args.output)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(buffer.getvalue())
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
