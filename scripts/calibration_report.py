#!/usr/bin/env python
"""Print every reproduced table/figure next to the paper's values.

Development tool used while calibrating microroutine weights and the
DEC cost table; the same output is available per-artifact through
``psi-eval``.  The committed snapshot lives in results/eval_report.txt.
"""

from repro.eval import (
    ablations,
    figure1,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


def main() -> None:
    sections = [
        ("table1", lambda: table1.render(table1.generate())),
        ("table2", lambda: table2.render(table2.generate())),
        ("table3", lambda: table3.render(table3.generate())),
        ("table4", lambda: table4.render(table4.generate())),
        ("table5", lambda: table5.render(table5.generate())),
        ("table6", lambda: table6.render(table6.generate())),
        ("table7", lambda: table7.render(table7.generate())),
        ("figure1", lambda: figure1.render(figure1.generate())),
        ("ablations", lambda: ablations.render(ablations.generate())),
    ]
    for name, render in sections:
        print(f"== {name} ==", flush=True)
        print(render())
        print()


if __name__ == "__main__":
    main()
