"""Exception hierarchy for the PSI reproduction library.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single handler while
still distinguishing front-end syntax problems from machine faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class PrologSyntaxError(ReproError):
    """Raised by the reader when Prolog source text cannot be parsed.

    Carries the line and column of the offending token when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class ExistenceError(ReproError):
    """Raised when a goal calls a predicate that is not defined."""

    def __init__(self, functor: str, arity: int):
        super().__init__(f"undefined predicate: {functor}/{arity}")
        self.functor = functor
        self.arity = arity


class InstantiationError(ReproError):
    """Raised when a builtin requires a bound argument but finds a variable."""


class TypeError_(ReproError):
    """Raised when a builtin receives an argument of the wrong type.

    Named with a trailing underscore to avoid shadowing the Python builtin.
    """

    def __init__(self, expected: str, culprit: object):
        super().__init__(f"type error: expected {expected}, got {culprit!r}")
        self.expected = expected
        self.culprit = culprit


class EvaluationError(ReproError):
    """Raised when arithmetic evaluation fails (e.g. division by zero)."""


class MachineError(ReproError):
    """Raised on internal machine faults (stack overflow, bad code words)."""


class ResourceLimitExceeded(MachineError):
    """Raised when a configured step or memory limit is exceeded."""


class UnknownGoalKind(MachineError):
    """Raised when goal dispatch meets a code node the compiler never emits.

    Names the offending class so a future goal kind added to the
    compiler without a dispatch arm fails loudly instead of silently.
    """

    def __init__(self, goal: object):
        super().__init__(
            f"unknown goal kind {type(goal).__name__}: {goal!r}")
        self.goal = goal
