"""KL0 instruction code: compiled clause representation and loader.

The PSI keeps "machine-resident expressions of KL0 programs
(instruction code)" in the heap area; the microprogrammed interpreter
walks that code.  This module compiles source clauses (term ASTs from
:mod:`repro.prolog`) into

* :class:`CTerm` trees — one node per code word, each carrying the heap
  address the node was serialised to, so the interpreter's walk
  produces genuine heap-area instruction fetches (the dominant heap
  traffic in the paper's Table 4);
* :class:`Clause`/:class:`Procedure` objects with the variable
  classification the execution model needs (local vs global vs void,
  first occurrences, unsafe variables globalised).

Control constructs (``;``, ``->``, ``\\+``) are expanded into auxiliary
predicates at load time, so the engine core only ever sees plain
conjunctions, cut, user calls and builtins.  A cut inside a
disjunction is local to the construct (as in ISO ``\\+``), which every
bundled workload respects.

Argument packing: the paper notes "up to four 8-bit arguments are
packed into one word in order to reduce memory consumption".  The
serialiser packs runs of small integer constants (0..255) four to a
word; the interpreter decodes them with the ``case (irn)`` multi-way
branch, which is how those branches show up in Table 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from repro.engine.frontend import (
    GOAL_BUILTIN,
    GOAL_CUT,
    VOID_SLOT,
    Frontend,
    NormalizedClause,
    NormalizedGoal,
    VarInfo,
)
from repro.prolog.terms import Atom, Struct, Term, Var
from repro.core.memory import Area, encode_address
from repro.core.words import NIL_WORD, SymbolTable, Tag, Word

# ---------------------------------------------------------------------------
# Code term nodes
# ---------------------------------------------------------------------------


class CTerm:
    """Base class for instruction-code term nodes."""

    __slots__ = ("addr", "packed")

    def __init__(self) -> None:
        self.addr = -1       # heap offset, assigned by the serialiser
        self.packed = False  # True when sharing a packed-argument word


class CConst(CTerm):
    """A constant: atom, integer or nil, as a ready-made word."""

    __slots__ = ("word",)

    def __init__(self, word: Word):
        super().__init__()
        self.word = word

    def __repr__(self) -> str:
        return f"CConst({self.word})"


class CVar(CTerm):
    """A clause variable occurrence."""

    __slots__ = ("name", "slot", "is_global", "is_first")

    def __init__(self, name: str, slot: int, is_global: bool, is_first: bool):
        super().__init__()
        self.name = name
        self.slot = slot
        self.is_global = is_global
        self.is_first = is_first

    def __repr__(self) -> str:
        kind = "G" if self.is_global else "L"
        first = "'" if self.is_first else ""
        return f"CVar({self.name}:{kind}{self.slot}{first})"


class CVoid(CTerm):
    """A variable occurring exactly once in its clause."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "CVoid()"


class CList(CTerm):
    """A list cell in code: ``[Head|Tail]``."""

    __slots__ = ("head", "tail")

    def __init__(self, head: CTerm, tail: CTerm):
        super().__init__()
        self.head = head
        self.tail = tail

    def __repr__(self) -> str:
        return f"CList({self.head!r}, {self.tail!r})"


class CStruct(CTerm):
    """A compound term in code."""

    __slots__ = ("functor_id", "name", "args")

    def __init__(self, functor_id: int, name: str, args: tuple[CTerm, ...]):
        super().__init__()
        self.functor_id = functor_id
        self.name = name
        self.args = args

    @property
    def arity(self) -> int:
        return len(self.args)

    def __repr__(self) -> str:
        return f"CStruct({self.name}/{len(self.args)})"


# ---------------------------------------------------------------------------
# Goals
# ---------------------------------------------------------------------------


class Goal:
    """Base class for compiled body goals."""

    __slots__ = ("args", "addr", "is_last")

    def __init__(self, args: tuple[CTerm, ...]):
        self.args = args
        self.addr = -1
        self.is_last = False


class CallGoal(Goal):
    """A call to a user-defined predicate."""

    __slots__ = ("functor", "arity", "proc")

    def __init__(self, functor: str, arity: int, args: tuple[CTerm, ...]):
        super().__init__(args)
        self.functor = functor
        self.arity = arity
        self.proc: Procedure | None = None  # resolved lazily at first call

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.functor, self.arity)

    def __repr__(self) -> str:
        return f"CallGoal({self.functor}/{self.arity})"


class BuiltinGoal(Goal):
    """A call to a builtin (microcoded) predicate."""

    __slots__ = ("name", "builtin")

    def __init__(self, name: str, arity: int, args: tuple[CTerm, ...], builtin):
        super().__init__(args)
        self.name = name
        self.builtin = builtin

    def __repr__(self) -> str:
        return f"BuiltinGoal({self.name}/{len(self.args)})"


class CutGoal(Goal):
    """The cut operator."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(())

    def __repr__(self) -> str:
        return "CutGoal()"


# ---------------------------------------------------------------------------
# Clauses and procedures
# ---------------------------------------------------------------------------


@dataclass
class Clause:
    functor: str
    arity: int
    head_args: tuple[CTerm, ...]
    body: tuple[Goal, ...]
    nlocals: int
    nglobals: int
    local_names: tuple[str, ...]
    global_names: tuple[str, ...]
    heap_base: int = -1
    heap_size: int = 0

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.functor, self.arity)

    def __repr__(self) -> str:
        return f"Clause({self.functor}/{self.arity}, {len(self.body)} goals)"


@dataclass
class Procedure:
    functor: str
    arity: int
    clauses: list[Clause] = field(default_factory=list)
    descriptor_base: int = -1  # heap address of the clause-address table
    is_auxiliary: bool = False
    #: First-argument :class:`repro.engine.index.ClauseIndex`, built
    #: lazily by the machine's indexed configuration and maintained
    #: incrementally by assert/retract; ``None`` on faithful runs.
    clause_index: object = None

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.functor, self.arity)

    @cached_property
    def label(self) -> str:
        """The ``functor/arity`` string the machine publishes as its
        predicate context (one stable object per procedure, so the
        observability collector can compare by identity)."""
        return f"{self.functor}/{self.arity}"

    def __repr__(self) -> str:
        return f"Procedure({self.functor}/{self.arity}, {len(self.clauses)} clauses)"


# ---------------------------------------------------------------------------
# Program: compiler + loader
# ---------------------------------------------------------------------------

# Variable classification (void/local/global, first-occurrence slot
# numbering) lives in the shared frontend now: see
# :func:`repro.engine.frontend.normalize_flat`.

_CONTROL_FUNCTORS = {(";", 2), ("->", 2), ("\\+", 1), ("not", 1), (",", 2)}


class Program:
    """A loaded KL0 program: procedures plus heap-resident code.

    ``builtin_table`` maps ``(name, arity)`` to builtin descriptors; it
    is supplied by the machine (see :mod:`repro.core.builtins`) so this
    module stays independent of the builtin implementations.
    """

    def __init__(self, symbols: SymbolTable, builtin_table: dict):
        self.symbols = symbols
        self.builtin_table = builtin_table
        self.procedures: dict[tuple[str, int], Procedure] = {}
        self._frontend = Frontend(builtin_table)

    # -- public API ----------------------------------------------------------

    def add_clause(self, term: Term) -> Clause:
        """Compile one source clause term and register it (plus any
        auxiliary predicates its control constructs expand into)."""
        batch = self._frontend.expand_clause(term)
        compiled = None
        for normalized in batch.clauses:
            clause = self._compile_normalized(normalized)
            if normalized is batch.main:
                compiled = clause
        for indicator in batch.auxiliary:
            self.procedures[indicator].is_auxiliary = True
        assert compiled is not None
        return compiled

    def add_program(self, terms) -> list[Clause]:
        return [self.add_clause(term) for term in terms]

    def procedure(self, functor: str, arity: int) -> Procedure | None:
        return self.procedures.get((functor, arity))

    # -- clause compilation ------------------------------------------------------

    def _compile_normalized(self, norm: NormalizedClause) -> Clause:
        # The frontend already classified variables (void/local/global
        # with first-occurrence slot order) and goals (call/builtin/
        # cut).  Unsafe locals passed at a TRO'd last call are
        # globalised *at runtime* by the machine (the DEC-10 method),
        # not here.  This pass builds code terms with first-occurrence
        # flags.
        info = norm.var_info
        compiled_head = tuple(self._build(arg, info) for arg in norm.head_args)
        compiled_body: list[Goal] = []
        for goal in norm.goals:
            compiled_body.append(self._build_goal(goal, info))
        if compiled_body:
            compiled_body[-1].is_last = True

        clause = Clause(
            functor=norm.functor,
            arity=norm.arity,
            head_args=compiled_head,
            body=tuple(compiled_body),
            nlocals=norm.nlocals,
            nglobals=norm.nglobals,
            local_names=norm.local_names,
            global_names=norm.global_names,
        )
        proc = self.procedures.setdefault(
            norm.indicator, Procedure(norm.functor, norm.arity))
        proc.clauses.append(clause)
        return clause

    def _build_goal(self, goal: NormalizedGoal,
                    info: dict[str, VarInfo]) -> Goal:
        compiled = tuple(self._build(arg, info) for arg in goal.args)
        if goal.kind == GOAL_CUT:
            return CutGoal()
        if goal.kind == GOAL_BUILTIN:
            return BuiltinGoal(goal.name, goal.arity, compiled,
                               self.builtin_table[goal.indicator])
        return CallGoal(goal.name, goal.arity, compiled)

    def _build(self, term: Term, info: dict[str, VarInfo]) -> CTerm:
        if isinstance(term, int):
            return CConst((Tag.INT, term))
        if isinstance(term, Atom):
            if term.name == "[]":
                return CConst(NIL_WORD)
            return CConst((Tag.ATOM, self.symbols.atom(term.name)))
        if isinstance(term, Var):
            entry = info[term.name]
            if entry.slot == VOID_SLOT:
                return CVoid()
            is_first = not entry.seen
            entry.seen = True
            return CVar(term.name, entry.slot, entry.is_global, is_first)
        assert isinstance(term, Struct)
        if term.functor == "." and term.arity == 2:
            return CList(self._build(term.args[0], info),
                         self._build(term.args[1], info))
        functor_id = self.symbols.functor(term.functor, term.arity)
        args = tuple(self._build(arg, info) for arg in term.args)
        return CStruct(functor_id, term.functor, args)


# ---------------------------------------------------------------------------
# Heap serialisation
# ---------------------------------------------------------------------------


class CodeSerializer:
    """Lays program code out in the heap area, assigning node addresses.

    One word per code node, in pre-order (the interpreter's walk order,
    so instruction fetch is mostly sequential).  Runs of small integer
    constants in argument position share packed words (up to four per
    word).  Loading itself is not billed as machine traffic — it models
    the machine's program loader, not the interpreter.
    """

    PACK_LIMIT = 4

    def __init__(self, mem):
        self.mem = mem

    def load_procedure(self, proc: Procedure) -> None:
        """Serialise every not-yet-loaded clause of ``proc`` and (re)build
        its descriptor table (1 header word + 1 word per clause)."""
        for clause in proc.clauses:
            if clause.heap_base < 0:
                self._load_clause(clause)
        base = self.mem.grow(Area.HEAP, len(proc.clauses) + 1)
        self.mem.poke(Area.HEAP, base, (Tag.INT, len(proc.clauses)))
        for i, clause in enumerate(proc.clauses):
            self.mem.poke(Area.HEAP, base + 1 + i,
                          (Tag.REF, encode_address(Area.HEAP, clause.heap_base)))
        proc.descriptor_base = base

    def _load_clause(self, clause: Clause) -> None:
        nodes: list[tuple[CTerm | Goal, Word]] = []
        self._collect_clause(clause, nodes)
        base = self.mem.grow(Area.HEAP, 0)
        cursor = base
        # Packing state: the current packed word's address and how many
        # 8-bit operands it holds.  Interior nodes (list cells, structure
        # headers, goal headers) do not interrupt a packing run — the
        # loader compacts small operands across them; any other leaf
        # (variable, atom, large integer) ends the run.
        pack_addr = -1
        pack_fill = 0
        for node, word in nodes:
            # 8-bit packable operands: small integer constants and
            # variable slot numbers (all slots fit in 8 bits).
            packable = ((word[0] == Tag.INT and 0 <= word[1] <= 255
                         and isinstance(node, CConst))
                        or isinstance(node, (CVar, CVoid)))
            if packable:
                if 0 < pack_fill < self.PACK_LIMIT:
                    node.addr = pack_addr
                    node.packed = True
                    pack_fill += 1
                    continue
                pack_addr = cursor
                pack_fill = 1
            elif not isinstance(node, (CList, CStruct, Goal, _HeaderNode)):
                pack_fill = 0
            node.addr = cursor
            self.mem.grow(Area.HEAP, 1)
            self.mem.poke(Area.HEAP, cursor, word)
            cursor += 1
        clause.heap_base = base
        clause.heap_size = cursor - base

    def _collect_clause(self, clause: Clause, out: list) -> None:
        # Clause header: its functor descriptor.
        header = _HeaderNode()
        out.append((header, (Tag.FUNC, 0)))
        for arg in clause.head_args:
            self._collect_term(arg, out)
        for goal in clause.body:
            self._collect_goal(goal, out)

    def _collect_goal(self, goal: Goal, out: list) -> None:
        out.append((goal, (Tag.FUNC, 0)))
        for arg in goal.args:
            self._collect_term(arg, out)

    def _collect_term(self, term: CTerm, out: list) -> None:
        if isinstance(term, CConst):
            out.append((term, term.word))
        elif isinstance(term, (CVar, CVoid)):
            out.append((term, (Tag.UNDEF, 0)))
        elif isinstance(term, CList):
            out.append((term, (Tag.LIST, 0)))
            self._collect_term(term.head, out)
            self._collect_term(term.tail, out)
        elif isinstance(term, CStruct):
            out.append((term, (Tag.STRUCT, term.functor_id)))
            for arg in term.args:
                self._collect_term(arg, out)
        else:
            raise TypeError(f"unexpected code node {term!r}")


class _HeaderNode:
    """Placeholder owner for clause/goal header words."""

    __slots__ = ("addr", "packed")

    def __init__(self) -> None:
        self.addr = -1
        self.packed = False
