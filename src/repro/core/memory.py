"""Memory areas and the memory interface of the PSI model.

The PSI allocates the heap and the four execution stacks to independent
logical address spaces (the paper calls each one an *area*).  We encode
a full logical address as ``area_index << 24 | offset`` so traces carry
flat addresses the cache simulator can consume while per-area
statistics (Tables 4 and 5) remain recoverable.

All term data of the running machine physically lives in the per-area
word lists held here; every access goes through :class:`MemorySystem`,
which

* performs the actual word read/write,
* bills one microinstruction carrying the cache command to the stats
  collector (this is what makes "about one in every five
  microinstruction steps is a request for memory access" a measurable
  outcome rather than an assumption), and
* forwards ``(command, address)`` to any attached listeners — the
  online cache model and/or a trace recorder for the PMMS simulator.

Hot-path notes: the accounted accessors are fully inlined (no
``_touch`` indirection).  The listener fan-out is precomputed into
:attr:`MemorySystem._notify` — ``None`` for no listeners, the single
listener's bound ``access`` method for one, a loop closure for more —
and rebuilt only on :meth:`attach`/:meth:`detach`.  Statically-known
access sequences (control-frame pushes, frame flushes, resume reads)
go through the block accessors, which bill once via
``stats.mem_access_n`` and notify per word in the exact reference
order, keeping the trace byte stream bit-identical.
"""

from __future__ import annotations

from array import array
from enum import IntEnum
from typing import Protocol

from repro.core.micro import CMD_BY_CODE, CacheCmd
from repro.errors import MachineError

AREA_SHIFT = 24
OFFSET_MASK = (1 << AREA_SHIFT) - 1


class Area(IntEnum):
    """The five independent logical address spaces of the PSI."""

    HEAP = 0
    GLOBAL = 1
    LOCAL = 2
    CONTROL = 3
    TRAIL = 4

    @property
    def label(self) -> str:
        return _AREA_LABELS[self]


_AREA_LABELS = {
    Area.HEAP: "heap",
    Area.GLOBAL: "global stack",
    Area.LOCAL: "local stack",
    Area.CONTROL: "control stack",
    Area.TRAIL: "trail stack",
}

#: Area members by value, for O(1) decode without ``Area(...)`` calls.
AREAS = tuple(Area)
N_AREAS = len(AREAS)

#: Register-file metadata for state reconstruction: the mnemonic of
#: the top-of-area pointer register each area contributes to the
#: machine's register file.  The time-travel state model
#: (:mod:`repro.obs.timetravel`) rebuilds exactly these registers from
#: the recorded access stream — the area extents are the part of the
#: register file the trace determines; work-file registers are not
#: addressable memory and leave no trace entries.
AREA_REGISTERS = {
    Area.HEAP: "HP",       # heap allocation frontier
    Area.GLOBAL: "GT",     # global-stack top
    Area.LOCAL: "LT",      # local-stack top
    Area.CONTROL: "CF",    # control-frame stack top
    Area.TRAIL: "TR",      # trail top
}

#: Whether truncation (``settop``) is a legal operation on the area —
#: the stack areas reclaim on backtracking; the heap only grows.
AREA_IS_STACK = {
    Area.HEAP: False,
    Area.GLOBAL: True,
    Area.LOCAL: True,
    Area.CONTROL: True,
    Area.TRAIL: True,
}


def encode_address(area: Area, offset: int) -> int:
    """Pack (area, offset) into one flat logical address."""
    return (area << AREA_SHIFT) | offset


def decode_address(address: int) -> tuple[Area, int]:
    """Unpack a flat logical address into (area, offset)."""
    return AREAS[address >> AREA_SHIFT], address & OFFSET_MASK


class MemoryListener(Protocol):
    """Receives every memory access as (command, flat address)."""

    def access(self, cmd: CacheCmd, address: int) -> None: ...


#: Encoding of cache commands into 2 bits for compact trace recording.
#: Identical to ``CacheCmd.code`` / ``CMD_BY_CODE`` (guarded by a test);
#: kept as dicts for existing consumers.
CMD_CODE = {cmd: cmd.code for cmd in CacheCmd}
CODE_CMD = {cmd.code: cmd for cmd in CacheCmd}


class TraceRecorder:
    """Memory listener that records the access stream compactly.

    Each entry is ``address << 2 | command_code`` in a C ``int64``
    array; :meth:`entries` decodes back to ``(CacheCmd, address)``.
    This is the COLLECT → PMMS hand-off format.  Replay consumers
    should prefer :meth:`decoded` (one bulk decode) or the raw
    :attr:`data` array (packed ints, no decode at all — see
    :meth:`repro.memsys.cache.Cache.access_many_packed`) over the
    per-entry generator.

    The packed array serialises losslessly via :meth:`tobytes` /
    :meth:`frombytes` — that byte string is what run summaries carry
    across process boundaries and what the persistent run cache stores
    on disk.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data = array("q")

    def access(self, cmd: CacheCmd, address: int) -> None:
        self.data.append((address << 2) | cmd.code)

    def __len__(self) -> int:
        return len(self.data)

    def entries(self):
        by_code = CMD_BY_CODE
        for packed in self.data:
            yield by_code[packed & 3], packed >> 2

    def decoded(self) -> list:
        """Decode the whole trace once into ``(CacheCmd, address)`` pairs.

        Replaying one trace through many cache configurations pays the
        unpacking cost once here instead of once per configuration (see
        :func:`repro.tools.pmms.simulate_many`).
        """
        by_code = CMD_BY_CODE
        return [(by_code[packed & 3], packed >> 2) for packed in self.data]

    def clear(self) -> None:
        del self.data[:]

    # -- checkpoint hooks ------------------------------------------------------

    def entry(self, index: int) -> tuple:
        """Decode the single entry at ``index`` to ``(CacheCmd, address)``."""
        packed = self.data[index]
        return CMD_BY_CODE[packed & 3], packed >> 2

    def segment(self, start: int, stop: int):
        """The packed entries in ``[start, stop)`` as an int64 array.

        The seek primitive of the time-travel explorer
        (:mod:`repro.obs.timetravel`): reconstructing machine state at
        microstep N replays ``segment(checkpoint_step, N)`` on top of
        the nearest checkpoint instead of the whole stream.  Slicing an
        ``array('q')`` is a C-level copy, so the per-seek Python cost
        is the replay of the short segment only.
        """
        return self.data[start:stop]

    # -- serialisation ---------------------------------------------------------

    def tobytes(self) -> bytes:
        """The packed entries as native-endian int64 bytes."""
        return self.data.tobytes()

    @classmethod
    def frombytes(cls, raw: bytes) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`tobytes` output."""
        trace = cls()
        trace.data.frombytes(raw)
        return trace

    def __getstate__(self) -> bytes:
        return self.tobytes()

    def __setstate__(self, raw: bytes) -> None:
        self.data = array("q")
        self.data.frombytes(raw)


_READ = CacheCmd.READ
_WRITE = CacheCmd.WRITE
_WRITE_STACK = CacheCmd.WRITE_STACK


class MemorySystem:
    """The five word areas plus access accounting.

    Words are stored as ``(tag, data)`` tuples.  Stack areas support
    push (``write_stack``), truncation on backtracking, and top
    queries.  ``stats`` is the machine's stats collector (may be a
    no-op stub in unit tests); listeners receive raw accesses.

    Area arguments are accepted as :class:`Area` members or raw ints
    (``Area`` is an ``IntEnum``); the machine's inner loops pass ints.
    """

    __slots__ = ("_stats", "_mem_access", "_mem_access_n", "word_limit",
                 "areas", "_words", "listeners", "_notify", "_packed_append",
                 "observer")

    def __init__(self, stats, word_limit: int = 1 << 22):
        self._stats = stats
        self._mem_access = stats.mem_access
        self._mem_access_n = getattr(stats, "mem_access_n", None) \
            or _fallback_access_n(stats.mem_access)
        self.word_limit = word_limit
        self.areas: dict[Area, list] = {area: [] for area in Area}
        #: The same per-area lists as :attr:`areas`, indexed by int
        #: area value.  All mutations are in-place, so both views stay
        #: consistent by construction.
        self._words: list[list] = [self.areas[area] for area in AREAS]
        self.listeners: list[MemoryListener] = []
        self._notify = None
        #: When the sole listener is a :class:`TraceRecorder`, its
        #: ``data.append`` bound method — the machine's fused paths then
        #: append pre-packed ``address << 2 | code`` ints directly, with
        #: no per-access Python frame.  ``None`` otherwise.
        self._packed_append = None
        #: Optional observability hook (``on_settop(area, offset, old_top)``):
        #: receives stack truncations — the PSI's GC-free reclaim events —
        #: when a :class:`repro.obs.session.StackObserver` is attached by
        #: an observed run.  ``None`` (the default) costs one identity
        #: check per ``settop``, nothing per word access.
        self.observer = None

    # -- stats rebinding -------------------------------------------------------

    @property
    def stats(self):
        return self._stats

    @stats.setter
    def stats(self, stats) -> None:
        self._stats = stats
        self._mem_access = stats.mem_access
        self._mem_access_n = getattr(stats, "mem_access_n", None) \
            or _fallback_access_n(stats.mem_access)

    # -- listener management -------------------------------------------------

    def attach(self, listener: MemoryListener) -> None:
        self.listeners.append(listener)
        self._rebuild_notify()

    def detach(self, listener: MemoryListener) -> None:
        self.listeners.remove(listener)
        self._rebuild_notify()

    def _rebuild_notify(self) -> None:
        listeners = self.listeners
        self._packed_append = None
        if not listeners:
            self._notify = None
        elif len(listeners) == 1:
            self._notify = listeners[0].access
            if type(listeners[0]) is TraceRecorder:
                self._packed_append = listeners[0].data.append
        elif len(listeners) == 2:
            first, second = (listener.access for listener in listeners)

            def pair(cmd, address, _first=first, _second=second):
                _first(cmd, address)
                _second(cmd, address)

            self._notify = pair
        else:
            accessors = tuple(listener.access for listener in listeners)

            def fanout(cmd, address, _accessors=accessors):
                for access in _accessors:
                    access(cmd, address)

            self._notify = fanout

    # -- raw accessors (no accounting; loader/debug use) ----------------------

    def peek(self, area: Area, offset: int):
        return self._words[area][offset]

    def poke(self, area: Area, offset: int, word) -> None:
        self._words[area][offset] = word

    def top(self, area: Area) -> int:
        """Current top offset (next free slot) of an area."""
        return len(self._words[area])

    def settop(self, area: Area, offset: int) -> None:
        """Truncate a stack area down to ``offset`` (backtracking reclaim)."""
        words = self._words[area]
        if offset > len(words):
            raise MachineError(f"settop beyond top of {AREAS[area].label}")
        if self.observer is not None:
            self.observer.on_settop(AREAS[area], offset, len(words))
        del words[offset:]

    def grow(self, area: Area, count: int, fill=None) -> int:
        """Reserve ``count`` words (uninitialised) without access billing.

        Returns the base offset.  Used by the loader for code and by
        allocation fast paths whose per-word traffic is billed
        separately (e.g. frame slots that live in the work file).
        """
        words = self._words[area]
        base = len(words)
        if base + count > self.word_limit:
            raise MachineError(
                f"{AREAS[area].label} overflow ({base + count} words)")
        words.extend([fill] * count)
        return base

    # -- accounted accessors ---------------------------------------------------

    def read(self, area: Area, offset: int):
        """Read one word, billing a READ cache command."""
        self._mem_access(_READ, area)
        pa = self._packed_append
        if pa is not None:
            pa(((area << AREA_SHIFT) | offset) << 2)
        else:
            notify = self._notify
            if notify is not None:
                notify(_READ, (area << AREA_SHIFT) | offset)
        return self._words[area][offset]

    def write(self, area: Area, offset: int, word) -> None:
        """Overwrite one word in place, billing a WRITE cache command."""
        self._mem_access(_WRITE, area)
        pa = self._packed_append
        if pa is not None:
            pa((((area << AREA_SHIFT) | offset) << 2) | 1)
        else:
            notify = self._notify
            if notify is not None:
                notify(_WRITE, (area << AREA_SHIFT) | offset)
        self._words[area][offset] = word

    def write_stack(self, area: Area, word) -> int:
        """Push one word on an area top with the specialised Write-stack
        command (no block read-in on miss).  Returns the offset written."""
        words = self._words[area]
        offset = len(words)
        if offset >= self.word_limit:
            raise MachineError(
                f"{AREAS[area].label} overflow ({offset} words)")
        self._mem_access(_WRITE_STACK, area)
        pa = self._packed_append
        if pa is not None:
            pa((((area << AREA_SHIFT) | offset) << 2) | 2)
        else:
            notify = self._notify
            if notify is not None:
                notify(_WRITE_STACK, (area << AREA_SHIFT) | offset)
        words.append(word)
        return offset

    def write_stack_at(self, area: Area, offset: int, word) -> None:
        """Write-stack into an already-reserved slot (frame flush path)."""
        self._mem_access(_WRITE_STACK, area)
        pa = self._packed_append
        if pa is not None:
            pa((((area << AREA_SHIFT) | offset) << 2) | 2)
        else:
            notify = self._notify
            if notify is not None:
                notify(_WRITE_STACK, (area << AREA_SHIFT) | offset)
        self._words[area][offset] = word

    # -- accounted block accessors ---------------------------------------------
    #
    # Equivalent to the corresponding per-word calls repeated in order:
    # billing uses the batched ``mem_access_n`` and listeners see every
    # (command, address) pair in ascending-offset order, so both the
    # stats counters and the trace byte stream match the unrolled loop
    # exactly.

    def read_block(self, area: Area, offset: int, count: int) -> list:
        """Read ``count`` consecutive words, billing ``count`` READs."""
        self._mem_access_n(_READ, area, count)
        pa = self._packed_append
        if pa is not None:
            packed = ((area << AREA_SHIFT) | offset) << 2
            for i in range(count):
                pa(packed + 4 * i)
        else:
            notify = self._notify
            if notify is not None:
                base = (area << AREA_SHIFT) | offset
                for i in range(count):
                    notify(_READ, base + i)
        return self._words[area][offset:offset + count]

    def write_stack_block(self, area: Area, words) -> int:
        """Push a word sequence, billing one Write-stack per word.

        Returns the base offset of the first word.
        """
        stack = self._words[area]
        offset = len(stack)
        count = len(words)
        if offset + count > self.word_limit:
            raise MachineError(
                f"{AREAS[area].label} overflow ({offset + count} words)")
        self._mem_access_n(_WRITE_STACK, area, count)
        pa = self._packed_append
        if pa is not None:
            packed = (((area << AREA_SHIFT) | offset) << 2) | 2
            for i in range(count):
                pa(packed + 4 * i)
        else:
            notify = self._notify
            if notify is not None:
                base = (area << AREA_SHIFT) | offset
                for i in range(count):
                    notify(_WRITE_STACK, base + i)
        stack.extend(words)
        return offset

    def flush_stack_block(self, area: Area, offset: int, count: int) -> None:
        """Bill ``count`` Write-stacks for already-materialised words.

        The frame-flush path: the words are in place (buffer-backed
        slots are poked directly), only the stack traffic of writing
        them through needs accounting.  Equivalent to ``count``
        :meth:`write_stack_at` calls rewriting each word to itself.
        """
        self._mem_access_n(_WRITE_STACK, area, count)
        pa = self._packed_append
        if pa is not None:
            packed = (((area << AREA_SHIFT) | offset) << 2) | 2
            for i in range(count):
                pa(packed + 4 * i)
        else:
            notify = self._notify
            if notify is not None:
                base = (area << AREA_SHIFT) | offset
                for i in range(count):
                    notify(_WRITE_STACK, base + i)

    def rewrite_stack_block(self, area: Area, offset: int, words) -> None:
        """Write-stack a word sequence into already-reserved slots."""
        count = len(words)
        self._mem_access_n(_WRITE_STACK, area, count)
        pa = self._packed_append
        if pa is not None:
            packed = (((area << AREA_SHIFT) | offset) << 2) | 2
            for i in range(count):
                pa(packed + 4 * i)
        else:
            notify = self._notify
            if notify is not None:
                base = (area << AREA_SHIFT) | offset
                for i in range(count):
                    notify(_WRITE_STACK, base + i)
        self._words[area][offset:offset + count] = words

    # -- fused-path accessors ---------------------------------------------------
    #
    # Used by the machine's superinstruction dispatch: the *billing* of
    # these accesses was already applied in one ``stats.emit_fused``
    # call, so only the listener notification (and, for pushes, the
    # actual word movement with its overflow check) remains.  The
    # notification order is exactly that of the unfused accessors.

    def touch_read(self, area: Area, offset: int) -> None:
        """Notify one READ whose billing was fused."""
        pa = self._packed_append
        if pa is not None:
            pa(((area << AREA_SHIFT) | offset) << 2)
            return
        notify = self._notify
        if notify is not None:
            notify(_READ, (area << AREA_SHIFT) | offset)

    def touch_read_run(self, area: Area, offset: int, count: int) -> None:
        """Notify ``count`` consecutive READs whose billing was fused."""
        pa = self._packed_append
        base = (area << AREA_SHIFT) | offset
        if pa is not None:
            packed = base << 2
            for i in range(count):
                pa(packed + 4 * i)
            return
        notify = self._notify
        if notify is not None:
            for i in range(count):
                notify(_READ, base + i)

    def push_fused(self, area: Area, word) -> int:
        """:meth:`write_stack` minus the billing (fused by the caller)."""
        words = self._words[area]
        offset = len(words)
        if offset >= self.word_limit:
            raise MachineError(
                f"{AREAS[area].label} overflow ({offset} words)")
        pa = self._packed_append
        if pa is not None:
            pa((((area << AREA_SHIFT) | offset) << 2) | 2)
        else:
            notify = self._notify
            if notify is not None:
                notify(_WRITE_STACK, (area << AREA_SHIFT) | offset)
        words.append(word)
        return offset

    def push_block_fused(self, area: Area, block) -> int:
        """:meth:`write_stack_block` minus the billing (fused by caller)."""
        stack = self._words[area]
        offset = len(stack)
        count = len(block)
        if offset + count > self.word_limit:
            raise MachineError(
                f"{AREAS[area].label} overflow ({offset + count} words)")
        pa = self._packed_append
        base = (area << AREA_SHIFT) | offset
        if pa is not None:
            packed = (base << 2) | 2
            for i in range(count):
                pa(packed + 4 * i)
        else:
            notify = self._notify
            if notify is not None:
                for i in range(count):
                    notify(_WRITE_STACK, base + i)
        stack.extend(block)
        return offset

    # -- address-based accessors (for dereferencing through REF words) ---------

    def read_addr(self, address: int):
        return self.read(address >> AREA_SHIFT, address & OFFSET_MASK)

    def write_addr(self, address: int, word) -> None:
        self.write(address >> AREA_SHIFT, address & OFFSET_MASK, word)


def _fallback_access_n(mem_access):
    """Batched billing for stats stubs that lack ``mem_access_n``."""

    def access_n(cmd, area, times):
        for _ in range(times):
            mem_access(cmd, area)

    return access_n
