"""Memory areas and the memory interface of the PSI model.

The PSI allocates the heap and the four execution stacks to independent
logical address spaces (the paper calls each one an *area*).  We encode
a full logical address as ``area_index << 24 | offset`` so traces carry
flat addresses the cache simulator can consume while per-area
statistics (Tables 4 and 5) remain recoverable.

All term data of the running machine physically lives in the per-area
word lists held here; every access goes through :class:`MemorySystem`,
which

* performs the actual word read/write,
* bills one microinstruction carrying the cache command to the stats
  collector (this is what makes "about one in every five
  microinstruction steps is a request for memory access" a measurable
  outcome rather than an assumption), and
* forwards ``(command, address)`` to any attached listeners — the
  online cache model and/or a trace recorder for the PMMS simulator.
"""

from __future__ import annotations

from array import array
from enum import IntEnum
from typing import Protocol

from repro.core.micro import CacheCmd
from repro.errors import MachineError

AREA_SHIFT = 24
OFFSET_MASK = (1 << AREA_SHIFT) - 1


class Area(IntEnum):
    """The five independent logical address spaces of the PSI."""

    HEAP = 0
    GLOBAL = 1
    LOCAL = 2
    CONTROL = 3
    TRAIL = 4

    @property
    def label(self) -> str:
        return _AREA_LABELS[self]


_AREA_LABELS = {
    Area.HEAP: "heap",
    Area.GLOBAL: "global stack",
    Area.LOCAL: "local stack",
    Area.CONTROL: "control stack",
    Area.TRAIL: "trail stack",
}


def encode_address(area: Area, offset: int) -> int:
    """Pack (area, offset) into one flat logical address."""
    return (area << AREA_SHIFT) | offset


def decode_address(address: int) -> tuple[Area, int]:
    """Unpack a flat logical address into (area, offset)."""
    return Area(address >> AREA_SHIFT), address & OFFSET_MASK


class MemoryListener(Protocol):
    """Receives every memory access as (command, flat address)."""

    def access(self, cmd: CacheCmd, address: int) -> None: ...


#: Encoding of cache commands into 2 bits for compact trace recording.
CMD_CODE = {CacheCmd.READ: 0, CacheCmd.WRITE: 1, CacheCmd.WRITE_STACK: 2}
CODE_CMD = {code: cmd for cmd, code in CMD_CODE.items()}


class TraceRecorder:
    """Memory listener that records the access stream compactly.

    Each entry is ``address << 2 | command_code`` in a C ``int64``
    array; :meth:`entries` decodes back to ``(CacheCmd, address)``.
    This is the COLLECT → PMMS hand-off format.

    The packed array serialises losslessly via :meth:`tobytes` /
    :meth:`frombytes` — that byte string is what run summaries carry
    across process boundaries and what the persistent run cache stores
    on disk.
    """

    def __init__(self) -> None:
        self.data = array("q")

    def access(self, cmd: CacheCmd, address: int) -> None:
        self.data.append((address << 2) | CMD_CODE[cmd])

    def __len__(self) -> int:
        return len(self.data)

    def entries(self):
        for packed in self.data:
            yield CODE_CMD[packed & 3], packed >> 2

    def decoded(self) -> list:
        """Decode the whole trace once into ``(CacheCmd, address)`` pairs.

        Replaying one trace through many cache configurations pays the
        unpacking cost once here instead of once per configuration (see
        :func:`repro.tools.pmms.simulate_many`).
        """
        code_cmd = CODE_CMD
        return [(code_cmd[packed & 3], packed >> 2) for packed in self.data]

    def clear(self) -> None:
        del self.data[:]

    # -- serialisation ---------------------------------------------------------

    def tobytes(self) -> bytes:
        """The packed entries as native-endian int64 bytes."""
        return self.data.tobytes()

    @classmethod
    def frombytes(cls, raw: bytes) -> "TraceRecorder":
        """Rebuild a recorder from :meth:`tobytes` output."""
        trace = cls()
        trace.data.frombytes(raw)
        return trace

    def __getstate__(self) -> bytes:
        return self.tobytes()

    def __setstate__(self, raw: bytes) -> None:
        self.data = array("q")
        self.data.frombytes(raw)


class MemorySystem:
    """The five word areas plus access accounting.

    Words are stored as ``(tag, data)`` tuples.  Stack areas support
    push (``write_stack``), truncation on backtracking, and top
    queries.  ``stats`` is the machine's stats collector (may be a
    no-op stub in unit tests); listeners receive raw accesses.
    """

    def __init__(self, stats, word_limit: int = 1 << 22):
        self.stats = stats
        self.word_limit = word_limit
        self.areas: dict[Area, list] = {area: [] for area in Area}
        self.listeners: list[MemoryListener] = []
        #: Optional observability hook (``on_settop(area, offset, old_top)``):
        #: receives stack truncations — the PSI's GC-free reclaim events —
        #: when a :class:`repro.obs.session.StackObserver` is attached by
        #: an observed run.  ``None`` (the default) costs one identity
        #: check per ``settop``, nothing per word access.
        self.observer = None

    # -- listener management -------------------------------------------------

    def attach(self, listener: MemoryListener) -> None:
        self.listeners.append(listener)

    def detach(self, listener: MemoryListener) -> None:
        self.listeners.remove(listener)

    # -- raw accessors (no accounting; loader/debug use) ----------------------

    def peek(self, area: Area, offset: int):
        return self.areas[area][offset]

    def poke(self, area: Area, offset: int, word) -> None:
        self.areas[area][offset] = word

    def top(self, area: Area) -> int:
        """Current top offset (next free slot) of an area."""
        return len(self.areas[area])

    def settop(self, area: Area, offset: int) -> None:
        """Truncate a stack area down to ``offset`` (backtracking reclaim)."""
        words = self.areas[area]
        if offset > len(words):
            raise MachineError(f"settop beyond top of {area.label}")
        if self.observer is not None:
            self.observer.on_settop(area, offset, len(words))
        del words[offset:]

    def grow(self, area: Area, count: int, fill=None) -> int:
        """Reserve ``count`` words (uninitialised) without access billing.

        Returns the base offset.  Used by the loader for code and by
        allocation fast paths whose per-word traffic is billed
        separately (e.g. frame slots that live in the work file).
        """
        words = self.areas[area]
        base = len(words)
        if base + count > self.word_limit:
            raise MachineError(f"{area.label} overflow ({base + count} words)")
        words.extend([fill] * count)
        return base

    # -- accounted accessors ---------------------------------------------------

    def read(self, area: Area, offset: int):
        """Read one word, billing a READ cache command."""
        self._touch(CacheCmd.READ, area, offset)
        return self.areas[area][offset]

    def write(self, area: Area, offset: int, word) -> None:
        """Overwrite one word in place, billing a WRITE cache command."""
        self._touch(CacheCmd.WRITE, area, offset)
        self.areas[area][offset] = word

    def write_stack(self, area: Area, word) -> int:
        """Push one word on an area top with the specialised Write-stack
        command (no block read-in on miss).  Returns the offset written."""
        words = self.areas[area]
        offset = len(words)
        if offset >= self.word_limit:
            raise MachineError(f"{area.label} overflow ({offset} words)")
        self._touch(CacheCmd.WRITE_STACK, area, offset)
        words.append(word)
        return offset

    def write_stack_at(self, area: Area, offset: int, word) -> None:
        """Write-stack into an already-reserved slot (frame flush path)."""
        self._touch(CacheCmd.WRITE_STACK, area, offset)
        self.areas[area][offset] = word

    # -- address-based accessors (for dereferencing through REF words) ---------

    def read_addr(self, address: int):
        area, offset = decode_address(address)
        return self.read(area, offset)

    def write_addr(self, address: int, word) -> None:
        area, offset = decode_address(address)
        self.write(area, offset, word)

    # -- internals ---------------------------------------------------------------

    def _touch(self, cmd: CacheCmd, area: Area, offset: int) -> None:
        self.stats.mem_access(cmd, area)
        if self.listeners:
            address = (area << AREA_SHIFT) | offset
            for listener in self.listeners:
                listener.access(cmd, address)
