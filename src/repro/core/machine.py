"""The PSI machine: a microprogram-level model of the KL0 interpreter.

This is the paper's subject.  The execution method follows the DEC-10
Prolog interpreter lineage the PSI used (§2.1): four stacks (local,
global, control, trail) plus a heap holding instruction code; 10-word
control frames for environments and choice points; tail recursion
optimisation via a pair of 64-word frame buffers in the work file; no
clause indexing (the paper credits the *DEC compiler* with indexing,
one reason DEC wins on deterministic list code).

Every primitive action emits its declared microroutine
(:mod:`repro.core.micro`) into the stats collector under the active
interpreter module, and every word of term data physically lives in the
memory areas, so microstep counts, module ratios, cache commands,
per-area traffic, work-file modes and branch operations are all
emergent, measurable properties of real program executions.

Deliberate deviations from the historical machine (documented in
DESIGN.md): structure copying instead of DEC-10 structure sharing, and
compile-time globalisation of unsafe variables instead of runtime
globalisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import micro
from repro.core.builtins import BUILTIN_TABLE, Builtin
from repro.core.code import (
    BuiltinGoal,
    CallGoal,
    Clause,
    CodeSerializer,
    CConst,
    CList,
    CStruct,
    CTerm,
    CutGoal,
    CVar,
    CVoid,
    Goal,
    Procedure,
    Program,
)
from repro.core.memory import AREA_SHIFT, Area, MemorySystem, OFFSET_MASK, encode_address
from repro.core.micro import Module
from repro.core.stats import StatsCollector
from repro.core.words import SymbolTable, Tag
from repro.core.workfile import WorkFile
from repro.errors import ExistenceError, MachineError, ResourceLimitExceeded
from repro.prolog.reader import parse_program, parse_term
from repro.prolog.terms import Atom, Struct, Term, Var, term_variables

_REF = Tag.REF
_UNDEF = Tag.UNDEF
_HEAP = int(Area.HEAP)
_GLOBAL = int(Area.GLOBAL)
_LOCAL = int(Area.LOCAL)
_CONTROL = int(Area.CONTROL)
_TRAIL = int(Area.TRAIL)
_NO_CELLS: list[int] = []

# Hot-path aliases: one global load instead of a module + attribute
# chain per emission site.  Same objects — billing is unchanged.
_M_CONTROL = Module.CONTROL
_M_UNIFY = Module.UNIFY
_M_TRAIL = Module.TRAIL
_M_CUT = Module.CUT
_M_BUILT = Module.BUILT
_M_GET_ARG = Module.GET_ARG
_R_GOAL_FETCH = micro.R_GOAL_FETCH
_R_CALL_SETUP = micro.R_CALL_SETUP
_R_BUILTIN_STEP = micro.R_BUILTIN_STEP
_R_PROC_LOOKUP = micro.R_PROC_LOOKUP
_R_CP_PUSH = micro.R_CP_PUSH
_R_WF_GENERAL = micro.R_WF_GENERAL
_R_CLAUSE_TRY = micro.R_CLAUSE_TRY
_R_FRAME_ALLOC = micro.R_FRAME_ALLOC
_R_FRAME_INIT_SLOT = micro.R_FRAME_INIT_SLOT
_R_BUILD_VAR = micro.R_BUILD_VAR
_R_BUILD_CELL = micro.R_BUILD_CELL
_R_TRAIL_PUSH = micro.R_TRAIL_PUSH
_R_TRAIL_BUF = micro.R_TRAIL_BUF
_R_TRAIL_SKIP = micro.R_TRAIL_SKIP
_R_UNTRAIL_ENTRY = micro.R_UNTRAIL_ENTRY
_R_ENV_PUSH = micro.R_ENV_PUSH
_R_ENV_POP = micro.R_ENV_POP
_R_PROCEED = micro.R_PROCEED
_R_TRO = micro.R_TRO
_R_BACKTRACK = micro.R_BACKTRACK
_R_FAIL_DISPATCH = micro.R_FAIL_DISPATCH
_R_CP_RESTORE = micro.R_CP_RESTORE
_R_CUT = micro.R_CUT
_R_CUT_POP_CP = micro.R_CUT_POP_CP
_R_DEREF_STEP = micro.R_DEREF_STEP
_R_BIND = micro.R_BIND
_R_UNIFY_DISPATCH = micro.R_UNIFY_DISPATCH
_R_UNIFY_CONST = micro.R_UNIFY_CONST
_R_UNIFY_LIST = micro.R_UNIFY_LIST
_R_UNIFY_STRUCT = micro.R_UNIFY_STRUCT
_R_UNIFY_RETURN = micro.R_UNIFY_RETURN
_R_DECODE = micro.R_DECODE
_R_DECODE_PACKED = micro.R_DECODE_PACKED
_R_DECODE_OPCODE = micro.R_DECODE_OPCODE
_R_GET_ARG = micro.R_GET_ARG
_R_GET_ARG_PACKED = micro.R_GET_ARG_PACKED
_R_GET_ARG_VAR_MEM = micro.R_GET_ARG_VAR_MEM
_R_GET_ARG_VAR_BUF = micro.R_GET_ARG_VAR_BUF
_R_GET_ARG_VAR_BUF_BASE = micro.R_GET_ARG_VAR_BUF_BASE
_R_PUT_ARG = micro.R_PUT_ARG
_R_BUILTIN_ENTRY = micro.R_BUILTIN_ENTRY
_R_BUILTIN_EXIT = micro.R_BUILTIN_EXIT


class Frame:
    """A clause activation's local-variable frame.

    Global-variable cells are allocated lazily on first occurrence
    (``gcells`` holds -1 until then), so a failing head match does not
    litter the global stack.
    """

    __slots__ = ("base", "nlocals", "gcells", "buffer_id")

    def __init__(self, base: int, nlocals: int, nglobals: int):
        self.base = base
        self.nlocals = nlocals
        self.gcells = [-1] * nglobals if nglobals else _NO_CELLS
        self.buffer_id: int | None = None

    @property
    def buffered(self) -> bool:
        return self.buffer_id is not None


class Env:
    """A clause activation record.

    The resume position inside the *parent's* body is fixed at creation
    (``parent_index``), exactly like the saved CP register in a WAM
    environment frame; the machine's current position is the register
    pair ``(cur_env, cur_index)``.  This keeps activations immutable so
    choice points capture continuations by reference safely.
    """

    __slots__ = ("goals", "frame", "parent", "parent_index", "cut_barrier",
                 "control_base", "pred")

    def __init__(self, goals: tuple[Goal, ...], frame: Frame,
                 parent: "Env | None", parent_index: int, cut_barrier: int,
                 pred: str = "(startup)"):
        self.goals = goals
        self.frame = frame
        self.parent = parent
        self.parent_index = parent_index
        self.cut_barrier = cut_barrier
        self.control_base = -1  # control-stack frame position once saved
        self.pred = pred        # predicate label (observability context)


class ChoicePoint:
    """Backtracking state: a 10-word control frame plus shadow state."""

    __slots__ = ("proc", "next_clause", "args", "parent_env", "parent_index",
                 "trail_top", "global_top", "local_top", "control_base")

    def __init__(self, proc: Procedure, next_clause: int, args: tuple,
                 parent_env: Env | None, parent_index: int, trail_top: int,
                 global_top: int, local_top: int, control_base: int):
        self.proc = proc
        self.next_clause = next_clause
        self.args = args
        self.parent_env = parent_env
        self.parent_index = parent_index
        self.trail_top = trail_top
        self.global_top = global_top
        self.local_top = local_top
        self.control_base = control_base

    @property
    def control_top(self) -> int:
        return self.control_base + CONTROL_FRAME_WORDS


#: "The control stack contains 10-word control frames" (§2.1).
CONTROL_FRAME_WORDS = 10
#: Words re-read from a control frame when resuming / restoring.
CONTROL_RESUME_READS = 4
#: The placeholder image of one control frame, pushed as a block.
_CONTROL_FRAME_IMAGE = tuple((Tag.INT, i) for i in range(CONTROL_FRAME_WORDS))


@dataclass
class MachineConfig:
    """Tunable limits and model parameters of a machine instance."""

    max_calls: int = 50_000_000
    word_limit: int = 1 << 22
    #: extra interpreter bookkeeping steps charged per user-predicate call
    #: (dispatch tables, event checks); a calibration lever for LIPS.
    call_overhead_steps: int = 2


class PSIMachine:
    """A complete PSI: program store, interpreter state and accounting."""

    def __init__(self, config: MachineConfig | None = None,
                 stats: StatsCollector | None = None):
        self.config = config or MachineConfig()
        self.stats = stats if stats is not None else StatsCollector()
        self.symbols = SymbolTable()
        self.mem = MemorySystem(self.stats, self.config.word_limit)
        self.wf = WorkFile(self.stats)
        self.program = Program(self.symbols, BUILTIN_TABLE)
        self._serializer = CodeSerializer(self.mem)
        # Interpreter state
        self.cur_env: Env | None = None
        self.cur_index = 0
        self.cp_stack: list[ChoicePoint] = []
        self.trail: list[int] = []
        self.call_count = 0
        # Builtin support state
        self.output: list[str] = []
        self.counters: dict[str, int] = {}
        self.flags: dict[str, object] = {}
        self._process_save_base = -1
        self._query_counter = 0

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------

    def consult(self, text: str) -> None:
        """Parse and load a program (source text)."""
        self.program.add_program(parse_program(text))
        self._load_pending()

    def add_clause_term(self, term: Term) -> None:
        self.program.add_clause(term)
        self._load_pending()

    def _load_pending(self) -> None:
        for proc in self.program.procedures.values():
            if any(clause.heap_base < 0 for clause in proc.clauses) or \
                    proc.descriptor_base < 0:
                self._serializer.load_procedure(proc)

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------

    def solve(self, goal: str | Term) -> "Solver":
        """Compile ``goal`` as a query and return a resumable solver."""
        term = parse_term(goal) if isinstance(goal, str) else goal
        variables = term_variables(term)
        named = [v for v in variables if not v.is_anonymous]
        self._query_counter += 1
        name = f"$query_{self._query_counter}"
        head: Term = Struct(name, tuple(named)) if named else Atom(name)
        self.program.add_clause(Struct(":-", (head, term)))
        self._load_pending()
        return Solver(self, name, [v.name for v in named])

    def run(self, goal: str | Term) -> "Solution | None":
        """Convenience: first solution of ``goal`` (or None)."""
        return self.solve(goal).next()

    # ------------------------------------------------------------------
    # Main interpreter loop
    # ------------------------------------------------------------------

    def _start(self, functor: str, arity: int, args: tuple) -> bool:
        """Begin executing ``functor/arity`` with pre-built argument words."""
        proc = self.program.procedure(functor, arity)
        if proc is None:
            raise ExistenceError(functor, arity)
        self.cur_env = None
        self.cp_stack.clear()
        self.trail.clear()
        self.wf.reset()
        if not self._call_procedure(proc, args, parent_env=None, parent_index=0):
            return self._backtrack_and_run()
        return self._run()

    def _run(self) -> bool:
        """Drive execution until success (continuation empty) or failure."""
        stats = self.stats
        emit = stats.emit
        mem_read = self.mem.read
        while True:
            env = self.cur_env
            if env is None:
                return True
            if self.cur_index >= len(env.goals):
                self._proceed(env)
                continue
            goal = env.goals[self.cur_index]
            self.cur_index += 1
            stats.module = _M_CONTROL
            emit(_R_GOAL_FETCH)
            mem_read(_HEAP, goal.addr)
            kind = goal.__class__
            if kind is CallGoal:
                if not self._dispatch_call(goal, env):
                    if not self._backtrack_and_run_step():
                        return False
            elif kind is BuiltinGoal:
                if not self._dispatch_builtin(goal, env):
                    if not self._backtrack_and_run_step():
                        return False
            elif kind is CutGoal:
                self._cut(env)
            else:  # pragma: no cover - compiler emits only the above
                raise MachineError(f"unknown goal kind {goal!r}")

    def _backtrack_and_run_step(self) -> bool:
        """Backtrack once (retrying until an activation sticks)."""
        return self._backtrack()

    def _backtrack_and_run(self) -> bool:
        if not self._backtrack():
            return False
        return self._run()

    # -- user predicate calls ------------------------------------------------

    def _dispatch_call(self, goal: CallGoal, env: Env) -> bool:
        stats = self.stats
        stats.emit(_R_CALL_SETUP)
        stats.emit(_R_BUILTIN_STEP, self.config.call_overhead_steps // 2 or 1)
        stats.inferences += 1
        proc = goal.proc
        if proc is None:
            proc = self.program.procedure(goal.functor, goal.arity)
            if proc is None:
                raise ExistenceError(goal.functor, goal.arity)
            goal.proc = proc
        stats.emit(_R_PROC_LOOKUP)
        self.mem.read(_HEAP, proc.descriptor_base)
        # Evaluate arguments into registers (call machinery: control).
        frame = env.frame
        put_arg = self._put_arg
        args = tuple([put_arg(node, frame, _M_CONTROL)
                      for node in goal.args])
        stats.module = _M_CONTROL
        if goal.is_last:
            parent = env.parent
            parent_index = env.parent_index
            args = self._reclaim_for_tro(env, args)
        else:
            parent = env
            parent_index = self.cur_index
            self._save_env(env)
        return self._call_procedure(proc, args, parent, parent_index)

    def _call_procedure(self, proc: Procedure, args: tuple,
                        parent_env: Env | None, parent_index: int) -> bool:
        if not proc.clauses:
            return False
        if len(proc.clauses) > 1:
            self._push_choice_point(proc, args, parent_env, parent_index)
        barrier = len(self.cp_stack) - (1 if len(proc.clauses) > 1 else 0)
        # Publish the predicate context (observability: profiler/tracer
        # attribution; a plain attribute store when obs is disabled).
        self.stats.predicate = proc.label
        return self._activate(proc.clauses[0], args, parent_env, parent_index,
                              barrier)

    def _push_choice_point(self, proc: Procedure, args: tuple,
                           parent_env: Env | None, parent_index: int) -> None:
        stats = self.stats
        stats.emit(_R_CP_PUSH)
        stats.emit(_R_WF_GENERAL)
        mem = self.mem
        control_base = mem.top(_CONTROL)
        cp = ChoicePoint(
            proc, 1, args, parent_env, parent_index,
            trail_top=len(self.trail),
            global_top=mem.top(_GLOBAL),
            local_top=mem.top(_LOCAL),
            control_base=control_base,
        )
        mem.write_stack_block(_CONTROL, _CONTROL_FRAME_IMAGE)
        self.cp_stack.append(cp)

    def _activate(self, clause: Clause, args: tuple, parent_env: Env | None,
                  parent_index: int, cut_barrier: int) -> bool:
        """Try one clause: allocate its frame, unify the head.

        On head failure returns False with partial bindings left for
        the trail/choice-point machinery to undo.
        """
        stats = self.stats
        stats.module = _M_CONTROL
        stats.emit(_R_CLAUSE_TRY)
        self.call_count += 1
        if self.call_count > self.config.max_calls:
            raise ResourceLimitExceeded(f"activation limit exceeded ({self.call_count})")
        self.mem.read(_HEAP, clause.heap_base)
        frame = self._allocate_frame(clause)
        env = Env(clause.body, frame, parent_env, parent_index, cut_barrier,
                  stats.predicate)
        stats.module = _M_UNIFY
        match = self._match
        for node, arg in zip(clause.head_args, args):
            if not match(node, arg, frame):
                return False
        self.cur_env = env
        self.cur_index = 0
        return True

    def _allocate_frame(self, clause: Clause) -> Frame:
        stats = self.stats
        mem = self.mem
        nlocals = clause.nlocals
        base = mem.top(_LOCAL)
        frame = Frame(base, nlocals, clause.nglobals)
        if nlocals:
            stats.emit(_R_FRAME_ALLOC)
            buffer_id = self.wf.acquire(frame)
            frame.buffer_id = buffer_id
            lo = _LOCAL << AREA_SHIFT
            if buffer_id is not None:
                # Slots live in the WF buffer: init is register traffic only.
                off = mem.grow(_LOCAL, nlocals)
                words = mem.areas[Area.LOCAL]
                for off in range(off, off + nlocals):
                    words[off] = (_UNDEF, lo | off)
                stats.emit(_R_FRAME_INIT_SLOT, nlocals)
            else:
                mem.write_stack_block(
                    _LOCAL, [(_UNDEF, lo | off)
                             for off in range(base, base + nlocals)])
        return frame

    def _global_cell(self, frame: Frame, slot: int) -> int:
        """Address of a clause global variable's cell, allocating lazily.

        If a choice point exists, the allocation is recorded on the
        trail so backtracking (which truncates the global stack, and
        may hand the same offset to another frame) resets the cache.
        """
        cell = frame.gcells[slot]
        if cell < 0:
            mem = self.mem
            off = mem.top(_GLOBAL)
            cell = (_GLOBAL << AREA_SHIFT) | off
            mem.write_stack(_GLOBAL, (_UNDEF, cell))
            self.stats.emit(_R_BUILD_VAR)
            frame.gcells[slot] = cell
            if self.cp_stack:
                self.stats.emit_in(_M_TRAIL, _R_TRAIL_PUSH)
                mem.write_stack(_TRAIL, (Tag.INT, slot))
                self.trail.append((frame, slot))
                if len(self.trail) % 8 == 0:
                    self.stats.emit_in(_M_TRAIL, _R_TRAIL_BUF)
        return cell

    def _save_env(self, env: Env) -> None:
        """Persist ``env`` before a non-last call: flush the frame to the
        local stack and write a 10-word environment frame if new."""
        stats = self.stats
        stats.emit(_R_ENV_PUSH)
        frame = env.frame
        mem = self.mem
        if frame.buffered:
            mem.flush_stack_block(_LOCAL, frame.base, frame.nlocals)
            self.wf.release(frame)
        if env.control_base < 0:
            env.control_base = mem.top(_CONTROL)
            mem.write_stack_block(_CONTROL, _CONTROL_FRAME_IMAGE)

    def _reclaim_for_tro(self, env: Env, args: tuple) -> tuple:
        """Last-call optimisation: discard the env, reclaim its stacks.

        Argument registers that still reference unbound variables in the
        dying frame are *globalised* (fresh global cells), the DEC-10
        runtime method for unsafe variables.  If a choice point protects
        the frame it cannot be reclaimed; it is flushed to the local
        stack instead (it may be read again after backtracking).
        """
        stats = self.stats
        stats.emit(_R_TRO)
        frame = env.frame
        mem = self.mem
        protect = self.cp_stack[-1].local_top if self.cp_stack else 0
        reclaimable = (frame.base >= protect
                       and frame.base <= mem.top(_LOCAL))
        if reclaimable:
            if frame.nlocals:
                args = self._globalize_unsafe(frame, args)
            self.wf.release(frame)
            mem.settop(_LOCAL, frame.base)
        else:
            if frame.buffered:
                mem.flush_stack_block(_LOCAL, frame.base, frame.nlocals)
            self.wf.release(frame)
        if env.control_base >= 0:
            cprotect = self.cp_stack[-1].control_top if self.cp_stack else 0
            if env.control_base >= cprotect:
                mem.settop(_CONTROL, env.control_base)
        return args

    def _globalize_unsafe(self, frame: Frame, args: tuple) -> tuple:
        """Move unbound locals of a dying frame into fresh global cells."""
        stats = self.stats
        lo = (_LOCAL << AREA_SHIFT) | frame.base
        hi = lo + frame.nlocals
        moved: dict[int, tuple] | None = None
        new_args = None
        for i, word in enumerate(args):
            if word[0] != _REF:
                continue
            target = self.deref(word)
            if target[0] != _UNDEF or not lo <= target[1] < hi:
                continue
            if moved is None:
                moved = {}
                new_args = list(args)
            cell = moved.get(target[1])
            if cell is None:
                off = self.mem.top(Area.GLOBAL)
                cell = (_REF, encode_address(Area.GLOBAL, off))
                self.mem.write_stack(Area.GLOBAL,
                                     (_UNDEF, encode_address(Area.GLOBAL, off)))
                stats.emit(_R_BUILD_VAR)
                # Any aliases chase the local cell into the new global.
                self._write_cell(target[1], cell)
                moved[target[1]] = cell
            new_args[i] = cell
        if new_args is not None:
            return tuple(new_args)
        return args

    def _proceed(self, env: Env) -> None:
        """Clause body complete: return to the parent continuation."""
        stats = self.stats
        stats.module = _M_CONTROL
        parent = env.parent
        if parent is None:
            stats.emit(_R_PROCEED)
            self.cur_env = None
            return
        stats.emit(_R_ENV_POP)
        mem = self.mem
        if parent.control_base >= 0:
            mem.read_block(_CONTROL, parent.control_base, CONTROL_RESUME_READS)
        frame = env.frame
        self.wf.release(frame)
        protect = self.cp_stack[-1].local_top if self.cp_stack else 0
        if frame.base >= protect and frame.base <= mem.top(_LOCAL):
            mem.settop(_LOCAL, frame.base)
        if env.control_base >= 0:
            cprotect = self.cp_stack[-1].control_top if self.cp_stack else 0
            if env.control_base >= cprotect:
                mem.settop(_CONTROL, env.control_base)
        self.cur_env = parent
        self.cur_index = env.parent_index
        stats.predicate = parent.pred

    # -- backtracking ---------------------------------------------------------

    def _backtrack(self) -> bool:
        """Restore to the latest choice point and retry; loops until an
        activation succeeds or the choice point stack is exhausted."""
        stats = self.stats
        mem = self.mem
        while self.cp_stack:
            stats.module = _M_CONTROL
            stats.emit(_R_BACKTRACK)
            stats.emit(_R_FAIL_DISPATCH)
            cp = self.cp_stack[-1]
            self._untrail_to(cp.trail_top)
            stats.module = _M_CONTROL
            mem.settop(_GLOBAL, cp.global_top)
            mem.settop(_LOCAL, cp.local_top)
            mem.settop(_TRAIL, cp.trail_top)
            self.wf.reset()
            stats.emit(_R_CP_RESTORE)
            mem.read_block(_CONTROL, cp.control_base, CONTROL_RESUME_READS)
            clause = cp.proc.clauses[cp.next_clause]
            stats.predicate = cp.proc.label
            cp.next_clause += 1
            if cp.next_clause >= len(cp.proc.clauses):
                self.cp_stack.pop()
                mem.settop(_CONTROL, cp.control_base)
                barrier = len(self.cp_stack)
            else:
                mem.settop(_CONTROL, cp.control_top)
                barrier = len(self.cp_stack) - 1
            if self._activate(clause, cp.args, cp.parent_env, cp.parent_index,
                              barrier):
                return True
        return False

    def _untrail_to(self, mark: int) -> None:
        stats = self.stats
        stats.module = _M_TRAIL
        trail = self.trail
        mem_read = self.mem.read
        emit = stats.emit
        while len(trail) > mark:
            entry = trail.pop()
            emit(_R_UNTRAIL_ENTRY)
            mem_read(_TRAIL, len(trail))
            if type(entry) is int:
                self._write_cell(entry, (_UNDEF, entry))
            else:
                # Lazy global-cell allocation record: reset the cache.
                frame, slot = entry
                frame.gcells[slot] = -1

    def _cut(self, env: Env) -> None:
        stats = self.stats
        stats.module = _M_CUT
        stats.emit(_R_CUT)
        barrier = env.cut_barrier
        if len(self.cp_stack) <= barrier:
            return
        # Only choice points are discarded: environment frames of live
        # activations may sit above a popped choice point's control
        # frame, so the control stack is reclaimed at proceed/backtrack
        # time, never here.
        lowest_mark = len(self.trail)
        while len(self.cp_stack) > barrier:
            cp = self.cp_stack.pop()
            lowest_mark = cp.trail_top
            stats.emit(_R_CUT_POP_CP)
        self._tidy_trail(lowest_mark)

    def _tidy_trail(self, mark: int) -> None:
        """Cut's trail tidying (as in DEC-10 Prolog).

        Entries above the discarded choice points' trail mark that
        reference cells *younger* than the surviving choice point are
        dead: a future backtrack would reclaim those cells wholesale,
        and untrailing them would write into truncated stack space.
        Bindings of older cells (and lazy global-cell allocation
        records) must survive the cut.
        """
        stats = self.stats
        trail = self.trail
        if len(trail) <= mark:
            return
        survivor = self.cp_stack[-1] if self.cp_stack else None
        kept = []
        for entry in trail[mark:]:
            stats.emit(_R_CUT_POP_CP)  # tidy scan step
            if survivor is None:
                continue
            if type(entry) is int:
                area = entry >> AREA_SHIFT
                off = entry & OFFSET_MASK
                needed = ((area == _GLOBAL and off < survivor.global_top)
                          or (area == _LOCAL and off < survivor.local_top))
                if needed:
                    kept.append(entry)
            else:
                # Lazy global-cell allocation records always survive: the
                # surviving choice point's global top is below the cell.
                kept.append(entry)
        del trail[mark:]
        self.mem.settop(Area.TRAIL, mark)
        for entry in kept:
            trail.append(entry)
            word = (_REF, entry) if type(entry) is int else (Tag.INT, 0)
            self.mem.write_stack(Area.TRAIL, word)

    # ------------------------------------------------------------------
    # Cell access, dereference, bind, trail
    # ------------------------------------------------------------------

    def _read_cell(self, addr: int):
        area = addr >> AREA_SHIFT
        off = addr & OFFSET_MASK
        if area == _LOCAL:
            frame = self.wf.owner_of_local(off)
            if frame is not None:
                self.wf.read_slot(off - frame.base)
                return self.mem.peek(_LOCAL, off)
        return self.mem.read(area, off)

    def _write_cell(self, addr: int, word) -> None:
        area = addr >> AREA_SHIFT
        off = addr & OFFSET_MASK
        if area == _LOCAL:
            frame = self.wf.owner_of_local(off)
            if frame is not None:
                self.wf.write_slot(off - frame.base)
                self.mem.poke(_LOCAL, off, word)
                return
        self.mem.write(area, off, word)

    def deref(self, word):
        """Follow REF chains to a value word or an UNDEF (unbound) word."""
        emit = self.stats.emit
        read_cell = self._read_cell
        while word[0] == _REF:
            emit(_R_DEREF_STEP)
            word = read_cell(word[1])
        return word

    def bind(self, addr: int, word) -> None:
        """Bind the unbound cell at ``addr`` to ``word`` (a value or REF),
        trailing the binding when an older choice point requires it."""
        stats = self.stats
        stats.emit(_R_BIND)
        self._write_cell(addr, word)
        if self.cp_stack:
            cp = self.cp_stack[-1]
            area = addr >> AREA_SHIFT
            off = addr & OFFSET_MASK
            needs_trail = ((area == _GLOBAL and off < cp.global_top)
                           or (area == _LOCAL and off < cp.local_top))
        else:
            needs_trail = False
        if needs_trail:
            previous = stats.module
            stats.module = _M_TRAIL
            stats.emit(_R_TRAIL_PUSH)
            self.mem.write_stack(_TRAIL, (_REF, addr))
            self.trail.append(addr)
            if len(self.trail) % 8 == 0:
                # Trail-buffer spill through @WFAR2 (blockwise).
                stats.emit(_R_TRAIL_BUF)
            stats.module = previous
        else:
            stats.emit(_R_TRAIL_SKIP)

    def _bind_vars(self, a_addr: int, b_addr: int) -> None:
        """Bind two unbound variables, younger cell pointing at older.

        Global cells outrank local cells (locals die sooner); within an
        area, the lower offset is older.
        """
        if a_addr == b_addr:
            return
        a_rank = ((a_addr >> AREA_SHIFT) != _GLOBAL, a_addr & OFFSET_MASK)
        b_rank = ((b_addr >> AREA_SHIFT) != _GLOBAL, b_addr & OFFSET_MASK)
        if a_rank > b_rank:
            self.bind(a_addr, (_REF, b_addr))
        else:
            self.bind(b_addr, (_REF, a_addr))

    # ------------------------------------------------------------------
    # Unification
    # ------------------------------------------------------------------

    def unify(self, w1, w2) -> bool:
        """General unification of two runtime words (no occur check)."""
        stats = self.stats
        emit = stats.emit
        deref = self.deref
        read_cell = self._read_cell
        stack = [(w1, w2)]
        while stack:
            a, b = stack.pop()
            a = deref(a)
            b = deref(b)
            emit(_R_UNIFY_DISPATCH)
            ta = a[0]
            tb = b[0]
            if ta == _UNDEF:
                if tb == _UNDEF:
                    if a[1] != b[1]:
                        self._bind_vars(a[1], b[1])
                else:
                    self.bind(a[1], b)
                continue
            if tb == _UNDEF:
                self.bind(b[1], a)
                continue
            if ta != tb:
                return False
            if ta == Tag.INT or ta == Tag.ATOM:
                emit(_R_UNIFY_CONST)
                if a[1] != b[1]:
                    return False
            elif ta == Tag.NIL:
                emit(_R_UNIFY_CONST)
            elif ta == Tag.LIST:
                emit(_R_UNIFY_LIST)
                if a[1] != b[1]:
                    stack.append((read_cell(a[1] + 1), read_cell(b[1] + 1)))
                    stack.append((read_cell(a[1]), read_cell(b[1])))
            elif ta == Tag.STRUCT:
                emit(_R_UNIFY_STRUCT)
                if a[1] == b[1]:
                    continue
                fa = read_cell(a[1])
                fb = read_cell(b[1])
                if fa[1] != fb[1]:
                    return False
                _, arity = self.symbols.functor_name(fa[1])
                for i in range(arity, 0, -1):
                    stack.append((read_cell(a[1] + i), read_cell(b[1] + i)))
            elif ta == Tag.VECT:
                if a[1] != b[1]:
                    return False
            else:
                return False
        emit(_R_UNIFY_RETURN)
        return True

    # ------------------------------------------------------------------
    # Head unification against instruction code (read/write mode)
    # ------------------------------------------------------------------

    def _fetch(self, node, packed_ok: bool = True) -> None:
        """Instruction fetch + decode of one code node.

        Structure nodes cost an extra heap read: the functor descriptor
        word follows the STRUCT code word.
        """
        stats = self.stats
        self.mem.read(_HEAP, node.addr)
        if node.packed and packed_ok:
            stats.emit(_R_DECODE_PACKED)
        else:
            stats.emit(_R_DECODE)
        if node.__class__ is CStruct:
            self.mem.read(_HEAP, node.addr)
            stats.emit(_R_DECODE_OPCODE)

    def _match(self, node: CTerm, word, frame: Frame) -> bool:
        """Unify one head-argument code term with a runtime word."""
        stats = self.stats
        cls = node.__class__
        self._fetch(node)
        if cls is CConst:
            value = self.deref(word)
            if value[0] == _UNDEF:
                self.bind(value[1], node.word)
                return True
            stats.emit(_R_UNIFY_CONST)
            return value == node.word
        if cls is CVar:
            if node.is_global:
                cell = self._global_cell(frame, node.slot)
                if node.is_first:
                    # Fresh cell: store the argument directly (bind handles
                    # the unbound/value distinction and trailing).
                    value = self.deref(word)
                    if value[0] == _UNDEF:
                        self._bind_vars(cell, value[1])
                    else:
                        self.bind(cell, value)
                    return True
                return self.unify((_REF, cell), word)
            slot_addr = (_LOCAL << AREA_SHIFT) | (frame.base + node.slot)
            if node.is_first:
                stats.emit(_R_BUILD_VAR)
                value = word if word[0] != _UNDEF else (_REF, word[1])
                if frame.buffered:
                    self.wf.write_slot(node.slot, base_relative=True)
                    self.mem.poke(_LOCAL, frame.base + node.slot, value)
                else:
                    self.mem.write(_LOCAL, frame.base + node.slot, value)
                return True
            return self.unify((_REF, slot_addr), word)
        if cls is CVoid:
            return True
        if cls is CList:
            value = self.deref(word)
            if value[0] == _UNDEF:
                built = self._build(node, frame, prefetched=True)
                self.bind(value[1], built)
                return True
            if value[0] != Tag.LIST:
                return False
            stats.emit(_R_UNIFY_LIST)
            head_word = self._read_cell(value[1])
            if not self._match(node.head, head_word, frame):
                return False
            tail_word = self._read_cell(value[1] + 1)
            return self._match(node.tail, tail_word, frame)
        if cls is CStruct:
            value = self.deref(word)
            if value[0] == _UNDEF:
                built = self._build(node, frame, prefetched=True)
                self.bind(value[1], built)
                return True
            if value[0] != Tag.STRUCT:
                return False
            stats.emit(_R_UNIFY_STRUCT)
            functor_word = self._read_cell(value[1])
            if functor_word[1] != node.functor_id:
                return False
            for i, arg in enumerate(node.args):
                arg_word = self._read_cell(value[1] + 1 + i)
                if not self._match(arg, arg_word, frame):
                    return False
            return True
        raise MachineError(f"unexpected code node {node!r}")  # pragma: no cover

    def _build(self, node: CTerm, frame: Frame, prefetched: bool = False):
        """Write mode: construct ``node`` on the global stack, return its word."""
        stats = self.stats
        if not prefetched:
            self._fetch(node)
        cls = node.__class__
        if cls is CConst:
            return node.word
        if cls is CVar:
            stats.emit(_R_BUILD_VAR)
            if node.is_global:
                return (_REF, self._global_cell(frame, node.slot))
            # Locals never occur nested (classification globalises them);
            # a local can only be built at top level of put_arg.
            return (_REF, (_LOCAL << AREA_SHIFT) | (frame.base + node.slot))
        mem = self.mem
        g_hi = _GLOBAL << AREA_SHIFT
        if cls is CVoid:
            off = mem.top(_GLOBAL)
            mem.write_stack(_GLOBAL, (_UNDEF, g_hi | off))
            stats.emit(_R_BUILD_VAR)
            return (_REF, g_hi | off)
        if cls is CList:
            head_word = self._build(node.head, frame)
            tail_word = self._build(node.tail, frame)
            stats.emit(_R_BUILD_CELL)
            base = mem.top(_GLOBAL)
            mem.write_stack(_GLOBAL, head_word)
            mem.write_stack(_GLOBAL, tail_word)
            return (Tag.LIST, g_hi | base)
        if cls is CStruct:
            arg_words = [self._build(arg, frame) for arg in node.args]
            stats.emit(_R_BUILD_CELL)
            base = mem.top(_GLOBAL)
            mem.write_stack(_GLOBAL, (Tag.FUNC, node.functor_id))
            for word in arg_words:
                mem.write_stack(_GLOBAL, word)
            return (Tag.STRUCT, g_hi | base)
        raise MachineError(f"unexpected code node {node!r}")  # pragma: no cover

    # ------------------------------------------------------------------
    # Body argument evaluation (get_arg)
    # ------------------------------------------------------------------

    def _put_arg(self, node: CTerm, frame: Frame,
                 module: Module = Module.GET_ARG):
        """Evaluate one goal-argument code term into a register word.

        Argument setup for user-predicate calls belongs to the call
        machinery (``control``); the paper's ``get_arg`` module is the
        argument fetch for *builtin* predicates (§3.2).
        """
        stats = self.stats
        stats.module = module
        self.mem.read(_HEAP, node.addr)
        cls = node.__class__
        if cls is CConst:
            stats.emit(_R_GET_ARG_PACKED if node.packed else _R_GET_ARG)
            return node.word
        if cls is CVar:
            stats.emit(_R_GET_ARG_PACKED if node.packed else _R_GET_ARG)
            if node.is_global:
                stats.emit(_R_GET_ARG_VAR_MEM)
                return (_REF, self._global_cell(frame, node.slot))
            off = frame.base + node.slot
            if frame.buffered:
                if node.slot < 32 and node.slot % 8 == 0:
                    stats.emit(_R_GET_ARG_VAR_BUF_BASE)
                else:
                    stats.emit(_R_GET_ARG_VAR_BUF)
                value = self.mem.peek(_LOCAL, off)
            else:
                stats.emit(_R_GET_ARG_VAR_MEM)
                value = self.mem.read(_LOCAL, off)
            if value[0] == _UNDEF:
                return (_REF, value[1])
            return value
        if cls is CVoid:
            stats.emit(_R_GET_ARG)
            off = self.mem.top(_GLOBAL)
            cell = (_GLOBAL << AREA_SHIFT) | off
            self.mem.write_stack(_GLOBAL, (_UNDEF, cell))
            return (_REF, cell)
        # Compound argument: construct it (structure copying).
        stats.emit(_R_GET_ARG)
        stats.module = _M_UNIFY
        word = self._build(node, frame)
        stats.module = module
        stats.emit(_R_PUT_ARG)
        return word

    # ------------------------------------------------------------------
    # Builtin execution
    # ------------------------------------------------------------------

    def _dispatch_builtin(self, goal: BuiltinGoal, env: Env) -> bool:
        stats = self.stats
        stats.builtin_calls += 1
        frame = env.frame
        put_arg = self._put_arg
        args = [put_arg(node, frame) for node in goal.args]
        stats.module = _M_BUILT
        stats.emit(_R_BUILTIN_ENTRY)
        builtin: Builtin = goal.builtin
        if builtin.weight:
            stats.emit(_R_BUILTIN_STEP, builtin.weight)
        result = builtin.fn(self, args)
        if result is True or result is False:
            stats.module = _M_BUILT
            stats.emit(_R_BUILTIN_EXIT)
            return result
        # Meta-call request: ("call", functor, arity, arg_words)
        _, functor, arity, call_args = result
        stats.emit(_R_BUILTIN_EXIT)
        stats.module = _M_CONTROL
        stats.inferences += 1
        proc = self.program.procedure(functor, arity)
        if proc is None:
            raise ExistenceError(functor, arity)
        stats.emit(_R_PROC_LOOKUP)
        self.mem.read(_HEAP, proc.descriptor_base)
        self._save_env(env)
        return self._call_procedure(proc, tuple(call_args), env, self.cur_index)

    # ------------------------------------------------------------------
    # Term decoding (for solutions / builtins; unbilled debug reads)
    # ------------------------------------------------------------------

    def decode_word(self, word, depth: int = 0) -> Term:
        """Convert a runtime word into a source-level term (no billing)."""
        word = self._peek_deref(word)
        tag = word[0]
        if tag == _UNDEF:
            return Var(f"_A{word[1]}")
        if tag == Tag.INT:
            return word[1]
        if tag == Tag.ATOM:
            return Atom(self.symbols.atom_name(word[1]))
        if tag == Tag.NIL:
            return Atom("[]")
        if tag == Tag.LIST:
            items = []
            current = word
            guard = 0
            while current[0] == Tag.LIST:
                items.append(self.decode_word(self._peek_addr(current[1]), depth + 1))
                current = self._peek_deref(self._peek_addr(current[1] + 1))
                guard += 1
                if guard > 1_000_000:
                    raise MachineError("runaway list while decoding")
            tail = self.decode_word(current, depth + 1)
            result: Term = tail
            for item in reversed(items):
                result = Struct(".", (item, result))
            return result
        if tag == Tag.STRUCT:
            functor_word = self._peek_addr(word[1])
            name, arity = self.symbols.functor_name(functor_word[1])
            args = tuple(self.decode_word(self._peek_addr(word[1] + 1 + i), depth + 1)
                         for i in range(arity))
            return Struct(name, args)
        if tag == Tag.VECT:
            header = self._peek_addr(word[1])
            return Struct("$vector", (word[1], header[1]))
        raise MachineError(f"cannot decode word {word!r}")

    def _peek_addr(self, addr: int):
        return self.mem.peek(addr >> AREA_SHIFT, addr & OFFSET_MASK)

    def _peek_deref(self, word):
        while word[0] == _REF:
            word = self._peek_addr(word[1])
        return word

    # ------------------------------------------------------------------
    # Machine-level helpers used by builtins
    # ------------------------------------------------------------------

    def assert_clause(self, term: Term) -> None:
        """Runtime clause addition (assert/assertz)."""
        clause = self.program.add_clause(term)
        self._load_pending()
        # Bill the code words written into the heap.
        self.mem.flush_stack_block(_HEAP, clause.heap_base, clause.heap_size)

    def retract_fact(self, word) -> bool:
        """Remove the first fact whose head unifies with ``word``."""
        from repro.errors import TypeError_
        value = self.deref(word)
        if value[0] == Tag.ATOM:
            functor, arity = self.symbols.atom_name(value[1]), 0
            arg_words: list = []
        elif value[0] == Tag.STRUCT:
            functor_word = self._read_cell(value[1])
            functor, arity = self.symbols.functor_name(functor_word[1])
            arg_words = [self._read_cell(value[1] + 1 + i) for i in range(arity)]
            arg_words = [(_REF, w[1]) if w[0] == _UNDEF else w for w in arg_words]
        else:
            raise TypeError_("callable term", value)
        proc = self.program.procedure(functor, arity)
        if proc is None:
            return False
        for index, clause in enumerate(proc.clauses):
            if clause.body:
                continue
            mark = len(self.trail)
            frame = self._allocate_frame(clause)
            matched = all(self._match(node, arg, frame)
                          for node, arg in zip(clause.head_args, arg_words))
            if matched:
                proc.clauses.pop(index)
                self._serializer.load_procedure(proc)
                return True
            self._untrail_to(mark)
            self.stats.module = Module.BUILT
        return False

    def fresh_global_cell(self) -> int:
        off = self.mem.top(Area.GLOBAL)
        self.mem.write_stack(Area.GLOBAL, (_UNDEF, encode_address(Area.GLOBAL, off)))
        return encode_address(Area.GLOBAL, off)

    def build_term(self, term: Term):
        """Construct a source-level term on the global stack (for builtins
        like =../2 and functor/3 that synthesise terms at runtime)."""
        if isinstance(term, int):
            return (Tag.INT, term)
        if isinstance(term, Atom):
            if term.name == "[]":
                return (Tag.NIL, 0)
            return (Tag.ATOM, self.symbols.atom(term.name))
        if isinstance(term, Var):
            return (_REF, self.fresh_global_cell())
        assert isinstance(term, Struct)
        if term.functor == "." and term.arity == 2:
            head = self.build_term(term.args[0])
            tail = self.build_term(term.args[1])
            base = self.mem.top(Area.GLOBAL)
            self.mem.write_stack(Area.GLOBAL, head)
            self.mem.write_stack(Area.GLOBAL, tail)
            return (Tag.LIST, encode_address(Area.GLOBAL, base))
        functor_id = self.symbols.functor(term.functor, term.arity)
        arg_words = [self.build_term(arg) for arg in term.args]
        base = self.mem.top(Area.GLOBAL)
        self.mem.write_stack(Area.GLOBAL, (Tag.FUNC, functor_id))
        for word in arg_words:
            self.mem.write_stack(Area.GLOBAL, word)
        return (Tag.STRUCT, encode_address(Area.GLOBAL, base))


class Solution:
    """One answer: variable bindings decoded to source-level terms."""

    def __init__(self, bindings: dict[str, Term]):
        self.bindings = bindings

    def __getitem__(self, name: str) -> Term:
        return self.bindings[name]

    def __contains__(self, name: str) -> bool:
        return name in self.bindings

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.bindings.items())
        return f"Solution({inner})"


class Solver:
    """Resumable query execution: call :meth:`next` for each solution."""

    def __init__(self, machine: PSIMachine, query_name: str, var_names: list[str]):
        self.machine = machine
        self.query_name = query_name
        self.var_names = var_names
        self._cells: list[int] = []
        self._started = False
        self._exhausted = False

    def next(self) -> Solution | None:
        """Return the next solution, or None when exhausted."""
        if self._exhausted:
            return None
        m = self.machine
        if not self._started:
            self._started = True
            self._cells = [m.fresh_global_cell() for _ in self.var_names]
            args = tuple((Tag.REF, cell) for cell in self._cells)
            ok = m._start(self.query_name, len(self.var_names), args)
        else:
            ok = m._backtrack() and m._run()
        if not ok:
            self._exhausted = True
            return None
        bindings = {
            name: m.decode_word(m._peek_addr(cell))
            for name, cell in zip(self.var_names, self._cells)
        }
        return Solution(bindings)

    def all(self, limit: int = 1_000_000) -> list[Solution]:
        solutions = []
        while len(solutions) < limit:
            solution = self.next()
            if solution is None:
                break
            solutions.append(solution)
        return solutions

    def count(self, limit: int = 1_000_000) -> int:
        return len(self.all(limit))
