"""The PSI machine model: tagged words, memory areas, microinstruction
accounting, work file, KL0 code, builtins and the interpreter itself."""

from repro.core.machine import MachineConfig, PSIMachine, Solution, Solver
from repro.core.memory import Area, MemorySystem, TraceRecorder, decode_address, encode_address
from repro.core.micro import BranchOp, CacheCmd, Module, WFMode
from repro.core.stats import NullStats, StatsCollector
from repro.core.words import SymbolTable, Tag

__all__ = [
    "PSIMachine", "MachineConfig", "Solution", "Solver",
    "Area", "MemorySystem", "TraceRecorder", "encode_address", "decode_address",
    "Module", "CacheCmd", "WFMode", "BranchOp",
    "StatsCollector", "NullStats",
    "SymbolTable", "Tag",
]
