"""Builtin (microcoded) predicates of the KL0 machine.

Each builtin is a Python function over dereferenced argument words plus
a *weight*: the number of extra ``built.step`` microinstructions its
microcode body is charged beyond the structured work it performs
through the machine helpers (dereference, unify, memory access), which
bill themselves.  The paper's Table 2 'built' column and the builtin
call-rate observations ("82% for window") are reproduced through these
charges plus workload behaviour.

The set covers what the bundled workloads and a reasonable KL0 user
need: unification and comparison, type tests, arithmetic, term
construction/inspection, list length, the KL0 heap-vector operations
(rewritable structures in the heap area — the WINDOW program's data),
simple output, meta-call, and the side-effect counters used for
failure-driven all-solutions loops (the DEC-10-era idiom).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core import micro
from repro.core.memory import AREA_SHIFT, Area, OFFSET_MASK, encode_address
from repro.core.micro import Module
from repro.core.words import Tag
from repro.engine.builtins_spec import ARITH_BINARY, ARITH_UNARY
from repro.errors import EvaluationError, InstantiationError, TypeError_
from repro.prolog.terms import Atom, Struct
from repro.prolog.writer import term_to_string

_REF = Tag.REF
_UNDEF = Tag.UNDEF


@dataclass(frozen=True)
class Builtin:
    """Descriptor for one builtin predicate."""

    name: str
    arity: int
    fn: Callable
    weight: int = 2

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)


BUILTIN_TABLE: dict[tuple[str, int], Builtin] = {}


def _register(name: str, arity: int, weight: int = 2):
    def decorator(fn):
        BUILTIN_TABLE[(name, arity)] = Builtin(name, arity, fn, weight)
        return fn
    return decorator


# ---------------------------------------------------------------------------
# Arithmetic evaluation
# ---------------------------------------------------------------------------
# The operator tables and division semantics are shared with the DEC
# baseline through repro.engine.builtins_spec so the engines cannot
# drift numerically; only the traversal *driver* below is KL0's (it
# bills R_ARITH_DISPATCH / R_ARITH_OP microinstructions).

_ARITH_BINARY = ARITH_BINARY
_ARITH_UNARY = ARITH_UNARY


def eval_arith(m, word) -> int:
    """Evaluate an arithmetic expression term to an integer."""
    stats = m.stats
    word = m.deref(word)
    stats.emit(micro.R_ARITH_DISPATCH)
    tag = word[0]
    if tag == Tag.INT:
        return word[1]
    if tag == _UNDEF:
        raise InstantiationError("unbound variable in arithmetic expression")
    if tag == Tag.STRUCT:
        functor_word = m._read_cell(word[1])
        name, arity = m.symbols.functor_name(functor_word[1])
        if arity == 2 and name in _ARITH_BINARY:
            a = eval_arith(m, m._read_cell(word[1] + 1))
            b = eval_arith(m, m._read_cell(word[1] + 2))
            stats.emit(micro.R_ARITH_OP)
            return _ARITH_BINARY[name](a, b)
        if arity == 1 and name in _ARITH_UNARY:
            a = eval_arith(m, m._read_cell(word[1] + 1))
            stats.emit(micro.R_ARITH_OP)
            return _ARITH_UNARY[name](a)
        raise TypeError_("evaluable functor", f"{name}/{arity}")
    if tag == Tag.ATOM:
        raise TypeError_("evaluable term", m.symbols.atom_name(word[1]))
    raise TypeError_("evaluable term", word)


# ---------------------------------------------------------------------------
# Control / unification
# ---------------------------------------------------------------------------


@_register("true", 0, weight=1)
def bi_true(m, args) -> bool:
    return True


@_register("fail", 0, weight=1)
def bi_fail(m, args) -> bool:
    return False


@_register("false", 0, weight=1)
def bi_false(m, args) -> bool:
    return False


@_register("=", 2, weight=1)
def bi_unify(m, args) -> bool:
    m.stats.module = Module.UNIFY
    result = m.unify(args[0], args[1])
    m.stats.module = Module.BUILT
    return result


@_register("\\=", 2, weight=2)
def bi_not_unify(m, args) -> bool:
    # Trial unification undone via an explicit trail mark: KL0 runs this
    # microcoded with its own save/restore, modelled the same way.
    mark = len(m.trail)
    global_top = m.mem.top(Area.GLOBAL)
    m.stats.module = Module.UNIFY
    result = m.unify(args[0], args[1])
    m.stats.module = Module.BUILT
    m._untrail_to(mark)
    m.stats.module = Module.BUILT
    if m.mem.top(Area.GLOBAL) > global_top and not m.cp_stack:
        m.mem.settop(Area.GLOBAL, global_top)
    return not result


@_register("call", 1, weight=3)
def bi_call(m, args):
    word = m.deref(args[0])
    tag = word[0]
    if tag == Tag.ATOM:
        name = m.symbols.atom_name(word[1])
        if (name, 0) in BUILTIN_TABLE:
            return BUILTIN_TABLE[(name, 0)].fn(m, [])
        return ("call", name, 0, [])
    if tag == Tag.STRUCT:
        functor_word = m._read_cell(word[1])
        name, arity = m.symbols.functor_name(functor_word[1])
        call_args = [m._read_cell(word[1] + 1 + i) for i in range(arity)]
        call_args = [a if a[0] != _UNDEF else (_REF, a[1]) for a in call_args]
        if (name, arity) in BUILTIN_TABLE:
            return BUILTIN_TABLE[(name, arity)].fn(m, call_args)
        return ("call", name, arity, call_args)
    if tag == _UNDEF:
        raise InstantiationError("call/1 of an unbound variable")
    raise TypeError_("callable term", word)


# ---------------------------------------------------------------------------
# Type tests
# ---------------------------------------------------------------------------


def _type_test(m, args, predicate) -> bool:
    word = m.deref(args[0])
    m.stats.emit(micro.R_TYPE_TEST)
    return predicate(word[0])


@_register("var", 1, weight=1)
def bi_var(m, args) -> bool:
    return _type_test(m, args, lambda tag: tag == _UNDEF)


@_register("nonvar", 1, weight=1)
def bi_nonvar(m, args) -> bool:
    return _type_test(m, args, lambda tag: tag != _UNDEF)


@_register("atom", 1, weight=1)
def bi_atom(m, args) -> bool:
    return _type_test(m, args, lambda tag: tag in (Tag.ATOM, Tag.NIL))


@_register("integer", 1, weight=1)
def bi_integer(m, args) -> bool:
    return _type_test(m, args, lambda tag: tag == Tag.INT)


@_register("atomic", 1, weight=1)
def bi_atomic(m, args) -> bool:
    return _type_test(m, args, lambda tag: tag in (Tag.ATOM, Tag.NIL, Tag.INT))


@_register("compound", 1, weight=1)
def bi_compound(m, args) -> bool:
    return _type_test(m, args, lambda tag: tag in (Tag.LIST, Tag.STRUCT))


@_register("is_list", 1, weight=2)
def bi_is_list(m, args) -> bool:
    word = m.deref(args[0])
    guard = 0
    while word[0] == Tag.LIST:
        m.stats.emit(micro.R_TYPE_TEST)
        word = m.deref(m._read_cell(word[1] + 1))
        guard += 1
        if guard > 10_000_000:
            raise EvaluationError("runaway list in is_list/1")
    return word[0] == Tag.NIL


# ---------------------------------------------------------------------------
# Arithmetic predicates
# ---------------------------------------------------------------------------


@_register("is", 2, weight=2)
def bi_is(m, args) -> bool:
    value = eval_arith(m, args[1])
    m.stats.module = Module.UNIFY
    result = m.unify(args[0], (Tag.INT, value))
    m.stats.module = Module.BUILT
    return result


def _arith_compare(m, args, op) -> bool:
    a = eval_arith(m, args[0])
    b = eval_arith(m, args[1])
    m.stats.emit(micro.R_COMPARE)
    return op(a, b)


@_register("=:=", 2, weight=3)
def bi_arith_eq(m, args) -> bool:
    return _arith_compare(m, args, lambda a, b: a == b)


@_register("=\\=", 2, weight=3)
def bi_arith_ne(m, args) -> bool:
    return _arith_compare(m, args, lambda a, b: a != b)


@_register("<", 2, weight=3)
def bi_lt(m, args) -> bool:
    return _arith_compare(m, args, lambda a, b: a < b)


@_register(">", 2, weight=3)
def bi_gt(m, args) -> bool:
    return _arith_compare(m, args, lambda a, b: a > b)


@_register("=<", 2, weight=3)
def bi_le(m, args) -> bool:
    return _arith_compare(m, args, lambda a, b: a <= b)


@_register(">=", 2, weight=3)
def bi_ge(m, args) -> bool:
    return _arith_compare(m, args, lambda a, b: a >= b)


# ---------------------------------------------------------------------------
# Structural comparison (standard order)
# ---------------------------------------------------------------------------


def _compare_words(m, w1, w2) -> int:
    """Standard order comparison: Var < Int < Atom < Compound."""
    a = m.deref(w1)
    b = m.deref(w2)
    m.stats.emit(micro.R_COMPARE)
    order_a = _order_class(a[0])
    order_b = _order_class(b[0])
    if order_a != order_b:
        return -1 if order_a < order_b else 1
    if order_a == 0:   # variables: by cell address
        return (a[1] > b[1]) - (a[1] < b[1])
    if order_a == 1:   # integers
        return (a[1] > b[1]) - (a[1] < b[1])
    if order_a == 2:   # atoms, [] sorting as the atom '[]'
        name_a = "[]" if a[0] == Tag.NIL else m.symbols.atom_name(a[1])
        name_b = "[]" if b[0] == Tag.NIL else m.symbols.atom_name(b[1])
        return (name_a > name_b) - (name_a < name_b)
    # compounds: arity, then name, then args left to right
    name_a, arity_a, args_a = _compound_parts(m, a)
    name_b, arity_b, args_b = _compound_parts(m, b)
    if arity_a != arity_b:
        return -1 if arity_a < arity_b else 1
    if name_a != name_b:
        return -1 if name_a < name_b else 1
    for sub_a, sub_b in zip(args_a, args_b):
        result = _compare_words(m, sub_a, sub_b)
        if result:
            return result
    return 0


def _order_class(tag) -> int:
    if tag == _UNDEF:
        return 0
    if tag == Tag.INT:
        return 1
    if tag in (Tag.ATOM, Tag.NIL):
        return 2
    return 3


def _compound_parts(m, word):
    if word[0] == Tag.LIST:
        return ".", 2, [m._read_cell(word[1]), m._read_cell(word[1] + 1)]
    functor_word = m._read_cell(word[1])
    name, arity = m.symbols.functor_name(functor_word[1])
    return name, arity, [m._read_cell(word[1] + 1 + i) for i in range(arity)]


@_register("==", 2, weight=1)
def bi_struct_eq(m, args) -> bool:
    return _compare_words(m, args[0], args[1]) == 0


@_register("\\==", 2, weight=1)
def bi_struct_ne(m, args) -> bool:
    return _compare_words(m, args[0], args[1]) != 0


@_register("@<", 2, weight=1)
def bi_term_lt(m, args) -> bool:
    return _compare_words(m, args[0], args[1]) < 0


@_register("@>", 2, weight=1)
def bi_term_gt(m, args) -> bool:
    return _compare_words(m, args[0], args[1]) > 0


@_register("@=<", 2, weight=1)
def bi_term_le(m, args) -> bool:
    return _compare_words(m, args[0], args[1]) <= 0


@_register("@>=", 2, weight=1)
def bi_term_ge(m, args) -> bool:
    return _compare_words(m, args[0], args[1]) >= 0


@_register("compare", 3, weight=2)
def bi_compare(m, args) -> bool:
    result = _compare_words(m, args[1], args[2])
    name = "<" if result < 0 else (">" if result > 0 else "=")
    m.stats.module = Module.UNIFY
    ok = m.unify(args[0], (Tag.ATOM, m.symbols.atom(name)))
    m.stats.module = Module.BUILT
    return ok


# ---------------------------------------------------------------------------
# Term construction and inspection
# ---------------------------------------------------------------------------


@_register("functor", 3, weight=5)
def bi_functor(m, args) -> bool:
    word = m.deref(args[0])
    tag = word[0]
    if tag != _UNDEF:
        if tag == Tag.LIST:
            name_word = (Tag.ATOM, m.symbols.atom("."))
            arity = 2
        elif tag == Tag.STRUCT:
            functor_word = m._read_cell(word[1])
            name, arity = m.symbols.functor_name(functor_word[1])
            name_word = (Tag.ATOM, m.symbols.atom(name))
        else:
            name_word = word
            arity = 0
        m.stats.module = Module.UNIFY
        ok = m.unify(args[1], name_word) and m.unify(args[2], (Tag.INT, arity))
        m.stats.module = Module.BUILT
        return ok
    name = m.deref(args[1])
    arity_word = m.deref(args[2])
    if name[0] == _UNDEF or arity_word[0] != Tag.INT:
        raise InstantiationError("functor/3 needs name and arity")
    arity = arity_word[1]
    if arity == 0:
        built = name
    elif name[0] != Tag.ATOM and not (name[0] == Tag.NIL):
        raise TypeError_("atom", name)
    else:
        name_text = "[]" if name[0] == Tag.NIL else m.symbols.atom_name(name[1])
        built = _rebuild_open_struct(m, name_text, arity)
    m.stats.module = Module.UNIFY
    ok = m.unify(args[0], built)
    m.stats.module = Module.BUILT
    return ok


def _rebuild_open_struct(m, name: str, arity: int):
    if name == "." and arity == 2:
        base = m.mem.top(Area.GLOBAL)
        for i in range(2):
            off = m.mem.top(Area.GLOBAL)
            m.mem.write_stack(Area.GLOBAL, (_UNDEF, encode_address(Area.GLOBAL, off)))
        return (Tag.LIST, encode_address(Area.GLOBAL, base))
    functor_id = m.symbols.functor(name, arity)
    base = m.mem.top(Area.GLOBAL)
    m.mem.write_stack(Area.GLOBAL, (Tag.FUNC, functor_id))
    for _ in range(arity):
        off = m.mem.top(Area.GLOBAL)
        m.mem.write_stack(Area.GLOBAL, (_UNDEF, encode_address(Area.GLOBAL, off)))
    return (Tag.STRUCT, encode_address(Area.GLOBAL, base))


@_register("arg", 3, weight=6)
def bi_arg(m, args) -> bool:
    index = m.deref(args[0])
    word = m.deref(args[1])
    if index[0] != Tag.INT:
        raise InstantiationError("arg/3 needs an integer index")
    n = index[1]
    if word[0] == Tag.STRUCT:
        functor_word = m._read_cell(word[1])
        _, arity = m.symbols.functor_name(functor_word[1])
        if not 1 <= n <= arity:
            return False
        element = m._read_cell(word[1] + n)
    elif word[0] == Tag.LIST:
        if not 1 <= n <= 2:
            return False
        element = m._read_cell(word[1] + n - 1)
    else:
        return False
    if element[0] == _UNDEF:
        element = (_REF, element[1])
    m.stats.module = Module.UNIFY
    ok = m.unify(args[2], element)
    m.stats.module = Module.BUILT
    return ok


@_register("=..", 2, weight=10)
def bi_univ(m, args) -> bool:
    word = m.deref(args[0])
    tag = word[0]
    if tag != _UNDEF:
        if tag == Tag.STRUCT:
            functor_word = m._read_cell(word[1])
            name, arity = m.symbols.functor_name(functor_word[1])
            items = [(Tag.ATOM, m.symbols.atom(name))]
            items += [_as_value(m._read_cell(word[1] + 1 + i)) for i in range(arity)]
        elif tag == Tag.LIST:
            items = [(Tag.ATOM, m.symbols.atom("."))]
            items += [_as_value(m._read_cell(word[1])),
                      _as_value(m._read_cell(word[1] + 1))]
        else:
            items = [word]
        list_word = _build_list(m, items)
        m.stats.module = Module.UNIFY
        ok = m.unify(args[1], list_word)
        m.stats.module = Module.BUILT
        return ok
    # Construct a term from the list.
    items = []
    current = m.deref(args[1])
    while current[0] == Tag.LIST:
        items.append(_as_value(m.deref(m._read_cell(current[1]))))
        current = m.deref(m._read_cell(current[1] + 1))
    if current[0] != Tag.NIL or not items:
        raise InstantiationError("=../2 needs a proper, bound list")
    head = items[0]
    rest = items[1:]
    if not rest:
        built = head
    else:
        if head[0] not in (Tag.ATOM, Tag.NIL):
            raise TypeError_("atom", head)
        name = "[]" if head[0] == Tag.NIL else m.symbols.atom_name(head[1])
        if name == "." and len(rest) == 2:
            base = m.mem.top(Area.GLOBAL)
            m.mem.write_stack(Area.GLOBAL, rest[0])
            m.mem.write_stack(Area.GLOBAL, rest[1])
            built = (Tag.LIST, encode_address(Area.GLOBAL, base))
        else:
            functor_id = m.symbols.functor(name, len(rest))
            base = m.mem.top(Area.GLOBAL)
            m.mem.write_stack(Area.GLOBAL, (Tag.FUNC, functor_id))
            for item in rest:
                m.mem.write_stack(Area.GLOBAL, item)
            built = (Tag.STRUCT, encode_address(Area.GLOBAL, base))
    m.stats.module = Module.UNIFY
    ok = m.unify(args[0], built)
    m.stats.module = Module.BUILT
    return ok


def _as_value(word):
    return (_REF, word[1]) if word[0] == _UNDEF else word


def _build_list(m, items):
    result = (Tag.NIL, 0)
    for item in reversed(items):
        base = m.mem.top(Area.GLOBAL)
        m.mem.write_stack(Area.GLOBAL, item)
        m.mem.write_stack(Area.GLOBAL, result)
        result = (Tag.LIST, encode_address(Area.GLOBAL, base))
    return result


@_register("length", 2, weight=2)
def bi_length(m, args) -> bool:
    word = m.deref(args[0])
    if word[0] in (Tag.LIST, Tag.NIL):
        count = 0
        current = word
        while current[0] == Tag.LIST:
            m.stats.emit(micro.R_BUILTIN_STEP)
            count += 1
            current = m.deref(m._read_cell(current[1] + 1))
        if current[0] != Tag.NIL:
            return False
        m.stats.module = Module.UNIFY
        ok = m.unify(args[1], (Tag.INT, count))
        m.stats.module = Module.BUILT
        return ok
    length_word = m.deref(args[1])
    if length_word[0] != Tag.INT or length_word[1] < 0:
        raise InstantiationError("length/2 needs a list or a length")
    cells = []
    for _ in range(length_word[1]):
        cells.append((_REF, m.fresh_global_cell()))
    m.stats.module = Module.UNIFY
    ok = m.unify(args[0], _build_list(m, cells))
    m.stats.module = Module.BUILT
    return ok


# ---------------------------------------------------------------------------
# Heap vectors (KL0 rewritable structures; used by WINDOW)
# ---------------------------------------------------------------------------


@_register("new_vector", 2, weight=6)
def bi_new_vector(m, args) -> bool:
    size_word = m.deref(args[1])
    if size_word[0] != Tag.INT or size_word[1] < 0:
        raise TypeError_("non-negative integer", size_word)
    size = size_word[1]
    base = m.mem.top(Area.HEAP)
    m.mem.write_stack(Area.HEAP, (Tag.VECTHDR, size))
    for _ in range(size):
        m.mem.write_stack(Area.HEAP, (Tag.INT, 0))
    m.stats.module = Module.UNIFY
    ok = m.unify(args[0], (Tag.VECT, encode_address(Area.HEAP, base)))
    m.stats.module = Module.BUILT
    return ok


def _vector_slot(m, vec_word, index_word) -> int:
    vec = m.deref(vec_word)
    index = m.deref(index_word)
    if vec[0] != Tag.VECT:
        raise TypeError_("vector", vec)
    if index[0] != Tag.INT:
        raise TypeError_("integer index", index)
    header = m._read_cell(vec[1])
    m.stats.emit(micro.R_VECTOR_INDEX)
    if not 0 <= index[1] < header[1]:
        raise EvaluationError(f"vector index {index[1]} out of range {header[1]}")
    return vec[1] + 1 + index[1]


@_register("vector_ref", 3, weight=6)
def bi_vector_ref(m, args) -> bool:
    addr = _vector_slot(m, args[0], args[1])
    element = m._read_cell(addr)
    m.stats.module = Module.UNIFY
    ok = m.unify(args[2], _as_value(element))
    m.stats.module = Module.BUILT
    return ok


@_register("vector_set", 3, weight=6)
def bi_vector_set(m, args) -> bool:
    addr = _vector_slot(m, args[0], args[1])
    value = m.deref(args[2])
    m._write_cell(addr, _as_value(value))
    return True


@_register("vector_size", 2, weight=3)
def bi_vector_size(m, args) -> bool:
    vec = m.deref(args[0])
    if vec[0] != Tag.VECT:
        raise TypeError_("vector", vec)
    header = m._read_cell(vec[1])
    m.stats.module = Module.UNIFY
    ok = m.unify(args[1], (Tag.INT, header[1]))
    m.stats.module = Module.BUILT
    return ok


# ---------------------------------------------------------------------------
# Output (collected, not printed) and misc side effects
# ---------------------------------------------------------------------------


@_register("write", 1, weight=2)
def bi_write(m, args) -> bool:
    text = term_to_string(m.decode_word(args[0]), quoted=False)
    m.output.append(text)
    m.stats.emit(micro.R_IO_STEP, 1 + len(text) // 4)
    return True


@_register("print", 1, weight=2)
def bi_print(m, args) -> bool:
    return bi_write(m, args)


@_register("nl", 0, weight=1)
def bi_nl(m, args) -> bool:
    m.output.append("\n")
    m.stats.emit(micro.R_IO_STEP)
    return True


@_register("tab", 1, weight=1)
def bi_tab(m, args) -> bool:
    count = eval_arith(m, args[0])
    m.output.append(" " * max(count, 0))
    m.stats.emit(micro.R_IO_STEP)
    return True


@_register("counter_reset", 1, weight=1)
def bi_counter_reset(m, args) -> bool:
    name = _atom_name(m, args[0])
    m.counters[name] = 0
    m.stats.emit(micro.R_IO_STEP)
    return True


@_register("counter_inc", 1, weight=1)
def bi_counter_inc(m, args) -> bool:
    name = _atom_name(m, args[0])
    m.counters[name] = m.counters.get(name, 0) + 1
    m.stats.emit(micro.R_IO_STEP)
    return True


@_register("counter_value", 2, weight=1)
def bi_counter_value(m, args) -> bool:
    name = _atom_name(m, args[0])
    m.stats.module = Module.UNIFY
    ok = m.unify(args[1], (Tag.INT, m.counters.get(name, 0)))
    m.stats.module = Module.BUILT
    return ok


def _atom_name(m, word) -> str:
    word = m.deref(word)
    if word[0] != Tag.ATOM:
        raise TypeError_("atom", word)
    return m.symbols.atom_name(word[1])


@_register("process_switch", 0, weight=4)
def bi_process_switch(m, args) -> bool:
    """Model an OS process switch (I/O service): the work file control
    state is saved to and restored from a per-process save area in the
    heap, and the frame buffers are invalidated.  WINDOW-2/3 call this;
    it is one cause of their lower cache hit ratios (§4.2)."""
    m.stats.emit(micro.R_PROCESS_SWITCH, 8)
    if m._process_save_base < 0:
        # Eight process contexts of 2K words each: the WF save area plus
        # the incoming process's control state, working data and a slice
        # of its instruction stream — the competing working sets that
        # lower window-2/3's cache hit ratios in the paper.
        m._process_save_base = m.mem.grow(Area.HEAP, 8 * 2048, (Tag.INT, 0))
    switch_count = m.counters.get("$switches", 0)
    m.counters["$switches"] = switch_count + 1
    out_base = m._process_save_base + (switch_count % 8) * 2048
    in_base = m._process_save_base + ((switch_count + 1) % 8) * 2048
    for i in range(512):
        m.mem.write(Area.HEAP, out_base + i, (Tag.INT, i))
    for i in range(1536):
        m.mem.read(Area.HEAP, in_base + i)
    # Flush any buffered frame: its slots must survive in the local stack.
    for frame in list(m.wf._owners):
        if frame is not None:
            for i in range(frame.nlocals):
                m.mem.write_stack_at(Area.LOCAL, frame.base + i,
                                     m.mem.peek(Area.LOCAL, frame.base + i))
            m.wf.release(frame)
    return True


# ---------------------------------------------------------------------------
# Dynamic database (assert/retract)
# ---------------------------------------------------------------------------


@_register("assertz", 1, weight=6)
def bi_assertz(m, args) -> bool:
    """Add a clause to the database at runtime.

    The clause term is decoded from the heap, compiled, and its
    instruction code written into the heap area (billed as write-stack
    traffic — runtime code generation is real memory work on the PSI).
    """
    term = m.decode_word(args[0])
    m.assert_clause(term)
    return True


@_register("assert", 1, weight=6)
def bi_assert(m, args) -> bool:
    return bi_assertz(m, args)


@_register("retract", 1, weight=6)
def bi_retract(m, args) -> bool:
    """Remove the first fact whose head unifies with the argument.

    Only facts (bodyless clauses) can be retracted — the common
    dynamic-database idiom; rule retraction is not supported.
    """
    return m.retract_fact(args[0])


@_register("garbage_collect", 0, weight=2)
def bi_garbage_collect(m, args) -> bool:
    # The PSI had incremental GC support; our runs are sized to never
    # need collection, so this is an accounted no-op.
    m.stats.emit(micro.R_BUILTIN_STEP, 4)
    return True
