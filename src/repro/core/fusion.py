"""Superinstruction fusion layer: fold hot micro-op runs into one emit.

PR 4 made each micro-op emission a single list-index increment, but the
interpreter still pays one Python call *per* micro-op (plus one per
memory access) on statically-known sequences such as goal fetch → call
setup → proc lookup.  A :class:`Superinstruction` declares one of those
runs as a single Python-level operation: the per-(routine, module) pair
deltas and the per-(command, area) memory deltas of the whole run are
precomputed at import time, so the machine bills the entire sequence
with one :meth:`~repro.core.stats.StatsCollector.emit_fused` call (a
handful of list-index increments) and hands the memory *notifications*
to the listeners itself, in the exact reference order.

Equivalence contract (guarded by ``tests/core/test_fusion.py`` and the
golden digests in ``tests/core/test_stream_equivalence.py``): applying
a superinstruction to a collector leaves it in exactly the state the
unfused emission run would have — same ``routine_counts``, same
``mem_counts``, same total steps — and the machine's fused call sites
reproduce the listener (trace) byte stream bit-for-bit.

The selected sequences live in :mod:`repro.core.fused_table`, an
ahead-of-time generated module produced by
``scripts/gen_superinstructions.py`` from mined workload traces
(:mod:`repro.obs.seqmine`).  Two kinds exist:

* **static** specs name their interpreter module; all deltas are
  absolute indices, applied via ``emit_fused``.
* **dynamic** specs (``module: None``) bill under whatever module is
  active at the call site, via ``emit_fused_dyn`` — used for shapes
  shared by several modules (decode/fetch, deref, build).
"""

from __future__ import annotations

from repro.core import micro
from repro.core.micro import CacheCmd, MicroRoutine, Module, N_MODULES
from repro.core.fused_table import FRAME_NLOCALS, SPECS

#: Mirrors ``repro.core.memory.Area`` (kept literal to avoid a circular
#: import; ``test_interning_invariants`` guards the shared constant).
N_AREAS = 5
_AREA_INDEX = {"heap": 0, "global": 1, "local": 2, "control": 3, "trail": 4}
_MODULE_BY_VALUE = {m.value: m for m in Module}
_CMD_BY_VALUE = {c.value: c for c in CacheCmd}


class Superinstruction:
    """One fused micro-op run with precomputed billing deltas."""

    __slots__ = ("name", "module", "emissions", "mem_ops", "n_steps",
                 "pair_deltas", "rel_deltas", "base_deltas", "mem_deltas",
                 "max_index", "sid", "sid6", "slot")

    def __init__(self, name: str, module: Module | None,
                 emissions: tuple[tuple[MicroRoutine, int], ...],
                 mem_ops: tuple[tuple[CacheCmd, int, int], ...]):
        self.name = name
        self.module = module
        self.emissions = emissions            # ((routine, times), ...)
        self.mem_ops = mem_ops                # ((cmd, area_int, times), ...)

        pair: dict[int, int] = {}             # keyed by pair_base (module-relative)
        steps = 0
        for routine, times in emissions:
            pair[routine.pair_base] = pair.get(routine.pair_base, 0) + times
            steps += routine.n_steps * times
        mem_flat: dict[int, int] = {}         # _mem_counts indices (absolute)
        for cmd, area, times in mem_ops:
            code = cmd.code
            base = micro.MEM_PAIR_BASE[code]
            pair[base] = pair.get(base, 0) + times
            index = code * N_AREAS + area
            mem_flat[index] = mem_flat.get(index, 0) + times
            steps += micro.MEM_STEPS[code] * times
        self.n_steps = steps
        self.mem_deltas = tuple(sorted(mem_flat.items()))
        #: Module-relative pair deltas (both kinds): absolute index is
        #: ``base + module.idx`` — the flush loop's single form.
        self.base_deltas = tuple(sorted(pair.items()))
        if module is None:
            self.rel_deltas = self.base_deltas
            self.pair_deltas = ()
            self.max_index = max(pair) + N_MODULES - 1
        else:
            midx = module.idx
            self.pair_deltas = tuple(sorted(
                (base + midx, times) for base, times in pair.items()))
            self.rel_deltas = ()
            self.max_index = max(index for index, _ in self.pair_deltas)
        # Deferred-billing identity, assigned by the table build below:
        # ``slot`` indexes the collector's _fused_counts list for static
        # specs (module baked in); ``sid6 + ambient module.idx`` for
        # dynamic ones.
        self.sid = -1
        self.sid6 = -1
        self.slot = -1

    def replay(self, stats) -> None:
        """Apply the *unfused* equivalent emission run to ``stats``.

        Uses only the batched base-collector entry points
        (``emit_in``/``emit``/``mem_access_n``), so it lands every count
        in exactly the buckets the reference per-op loop would.  For a
        static spec the caller must have ``stats.module`` set to the
        spec's module (true at every machine call site); dynamic specs
        bill under the ambient module by construction.
        """
        module = self.module
        if module is not None:
            for routine, times in self.emissions:
                stats.emit_in(module, routine, times)
        else:
            for routine, times in self.emissions:
                stats.emit(routine, times)
        for cmd, area, times in self.mem_ops:
            stats.mem_access_n(cmd, area, times)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        scope = self.module.value if self.module is not None else "*"
        return f"Superinstruction({self.name!r}, module={scope}, steps={self.n_steps})"


def _build(name: str, spec: dict) -> Superinstruction:
    registry = micro.all_routines()
    module = _MODULE_BY_VALUE[spec["module"]] if spec["module"] else None
    emissions = tuple((registry[rname], times) for rname, times in spec["emit"])
    mem_ops = tuple((_CMD_BY_VALUE[cmd], _AREA_INDEX[area], times)
                    for cmd, area, times in spec.get("mem", ()))
    return Superinstruction(name, module, emissions, mem_ops)


#: Every superinstruction the machine's fused dispatch binds by name.
#: The generator must always produce these; a missing key fails the
#: import loudly rather than silently degrading to the per-op loop.
REQUIRED = (
    "call_dispatch", "cp_push_frame", "clause_try", "clause_frame",
    "proceed_resume", "fail", "cp_restore_resume", "untrail_entry",
    "trail_push", "fetch_decode", "fetch_decode_packed", "fetch_struct",
    "fetch_struct_packed", "bind_skip", "push_var", "build_list",
    "get_arg", "get_arg_packed", "get_arg_void", "get_arg_var_buf",
    "get_arg_var_buf_base", "get_arg_var_mem", "get_arg_var_buf_packed",
    "get_arg_var_buf_base_packed", "get_arg_var_mem_packed",
    "deref_buf", "deref_buf_base",
    "deref_read/heap", "deref_read/global", "deref_read/local",
    "deref_read/control", "deref_read/trail",
)

SUPERINSTRUCTIONS: dict[str, Superinstruction] = {
    name: _build(name, spec) for name, spec in SPECS.items()
}

#: Superinstructions by ``sid`` — the flush loop's decode table.
BY_SID: tuple[Superinstruction, ...] = tuple(SUPERINSTRUCTIONS.values())
for _sid, _si in enumerate(BY_SID):
    _si.sid = _sid
    _si.sid6 = _sid * N_MODULES
    _si.slot = (_si.sid6 + _si.module.idx
                if _si.module is not None else _si.sid6)
del _sid, _si


def slot_space() -> int:
    """Size of the deferred fused-billing count list (sid × module)."""
    return len(BY_SID) * N_MODULES

_missing = [name for name in REQUIRED if name not in SUPERINSTRUCTIONS]
if _missing:  # pragma: no cover - generator contract
    raise ImportError(f"fused_table is missing required specs: {_missing}")

#: Per-area deref-step superinstructions, indexed by the int area value.
DEREF_BY_AREA = tuple(SUPERINSTRUCTIONS[f"deref_read/{area}"]
                      for area in ("heap", "global", "local",
                                   "control", "trail"))

#: Mined per-``nlocals`` clause-activation specialisations
#: (clause try + frame allocate + buffer switch + slot inits fused).
FRAME_BY_NLOCALS = {
    n: SUPERINSTRUCTIONS[f"clause_frame/{n}"] for n in FRAME_NLOCALS
}
