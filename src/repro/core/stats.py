"""Execution statistics collector — the model of the COLLECT tool.

The collector counts *routine emissions* keyed by the interpreter
module that was active when they were emitted.  Because each
:class:`~repro.core.micro.MicroRoutine` precomputes the per-field
histograms of its steps, every statistic in the paper's Tables 2, 3, 6
and 7 is reconstructed exactly from the emission counters at reporting
time; nothing is sampled.

Memory accesses arrive through :meth:`mem_access` (called by
:class:`~repro.core.memory.MemorySystem`): they bill one
microinstruction carrying the cache command and are additionally
tallied per (command, area) for Tables 3 and 4.

Hot-path representation: emissions accumulate in flat per-id count
lists — ``_pair_counts`` indexed by ``routine.pair_base + module.idx``
and ``_mem_counts`` indexed by ``cmd.code * N_AREAS + area`` — so one
emission is one list-index increment, with no tuple allocation and no
enum hashing.  The reporting views :attr:`routine_counts` and
:attr:`mem_counts` fold the flat lists back into the ``(Module,
MicroRoutine)`` / ``(CacheCmd, Area)`` ``Counter``\\ s every consumer
(tables, MAP tool, tests) always saw; the fold is exact, so the
equivalence contract (``tests/core/test_stream_equivalence.py``) holds
bit-for-bit.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core import micro as _micro
from repro.core.micro import (
    CMD_BY_CODE,
    MEM_PAIR_BASE,
    MODULE_BY_INDEX,
    N_MODULES,
    NO_OPERATION_OPS,
    BranchOp,
    CacheCmd,
    MicroRoutine,
    Module,
    WFMode,
)

#: Number of memory areas (:class:`repro.core.memory.Area`); kept as a
#: literal here to avoid a circular import — guarded by a test.
N_AREAS = 5


def _fusion_slot_space() -> int:
    """Deferred fused-billing slot count (lazy import: the fusion table
    builds on top of the micro registry, which this module also feeds)."""
    from repro.core import fusion
    return fusion.slot_space()


class StatsCollector:
    """Accumulates microinstruction-stream statistics for one run."""

    __slots__ = ("module", "predicate", "inferences", "builtin_calls",
                 "_pair_counts", "_mem_counts", "_fused_counts")

    def __init__(self) -> None:
        self.module: Module = Module.CONTROL
        #: The workload predicate currently being resolved
        #: (``functor/arity``), published by the machine at call,
        #: proceed and backtrack boundaries.  The base collector only
        #: stores it; the observability layer
        #: (:class:`repro.obs.session.ObservedStatsCollector`) reads it
        #: on every emission to attribute microsteps per predicate.
        self.predicate: str = "(startup)"
        self.inferences = 0                            # user-predicate calls (LIPS)
        self.builtin_calls = 0
        self._pair_counts: list[int] = [0] * _micro.pair_space()
        self._mem_counts: list[int] = [0] * (len(CMD_BY_CODE) * N_AREAS)
        self._fused_counts: list[int] = [0] * _fusion_slot_space()

    # -- recording -----------------------------------------------------------

    def emit(self, routine: MicroRoutine, times: int = 1) -> None:
        """Record ``times`` executions of ``routine`` in the current module."""
        index = routine.pair_base + self.module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times

    def emit_in(self, module: Module, routine: MicroRoutine, times: int = 1) -> None:
        index = routine.pair_base + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times

    def mem_access(self, cmd: CacheCmd, area) -> None:
        code = cmd.code
        self._mem_counts[code * N_AREAS + area] += 1
        index = MEM_PAIR_BASE[code] + self.module.idx
        try:
            self._pair_counts[index] += 1
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += 1

    def mem_access_n(self, cmd: CacheCmd, area, times: int) -> None:
        """Batched :meth:`mem_access`: ``times`` identical accesses.

        Used by the fused :class:`~repro.core.memory.MemorySystem`
        block paths (control-frame pushes, frame flushes, resume
        reads); equivalent to calling :meth:`mem_access` ``times``
        times.
        """
        code = cmd.code
        self._mem_counts[code * N_AREAS + area] += times
        index = MEM_PAIR_BASE[code] + self.module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times

    def emit_fused(self, fused) -> None:
        """Bill one static :class:`~repro.core.fusion.Superinstruction`.

        Deferred: one list-index increment now, the precomputed
        pair/memory deltas folded in by :meth:`_flush_fused` the first
        time any reporting view is read.  Counter billing is order-free
        (only the *final* counts are observable), so deferral is exactly
        equivalent to replaying the run through
        :meth:`emit_in`/:meth:`mem_access_n` — guarded by
        ``tests/core/test_fusion.py`` and the golden digests.

        The machine's fused dispatch sites inline this increment
        directly (the fused gate guarantees the exact base class), so
        this method is the API for tests and out-of-machine callers.
        """
        self._fused_counts[fused.slot] += 1

    def emit_fused_dyn(self, fused) -> None:
        """Bill a dynamic superinstruction under the current module.

        Like :meth:`emit_fused` but the slot is module-relative: the
        ambient module at *emission* time decides which (sid, module)
        cell accumulates, which is all the flush needs to reconstruct
        the absolute pair indices.
        """
        self._fused_counts[fused.sid6 + self.module.idx] += 1

    def _flush_fused(self) -> None:
        """Fold accumulated fused billings into the flat counters.

        Called by every reporting view before it reads the flat lists.
        Idempotent (the deferred list is zeroed) and cheap: the scan is
        over a few hundred ints, once per report, not per emission.
        """
        fc = self._fused_counts
        pending = [(slot, n) for slot, n in enumerate(fc) if n]
        if not pending:
            return
        from repro.core import fusion
        by_sid = fusion.BY_SID
        fc[:] = [0] * len(fc)
        counts = self._pair_counts
        mem = self._mem_counts
        for slot, n in pending:
            si = by_sid[slot // N_MODULES]
            midx = slot % N_MODULES
            if si.max_index >= len(counts):
                self._grow_pairs(si.max_index)
            for base, times in si.base_deltas:
                counts[base + midx] += times * n
            for index, times in si.mem_deltas:
                mem[index] += times * n

    def _grow_pairs(self, index: int) -> None:
        """Extend the flat pair list (a routine was defined after this
        collector was constructed — test-defined routines)."""
        counts = self._pair_counts
        need = max(_micro.pair_space(), index + 1)
        counts.extend([0] * (need - len(counts)))

    # -- reporting views ---------------------------------------------------------

    @property
    def routine_counts(self) -> Counter:
        """``(Module, MicroRoutine) -> n`` fold of the flat counters.

        Rebuilt on access (reporting-time only); mutations to the
        returned Counter do not feed back into the collector.
        """
        self._flush_fused()
        counts: Counter = Counter()
        modules = MODULE_BY_INDEX
        routines = _micro.routines_by_rid()
        for index, n in enumerate(self._pair_counts):
            if n:
                counts[(modules[index % N_MODULES],
                        routines[index // N_MODULES])] = n
        return counts

    @property
    def mem_counts(self) -> Counter:
        """``(CacheCmd, Area) -> n`` fold of the flat counters."""
        from repro.core.memory import Area
        self._flush_fused()
        counts: Counter = Counter()
        areas = tuple(Area)
        for index, n in enumerate(self._mem_counts):
            if n:
                counts[(CMD_BY_CODE[index // N_AREAS],
                        areas[index % N_AREAS])] = n
        return counts

    # -- derived statistics -----------------------------------------------------

    @property
    def total_steps(self) -> int:
        self._flush_fused()
        routines = _micro.routines_by_rid()
        return sum(routines[index // N_MODULES].n_steps * n
                   for index, n in enumerate(self._pair_counts) if n)

    def module_steps(self) -> dict[Module, int]:
        """Microinstruction steps per interpreter module (Table 2 numerators)."""
        steps: Counter = Counter()
        for (module, routine), n in self.routine_counts.items():
            steps[module] += routine.n_steps * n
        return dict(steps)

    def module_ratios(self) -> dict[Module, float]:
        total = self.total_steps
        if total == 0:
            return {module: 0.0 for module in Module}
        steps = self.module_steps()
        return {module: 100.0 * steps.get(module, 0) / total for module in Module}

    def cache_command_counts(self) -> dict[CacheCmd, int]:
        """Total accesses per cache command (Table 3 numerators)."""
        self._flush_fused()
        counts = self._mem_counts
        return {cmd: sum(counts[cmd.code * N_AREAS:(cmd.code + 1) * N_AREAS])
                for cmd in CacheCmd}

    def cache_command_ratios(self) -> dict[CacheCmd, float]:
        """Table 3: cache command steps as % of all microinstruction steps."""
        total = self.total_steps
        if total == 0:
            return {cmd: 0.0 for cmd in CacheCmd}
        counts = self.cache_command_counts()
        return {cmd: 100.0 * counts[cmd] / total for cmd in CacheCmd}

    def area_access_counts(self) -> Counter:
        """Accesses per memory area (Table 4 numerators)."""
        counts: Counter = Counter()
        for (_cmd, area), n in self.mem_counts.items():
            counts[area] += n
        return counts

    def area_access_ratios(self) -> dict:
        """Table 4: % of all memory accesses going to each area."""
        counts = self.area_access_counts()
        total = sum(counts.values())
        if total == 0:
            return {}
        return {area: 100.0 * n / total for area, n in counts.items()}

    @property
    def total_mem_accesses(self) -> int:
        self._flush_fused()
        return sum(self._mem_counts)

    # -- work file (Table 6) -------------------------------------------------------

    def wf_field_counts(self) -> dict[str, Counter]:
        """Access-mode histograms for the three WF-controlling fields."""
        fields = {"source1": Counter(), "source2": Counter(), "dest": Counter()}
        for (_, routine), n in self.routine_counts.items():
            for mode, c in routine.wf1_counts.items():
                fields["source1"][mode] += c * n
            for mode, c in routine.wf2_counts.items():
                fields["source2"][mode] += c * n
            for mode, c in routine.dest_counts.items():
                fields["dest"][mode] += c * n
        return fields

    def wf_table(self) -> dict[str, dict[WFMode, tuple[float, float]]]:
        """Table 6: per field, per mode, (% of WF accesses in that field,
        % of total microinstruction steps)."""
        fields = self.wf_field_counts()
        total_steps = self.total_steps or 1
        table: dict[str, dict[WFMode, tuple[float, float]]] = {}
        for field, counts in fields.items():
            field_total = sum(counts.values()) or 1
            table[field] = {
                mode: (100.0 * counts[mode] / field_total,
                       100.0 * counts[mode] / total_steps)
                for mode in WFMode
            }
        return table

    def wf_field_totals(self) -> dict[str, float]:
        """Per-field WF access rate as % of total steps (Table 6 'total' row)."""
        fields = self.wf_field_counts()
        total_steps = self.total_steps or 1
        return {field: 100.0 * sum(counts.values()) / total_steps
                for field, counts in fields.items()}

    def wfar_auto_increment_ratio(self) -> float:
        """Fraction of WFAR indirect accesses using auto increment/decrement."""
        accesses = 0
        auto = 0
        for (_, routine), n in self.routine_counts.items():
            accesses += routine.wfar_accesses * n
            auto += routine.wfar_auto_inc * n
        return auto / accesses if accesses else 0.0

    # -- branches (Table 7) ----------------------------------------------------------

    def branch_counts(self) -> Counter:
        counts: Counter = Counter()
        for (_, routine), n in self.routine_counts.items():
            for op, c in routine.branch_counts.items():
                counts[op] += c * n
        return counts

    def branch_ratios(self) -> dict[BranchOp, float]:
        """Table 7: % of steps whose branch field holds each operation."""
        counts = self.branch_counts()
        total = sum(counts.values()) or 1
        return {op: 100.0 * counts.get(op, 0) / total for op in BranchOp}

    def branch_operation_rate(self) -> float:
        """% of steps containing a real branch operation (non-No-Operation)."""
        counts = self.branch_counts()
        total = sum(counts.values()) or 1
        noop = sum(counts.get(op, 0) for op in NO_OPERATION_OPS)
        return 100.0 * (total - noop) / total

    # -- checkpoint hook -------------------------------------------------------------

    def state(self) -> dict:
        """Portable plain-data snapshot of the collector (JSON-safe).

        The state-log header (:mod:`repro.obs.statelog`) embeds this so
        a recorded debugging session carries the run's aggregate
        context — total steps, inferences, per-module step split —
        alongside the per-checkpoint machine states.  Keys are strings
        (``"module:routine"`` / ``"command:area"``), values ints, so
        the dict round-trips through JSON without custom coding.
        """
        from repro.core.memory import AREAS
        return {
            "module": self.module.value,
            "predicate": self.predicate,
            "inferences": self.inferences,
            "builtin_calls": self.builtin_calls,
            "total_steps": self.total_steps,
            "routine_counts": {
                f"{module.value}:{routine.name}": n
                for (module, routine), n in sorted(
                    self.routine_counts.items(),
                    key=lambda item: (item[0][0].value, item[0][1].name))},
            "mem_counts": {
                f"{cmd.value}:{AREAS[area].label}": n
                for (cmd, area), n in sorted(
                    self.mem_counts.items(),
                    key=lambda item: (item[0][0].code, int(item[0][1])))},
        }

    # -- misc ------------------------------------------------------------------------

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's counts into this one.

        Goes through the portable ``routine_counts``/``mem_counts``
        views (not the flat lists) so it is independent of the other
        collector's internal id assignment.
        """
        for (module, routine), n in other.routine_counts.items():
            self.emit_in(module, routine, n)
        for (cmd, area), n in other.mem_counts.items():
            self._mem_counts[cmd.code * N_AREAS + area] += n
        self.inferences += other.inferences
        self.builtin_calls += other.builtin_calls

    # -- pickling ---------------------------------------------------------------------
    #
    # Serialised in the portable Counter form (routines pickle by
    # registry name, enums by member name) rather than the flat lists,
    # so payloads stay compact (non-zero entries only) and independent
    # of routine id assignment order.

    def __getstate__(self) -> dict:
        return {
            "module": self.module,
            "predicate": self.predicate,
            "inferences": self.inferences,
            "builtin_calls": self.builtin_calls,
            "routine_counts": self.routine_counts,
            "mem_counts": self.mem_counts,
        }

    def __setstate__(self, state: dict) -> None:
        self.module = state["module"]
        self.predicate = state["predicate"]
        self.inferences = state["inferences"]
        self.builtin_calls = state["builtin_calls"]
        self._pair_counts = [0] * _micro.pair_space()
        self._mem_counts = [0] * (len(CMD_BY_CODE) * N_AREAS)
        self._fused_counts = [0] * _fusion_slot_space()
        for (module, routine), n in state["routine_counts"].items():
            self.emit_in(module, routine, n)
        for (cmd, area), n in state["mem_counts"].items():
            self._mem_counts[cmd.code * N_AREAS + area] += n


@dataclass
class NullStats:
    """Stats stub that ignores everything (for semantics-only test runs)."""

    module: Module = Module.CONTROL
    predicate: str = "(startup)"
    inferences: int = 0
    builtin_calls: int = 0

    def emit(self, routine, times: int = 1) -> None:
        pass

    def emit_in(self, module, routine, times: int = 1) -> None:
        pass

    def mem_access(self, cmd, area) -> None:
        pass

    def mem_access_n(self, cmd, area, times: int) -> None:
        pass

    def emit_fused(self, fused) -> None:
        pass

    def emit_fused_dyn(self, fused) -> None:
        pass
