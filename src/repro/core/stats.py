"""Execution statistics collector — the model of the COLLECT tool.

The collector counts *routine emissions* keyed by the interpreter
module that was active when they were emitted.  Because each
:class:`~repro.core.micro.MicroRoutine` precomputes the per-field
histograms of its steps, every statistic in the paper's Tables 2, 3, 6
and 7 is reconstructed exactly from the emission counters at reporting
time; nothing is sampled.

Memory accesses arrive through :meth:`mem_access` (called by
:class:`~repro.core.memory.MemorySystem`): they bill one
microinstruction carrying the cache command and are additionally
tallied per (command, area) for Tables 3 and 4.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.micro import (
    NO_OPERATION_OPS,
    BranchOp,
    CacheCmd,
    MicroRoutine,
    Module,
    WFMode,
    MEM_ROUTINES,
)


class StatsCollector:
    """Accumulates microinstruction-stream statistics for one run."""

    def __init__(self) -> None:
        self.module: Module = Module.CONTROL
        #: The workload predicate currently being resolved
        #: (``functor/arity``), published by the machine at call,
        #: proceed and backtrack boundaries.  The base collector only
        #: stores it; the observability layer
        #: (:class:`repro.obs.session.ObservedStatsCollector`) reads it
        #: on every emission to attribute microsteps per predicate.
        self.predicate: str = "(startup)"
        self.routine_counts: Counter = Counter()       # (Module, MicroRoutine) -> n
        self.mem_counts: Counter = Counter()           # (CacheCmd, Area) -> n
        self.inferences = 0                            # user-predicate calls (LIPS)
        self.builtin_calls = 0
        self.enabled = True

    # -- recording -----------------------------------------------------------

    def emit(self, routine: MicroRoutine, times: int = 1) -> None:
        """Record ``times`` executions of ``routine`` in the current module."""
        self.routine_counts[(self.module, routine)] += times

    def emit_in(self, module: Module, routine: MicroRoutine, times: int = 1) -> None:
        self.routine_counts[(module, routine)] += times

    def mem_access(self, cmd: CacheCmd, area) -> None:
        self.mem_counts[(cmd, area)] += 1
        self.routine_counts[(self.module, MEM_ROUTINES[cmd])] += 1

    # -- derived statistics -----------------------------------------------------

    @property
    def total_steps(self) -> int:
        return sum(routine.n_steps * n
                   for (_, routine), n in self.routine_counts.items())

    def module_steps(self) -> dict[Module, int]:
        """Microinstruction steps per interpreter module (Table 2 numerators)."""
        steps: Counter = Counter()
        for (module, routine), n in self.routine_counts.items():
            steps[module] += routine.n_steps * n
        return dict(steps)

    def module_ratios(self) -> dict[Module, float]:
        total = self.total_steps
        if total == 0:
            return {module: 0.0 for module in Module}
        steps = self.module_steps()
        return {module: 100.0 * steps.get(module, 0) / total for module in Module}

    def cache_command_counts(self) -> dict[CacheCmd, int]:
        """Total accesses per cache command (Table 3 numerators)."""
        counts: Counter = Counter()
        for (cmd, _area), n in self.mem_counts.items():
            counts[cmd] += n
        return {cmd: counts.get(cmd, 0) for cmd in CacheCmd}

    def cache_command_ratios(self) -> dict[CacheCmd, float]:
        """Table 3: cache command steps as % of all microinstruction steps."""
        total = self.total_steps
        if total == 0:
            return {cmd: 0.0 for cmd in CacheCmd}
        counts = self.cache_command_counts()
        return {cmd: 100.0 * counts[cmd] / total for cmd in CacheCmd}

    def area_access_counts(self) -> Counter:
        """Accesses per memory area (Table 4 numerators)."""
        counts: Counter = Counter()
        for (_cmd, area), n in self.mem_counts.items():
            counts[area] += n
        return counts

    def area_access_ratios(self) -> dict:
        """Table 4: % of all memory accesses going to each area."""
        counts = self.area_access_counts()
        total = sum(counts.values())
        if total == 0:
            return {}
        return {area: 100.0 * n / total for area, n in counts.items()}

    @property
    def total_mem_accesses(self) -> int:
        return sum(self.mem_counts.values())

    # -- work file (Table 6) -------------------------------------------------------

    def wf_field_counts(self) -> dict[str, Counter]:
        """Access-mode histograms for the three WF-controlling fields."""
        fields = {"source1": Counter(), "source2": Counter(), "dest": Counter()}
        for (_, routine), n in self.routine_counts.items():
            for mode, c in routine.wf1_counts.items():
                fields["source1"][mode] += c * n
            for mode, c in routine.wf2_counts.items():
                fields["source2"][mode] += c * n
            for mode, c in routine.dest_counts.items():
                fields["dest"][mode] += c * n
        return fields

    def wf_table(self) -> dict[str, dict[WFMode, tuple[float, float]]]:
        """Table 6: per field, per mode, (% of WF accesses in that field,
        % of total microinstruction steps)."""
        fields = self.wf_field_counts()
        total_steps = self.total_steps or 1
        table: dict[str, dict[WFMode, tuple[float, float]]] = {}
        for field, counts in fields.items():
            field_total = sum(counts.values()) or 1
            table[field] = {
                mode: (100.0 * counts[mode] / field_total,
                       100.0 * counts[mode] / total_steps)
                for mode in WFMode
            }
        return table

    def wf_field_totals(self) -> dict[str, float]:
        """Per-field WF access rate as % of total steps (Table 6 'total' row)."""
        fields = self.wf_field_counts()
        total_steps = self.total_steps or 1
        return {field: 100.0 * sum(counts.values()) / total_steps
                for field, counts in fields.items()}

    def wfar_auto_increment_ratio(self) -> float:
        """Fraction of WFAR indirect accesses using auto increment/decrement."""
        accesses = 0
        auto = 0
        for (_, routine), n in self.routine_counts.items():
            accesses += routine.wfar_accesses * n
            auto += routine.wfar_auto_inc * n
        return auto / accesses if accesses else 0.0

    # -- branches (Table 7) ----------------------------------------------------------

    def branch_counts(self) -> Counter:
        counts: Counter = Counter()
        for (_, routine), n in self.routine_counts.items():
            for op, c in routine.branch_counts.items():
                counts[op] += c * n
        return counts

    def branch_ratios(self) -> dict[BranchOp, float]:
        """Table 7: % of steps whose branch field holds each operation."""
        counts = self.branch_counts()
        total = sum(counts.values()) or 1
        return {op: 100.0 * counts.get(op, 0) / total for op in BranchOp}

    def branch_operation_rate(self) -> float:
        """% of steps containing a real branch operation (non-No-Operation)."""
        counts = self.branch_counts()
        total = sum(counts.values()) or 1
        noop = sum(counts.get(op, 0) for op in NO_OPERATION_OPS)
        return 100.0 * (total - noop) / total

    # -- misc ------------------------------------------------------------------------

    def merge(self, other: "StatsCollector") -> None:
        """Fold another collector's counts into this one."""
        self.routine_counts.update(other.routine_counts)
        self.mem_counts.update(other.mem_counts)
        self.inferences += other.inferences
        self.builtin_calls += other.builtin_calls


@dataclass
class NullStats:
    """Stats stub that ignores everything (for semantics-only test runs)."""

    module: Module = Module.CONTROL
    predicate: str = "(startup)"
    inferences: int = 0
    builtin_calls: int = 0

    def emit(self, routine, times: int = 1) -> None:
        pass

    def emit_in(self, module, routine, times: int = 1) -> None:
        pass

    def mem_access(self, cmd, area) -> None:
        pass
