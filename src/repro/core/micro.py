"""Microinstruction-level accounting model of the PSI.

The PSI executes KL0 with a microprogrammed interpreter; the paper's
Tables 2, 3, 6 and 7 are dynamic frequencies over the executed
*microinstruction stream*.  We do not emulate 64-bit horizontal
microcode words bit-for-bit; instead every primitive action of the
interpreter (:mod:`repro.core.machine`) is declared here as a
:class:`MicroRoutine` — an ordered list of microinstruction *templates*
carrying the fields those tables sample:

* the interpreter **module** the step belongs to (Table 2) — supplied
  by the engine as execution context, because e.g. a dereference step
  counts as ``unify`` during head unification but as ``built`` inside a
  builtin;
* the **work file access modes** used by the Source-1, Source-2 and
  Destination microinstruction fields (Table 6);
* the **branch field operation** (Table 7);
* optionally a **cache command** — but memory traffic is emitted by
  :mod:`repro.core.memory` with real addresses, as one-step routines
  (``R_MEM_*``), so that cache-command frequency (Table 3), per-area
  frequency (Table 4) and the trace fed to the cache simulator
  (Table 5 / Figure 1) all come from genuine addresses.

Because a routine's field histogram is precomputed once, the stats
collector only counts *routine emissions*; all table statistics are
reconstructed exactly at reporting time.  This keeps the interpreter
fast enough for the practical-scale workloads while remaining fully
deterministic and auditable: every number in Tables 2/3/6/7 traces back
to the template lists in this file plus the dynamic behaviour of the
program.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import Iterable


class Module(Enum):
    """Firmware interpreter component modules (Table 2).

    Members carry a dense ``idx`` (0..5, definition order) used by the
    interned hot-path counters in :mod:`repro.core.stats`, and hash by
    identity (members are singletons, so identity hashing is consistent
    with ``Enum``'s identity equality) — ``Enum.__hash__`` is a
    Python-level name hash and shows up in interpreter profiles.
    """

    CONTROL = "control"
    UNIFY = "unify"
    TRAIL = "trail"
    GET_ARG = "get_arg"
    CUT = "cut"
    BUILT = "built"

    __hash__ = object.__hash__


#: Number of interpreter modules; the stride of the interned
#: (routine, module) pair index space (see ``MicroRoutine.pair_base``).
N_MODULES = len(Module)
MODULE_BY_INDEX = tuple(Module)
for _i, _module in enumerate(MODULE_BY_INDEX):
    _module.idx = _i
del _i, _module


class CacheCmd(Enum):
    """Cache commands issued by microinstructions (Table 3).

    ``WRITE_STACK`` is the PSI's specialised write command that skips
    block read-in on a write miss; the interpreter uses it for pushes
    to the tops of stacks.  ``code`` is the member's dense 2-bit
    encoding (definition order), shared with the packed
    :class:`~repro.core.memory.TraceRecorder` entry format.
    """

    READ = "read"
    WRITE = "write"
    WRITE_STACK = "write-stack"

    __hash__ = object.__hash__


CMD_BY_CODE = tuple(CacheCmd)
for _i, _cmd in enumerate(CMD_BY_CODE):
    _cmd.code = _i
del _i, _cmd


class WFMode(Enum):
    """Work file access modes (Table 6 rows)."""

    WF00_0F = "WF00-0F"        # first 16 words, dual-ported
    WF10_3F = "WF10-3F"        # rest of the direct-addressable 64 words
    CONSTANT = "Constant"      # the 64-word constant storage area
    PDR_CDR = "@PDR/CDR"       # base-relative via PDR or CDR low bits
    WFAR1 = "@WFAR1"           # indirect via work file address register 1
    WFAR2 = "@WFAR2"           # indirect via work file address register 2
    WFCBR = "@WFCBR"           # base-relative via the control base register


class BranchOp(Enum):
    """Branch-field operations (Table 7).  Exactly one per microstep."""

    # Type 1
    NOP1 = "no operation (1)"
    IF_COND = "if (cond) then"
    IF_NOT_COND = "if (not(cond)) then"
    IF_TAG = "if tag(src2) then"
    CASE_TAG = "case (tag(n,P/CDR))"
    CASE_IRN = "case (irn)"
    CASE_OPCODE = "case (ir-opcode)"
    GOTO1 = "goto (1)"
    GOSUB = "gosub"
    RETURN = "return"
    LOAD_JR = "load-jr"
    GOTO_JR1 = "goto @jr (1)"
    # Type 2
    NOP2 = "no operation (2)"
    GOTO2 = "goto (2)"
    # Type 3
    NOP3 = "no operation (3)"
    GOTO_JR3 = "goto @jr (3)"


#: Table 7 groups its 16 operations into three instruction types.
BRANCH_TYPE = {
    BranchOp.NOP1: 1, BranchOp.IF_COND: 1, BranchOp.IF_NOT_COND: 1,
    BranchOp.IF_TAG: 1, BranchOp.CASE_TAG: 1, BranchOp.CASE_IRN: 1,
    BranchOp.CASE_OPCODE: 1, BranchOp.GOTO1: 1, BranchOp.GOSUB: 1,
    BranchOp.RETURN: 1, BranchOp.LOAD_JR: 1, BranchOp.GOTO_JR1: 1,
    BranchOp.NOP2: 2, BranchOp.GOTO2: 2,
    BranchOp.NOP3: 3, BranchOp.GOTO_JR3: 3,
}

NO_OPERATION_OPS = frozenset({BranchOp.NOP1, BranchOp.NOP2, BranchOp.NOP3})


@dataclass(frozen=True, slots=True)
class MicroStep:
    """One microinstruction template: the fields the console tools sample."""

    wf1: WFMode | None = None       # Source-1 field (ALU input 1)
    wf2: WFMode | None = None       # Source-2 field (ALU input 2); dual-port words only
    dest: WFMode | None = None      # Destination field (ALU output bus)
    br: BranchOp = BranchOp.NOP1
    auto_inc: bool = False          # WFAR access used the auto increment/decrement

    def __post_init__(self) -> None:
        if self.wf2 is not None and self.wf2 is not WFMode.WF00_0F:
            raise ValueError("Source-2 can only read the dual-ported words WF00-0F")


def S(wf1: WFMode | None = None, wf2: WFMode | None = None,
      dest: WFMode | None = None, br: BranchOp = BranchOp.NOP1,
      auto_inc: bool = False) -> MicroStep:
    """Shorthand constructor used by the routine tables below."""
    return MicroStep(wf1, wf2, dest, br, auto_inc)


class MicroRoutine:
    """A named, fixed sequence of microinstruction templates.

    The per-field histograms are precomputed so emitting a routine is a
    single counter increment in the stats collector.  Every routine
    additionally receives a dense id ``rid`` at construction and a
    precomputed ``pair_base = rid * N_MODULES``: the stats collector
    accumulates emissions in a flat list indexed by
    ``pair_base + module.idx`` instead of hashing ``(Module,
    MicroRoutine)`` tuples on every emission.
    """

    __slots__ = ("name", "steps", "n_steps", "wf1_counts", "wf2_counts",
                 "dest_counts", "branch_counts", "wfar_accesses",
                 "wfar_auto_inc", "rid", "pair_base")

    def __init__(self, name: str, steps: Iterable[MicroStep]):
        self.name = name
        self.rid = len(_ALL_ROUTINES)
        self.pair_base = self.rid * N_MODULES
        _ALL_ROUTINES.append(self)
        self.steps = tuple(steps)
        if not self.steps:
            raise ValueError(f"routine {name!r} must have at least one step")
        self.n_steps = len(self.steps)
        self.wf1_counts = Counter(s.wf1 for s in self.steps if s.wf1 is not None)
        self.wf2_counts = Counter(s.wf2 for s in self.steps if s.wf2 is not None)
        self.dest_counts = Counter(s.dest for s in self.steps if s.dest is not None)
        self.branch_counts = Counter(s.br for s in self.steps)
        indirect = (WFMode.WFAR1, WFMode.WFAR2)
        self.wfar_accesses = sum(
            1 for s in self.steps
            for mode in (s.wf1, s.dest) if mode in indirect)
        self.wfar_auto_inc = sum(
            1 for s in self.steps if s.auto_inc
            for mode in (s.wf1, s.dest) if mode in indirect)

    def __repr__(self) -> str:
        return f"MicroRoutine({self.name!r}, {self.n_steps} steps)"

    def __reduce__(self):
        # Routines are registered singletons; pickling by name keeps run
        # summaries compact and — crucially — makes counters keyed by
        # routine objects merge correctly after crossing a process
        # boundary (identity, not a copy, comes back).
        return (_registered, (self.name,))


#: Every constructed routine in ``rid`` order (registered or not); the
#: fold from flat count lists back to ``(Module, MicroRoutine)``
#: counters indexes this.
_ALL_ROUTINES: list["MicroRoutine"] = []

_REGISTRY: dict[str, MicroRoutine] = {}


def pair_space() -> int:
    """Size of the flat (routine, module) pair index space."""
    return len(_ALL_ROUTINES) * N_MODULES


def routines_by_rid() -> list["MicroRoutine"]:
    """Live view of every constructed routine, indexed by ``rid``."""
    return _ALL_ROUTINES


def _registered(name: str) -> "MicroRoutine":
    """Unpickling hook: resolve a routine name to the registry object."""
    return _REGISTRY[name]


def routine(name: str, steps: Iterable[MicroStep]) -> MicroRoutine:
    """Define and register a routine (names must be unique)."""
    if name in _REGISTRY:
        raise ValueError(f"duplicate routine name {name!r}")
    r = MicroRoutine(name, steps)
    _REGISTRY[name] = r
    return r


def all_routines() -> dict[str, MicroRoutine]:
    """A copy of the registry, for the MAP tool and tests."""
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Routine library.
#
# Shorthand used in the comments: "wf" columns are (source1, source2, dest).
# Typical field usage, mirroring the published interpreter:
#  * interpreter state registers (argument registers, stack top pointers,
#    mode flags) live in WF00-0F (dual ported);
#  * scratch registers and saved values live in WF10-3F;
#  * tag masks and small constants come from the Constant area;
#  * current local frame (frame buffer) accesses use @WFAR1 or @PDR/CDR;
#  * trail buffer bookkeeping uses @WFAR2; general WF pointers use @WFCBR.
# ---------------------------------------------------------------------------

W0 = WFMode.WF00_0F
W1 = WFMode.WF10_3F
CON = WFMode.CONSTANT
PC = WFMode.PDR_CDR
A1 = WFMode.WFAR1
A2 = WFMode.WFAR2
CBR = WFMode.WFCBR
B = BranchOp

# -- memory-access steps (emitted by MemorySystem, one per cache command) ---
# A cache command occupies one microinstruction: the address comes from a
# WF register on Source-1; the data travels via the memory data register
# (not the WF), and the step typically also tests cache status or chains
# to the consumer of the data.
R_MEM_READ = routine("mem.read", [S(br=B.IF_COND)])
R_MEM_WRITE = routine("mem.write", [S(wf2=W0, br=B.NOP1)])
R_MEM_WRITE_STACK = routine("mem.write_stack", [S(br=B.GOTO2)])

# -- instruction fetch / decode ---------------------------------------------
R_DECODE = routine("decode", [
    S(wf1=W1, dest=W1, br=B.CASE_TAG),
    S(wf1=W0, br=B.IF_NOT_COND),
])
R_DECODE_PACKED = routine("decode.packed", [
    S(wf1=W1, dest=W0, br=B.CASE_IRN),
    S(wf2=W0, br=B.IF_COND),
])
R_DECODE_OPCODE = routine("decode.opcode", [
    S(wf1=W1, br=B.CASE_OPCODE),
])

# -- goal / control flow ------------------------------------------------------
R_GOAL_FETCH = routine("control.goal_fetch", [
    S(wf1=W1, dest=W0, br=B.GOTO2),
    S(wf2=W0, br=B.IF_NOT_COND),
])
R_CALL_SETUP = routine("control.call_setup", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.GOSUB),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(wf1=CON, wf2=W0, dest=W0, br=B.NOP2),
    S(br=B.RETURN),
])
R_PROC_LOOKUP = routine("control.proc_lookup", [
    S(wf1=W0, wf2=W0, br=B.IF_NOT_COND),
    S(wf1=W1, dest=W1, br=B.LOAD_JR),
    S(br=B.GOTO_JR1),
])
R_CLAUSE_TRY = routine("control.clause_try", [
    S(wf1=W1, wf2=W0, dest=W0, br=B.IF_COND),
    S(wf1=CON, br=B.NOP3),
    S(br=B.GOTO2),
])
R_FRAME_ALLOC = routine("control.frame_alloc", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_NOT_COND),
    S(wf1=CON, dest=A1, br=B.NOP1, auto_inc=True),
    S(wf1=W1, br=B.GOTO2),
])
R_FRAME_INIT_SLOT = routine("control.frame_init_slot", [
    S(wf1=CON, dest=A1, br=B.NOP1, auto_inc=True),
])
R_ENV_PUSH = routine("control.env_push", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_NOT_COND),
    S(wf1=W1, br=B.GOSUB),
    S(wf1=W0, wf2=W0, dest=W0, br=B.NOP2),
    S(wf1=W1, dest=W1, br=B.RETURN),
])
R_ENV_POP = routine("control.env_pop", [
    S(wf1=W1, dest=W0, br=B.RETURN),
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(dest=W1, br=B.NOP3),
])
R_PROCEED = routine("control.proceed", [
    S(wf1=W0, br=B.RETURN),
    S(wf1=W1, dest=W0, br=B.NOP3),
    S(wf2=W0, br=B.GOTO2),
])
R_CP_PUSH = routine("control.cp_push", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_NOT_COND),
    S(wf1=W1, br=B.GOSUB),
    S(wf1=W0, dest=W0, br=B.IF_COND),
    S(wf1=CON, dest=W1, br=B.RETURN),
])
R_CP_RESTORE = routine("control.cp_restore", [
    S(wf1=W1, dest=W0, br=B.IF_COND),
    S(wf1=W0, wf2=W0, dest=W1, br=B.NOP2),
    S(wf1=W1, br=B.GOTO2),
])
R_BACKTRACK = routine("control.backtrack", [
    S(wf1=W0, wf2=W0, br=B.IF_NOT_COND),
    S(wf1=W0, dest=W1, br=B.GOTO1),
])
R_FAIL_DISPATCH = routine("control.fail_dispatch", [
    S(wf1=W0, br=B.IF_NOT_COND),
    S(wf1=CON, dest=W0, br=B.GOTO2),
])
R_TRO = routine("control.tro", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_COND),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(wf1=W0, dest=A1, br=B.GOTO2, auto_inc=True),
])
R_SWITCH_BUFFER = routine("control.switch_buffer", [
    S(wf1=CON, dest=W0, br=B.IF_NOT_COND),
    S(wf1=W0, br=B.NOP3),
])

# -- dereference / bind / trail ----------------------------------------------
R_DEREF_STEP = routine("unify.deref_step", [
    S(wf1=W1, dest=W1, br=B.CASE_TAG),
])
R_BIND = routine("unify.bind", [
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(wf1=W1, dest=W1, br=B.IF_NOT_COND),
    S(wf1=CON, br=B.NOP2),
    S(br=B.GOTO2),
])
R_BIND_CHECK = routine("unify.bind_check", [
    S(wf1=W0, wf2=W0, br=B.IF_NOT_COND),
])
R_TRAIL_PUSH = routine("trail.push", [
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(wf1=W0, dest=W1, br=B.NOP2),
])
R_TRAIL_SKIP = routine("trail.skip", [
    S(wf1=W0, wf2=W0, br=B.IF_NOT_COND),
])
R_UNTRAIL_ENTRY = routine("trail.untrail_entry", [
    S(wf1=W1, dest=W0, br=B.IF_COND),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(br=B.GOTO2),
])

# -- unification ---------------------------------------------------------------
R_UNIFY_DISPATCH = routine("unify.dispatch", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.CASE_TAG),
    S(wf1=W1, br=B.IF_TAG),
    S(dest=W0, br=B.IF_NOT_COND),
])
R_UNIFY_CONST = routine("unify.const", [
    S(wf1=W0, wf2=W0, br=B.IF_NOT_COND),
    S(wf1=CON, br=B.GOTO2),
])
R_UNIFY_LIST = routine("unify.list", [
    S(wf1=W0, dest=W1, br=B.IF_TAG),
    S(wf1=W1, wf2=W0, br=B.GOSUB),
    S(dest=W0, br=B.IF_COND),
    S(wf1=W1, wf2=W0, br=B.IF_NOT_COND),
    S(wf1=CON, br=B.NOP2),
])
R_UNIFY_STRUCT = routine("unify.struct", [
    S(wf1=W0, dest=W1, br=B.IF_TAG),
    S(wf1=W1, wf2=W0, br=B.IF_NOT_COND),
    S(wf1=W1, dest=W0, br=B.GOSUB),
    S(wf1=CON, br=B.IF_COND),
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_NOT_COND),
    S(wf1=W1, br=B.NOP2),
    S(dest=W1, br=B.GOTO2),
])
R_UNIFY_RETURN = routine("unify.return", [
    S(wf1=W0, br=B.RETURN),
])
R_BUILD_CELL = routine("unify.build_cell", [
    S(wf1=CON, wf2=W0, dest=W0, br=B.IF_NOT_COND),
    S(wf1=W1, dest=W1, br=B.IF_COND),
    S(wf1=W0, br=B.GOTO2),
])
R_BUILD_VAR = routine("unify.build_var", [
    S(wf1=W1, dest=W1, br=B.IF_COND),
])
R_OCCURS_STEP = routine("unify.walk_step", [
    S(wf1=W1, dest=W0, br=B.GOTO2),
])

# -- argument fetch (get_arg) -------------------------------------------------
R_GET_ARG = routine("get_arg.fetch", [
    S(wf1=W1, dest=W1, br=B.CASE_TAG),
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(dest=W0, br=B.IF_NOT_COND),
    S(wf1=W1, br=B.GOTO2),
])
R_GET_ARG_PACKED = routine("get_arg.packed", [
    S(wf1=W1, dest=W0, br=B.CASE_IRN),
    S(wf2=W0, br=B.IF_COND),
])
R_GET_ARG_VAR_BUF = routine("get_arg.var_buffer", [
    S(wf1=A1, dest=W0, br=B.IF_NOT_COND, auto_inc=True),
])
R_GET_ARG_VAR_BUF_BASE = routine("get_arg.var_buffer_base", [
    S(wf1=PC, dest=W0, br=B.IF_NOT_COND),
])
R_GET_ARG_VAR_MEM = routine("get_arg.var_mem", [
    S(wf1=W0, dest=W1, br=B.NOP2),
])
R_PUT_ARG = routine("get_arg.put", [
    S(wf1=W1, dest=W0, br=B.GOTO2),
])

# -- frame-buffer (work file) variable access ---------------------------------
R_FRAME_READ_BUF = routine("wf.frame_read", [
    S(wf1=A1, dest=W1, br=B.NOP1, auto_inc=True),
])
R_FRAME_READ_BUF_BASE = routine("wf.frame_read_base", [
    S(wf1=PC, dest=W1, br=B.NOP1),
])
R_FRAME_WRITE_BUF = routine("wf.frame_write", [
    S(wf1=W1, dest=A1, br=B.NOP1, auto_inc=True),
])
R_FRAME_WRITE_BUF_BASE = routine("wf.frame_write_base", [
    S(wf1=W1, dest=PC, br=B.NOP1),
])
# The trail *buffer* in the WF (@WFAR2) spills/refills in blocks, so
# its access modes appear only once every several trail operations —
# which is why Table 6 shows it nearly idle.
R_TRAIL_BUF = routine("wf.trail_buffer", [
    S(wf1=A2, dest=A2, br=B.NOP1, auto_inc=True),
])
R_WF_GENERAL = routine("wf.general", [
    S(wf1=CBR, dest=W1, br=B.NOP1),
])

# -- cut -----------------------------------------------------------------------
# Cut discards choice points and tidies the machine state; the PSI ran a
# substantial microcoded routine here (WINDOW spends 10% of its steps in
# it, Table 2).
R_CUT = routine("cut.execute", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_COND),
    S(wf1=W1, dest=W0, br=B.IF_NOT_COND),
    S(wf1=W0, br=B.GOSUB),
    S(wf1=W1, wf2=W0, dest=W1, br=B.IF_COND),
    S(wf1=CON, br=B.NOP2),
    S(dest=W1, br=B.IF_NOT_COND),
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(wf1=W1, dest=W0, br=B.GOTO2),
    S(wf1=W0, dest=W1, br=B.IF_NOT_COND),
    S(wf1=CON, br=B.NOP3),
    S(wf1=W1, dest=W1, br=B.GOTO2),
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(wf1=W0, dest=W1, br=B.GOTO2),
    S(wf1=W1, dest=W0, br=B.NOP2),
    S(wf1=W0, dest=W0, br=B.RETURN),
])
R_CUT_POP_CP = routine("cut.pop_cp", [
    S(wf1=W0, dest=W0, br=B.IF_NOT_COND),
    S(wf1=W1, br=B.IF_COND),
    S(wf1=W1, wf2=W0, dest=W1, br=B.IF_NOT_COND),
    S(wf1=W0, dest=W1, br=B.GOTO2),
])

# -- builtins -------------------------------------------------------------------
R_BUILTIN_ENTRY = routine("built.entry", [
    S(wf1=W1, br=B.CASE_OPCODE),
    S(wf1=W1, dest=W0, br=B.GOSUB),
    S(wf1=W0, wf2=W0, br=B.IF_NOT_COND),
    S(dest=W1, br=B.NOP2),
])
R_BUILTIN_EXIT = routine("built.exit", [
    S(wf1=W0, br=B.RETURN),
    S(wf1=W1, dest=W0, br=B.IF_COND),
])
R_BUILTIN_STEP = routine("built.step", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_COND),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(dest=W0, br=B.GOTO2),
])
R_ARITH_OP = routine("built.arith_op", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_TAG),
    S(wf1=W1, br=B.IF_NOT_COND),
    S(dest=W0, br=B.NOP2),
])
R_ARITH_DISPATCH = routine("built.arith_dispatch", [
    S(wf1=W1, dest=W0, br=B.CASE_TAG),
    S(wf1=W0, br=B.IF_COND),
])
R_COMPARE = routine("built.compare", [
    S(wf1=W0, wf2=W0, br=B.IF_COND),
    S(wf1=CON, br=B.IF_NOT_COND),
    S(wf1=W1, dest=W1, br=B.GOTO2),
])
R_TYPE_TEST = routine("built.type_test", [
    S(wf1=W0, br=B.IF_TAG),
    S(wf1=W1, dest=W0, br=B.IF_NOT_COND),
    S(wf1=CON, br=B.GOTO2),
])
R_IO_STEP = routine("built.io_step", [
    S(wf1=W1, dest=W1, br=B.IF_COND),
    S(wf1=W0, br=B.GOTO2),
    S(wf1=CON, dest=W0, br=B.IF_NOT_COND),
])
R_VECTOR_INDEX = routine("built.vector_index", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.IF_COND),
    S(wf1=W1, br=B.IF_NOT_COND),
])
R_PROCESS_SWITCH = routine("built.process_switch", [
    S(wf1=W1, dest=W1, br=B.GOTO1),
    S(wf1=W0, dest=W0, br=B.NOP2),
    S(wf1=CBR, dest=W1, br=B.NOP1),
])

MEM_ROUTINES = {
    CacheCmd.READ: R_MEM_READ,
    CacheCmd.WRITE: R_MEM_WRITE,
    CacheCmd.WRITE_STACK: R_MEM_WRITE_STACK,
}

#: ``MEM_ROUTINES`` indexed by ``CacheCmd.code`` — the hot-path form
#: (no enum hashing), plus the precomputed pair bases and step counts
#: used by :meth:`repro.core.stats.StatsCollector.mem_access`.
MEM_ROUTINE_BY_CODE = tuple(MEM_ROUTINES[cmd] for cmd in CMD_BY_CODE)
MEM_PAIR_BASE = tuple(r.pair_base for r in MEM_ROUTINE_BY_CODE)
MEM_STEPS = tuple(r.n_steps for r in MEM_ROUTINE_BY_CODE)

# -- clause indexing (indexed configuration only) -------------------------------
# Declared routines for the first-argument clause-selection dispatch the
# real PSI did *not* have — the "evaluation the paper couldn't run".
# They are billed only under ``MachineConfig.indexed``; the faithful
# emission stream never contains them.  Registered after every faithful
# routine so all pre-existing routine ids (and pair bases) are unchanged.
#
# switch_on_term: case-dispatch on the dereferenced first argument's tag
# (var / const / list-cell / struct), landing in the matching chain.
R_SWITCH_ON_TERM = routine("control.switch_on_term", [
    S(wf1=W0, wf2=W0, br=B.CASE_TAG),
    S(wf1=W1, dest=W1, br=B.LOAD_JR),
    S(br=B.GOTO_JR1),
])
# index_hash: hash the constant value / functor word and probe the
# bucket table for the candidate-clause chain head.
R_INDEX_HASH = routine("control.index_hash", [
    S(wf1=W0, wf2=W0, dest=W1, br=B.NOP1),
    S(wf1=W1, dest=W0, br=B.LOAD_JR),
    S(wf1=W1, br=B.GOTO_JR1),
])
