"""Tagged machine words.

A PSI word is an 8-bit tag plus 32-bit data.  We represent a word as a
plain ``(tag, data)`` tuple — the hottest data structure in the
machine, so it stays primitive.  ``data`` is

* the value itself for ``INT``,
* a symbol-table id for ``ATOM`` and ``FUNC``,
* a flat logical address (see :mod:`repro.core.memory`) for ``REF``,
  ``LIST``, ``STRUCT`` and ``VECT``,
* the word's own address for ``UNDEF`` (an unbound variable cell).

``LIST`` points at a two-word cell (car, cdr); ``STRUCT`` points at a
functor word followed by the argument words; ``VECT`` points at a heap
vector header whose data is the element count (the KL0 rewritable
"heap vector" type the WINDOW program uses).
"""

from __future__ import annotations

from enum import IntEnum


class Tag(IntEnum):
    UNDEF = 0      # unbound variable; data = own address
    REF = 1        # bound reference; data = address of referenced cell
    INT = 2        # integer; data = value
    ATOM = 3       # atom; data = symbol id
    NIL = 4        # the empty list; data = 0
    LIST = 5       # cons cell pointer
    STRUCT = 6     # structure pointer (to functor word)
    FUNC = 7       # functor descriptor; data = functor id
    VECT = 8       # heap vector pointer
    VECTHDR = 9    # heap vector header; data = element count
    PACK = 10      # packed small arguments (instruction code only)


Word = tuple  # (Tag, int) — alias for documentation purposes

NIL_WORD: Word = (Tag.NIL, 0)


def mk_int(value: int) -> Word:
    return (Tag.INT, value)


def mk_atom(atom_id: int) -> Word:
    return (Tag.ATOM, atom_id)


def mk_ref(address: int) -> Word:
    return (Tag.REF, address)


def mk_unbound(address: int) -> Word:
    return (Tag.UNDEF, address)


def is_var_word(word: Word) -> bool:
    return word[0] == Tag.UNDEF


def is_atomic_word(word: Word) -> bool:
    return word[0] in (Tag.INT, Tag.ATOM, Tag.NIL)


def is_compound_word(word: Word) -> bool:
    return word[0] in (Tag.LIST, Tag.STRUCT, Tag.VECT)


class SymbolTable:
    """Interns atom names and (name, arity) functors to small ids."""

    def __init__(self) -> None:
        self._atom_ids: dict[str, int] = {}
        self._atom_names: list[str] = []
        self._functor_ids: dict[tuple[str, int], int] = {}
        self._functors: list[tuple[str, int]] = []

    def atom(self, name: str) -> int:
        """Intern ``name`` and return its atom id."""
        atom_id = self._atom_ids.get(name)
        if atom_id is None:
            atom_id = len(self._atom_names)
            self._atom_ids[name] = atom_id
            self._atom_names.append(name)
        return atom_id

    def atom_name(self, atom_id: int) -> str:
        return self._atom_names[atom_id]

    def functor(self, name: str, arity: int) -> int:
        """Intern the functor ``name/arity`` and return its id."""
        key = (name, arity)
        functor_id = self._functor_ids.get(key)
        if functor_id is None:
            functor_id = len(self._functors)
            self._functor_ids[key] = functor_id
            self._functors.append(key)
        return functor_id

    def functor_name(self, functor_id: int) -> tuple[str, int]:
        return self._functors[functor_id]

    @property
    def atom_count(self) -> int:
        return len(self._atom_names)

    @property
    def functor_count(self) -> int:
        return len(self._functors)
