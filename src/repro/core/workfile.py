"""Work file (WF) model: the PSI's 1K-word multi-functional register file.

The interpreter reserves a pair of 64-word *frame buffers* in the WF
and caches the current clause's local variables there; while a frame is
buffered, accesses to its slots are WF accesses (billed with @WFAR1
indirect or @PDR/CDR base-relative modes — the Table 6 rows this model
exists to produce) instead of local-stack memory traffic.  Two buffers
alternate so that a tail-recursive chain of determinate clauses never
touches the local stack, which is the tail recursion optimisation the
paper describes in §2.2.

A frame loses its buffer either when it is *flushed* (the clause makes
a non-last call, so the frame must survive as an environment) or when
buffer alternation evicts it (evicted frames are always already flushed
or dead — the machine flushes before any call that lets the frame
outlive its buffer tenure).

This class only manages buffer ownership and billing; the frame's
slots physically live in the local-stack area of
:class:`~repro.core.memory.MemorySystem` so that variable addresses are
stable for the trail and for references from younger cells.
"""

from __future__ import annotations

from repro.core import micro
from repro.core.micro import Module

_R_SWITCH_BUFFER = micro.R_SWITCH_BUFFER
_R_FRAME_READ_BUF = micro.R_FRAME_READ_BUF
_R_FRAME_READ_BUF_BASE = micro.R_FRAME_READ_BUF_BASE
_R_FRAME_WRITE_BUF = micro.R_FRAME_WRITE_BUF
_R_FRAME_WRITE_BUF_BASE = micro.R_FRAME_WRITE_BUF_BASE

BUFFER_SLOTS = 64
WF_CAPACITY = 1024
DIRECT_WORDS = 64        # directly addressable from a microinstruction
CONSTANT_WORDS = 64      # the constant storage area at the top of the WF

#: Slots reachable with the @PDR/CDR base-relative mode (5-bit offsets).
BASE_RELATIVE_SLOTS = 32


class WorkFile:
    """Tracks the two frame buffers and bills WF-mode accesses."""

    __slots__ = ("stats", "_owners", "_next")

    def __init__(self, stats):
        self.stats = stats
        self._owners: list[object | None] = [None, None]
        self._next = 0

    # -- buffer management -----------------------------------------------------

    def acquire(self, frame) -> int | None:
        """Give ``frame`` a buffer (alternating), evicting the previous owner.

        Returns the buffer id, or None when the frame does not fit (more
        than 64 locals) and must live directly in the local stack.
        """
        if frame.nlocals > BUFFER_SLOTS:
            return None
        buffer_id = self._next
        self._next = 1 - self._next
        evicted = self._owners[buffer_id]
        if evicted is not None:
            evicted.buffer_id = None
        self._owners[buffer_id] = frame
        self.stats.emit(_R_SWITCH_BUFFER)
        return buffer_id

    def acquire_quiet(self, frame) -> int:
        """:meth:`acquire` with the SWITCH_BUFFER emission already billed
        by the caller's superinstruction.  The caller guarantees
        ``frame.nlocals <= BUFFER_SLOTS``."""
        buffer_id = self._next
        self._next = 1 - buffer_id
        evicted = self._owners[buffer_id]
        if evicted is not None:
            evicted.buffer_id = None
        self._owners[buffer_id] = frame
        return buffer_id

    def release(self, frame) -> None:
        """Drop ``frame``'s buffer ownership (frame died or was flushed)."""
        if frame.buffer_id is not None and self._owners[frame.buffer_id] is frame:
            self._owners[frame.buffer_id] = None
        frame.buffer_id = None

    def owner_of_local(self, offset: int):
        """The buffered frame whose slots cover local-stack ``offset``."""
        for frame in self._owners:
            if frame is not None and frame.base <= offset < frame.base + frame.nlocals:
                return frame
        return None

    def reset(self) -> None:
        for frame in self._owners:
            if frame is not None:
                frame.buffer_id = None
        self._owners = [None, None]
        self._next = 0

    # -- billed slot access ------------------------------------------------------

    def read_slot(self, slot: int, module: Module | None = None) -> None:
        """Bill one buffered-slot read.

        Slots within base-relative reach occasionally use the @PDR/CDR
        mode (the interpreter uses it where the offset is already in a
        data register — the head-argument fast path); everything else is
        @WFAR1 indirect.
        """
        if slot < BASE_RELATIVE_SLOTS and slot % 8 == 0:
            self.stats.emit(_R_FRAME_READ_BUF_BASE)
        else:
            self.stats.emit(_R_FRAME_READ_BUF)

    def write_slot(self, slot: int, base_relative: bool = False) -> None:
        """Bill one buffered-slot write."""
        if base_relative and slot < BASE_RELATIVE_SLOTS:
            self.stats.emit(_R_FRAME_WRITE_BUF_BASE)
        else:
            self.stats.emit(_R_FRAME_WRITE_BUF)
