"""Selected superinstruction table (ahead-of-time generated).

DO NOT EDIT BY HAND — regenerate with::

    PYTHONPATH=src python scripts/gen_superinstructions.py

The generator mines packed emission journals of registry workloads
(:mod:`repro.obs.seqmine`) for the hottest micro-op n-grams, merges
them with the statically-required dispatch shapes the machine binds by
name (:data:`repro.core.fusion.REQUIRED`), and rewrites this module.
``MINED`` keeps the ranked evidence the selection was based on.

Spec format: ``module`` is an interpreter-module value string, or
``None`` for dynamic (ambient-module) billing; ``emit`` lists
``(routine_name, times)``; ``mem`` lists ``(command, area, times)``.
"""

# fmt: off


SPECS = {
    "call_dispatch": {
        "module": 'control',
        "emit": (('control.goal_fetch', 1), ('control.call_setup', 1),
                 ('built.step', 1), ('control.proc_lookup', 1)),
        "mem": (('read', 'heap', 2),),
    },
    "cp_push_frame": {
        "module": 'control',
        "emit": (('control.cp_push', 1), ('wf.general', 1)),
        "mem": (('write-stack', 'control', 10),),
    },
    "clause_try": {
        "module": 'control',
        "emit": (('control.clause_try', 1),),
        "mem": (('read', 'heap', 1),),
    },
    "clause_frame": {
        "module": 'control',
        "emit": (('control.clause_try', 1), ('control.frame_alloc', 1),
                 ('control.switch_buffer', 1)),
        "mem": (('read', 'heap', 1),),
    },
    "proceed_resume": {
        "module": 'control',
        "emit": (('control.env_pop', 1),),
        "mem": (('read', 'control', 4),),
    },
    "fail": {
        "module": 'control',
        "emit": (('control.backtrack', 1), ('control.fail_dispatch', 1)),
        "mem": (),
    },
    "cp_restore_resume": {
        "module": 'control',
        "emit": (('control.cp_restore', 1),),
        "mem": (('read', 'control', 4),),
    },
    "untrail_entry": {
        "module": 'trail',
        "emit": (('trail.untrail_entry', 1),),
        "mem": (('read', 'trail', 1),),
    },
    "trail_push": {
        "module": 'trail',
        "emit": (('trail.push', 1),),
        "mem": (('write-stack', 'trail', 1),),
    },
    "fetch_decode": {
        "module": None,
        "emit": (('decode', 1),),
        "mem": (('read', 'heap', 1),),
    },
    "fetch_decode_packed": {
        "module": None,
        "emit": (('decode.packed', 1),),
        "mem": (('read', 'heap', 1),),
    },
    "fetch_struct": {
        "module": None,
        "emit": (('decode', 1), ('decode.opcode', 1)),
        "mem": (('read', 'heap', 2),),
    },
    "fetch_struct_packed": {
        "module": None,
        "emit": (('decode.packed', 1), ('decode.opcode', 1)),
        "mem": (('read', 'heap', 2),),
    },
    "bind_skip": {
        "module": None,
        "emit": (('unify.bind', 1), ('trail.skip', 1)),
        "mem": (),
    },
    "push_var": {
        "module": None,
        "emit": (('unify.build_var', 1),),
        "mem": (('write-stack', 'global', 1),),
    },
    "build_list": {
        "module": None,
        "emit": (('unify.build_cell', 1),),
        "mem": (('write-stack', 'global', 2),),
    },
    "get_arg": {
        "module": None,
        "emit": (('get_arg.fetch', 1),),
        "mem": (('read', 'heap', 1),),
    },
    "get_arg_packed": {
        "module": None,
        "emit": (('get_arg.packed', 1),),
        "mem": (('read', 'heap', 1),),
    },
    "get_arg_void": {
        "module": None,
        "emit": (('get_arg.fetch', 1),),
        "mem": (('read', 'heap', 1), ('write-stack', 'global', 1)),
    },
    "get_arg_var_buf": {
        "module": None,
        "emit": (('get_arg.fetch', 1), ('get_arg.var_buffer', 1)),
        "mem": (('read', 'heap', 1),),
    },
    "get_arg_var_buf_base": {
        "module": None,
        "emit": (('get_arg.fetch', 1), ('get_arg.var_buffer_base', 1)),
        "mem": (('read', 'heap', 1),),
    },
    "get_arg_var_mem": {
        "module": None,
        "emit": (('get_arg.fetch', 1), ('get_arg.var_mem', 1)),
        "mem": (('read', 'heap', 1), ('read', 'local', 1)),
    },
    "get_arg_var_buf_packed": {
        "module": None,
        "emit": (('get_arg.packed', 1), ('get_arg.var_buffer', 1)),
        "mem": (('read', 'heap', 1),),
    },
    "get_arg_var_buf_base_packed": {
        "module": None,
        "emit": (('get_arg.packed', 1), ('get_arg.var_buffer_base', 1)),
        "mem": (('read', 'heap', 1),),
    },
    "get_arg_var_mem_packed": {
        "module": None,
        "emit": (('get_arg.packed', 1), ('get_arg.var_mem', 1)),
        "mem": (('read', 'heap', 1), ('read', 'local', 1)),
    },
    "deref_buf": {
        "module": None,
        "emit": (('unify.deref_step', 1), ('wf.frame_read', 1)),
        "mem": (),
    },
    "deref_buf_base": {
        "module": None,
        "emit": (('unify.deref_step', 1), ('wf.frame_read_base', 1)),
        "mem": (),
    },
    "deref_read/heap": {
        "module": None,
        "emit": (('unify.deref_step', 1),),
        "mem": (('read', 'heap', 1),),
    },
    "deref_read/global": {
        "module": None,
        "emit": (('unify.deref_step', 1),),
        "mem": (('read', 'global', 1),),
    },
    "deref_read/local": {
        "module": None,
        "emit": (('unify.deref_step', 1),),
        "mem": (('read', 'local', 1),),
    },
    "deref_read/control": {
        "module": None,
        "emit": (('unify.deref_step', 1),),
        "mem": (('read', 'control', 1),),
    },
    "deref_read/trail": {
        "module": None,
        "emit": (('unify.deref_step', 1),),
        "mem": (('read', 'trail', 1),),
    },
    "clause_frame/1": {
        "module": 'control',
        "emit": (('control.clause_try', 1), ('control.frame_alloc', 1),
                 ('control.switch_buffer', 1), ('control.frame_init_slot', 1)),
        "mem": (('read', 'heap', 1),),
    },
    "clause_frame/2": {
        "module": 'control',
        "emit": (('control.clause_try', 1), ('control.frame_alloc', 1),
                 ('control.switch_buffer', 1), ('control.frame_init_slot', 2)),
        "mem": (('read', 'heap', 1),),
    },
    "clause_frame/3": {
        "module": 'control',
        "emit": (('control.clause_try', 1), ('control.frame_alloc', 1),
                 ('control.switch_buffer', 1), ('control.frame_init_slot', 3)),
        "mem": (('read', 'heap', 1),),
    },
    "clause_frame/4": {
        "module": 'control',
        "emit": (('control.clause_try', 1), ('control.frame_alloc', 1),
                 ('control.switch_buffer', 1), ('control.frame_init_slot', 4)),
        "mem": (('read', 'heap', 1),),
    },
}

#: nlocals values with a dedicated ``clause_frame/{n}`` specialisation.
FRAME_NLOCALS = (1, 2, 3, 4)

#: Ranked mining evidence the selection above was derived from: (ops,
#: occurrences, total unfused steps) over ('nreverse', 'qsort', 'tree', 'lisp-fib', 'queens-one', 'bup-1', 'lcp-1', 'harmonizer-1'),
#: most step-heavy first (regenerated with the table).
MINED = (
    (('unify:mem.read@heap', 'unify:decode'),
     78050, 234150),
    (('control:control.cp_restore', 'control:mem.read@control×4', 'control:control.clause_try', 'control:mem.read@heap'),
     20654, 227194),
    (('control:control.cp_push', 'control:wf.general', 'control:mem.write_stack@control×10', 'control:control.clause_try'),
     11681, 210258),
    (('control:control.cp_restore', 'control:mem.read@control×4', 'control:control.clause_try'),
     20654, 206540),
    (('unify:mem.write_stack@global', 'unify:unify.build_var', 'trail:trail.push', 'unify:mem.write_stack@trail'),
     32194, 193164),
    (('control:control.fail_dispatch', 'control:control.cp_restore', 'control:mem.read@control×4', 'control:control.clause_try'),
     15546, 186552),
    (('unify:unify.bind', 'unify:mem.write@global', 'unify:trail.skip'),
     30327, 181962),
    (('unify:unify.bind', 'unify:mem.write@global'),
     36371, 181855),
    (('control:control.cp_push', 'control:wf.general', 'control:mem.write_stack@control×10'),
     11681, 175215),
    (('control:wf.general', 'control:mem.write_stack@control×10', 'control:control.clause_try', 'control:mem.read@heap'),
     11681, 175215),
    (('control:control.backtrack', 'control:control.fail_dispatch', 'control:control.cp_restore', 'control:mem.read@control×4'),
     15546, 171006),
    (('control:mem.write_stack@control×10', 'control:control.clause_try', 'control:mem.read@heap'),
     11910, 166740),
    (('control:mem.read@control×4', 'control:control.clause_try', 'control:mem.read@heap'),
     20654, 165232),
    (('control:wf.general', 'control:mem.write_stack@control×10', 'control:control.clause_try'),
     11681, 163534),
    (('unify:mem.write_stack@global', 'unify:unify.build_var', 'trail:trail.push'),
     32194, 160970),
    (('unify:unify.build_var', 'trail:trail.push', 'unify:mem.write_stack@trail'),
     32194, 160970),
    (('control:mem.write_stack@control×10', 'control:control.clause_try'),
     11910, 154830),
    (('unify:mem.read@heap', 'unify:decode.packed'),
     49375, 148125),
    (('control:control.cp_restore', 'control:mem.read@control×4'),
     20654, 144578),
    (('control:mem.read@control×4', 'control:control.clause_try'),
     20654, 144578),
    (('control:control.fail_dispatch', 'control:control.cp_restore', 'control:mem.read@control×4'),
     15546, 139914),
    (('unify:mem.read@heap', 'unify:decode', 'unify:unify.deref_step', 'unify:mem.read@global'),
     27371, 136855),
    (('control:mem.read@heap', 'control:control.call_setup', 'control:built.step', 'control:control.proc_lookup'),
     12407, 136477),
    (('control:control.call_setup', 'control:built.step', 'control:control.proc_lookup', 'control:mem.read@heap'),
     12407, 136477),
)
