"""Metrics registry: counters, gauges and histograms for PSI runs.

Where the tracer (:mod:`repro.obs.trace`) answers "*when* did things
happen inside a run", the metrics registry answers "*how much* of each
thing happened" — in a form that is cheap to record, trivially
picklable, and **mergeable**: per-run snapshots from ``run_many``
worker processes fold into the parent's registry with plain addition,
so a parallel evaluation reports exactly the same aggregate metrics as
a serial one (under test in ``tests/obs/test_metrics.py``).

Everything recorded here is deterministic — counts, microsteps,
ratios derived from them — never wall-clock time, so snapshots compare
equal across runs and across process topologies.

Instruments:

* :class:`Counter` — monotonically increasing total (``inc``);
* :class:`Gauge` — last-written value plus min/max envelope (``set``);
  merging keeps the envelope and sums the last values, which makes a
  merged gauge read as "aggregate over runs" (e.g. total microsteps);
* :class:`Histogram` — fixed-boundary bucket counts plus sum/count
  (``observe``), the instrument behind "cache hit ratio over time
  windows".

The module-level conventions for what the session records per run are
documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import json
import pathlib
from bisect import bisect_left


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")
    kind = "counter"

    def __init__(self, name: str, value: int = 0):
        self.name = name
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value}

    def merge_dict(self, data: dict) -> None:
        self.value += data["value"]


class Gauge:
    """A point-in-time value with a min/max envelope.

    ``merge_dict`` *sums* values and widens the envelope: a merged
    gauge over N runs reads as the aggregate (its envelope still shows
    the per-run extremes).
    """

    __slots__ = ("name", "value", "min", "max")
    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def set(self, value: float) -> None:
        self.value = value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def to_dict(self) -> dict:
        return {"kind": self.kind, "value": self.value,
                "min": self.min, "max": self.max}

    def merge_dict(self, data: dict) -> None:
        self.value += data["value"]
        for bound, pick in (("min", min), ("max", max)):
            incoming = data.get(bound)
            if incoming is None:
                continue
            current = getattr(self, bound)
            setattr(self, bound,
                    incoming if current is None else pick(current, incoming))


#: Default histogram boundaries for percentage-valued observations.
PERCENT_BUCKETS = (50.0, 80.0, 90.0, 95.0, 98.0, 99.0, 99.5, 100.0)

#: Histogram boundaries for millisecond-valued latency observations
#: (the evaluation service's request service times): log-spaced from
#: sub-millisecond cache hits to the ~30 s a practical-scale workload
#: takes cold, so p50/p99 estimates stay meaningful across four orders
#: of magnitude.
LATENCY_MS_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0,
                      500.0, 1000.0, 2000.0, 5000.0, 10000.0, 30000.0)


class Histogram:
    """Fixed-boundary bucket counts (upper-inclusive) plus sum/count.

    ``boundaries`` are the inclusive upper edges of the first
    ``len(boundaries)`` buckets; one overflow bucket catches the rest.
    """

    __slots__ = ("name", "boundaries", "buckets", "sum", "count")
    kind = "histogram"

    def __init__(self, name: str, boundaries=PERCENT_BUCKETS):
        self.name = name
        self.boundaries = tuple(boundaries)
        if list(self.boundaries) != sorted(self.boundaries):
            raise ValueError("histogram boundaries must be sorted")
        self.buckets = [0] * (len(self.boundaries) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        # bisect_left finds the first boundary >= value: upper-inclusive
        # buckets, with index len(boundaries) as the overflow bucket.
        self.buckets[bisect_left(self.boundaries, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Estimated value at/below which ``q``% of observations fall.

        Bucket-based (Prometheus-style): linear interpolation inside
        the containing bucket, with the first bucket's lower edge
        clamped to 0 for positive scales (or to the bucket's own upper
        edge when that is negative), and the overflow bucket reported
        as the largest boundary — the estimator cannot see past it.
        Returns ``None`` on an empty histogram.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return None
        target = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if cumulative + n >= target:
                if i >= len(self.boundaries):      # overflow bucket
                    return (float(self.boundaries[-1])
                            if self.boundaries else self.mean)
                upper = float(self.boundaries[i])
                lower = (float(self.boundaries[i - 1]) if i
                         else min(0.0, upper))
                fraction = max(target - cumulative, 0.0) / n
                return lower + (upper - lower) * fraction
            cumulative += n
        # q == 0 with all mass above the first occupied bucket's start.
        return (float(self.boundaries[-1])
                if self.boundaries else self.mean)

    def quantiles(self, qs=(50.0, 90.0, 99.0)) -> dict:
        """The live-snapshot view an endpoint serves: count, mean, and
        a ``p50``-style estimate per requested quantile (``None``s when
        the histogram is empty)."""
        summary = {"count": self.count, "mean": self.mean}
        for q in qs:
            summary[f"p{q:g}"] = self.percentile(q)
        return summary

    def to_dict(self) -> dict:
        return {"kind": self.kind, "boundaries": list(self.boundaries),
                "buckets": list(self.buckets),
                "sum": self.sum, "count": self.count}

    def merge_dict(self, data: dict) -> None:
        if list(data["boundaries"]) != list(self.boundaries):
            raise ValueError(
                f"histogram {self.name!r}: boundary mismatch on merge")
        for i, n in enumerate(data["buckets"]):
            self.buckets[i] += n
        self.sum += data["sum"]
        self.count += data["count"]


_KINDS = {cls.kind: cls for cls in (Counter, Gauge, Histogram)}


class MetricsRegistry:
    """A named collection of instruments with snapshot/merge semantics."""

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}

    # -- instrument accessors (create on first use) --------------------------

    def _get(self, name: str, cls, **kwargs):
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name, **kwargs)
        elif not isinstance(metric, cls):
            raise TypeError(f"metric {name!r} already registered "
                            f"as {type(metric).kind}")
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, boundaries=PERCENT_BUCKETS) -> Histogram:
        return self._get(name, Histogram, boundaries=boundaries)

    # -- introspection --------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str):
        return self._metrics.get(name)

    def value(self, name: str):
        """Shortcut: the scalar value of a counter/gauge."""
        return self._metrics[name].value

    # -- snapshot / merge ------------------------------------------------------

    def snapshot(self) -> dict:
        """A plain-data (picklable, JSON-able) copy of every metric."""
        return {name: metric.to_dict()
                for name, metric in sorted(self._metrics.items())}

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` into this registry (addition).

        Unknown metrics are created with the snapshot's kind, so a
        fresh parent registry absorbs worker snapshots verbatim.
        """
        for name, data in snapshot.items():
            metric = self._metrics.get(name)
            if metric is None:
                cls = _KINDS[data["kind"]]
                kwargs = ({"boundaries": tuple(data["boundaries"])}
                          if cls is Histogram else {})
                metric = self._metrics[name] = cls(name, **kwargs)
            elif type(metric).kind != data["kind"]:
                raise TypeError(f"metric {name!r}: kind mismatch on merge "
                                f"({type(metric).kind} vs {data['kind']})")
            metric.merge_dict(data)

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "MetricsRegistry":
        registry = cls()
        registry.merge(snapshot)
        return registry

    def save(self, path) -> None:
        """Persist the snapshot as JSON (for ``psi-eval diff``)."""
        pathlib.Path(path).write_text(json.dumps(
            {"kind": "metrics", "schema": 1, "metrics": self.snapshot()},
            indent=2, sort_keys=True) + "\n")

    @classmethod
    def load(cls, path) -> "MetricsRegistry":
        data = json.loads(pathlib.Path(path).read_text())
        return cls.from_snapshot(data["metrics"])

    def clear(self) -> None:
        self._metrics.clear()

    def render(self) -> str:
        """Human-readable dump, one metric per line."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                lines.append(f"{name}: n={metric.count} mean={metric.mean:.3f}")
            elif isinstance(metric, Gauge):
                lines.append(f"{name}: {metric.value:g} "
                             f"[{metric.min:g}..{metric.max:g}]"
                             if metric.min is not None
                             else f"{name}: {metric.value:g}")
            else:
                lines.append(f"{name}: {metric.value}")
        return "\n".join(lines)
