"""Paper-drift scoring: one number for "how close are we to the paper?"

Every cell of Tables 1–7 and Figure 1 that the paper prints and the
reproduction measures is compared as measured-vs-paper error, judged
against the per-table tolerance band declared in
:data:`repro.eval.paper_data.FIDELITY_BANDS` (``ratio`` tables use
relative error, ``percent`` tables absolute percentage points — see
there for the rationale), and aggregated into per-table and overall
fidelity scores.  The score is the percentage of cells inside their
band; ``drift`` is its complement, and ``psi-eval fidelity`` exits
non-zero when overall drift exceeds a threshold, which is what lets CI
gate on reproduction fidelity the same way it gates on tests.

The scoring functions are pure — they take the already-generated table
results — so they are unit-testable without executing workloads;
:func:`collect` is the convenience wrapper that runs the generators
(through the run-cache tiers of :mod:`repro.eval.runner`) and scores
everything.  The JSON document schema is documented in
``docs/OBSERVABILITY.md`` ("Fidelity & history").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.eval import paper_data

#: Every scoreable artifact, in paper order.
TABLES = ("table1", "table2", "table3", "table4", "table5",
          "table6", "table7", "figure1")

#: Default ``psi-eval fidelity`` gate: fail above this overall drift
#: (percent of cells outside their tolerance band).  The current
#: reproduction measures ~18.6 over all eight artifacts (~20.5 on the
#: CI subset without table1); 30 leaves headroom for calibration work
#: without letting a real regression through — ratchet it down as
#: calibration improves.
DEFAULT_MAX_DRIFT = 30.0

JSON_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class CellDrift:
    """One published number vs its measured counterpart."""

    row: str                    # e.g. program or access-mode name
    col: str                    # e.g. module, area, or column name
    paper: float
    measured: float
    error: float                # kind-specific (relative or points)
    drift: float                # error / tolerance; <= 1.0 is in band

    @property
    def within(self) -> bool:
        return self.drift <= 1.0

    def to_dict(self) -> dict:
        return {"row": self.row, "col": self.col,
                "paper": self.paper, "measured": self.measured,
                "error": round(self.error, 4),
                "drift": round(self.drift, 4),
                "within": self.within}


@dataclass(frozen=True)
class TableFidelity:
    """All scored cells of one table/figure."""

    name: str
    kind: str                   # "ratio" | "percent"
    tolerance: float
    cells: tuple

    @property
    def within(self) -> int:
        return sum(cell.within for cell in self.cells)

    @property
    def score(self) -> float:
        """Percent of cells inside the tolerance band (100 = perfect)."""
        return 100.0 * self.within / len(self.cells) if self.cells else 100.0

    @property
    def drift(self) -> float:
        return 100.0 - self.score

    @property
    def mean_drift(self) -> float:
        """Mean normalised drift (1.0 = at the band edge on average)."""
        if not self.cells:
            return 0.0
        return sum(cell.drift for cell in self.cells) / len(self.cells)

    @property
    def worst(self) -> CellDrift | None:
        return max(self.cells, key=lambda cell: cell.drift, default=None)

    def to_dict(self, cell_limit: int | None = None) -> dict:
        """Plain-data form; ``cell_limit`` keeps only the worst N cells
        (history entries store a bounded digest, the CLI stores all)."""
        cells = sorted(self.cells, key=lambda c: -c.drift)
        if cell_limit is not None:
            cells = cells[:cell_limit]
        return {"kind": self.kind, "tolerance": self.tolerance,
                "cells": len(self.cells), "within": self.within,
                "score": round(self.score, 2),
                "drift": round(self.drift, 2),
                "mean_drift": round(self.mean_drift, 4),
                "worst_cells": [cell.to_dict() for cell in cells]}


@dataclass(frozen=True)
class FidelityReport:
    """Per-table fidelity plus the overall aggregate."""

    tables: tuple
    threshold: float = DEFAULT_MAX_DRIFT

    @property
    def overall_score(self) -> float:
        """Equal-weight mean of the per-table scores."""
        if not self.tables:
            return 100.0
        return sum(t.score for t in self.tables) / len(self.tables)

    @property
    def overall_drift(self) -> float:
        return 100.0 - self.overall_score

    @property
    def passed(self) -> bool:
        return self.overall_drift <= self.threshold

    @property
    def total_cells(self) -> int:
        return sum(len(t.cells) for t in self.tables)

    @property
    def total_within(self) -> int:
        return sum(t.within for t in self.tables)

    def table(self, name: str) -> TableFidelity | None:
        for table in self.tables:
            if table.name == name:
                return table
        return None

    def to_dict(self, cell_limit: int | None = None) -> dict:
        return {
            "schema": JSON_SCHEMA_VERSION,
            "threshold": self.threshold,
            "passed": self.passed,
            "overall": {"score": round(self.overall_score, 2),
                        "drift": round(self.overall_drift, 2),
                        "cells": self.total_cells,
                        "within": self.total_within},
            "tables": {t.name: t.to_dict(cell_limit) for t in self.tables},
        }

    def history_digest(self, cell_limit: int = 5) -> dict:
        """The bounded form stored in run-history entries."""
        return self.to_dict(cell_limit=cell_limit)

    def render(self) -> str:
        from repro.eval.report import format_table

        rows = []
        for table in self.tables:
            worst = table.worst
            worst_text = (f"{worst.row}/{worst.col} "
                          f"({worst.measured:g} vs paper {worst.paper:g})"
                          if worst is not None else "-")
            rows.append((table.name, table.kind, table.tolerance,
                         f"{table.within}/{len(table.cells)}",
                         round(table.score, 1), round(table.mean_drift, 2),
                         worst_text))
        text = format_table(
            ["table", "kind", "tolerance", "in band", "score",
             "mean drift", "worst cell"],
            rows, title="Fidelity vs the paper (score = % of cells in band)")
        verdict = "PASS" if self.passed else "FAIL"
        return (f"{text}\n"
                f"overall: score {self.overall_score:.1f} "
                f"({self.total_within}/{self.total_cells} cells in band), "
                f"drift {self.overall_drift:.1f} "
                f"<= threshold {self.threshold:.1f}: {verdict}")


# -- cell construction --------------------------------------------------------

def _band(table: str) -> tuple[str, float]:
    band = paper_data.FIDELITY_BANDS[table]
    return band["kind"], band["tolerance"]


def _cell(kind: str, tolerance: float, row: str, col: str,
          paper: float, measured: float) -> CellDrift:
    if kind == "ratio":
        error = abs(measured - paper) / max(abs(paper), 1e-9)
    elif kind == "percent":
        error = abs(measured - paper)
    else:
        raise ValueError(f"unknown fidelity kind {kind!r}")
    return CellDrift(row=row, col=col, paper=float(paper),
                     measured=float(measured), error=error,
                     drift=error / tolerance)


def _score(table: str, triples) -> TableFidelity:
    """Build a TableFidelity from ``(row, col, paper, measured)`` tuples."""
    kind, tolerance = _band(table)
    cells = tuple(_cell(kind, tolerance, row, col, paper, measured)
                  for row, col, paper, measured in triples)
    return TableFidelity(table, kind, tolerance, cells)


# -- per-table scorers (pure: take generated results) -------------------------

def score_table1(rows) -> TableFidelity:
    """Table 1: the DEC/PSI ratio per benchmark."""
    return _score("table1", [(r.name, "dec_over_psi", r.paper_ratio, r.ratio)
                             for r in rows])


def score_table2(rows) -> TableFidelity:
    """Table 2: module step ratios, plus the §3.2 builtin call rates."""
    from repro.core.micro import Module

    triples = []
    for row in rows:
        for module_name, paper_value in row.paper.items():
            triples.append((row.program, module_name, paper_value,
                            row.ratios[Module(module_name)]))
        paper_rate = paper_data.BUILTIN_CALL_RATE.get(row.program)
        if paper_rate is not None:
            triples.append((row.program, "builtin_call_rate",
                            paper_rate, row.builtin_call_rate))
    return _score("table2", triples)


def score_table3(rows) -> TableFidelity:
    """Table 3: cache command rates (% of all steps)."""
    triples = []
    for row in rows:
        if row.paper is None:
            continue
        read, write_stack, write, write_total, total = row.paper
        for col, paper, measured in (
                ("read", read, row.read),
                ("write_stack", write_stack, row.write_stack),
                ("write", write, row.write),
                ("write_total", write_total, row.write_total),
                ("total", total, row.total)):
            triples.append((row.program, col, paper, measured))
    return _score("table3", triples)


def score_table4(rows) -> TableFidelity:
    """Table 4: per-area access frequencies."""
    from repro.eval.table4 import AREA_ORDER

    triples = []
    for row in rows:
        if row.paper is None:
            continue
        for area, paper in zip(AREA_ORDER, row.paper):
            triples.append((row.program, area.label, paper, row.ratios[area]))
    return _score("table4", triples)


def score_table5(rows) -> TableFidelity:
    """Table 5: per-area cache hit ratios plus the total."""
    from repro.eval.table4 import AREA_ORDER

    triples = []
    for row in rows:
        if row.paper is None:
            continue
        for area, paper in zip(AREA_ORDER, row.paper[:-1]):
            triples.append((row.program, area.label, paper, row.ratios[area]))
        triples.append((row.program, "total", row.paper[-1], row.total))
    return _score("table5", triples)


def score_table6(result) -> TableFidelity:
    """Table 6: WF access-mode frequencies (both %-of-accesses and
    %-of-steps where the paper prints them) plus the totals row."""
    from repro.core.micro import WFMode

    triples = []
    for mode_value, paper_row in paper_data.TABLE6.items():
        mode = WFMode(mode_value)
        for i, field in enumerate(("source1", "source2", "dest")):
            paper_wf, paper_steps = paper_row[2 * i], paper_row[2 * i + 1]
            if paper_wf is None:
                continue
            measured_wf, measured_steps = result.table[field][mode]
            triples.append((mode_value, f"{field}.wf", paper_wf, measured_wf))
            triples.append((mode_value, f"{field}.steps",
                            paper_steps, measured_steps))
    for field, paper_total in paper_data.TABLE6_TOTALS.items():
        triples.append(("total", f"{field}.steps", paper_total,
                        result.totals[field]))
    return _score("table6", triples)


def score_table7(result) -> TableFidelity:
    """Table 7: branch-operation frequencies per program."""
    triples = []
    for program, ratios in result.ratios.items():
        for op, measured in ratios.items():
            paper = paper_data.TABLE7.get(op.value, {}).get(program)
            if paper is None:
                continue
            triples.append((op.value, program, paper, measured))
    return _score("table7", triples)


def score_figure1(result) -> TableFidelity:
    """Figure 1: the saturation capacity of the cache sweep."""
    return _score("figure1", [
        ("window", "saturation_words",
         paper_data.FIGURE1_SATURATION_WORDS, result.saturation_capacity)])


# -- collection (runs the generators through the cache tiers) -----------------

def collect(tables=None, threshold: float = DEFAULT_MAX_DRIFT) -> FidelityReport:
    """Generate the selected tables and score every cell.

    ``tables`` is an iterable of names from :data:`TABLES` (default:
    all of them — note ``table1`` also executes the DEC baseline, the
    expensive half; CI's cheap gate passes the subset without it).

    Fidelity is defined against the paper's machine, so scoring under
    any run spec but ``faithful`` fails loudly here — paper-drift
    numbers must never silently come from an optimized configuration.
    """
    from repro.eval.specs import assert_faithful
    assert_faithful("fidelity scoring")
    selected = list(tables) if tables is not None else list(TABLES)
    unknown = [name for name in selected if name not in TABLES]
    if unknown:
        raise ValueError(f"unknown fidelity table(s): {', '.join(unknown)} "
                         f"(choose from: {', '.join(TABLES)})")

    def _run(name: str) -> TableFidelity:
        from repro.eval import (ablations, figure1, table1, table2, table3,
                                table4, table5, table6, table7)  # noqa: F401
        generators = {
            "table1": lambda: score_table1(table1.generate()),
            "table2": lambda: score_table2(table2.generate()),
            "table3": lambda: score_table3(table3.generate()),
            "table4": lambda: score_table4(table4.generate()),
            "table5": lambda: score_table5(table5.generate()),
            "table6": lambda: score_table6(table6.generate()),
            "table7": lambda: score_table7(table7.generate()),
            "figure1": lambda: score_figure1(figure1.generate()),
        }
        return generators[name]()

    ordered = [name for name in TABLES if name in selected]
    return FidelityReport(tuple(_run(name) for name in ordered),
                          threshold=threshold)
