"""Per-run observability session: the glue between machine and obs.

One :class:`ObsSession` instruments exactly one collected run.  It
owns the run's :class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.profile.MicroProfile` and per-run
:class:`~repro.obs.metrics.MetricsRegistry`, and provides the three
attachment points :func:`repro.tools.collect.collect` uses:

* :attr:`ObsSession.collector` — an :class:`ObservedStatsCollector`
  (drop-in for :class:`~repro.core.stats.StatsCollector`) that keeps a
  deterministic microstep clock, attributes every emission to the
  machine's current ``(predicate, module)`` context, traces predicate
  slices and sampled microroutine emissions;
* :meth:`ObsSession.cache_sampler` — a sampler reading the online
  cache's hit ratio over fixed windows of accounted accesses, driven
  by the collector's billing path (keeping the memory fan-out on its
  single-listener fast path);
* :attr:`ObsSession.stack_observer` — a
  :class:`~repro.core.memory.MemorySystem` observer recording
  stack-area reclaim events (the PSI reclaims stacks by truncation on
  proceed/TRO/backtrack — it has no garbage collector).

When observability is disabled none of this is constructed: the
machine runs on the plain collector and the only residue of the
subsystem is a handful of attribute stores per *call* (never per
step), measured by the ``obs`` stage of ``scripts/bench_eval.py``.

The finished artifact is a :class:`RunObservation` — trace + profile +
metrics snapshot — attached to the
:class:`~repro.tools.collect.CollectedRun` but deliberately **not** to
its :class:`~repro.tools.collect.RunSummary`: observability output is
derived from execution and is never stored in the PR-1 disk cache
(only the picklable metrics snapshot crosses the ``run_many`` worker
boundary, to be merged into the parent's registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO

from repro.core.stats import N_AREAS, StatsCollector
from repro.core.micro import MEM_PAIR_BASE, MEM_STEPS, Module
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import MicroProfile
from repro.obs.trace import (
    TRACK_CACHE,
    TRACK_CALLS,
    TRACK_MICRO,
    TRACK_STACKS,
    Tracer,
)


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of one observability session (see ``docs/OBSERVABILITY.md``)."""

    #: ring-buffer capacity per trace track
    trace_capacity: int = 65536
    #: record one microroutine span per this many emissions
    micro_sample_interval: int = 512
    #: sample the cache hit ratio once per this many memory accesses
    cache_window: int = 8192
    #: profiler attribution: 1 = exact, N > 1 = every Nth emission
    profile_interval: int = 1


class ObservedStatsCollector(StatsCollector):
    """A stats collector that additionally feeds tracer and profiler.

    The deterministic clock :attr:`now` is the cumulative microstep
    count of everything emitted so far; all trace timestamps come from
    it, which is why traces are reproducible bit-for-bit.

    Counting goes through the same flat per-id lists as the base
    collector, so an observed run bills identically to a plain one
    (``tests/core/test_stream_equivalence.py`` pins this).  Profiler
    attribution is *buffered*: consecutive emissions under the same
    ``(predicate, module)`` identity accumulate into one pending sample
    that is flushed when either changes (and in :meth:`close`), cutting
    per-emission obs work to a couple of attribute compares.  The flush
    points never move steps between profile buckets — only the number
    of ``profile.add`` calls changes.  This class is the exact-mode
    (``profile_interval == 1``, the default) collector; statistical
    sampling lives in :class:`SampledObservedStatsCollector`.
    """

    __slots__ = ("tracer", "profile", "_now_base", "_open_pred",
                 "_micro_interval", "_micro_tick", "_exact", "_attribute",
                 "_buf_pred", "_buf_module", "_buf_steps",
                 "_cache_sampler", "_win_n", "_win_limit")

    #: window-counter sentinel when no cache sampler is attached: the
    #: per-access tick compares against it and never fires
    _NO_WINDOW = 1 << 62

    def __init__(self, tracer: Tracer, profile: MicroProfile,
                 micro_sample_interval: int = 512):
        super().__init__()
        self.tracer = tracer
        self.profile = profile
        self._now_base = 0
        self._open_pred: str | None = None
        self._micro_interval = micro_sample_interval
        self._micro_tick = 0
        self._exact = profile.sample_interval == 1
        self._attribute = (profile.add if self._exact
                           else profile.add_sampled)
        self._buf_pred: str | None = None
        self._buf_module = None
        self._buf_steps = 0
        self._cache_sampler = None
        self._win_n = 0
        self._win_limit = self._NO_WINDOW

    def attach_cache_sampler(self, sampler: "CacheWindowSampler") -> None:
        """Drive ``sampler`` from this collector's accounted accesses."""
        self._cache_sampler = sampler
        self._win_limit = sampler.window
        self._win_n = 0

    @property
    def now(self) -> int:
        """The deterministic clock: cumulative microsteps billed so far.

        Derived as folded base + pending buffer so the hot paths never
        maintain a separate counter; every read point sees exactly the
        value an eagerly-updated clock would hold.
        """
        return self._now_base + self._buf_steps

    # -- recording overrides ---------------------------------------------------
    #
    # The fast path of every override is: fold the count, then either
    # grow the pending buffer (two identity compares, one add) when the
    # (predicate, module) context is unchanged, or roll the buffer.
    # Rolling also opens the predicate slice when the predicate moved,
    # which keeps the invariant the fast path relies on: whenever
    # ``pred is self._buf_pred``, the slice for ``pred`` is already
    # open, so the hot path never has to re-check ``_open_pred``.

    def _roll_buffer(self, pred, module, steps: int) -> None:
        buffered = self._buf_steps
        if buffered:
            self.profile.add(self._buf_pred, self._buf_module, buffered)
            self._now_base += buffered
        self._buf_pred = pred
        self._buf_module = module
        self._buf_steps = steps
        if pred is not self._open_pred:
            self._open_pred = pred
            self.tracer.begin_slice(TRACK_CALLS, pred, self._now_base)

    def emit(self, routine, times: int = 1) -> None:
        module = self.module
        index = routine.pair_base + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times
        steps = routine.n_steps * times
        pred = self.predicate
        if pred is self._buf_pred and module is self._buf_module:
            self._buf_steps += steps
        else:
            self._roll_buffer(pred, module, steps)
        tick = self._micro_tick + times
        if tick < self._micro_interval:
            self._micro_tick = tick
        else:
            self._micro_tick = 0
            self.tracer.complete(TRACK_MICRO, routine.name,
                                 self._now_base + self._buf_steps - steps,
                                 steps, {"module": module.value})

    def emit_in(self, module, routine, times: int = 1) -> None:
        index = routine.pair_base + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times
        steps = routine.n_steps * times
        pred = self.predicate
        if pred is self._buf_pred and module is self._buf_module:
            self._buf_steps += steps
        else:
            self._roll_buffer(pred, module, steps)

    def mem_access(self, cmd, area) -> None:
        code = cmd.code
        self._mem_counts[code * N_AREAS + area] += 1
        module = self.module
        index = MEM_PAIR_BASE[code] + module.idx
        try:
            self._pair_counts[index] += 1
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += 1
        steps = MEM_STEPS[code]
        pred = self.predicate
        if pred is self._buf_pred and module is self._buf_module:
            self._buf_steps += steps
        else:
            self._roll_buffer(pred, module, steps)
        n = self._win_n + 1
        if n < self._win_limit:
            self._win_n = n
        else:
            self._win_n = 0
            self._cache_sampler.sample()

    def mem_access_n(self, cmd, area, times: int) -> None:
        code = cmd.code
        self._mem_counts[code * N_AREAS + area] += times
        module = self.module
        index = MEM_PAIR_BASE[code] + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times
        steps = MEM_STEPS[code] * times
        pred = self.predicate
        if pred is self._buf_pred and module is self._buf_module:
            self._buf_steps += steps
        else:
            self._roll_buffer(pred, module, steps)
        n = self._win_n + times
        if n < self._win_limit:
            self._win_n = n
        else:
            self._win_n = 0
            self._cache_sampler.sample()

    def emit_fused(self, fused) -> None:
        """Replay a superinstruction unfused through the observed paths.

        The machine's fused dispatch is gated on the *exact* base
        collector class, so observed runs normally never see this call;
        it exists so a superinstruction applied to any collector kind
        lands in identical buckets (profile attribution included —
        replay goes through :meth:`emit_in`/:meth:`mem_access_n`, whose
        run-length buffering never moves steps between (predicate,
        module) slices).
        """
        fused.replay(self)

    def emit_fused_dyn(self, fused) -> None:
        fused.replay(self)

    def _flush_profile(self) -> None:
        buffered = self._buf_steps
        if buffered:
            self.profile.add(self._buf_pred, self._buf_module, buffered)
            self._now_base += buffered
            self._buf_pred = None
            self._buf_module = None
            self._buf_steps = 0

    def close(self) -> None:
        """Flush pending attribution, end the open predicate slice."""
        self._flush_profile()
        self.tracer.finish(self.now)
        self._open_pred = None


class SampledObservedStatsCollector(ObservedStatsCollector):
    """Statistical attribution (``profile_interval > 1``): unbuffered.

    Every emission goes straight to ``profile.add_sampled`` so the
    profiler's every-Nth-call sampling keeps its meaning; the exact
    class's run-length buffering would collapse the sample population.
    Counting and clocking are identical to the exact collector; with
    the buffer permanently empty, the clock advances through
    ``_now_base`` directly.
    """

    __slots__ = ()

    def emit(self, routine, times: int = 1) -> None:
        module = self.module
        index = routine.pair_base + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times
        steps = routine.n_steps * times
        pred = self.predicate
        if pred is not self._open_pred:
            self._open_pred = pred
            self.tracer.begin_slice(TRACK_CALLS, pred, self.now)
        self._attribute(pred, module, steps)
        self._now_base += steps
        tick = self._micro_tick + times
        if tick < self._micro_interval:
            self._micro_tick = tick
        else:
            self._micro_tick = 0
            self.tracer.complete(TRACK_MICRO, routine.name,
                                 self.now - steps, steps,
                                 {"module": module.value})

    def emit_in(self, module, routine, times: int = 1) -> None:
        index = routine.pair_base + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times
        steps = routine.n_steps * times
        self._attribute(self.predicate, module, steps)
        self._now_base += steps

    def mem_access(self, cmd, area) -> None:
        code = cmd.code
        self._mem_counts[code * N_AREAS + area] += 1
        module = self.module
        index = MEM_PAIR_BASE[code] + module.idx
        try:
            self._pair_counts[index] += 1
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += 1
        steps = MEM_STEPS[code]
        self._attribute(self.predicate, module, steps)
        self._now_base += steps
        n = self._win_n + 1
        if n < self._win_limit:
            self._win_n = n
        else:
            self._win_n = 0
            self._cache_sampler.sample()

    def mem_access_n(self, cmd, area, times: int) -> None:
        code = cmd.code
        self._mem_counts[code * N_AREAS + area] += times
        module = self.module
        index = MEM_PAIR_BASE[code] + module.idx
        try:
            self._pair_counts[index] += times
        except IndexError:
            self._grow_pairs(index)
            self._pair_counts[index] += times
        pred = self.predicate
        steps = MEM_STEPS[code]
        for _ in range(times):
            self._attribute(pred, module, steps)
        self._now_base += steps * times
        n = self._win_n + times
        if n < self._win_limit:
            self._win_n = n
        else:
            self._win_n = 0
            self._cache_sampler.sample()


class StackObserver:
    """Records stack reclaim events (:meth:`MemorySystem.settop`).

    The PSI frees stack space exclusively by truncation — on proceed,
    tail-recursion reclaim and backtracking — so each ``settop`` that
    shrinks an area is one "GC-free" deallocation event: a counter
    sample of the new top plus the reclaimed word count.
    """

    __slots__ = ("tracer", "collector")

    def __init__(self, tracer: Tracer, collector: ObservedStatsCollector):
        self.tracer = tracer
        self.collector = collector

    def on_settop(self, area, offset: int, old_top: int) -> None:
        if offset < old_top:
            self.tracer.counter(TRACK_STACKS, f"top.{area.name.lower()}",
                                self.collector.now, offset)


class CacheWindowSampler:
    """Samples the online cache over windows of accounted accesses.

    Driven by the observed collector's billing path rather than
    attached as a memory listener: the collector counts accounted
    accesses inline (two integer ops) and calls :meth:`sample` once
    per ``window``.  Keeping the sampler off the listener chain keeps
    :class:`~repro.core.memory.MemorySystem`'s fan-out on its
    single-listener fast path when only the cache is attached — the
    dominant obs-enabled configuration.  A window boundary landing
    inside a block access samples at billing time, before the block's
    remaining words reach the cache; windowed ratios are sampled,
    derived data, so the one-block skew is immaterial.

    Emits a windowed hit-ratio counter event on the ``cache`` track and
    feeds the ``psi.cache.window_hit_ratio`` histogram.
    """

    __slots__ = ("cache", "tracer", "histogram", "collector", "window",
                 "_hits", "_misses")

    def __init__(self, cache, tracer: Tracer, histogram,
                 collector: ObservedStatsCollector, window: int = 8192):
        self.cache = cache
        self.tracer = tracer
        self.histogram = histogram
        self.collector = collector
        self.window = window
        self._hits = 0
        self._misses = 0

    def sample(self) -> None:
        stats = self.cache.stats
        hits, misses = stats.hits, stats.misses
        window_hits = hits - self._hits
        window_misses = misses - self._misses
        self._hits, self._misses = hits, misses
        accesses = window_hits + window_misses
        ratio = 100.0 * window_hits / accesses if accesses else 100.0
        self.tracer.counter(TRACK_CACHE, "hit_ratio",
                            self.collector.now, round(ratio, 3))
        self.histogram.observe(ratio)


@dataclass
class RunObservation:
    """The finished observability artifact of one collected run."""

    goal: str
    tracer: Tracer
    profile: MicroProfile
    metrics_snapshot: dict
    total_steps: int

    # -- export convenience -----------------------------------------------------

    def write_jsonl(self, fp: IO[str]) -> int:
        return self.tracer.to_jsonl(fp)

    def write_chrome(self, fp: IO[str], name: str = "PSI") -> int:
        return self.tracer.to_chrome(fp, process_name=name)

    def write_collapsed(self, fp: IO[str], root: str | None = None) -> int:
        return self.profile.write_collapsed(fp, root=root)

    def top_table(self, top: int = 10) -> str:
        return self.profile.top_table(top)


class ObsSession:
    """Instrumentation for one run; see the module docstring."""

    def __init__(self, goal: str, config: ObsConfig | None = None):
        self.goal = goal
        self.config = config or ObsConfig()
        self.tracer = Tracer(capacity=self.config.trace_capacity)
        self.profile = MicroProfile(self.config.profile_interval)
        self.metrics = MetricsRegistry()
        collector_cls = (ObservedStatsCollector
                         if self.profile.sample_interval == 1
                         else SampledObservedStatsCollector)
        self.collector = collector_cls(
            self.tracer, self.profile,
            micro_sample_interval=self.config.micro_sample_interval)
        self.stack_observer = StackObserver(self.tracer, self.collector)

    def cache_sampler(self, cache) -> CacheWindowSampler | None:
        if cache is None:
            return None
        histogram = self.metrics.histogram("psi.cache.window_hit_ratio")
        sampler = CacheWindowSampler(cache, self.tracer, histogram,
                                     self.collector,
                                     window=self.config.cache_window)
        self.collector.attach_cache_sampler(sampler)
        return sampler

    def finish(self, cache=None) -> RunObservation:
        """Close the trace, derive the per-run metrics, build the artifact."""
        collector = self.collector
        collector.close()
        metrics = self.metrics
        metrics.counter("psi.runs").inc()
        metrics.counter("psi.microsteps").inc(collector.total_steps)
        metrics.counter("psi.inferences").inc(collector.inferences)
        metrics.counter("psi.builtin_calls").inc(collector.builtin_calls)
        metrics.counter("psi.mem.accesses").inc(collector.total_mem_accesses)
        for cmd, count in collector.cache_command_counts().items():
            metrics.counter(f"psi.mem.cmd.{cmd.value}").inc(count)
        module_steps = collector.module_steps()
        for module in Module:
            metrics.counter(f"psi.module.{module.value}.steps").inc(
                module_steps.get(module, 0))
        for field, counts in collector.wf_field_counts().items():
            for mode, count in counts.items():
                metrics.counter(f"psi.wf.{field}.{mode.value}").inc(count)
        if collector.inferences:
            metrics.gauge("psi.steps_per_inference").set(
                collector.total_steps / collector.inferences)
        if cache is not None:
            stats = cache.stats
            metrics.counter("psi.cache.hits").inc(stats.hits)
            metrics.counter("psi.cache.misses").inc(stats.misses)
            metrics.counter("psi.cache.block_fetches").inc(stats.block_fetches)
            metrics.counter("psi.cache.writebacks").inc(stats.writebacks)
            metrics.gauge("psi.cache.hit_ratio").set(stats.hit_ratio)
        metrics.counter("psi.trace.events").inc(len(self.tracer))
        metrics.counter("psi.trace.dropped").inc(
            sum(self.tracer.dropped.values()))
        return RunObservation(
            goal=self.goal,
            tracer=self.tracer,
            profile=self.profile,
            metrics_snapshot=metrics.snapshot(),
            total_steps=collector.total_steps,
        )
