"""Per-run observability session: the glue between machine and obs.

One :class:`ObsSession` instruments exactly one collected run.  It
owns the run's :class:`~repro.obs.trace.Tracer`,
:class:`~repro.obs.profile.MicroProfile` and per-run
:class:`~repro.obs.metrics.MetricsRegistry`, and provides the three
attachment points :func:`repro.tools.collect.collect` uses:

* :attr:`ObsSession.collector` — an :class:`ObservedStatsCollector`
  (drop-in for :class:`~repro.core.stats.StatsCollector`) that keeps a
  deterministic microstep clock, attributes every emission to the
  machine's current ``(predicate, module)`` context, traces predicate
  slices and sampled microroutine emissions;
* :meth:`ObsSession.cache_sampler` — a memory listener sampling the
  online cache's hit ratio over fixed access windows;
* :attr:`ObsSession.stack_observer` — a
  :class:`~repro.core.memory.MemorySystem` observer recording
  stack-area reclaim events (the PSI reclaims stacks by truncation on
  proceed/TRO/backtrack — it has no garbage collector).

When observability is disabled none of this is constructed: the
machine runs on the plain collector and the only residue of the
subsystem is a handful of attribute stores per *call* (never per
step), measured by the ``obs`` stage of ``scripts/bench_eval.py``.

The finished artifact is a :class:`RunObservation` — trace + profile +
metrics snapshot — attached to the
:class:`~repro.tools.collect.CollectedRun` but deliberately **not** to
its :class:`~repro.tools.collect.RunSummary`: observability output is
derived from execution and is never stored in the PR-1 disk cache
(only the picklable metrics snapshot crosses the ``run_many`` worker
boundary, to be merged into the parent's registry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO

from repro.core.stats import StatsCollector
from repro.core.micro import MEM_ROUTINES, Module
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import MicroProfile
from repro.obs.trace import (
    TRACK_CACHE,
    TRACK_CALLS,
    TRACK_MICRO,
    TRACK_STACKS,
    Tracer,
)


@dataclass(frozen=True)
class ObsConfig:
    """Knobs of one observability session (see ``docs/OBSERVABILITY.md``)."""

    #: ring-buffer capacity per trace track
    trace_capacity: int = 65536
    #: record one microroutine span per this many emissions
    micro_sample_interval: int = 512
    #: sample the cache hit ratio once per this many memory accesses
    cache_window: int = 8192
    #: profiler attribution: 1 = exact, N > 1 = every Nth emission
    profile_interval: int = 1


class ObservedStatsCollector(StatsCollector):
    """A stats collector that additionally feeds tracer and profiler.

    The deterministic clock :attr:`now` is the cumulative microstep
    count of everything emitted so far; all trace timestamps come from
    it, which is why traces are reproducible bit-for-bit.
    """

    def __init__(self, tracer: Tracer, profile: MicroProfile,
                 micro_sample_interval: int = 512):
        super().__init__()
        self.tracer = tracer
        self.profile = profile
        self.now = 0
        self._open_pred: str | None = None
        self._micro_interval = micro_sample_interval
        self._micro_tick = 0
        self._attribute = (profile.add if profile.sample_interval == 1
                           else profile.add_sampled)

    # -- recording overrides ---------------------------------------------------

    def emit(self, routine, times: int = 1) -> None:
        module = self.module
        self.routine_counts[(module, routine)] += times
        steps = routine.n_steps * times
        pred = self.predicate
        if pred is not self._open_pred:
            self._open_pred = pred
            self.tracer.begin_slice(TRACK_CALLS, pred, self.now)
        self._attribute(pred, module, steps)
        self.now += steps
        self._micro_tick += times
        if self._micro_tick >= self._micro_interval:
            self._micro_tick = 0
            self.tracer.complete(TRACK_MICRO, routine.name,
                                 self.now - steps, steps,
                                 {"module": module.value})

    def emit_in(self, module, routine, times: int = 1) -> None:
        self.routine_counts[(module, routine)] += times
        steps = routine.n_steps * times
        self._attribute(self.predicate, module, steps)
        self.now += steps

    def mem_access(self, cmd, area) -> None:
        self.mem_counts[(cmd, area)] += 1
        routine = MEM_ROUTINES[cmd]
        module = self.module
        self.routine_counts[(module, routine)] += 1
        self._attribute(self.predicate, module, routine.n_steps)
        self.now += routine.n_steps

    def close(self) -> None:
        """End the open predicate slice at the final clock value."""
        self.tracer.finish(self.now)
        self._open_pred = None


class StackObserver:
    """Records stack reclaim events (:meth:`MemorySystem.settop`).

    The PSI frees stack space exclusively by truncation — on proceed,
    tail-recursion reclaim and backtracking — so each ``settop`` that
    shrinks an area is one "GC-free" deallocation event: a counter
    sample of the new top plus the reclaimed word count.
    """

    __slots__ = ("tracer", "collector")

    def __init__(self, tracer: Tracer, collector: ObservedStatsCollector):
        self.tracer = tracer
        self.collector = collector

    def on_settop(self, area, offset: int, old_top: int) -> None:
        if offset < old_top:
            self.tracer.counter(TRACK_STACKS, f"top.{area.name.lower()}",
                                self.collector.now, offset)


class CacheWindowSampler:
    """Memory listener sampling the online cache over access windows.

    Attach *after* the cache listener so each window reflects the
    cache's state including the access that completed the window.
    Emits a windowed hit-ratio counter event on the ``cache`` track and
    feeds the ``psi.cache.window_hit_ratio`` histogram.
    """

    __slots__ = ("cache", "tracer", "histogram", "collector", "window",
                 "_n", "_hits", "_misses")

    def __init__(self, cache, tracer: Tracer, histogram,
                 collector: ObservedStatsCollector, window: int = 8192):
        self.cache = cache
        self.tracer = tracer
        self.histogram = histogram
        self.collector = collector
        self.window = window
        self._n = 0
        self._hits = 0
        self._misses = 0

    def access(self, cmd, address) -> None:
        self._n += 1
        if self._n < self.window:
            return
        self._n = 0
        stats = self.cache.stats
        hits, misses = stats.hits, stats.misses
        window_hits = hits - self._hits
        window_misses = misses - self._misses
        self._hits, self._misses = hits, misses
        accesses = window_hits + window_misses
        ratio = 100.0 * window_hits / accesses if accesses else 100.0
        self.tracer.counter(TRACK_CACHE, "hit_ratio",
                            self.collector.now, round(ratio, 3))
        self.histogram.observe(ratio)


@dataclass
class RunObservation:
    """The finished observability artifact of one collected run."""

    goal: str
    tracer: Tracer
    profile: MicroProfile
    metrics_snapshot: dict
    total_steps: int

    # -- export convenience -----------------------------------------------------

    def write_jsonl(self, fp: IO[str]) -> int:
        return self.tracer.to_jsonl(fp)

    def write_chrome(self, fp: IO[str], name: str = "PSI") -> int:
        return self.tracer.to_chrome(fp, process_name=name)

    def write_collapsed(self, fp: IO[str], root: str | None = None) -> int:
        return self.profile.write_collapsed(fp, root=root)

    def top_table(self, top: int = 10) -> str:
        return self.profile.top_table(top)


class ObsSession:
    """Instrumentation for one run; see the module docstring."""

    def __init__(self, goal: str, config: ObsConfig | None = None):
        self.goal = goal
        self.config = config or ObsConfig()
        self.tracer = Tracer(capacity=self.config.trace_capacity)
        self.profile = MicroProfile(self.config.profile_interval)
        self.metrics = MetricsRegistry()
        self.collector = ObservedStatsCollector(
            self.tracer, self.profile,
            micro_sample_interval=self.config.micro_sample_interval)
        self.stack_observer = StackObserver(self.tracer, self.collector)

    def cache_sampler(self, cache) -> CacheWindowSampler | None:
        if cache is None:
            return None
        histogram = self.metrics.histogram("psi.cache.window_hit_ratio")
        return CacheWindowSampler(cache, self.tracer, histogram,
                                  self.collector,
                                  window=self.config.cache_window)

    def finish(self, cache=None) -> RunObservation:
        """Close the trace, derive the per-run metrics, build the artifact."""
        collector = self.collector
        collector.close()
        metrics = self.metrics
        metrics.counter("psi.runs").inc()
        metrics.counter("psi.microsteps").inc(collector.total_steps)
        metrics.counter("psi.inferences").inc(collector.inferences)
        metrics.counter("psi.builtin_calls").inc(collector.builtin_calls)
        metrics.counter("psi.mem.accesses").inc(collector.total_mem_accesses)
        for cmd, count in collector.cache_command_counts().items():
            metrics.counter(f"psi.mem.cmd.{cmd.value}").inc(count)
        module_steps = collector.module_steps()
        for module in Module:
            metrics.counter(f"psi.module.{module.value}.steps").inc(
                module_steps.get(module, 0))
        for field, counts in collector.wf_field_counts().items():
            for mode, count in counts.items():
                metrics.counter(f"psi.wf.{field}.{mode.value}").inc(count)
        if collector.inferences:
            metrics.gauge("psi.steps_per_inference").set(
                collector.total_steps / collector.inferences)
        if cache is not None:
            stats = cache.stats
            metrics.counter("psi.cache.hits").inc(stats.hits)
            metrics.counter("psi.cache.misses").inc(stats.misses)
            metrics.counter("psi.cache.block_fetches").inc(stats.block_fetches)
            metrics.counter("psi.cache.writebacks").inc(stats.writebacks)
            metrics.gauge("psi.cache.hit_ratio").set(stats.hit_ratio)
        metrics.counter("psi.trace.events").inc(len(self.tracer))
        metrics.counter("psi.trace.dropped").inc(
            sum(self.tracer.dropped.values()))
        return RunObservation(
            goal=self.goal,
            tracer=self.tracer,
            profile=self.profile,
            metrics_snapshot=metrics.snapshot(),
            total_steps=collector.total_steps,
        )
