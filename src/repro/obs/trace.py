"""Structured event tracer: ring-buffered spans on a deterministic clock.

The paper's console tools sampled the PSI's *microinstruction stream*;
this tracer does the modern equivalent for the reproduction.  Events
are timestamped in **cumulative microsteps** (the machine's own clock,
see :class:`~repro.obs.session.ObservedStatsCollector`), never in
wall-clock time, so two executions of the same workload produce
byte-identical traces — observability output is a pure function of the
run, which keeps it compatible with the PR-1 deterministic evaluation
pipeline (traces are *derived* from execution; they are never stored in
the run cache).

Event kinds (the ``ph`` field follows the Chrome ``trace_event``
phases so the export is mechanical):

* ``"X"`` — a *complete span*: something was active from ``ts`` for
  ``dur`` microsteps (goal-resolution slices per predicate, sampled
  microroutine emissions);
* ``"i"`` — an *instant*: a point event (stack reclaims, cache
  writeback bursts);
* ``"C"`` — a *counter* sample: a named value over time (windowed
  cache hit ratio, stack tops).

Events are buffered per track in fixed-capacity :class:`RingBuffer`\\ s
so tracing arbitrarily long runs is O(capacity) memory; overflow drops
the *oldest* events and counts them (``dropped``), which a trailing
``metadata`` record reports.

Exports:

* :meth:`Tracer.to_jsonl` — one JSON object per line, the schema
  documented in ``docs/OBSERVABILITY.md`` (machine-consumable,
  round-trips through :func:`read_jsonl`);
* :meth:`Tracer.to_chrome` — a Chrome ``trace_event`` JSON object
  (``{"traceEvents": [...]}``) loadable in Perfetto / chrome://tracing,
  with one nanosecond of display time per :data:`STEP_NS` modelled
  nanoseconds.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Iterator

from repro.memsys.timing import CYCLE_NS

#: Modelled nanoseconds per microstep (the PSI's 200 ns cycle).  Chrome
#: trace timestamps are microseconds, so one microstep renders as
#: ``CYCLE_NS / 1000`` µs of display time.
STEP_NS = CYCLE_NS

#: JSONL schema version, carried by the metadata record.
SCHEMA_VERSION = 1


class RingBuffer:
    """Fixed-capacity event buffer; overflow evicts the oldest entry.

    A plain preallocated list plus a write cursor — appends are O(1)
    with no per-append allocation beyond the stored tuple, which is
    what keeps enabled-mode tracing cheap enough to leave on for
    practical-scale workloads.
    """

    __slots__ = ("capacity", "_slots", "_next", "_len", "dropped")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self._slots: list = [None] * capacity
        self._next = 0          # next write position
        self._len = 0           # live entries (<= capacity)
        self.dropped = 0        # evicted entries

    def append(self, item) -> None:
        if self._len == self.capacity:
            self.dropped += 1
        else:
            self._len += 1
        self._slots[self._next] = item
        self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator:
        """Yield live entries oldest-first."""
        if self._len < self.capacity:
            yield from self._slots[:self._len]
        else:
            yield from self._slots[self._next:]
            yield from self._slots[:self._next]

    def clear(self) -> None:
        self._slots = [None] * self.capacity
        self._next = 0
        self._len = 0
        self.dropped = 0


class TraceEvent:
    """One trace record.  ``ts``/``dur`` are in microsteps."""

    __slots__ = ("ts", "dur", "ph", "track", "name", "args")

    def __init__(self, ts: int, dur: int, ph: str, track: str, name: str,
                 args: dict | None = None):
        self.ts = ts
        self.dur = dur
        self.ph = ph
        self.track = track
        self.name = name
        self.args = args

    def to_dict(self) -> dict:
        record = {"ts": self.ts, "ph": self.ph, "track": self.track,
                  "name": self.name}
        if self.ph == "X":
            record["dur"] = self.dur
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "TraceEvent":
        return cls(record["ts"], record.get("dur", 0), record["ph"],
                   record["track"], record["name"], record.get("args"))

    def __eq__(self, other) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"TraceEvent(ts={self.ts}, ph={self.ph!r}, "
                f"track={self.track!r}, name={self.name!r})")


#: The tracks the session instruments.  Anything may open new tracks;
#: these names are the documented schema.
TRACK_CALLS = "calls"        # goal-resolution predicate slices
TRACK_MICRO = "micro"        # sampled microroutine emissions
TRACK_CACHE = "cache"        # windowed cache transactions
TRACK_STACKS = "stacks"      # stack-area growth / reclaim events


class Tracer:
    """Collects spans, instants and counter samples into ring buffers."""

    def __init__(self, capacity: int = 65536):
        self.capacity = capacity
        self._buffers: dict[str, RingBuffer] = {}
        self._open: dict[str, tuple[int, str, dict | None]] = {}
        self.enabled_tracks: set[str] | None = None   # None = all tracks

    # -- recording -----------------------------------------------------------

    def _buffer(self, track: str) -> RingBuffer:
        buffer = self._buffers.get(track)
        if buffer is None:
            buffer = self._buffers[track] = RingBuffer(self.capacity)
        return buffer

    def complete(self, track: str, name: str, ts: int, dur: int,
                 args: dict | None = None) -> None:
        """Record a complete span (start ``ts``, length ``dur`` steps)."""
        self._buffer(track).append(TraceEvent(ts, dur, "X", track, name, args))

    def instant(self, track: str, name: str, ts: int,
                args: dict | None = None) -> None:
        self._buffer(track).append(TraceEvent(ts, 0, "i", track, name, args))

    def counter(self, track: str, name: str, ts: int, value: float) -> None:
        self._buffer(track).append(
            TraceEvent(ts, 0, "C", track, name, {"value": value}))

    def begin_slice(self, track: str, name: str, ts: int,
                    args: dict | None = None) -> None:
        """Open a slice on ``track``; implicitly ends any open slice.

        Tracks used through this interface form a flat timeline of
        back-to-back slices — exactly how the "which predicate is
        resolving right now" strip is built.
        """
        self.end_slice(track, ts)
        self._open[track] = (ts, name, args)

    def end_slice(self, track: str, ts: int) -> None:
        open_slice = self._open.pop(track, None)
        if open_slice is None:
            return
        begin, name, args = open_slice
        if ts > begin:
            self.complete(track, name, begin, ts - begin, args)

    def finish(self, ts: int) -> None:
        """Close every open slice at ``ts`` (end of run)."""
        for track in list(self._open):
            self.end_slice(track, ts)

    # -- inspection ----------------------------------------------------------

    def events(self, track: str | None = None) -> list[TraceEvent]:
        """Live events, oldest-first (one track, or all tracks by ts)."""
        if track is not None:
            buffer = self._buffers.get(track)
            return list(buffer) if buffer is not None else []
        merged = [event for buffer in self._buffers.values()
                  for event in buffer]
        merged.sort(key=lambda e: e.ts)
        return merged

    @property
    def dropped(self) -> dict[str, int]:
        return {track: buffer.dropped
                for track, buffer in self._buffers.items() if buffer.dropped}

    def __len__(self) -> int:
        return sum(len(buffer) for buffer in self._buffers.values())

    # -- export --------------------------------------------------------------

    def metadata(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "clock": "microsteps",
            "step_ns": STEP_NS,
            "events": len(self),
            "dropped": self.dropped,
        }

    def to_jsonl(self, fp: IO[str]) -> int:
        """Write every event as one JSON object per line.

        The first line is a ``{"meta": {...}}`` header (schema version,
        clock definition, drop counts); each following line is one
        :meth:`TraceEvent.to_dict` record.  Returns the event count.
        """
        fp.write(json.dumps({"meta": self.metadata()},
                            separators=(",", ":")) + "\n")
        events = self.events()
        for event in events:
            fp.write(json.dumps(event.to_dict(), separators=(",", ":"),
                                sort_keys=True) + "\n")
        return len(events)

    def to_chrome(self, fp: IO[str], process_name: str = "PSI") -> int:
        """Write a Chrome ``trace_event`` JSON object for Perfetto.

        Each track becomes one thread of pid 0 (named via ``M``
        metadata events); microstep timestamps convert to microseconds
        of modelled time (``STEP_NS`` per step).  Returns the event
        count (excluding metadata events).
        """
        scale = STEP_NS / 1000.0     # steps -> trace microseconds
        track_tids = {}
        trace_events: list[dict] = [{
            "ph": "M", "pid": 0, "tid": 0, "name": "process_name",
            "args": {"name": process_name},
        }]
        events = self.events()
        for event in events:
            tid = track_tids.get(event.track)
            if tid is None:
                tid = track_tids[event.track] = len(track_tids) + 1
                trace_events.append({
                    "ph": "M", "pid": 0, "tid": tid, "name": "thread_name",
                    "args": {"name": event.track},
                })
            record = {
                "ph": event.ph,
                "pid": 0, "tid": tid,
                "ts": round(event.ts * scale, 3),
                "name": event.name,
                "cat": event.track,
            }
            if event.ph == "X":
                record["dur"] = round(max(event.dur, 1) * scale, 3)
            elif event.ph == "i":
                record["s"] = "t"
            if event.args:
                record["args"] = event.args
            trace_events.append(record)
        json.dump({"traceEvents": trace_events,
                   "displayTimeUnit": "ms",
                   "metadata": self.metadata()}, fp)
        return len(events)


def read_jsonl(lines: Iterable[str]) -> tuple[dict, list[TraceEvent]]:
    """Parse :meth:`Tracer.to_jsonl` output back into (metadata, events)."""
    meta: dict = {}
    events: list[TraceEvent] = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if "meta" in record and "ph" not in record:
            meta = record["meta"]
        else:
            events.append(TraceEvent.from_dict(record))
    return meta, events
