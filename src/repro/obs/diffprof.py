"""Differential profiling: attribute a regression to its hotspot.

``psi-eval diff <baseline> <current>`` loads two saved profile
snapshots (the ``<name>.profile.json`` files ``psi-eval profile``
writes) and reports, per ``(predicate × module)`` pair, the microstep
delta between the two runs — plus the hotspots that are *new* in the
current run and the ones that *vanished*.  The deltas reconcile
exactly: each side's per-key steps sum to that run's total step count,
and the sum of all deltas equals the total-step delta (under test in
``tests/obs/test_diffprof.py``), so nothing a regression costs can
hide outside the report.

When both snapshots carry a metrics section, counter deltas (cache
hits/misses, per-module steps, …) are appended — the coarse view that
tells you *whether* something moved, above the profile view that tells
you *where*.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass

from repro.obs.profile import MicroProfile

SNAPSHOT_KIND = "psi-profile-snapshot"
SNAPSHOT_SCHEMA = 1


# -- snapshot files (written by `psi-eval profile`) ---------------------------

def write_snapshot(path, name: str, observation, sequences=None) -> dict:
    """Persist one run's profile + metrics as a diffable snapshot.

    ``sequences``, when given, is a list of mined hot micro-op n-grams
    (:class:`repro.obs.seqmine.Candidate`) — the fusion selector's view
    — stored under a ``"sequences"`` key.
    """
    data = {
        "kind": SNAPSHOT_KIND,
        "schema": SNAPSHOT_SCHEMA,
        "workload": name,
        "total_steps": observation.total_steps,
        "profile": observation.profile.to_dict(),
        "metrics": observation.metrics_snapshot,
    }
    if sequences is not None:
        data["sequences"] = [c.to_json() for c in sequences]
    pathlib.Path(path).write_text(json.dumps(data, indent=2, sort_keys=True)
                                  + "\n")
    return data


def read_snapshot(path) -> dict:
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("kind") != SNAPSHOT_KIND:
        raise ValueError(f"{path}: not a psi profile snapshot "
                         f"(kind={data.get('kind')!r})")
    return data


def is_snapshot_file(path) -> bool:
    try:
        return read_snapshot(path).get("kind") == SNAPSHOT_KIND
    except (OSError, ValueError):
        return False


# -- the diff -----------------------------------------------------------------

@dataclass(frozen=True)
class KeyDelta:
    """Microstep movement of one (predicate × module) pair."""

    predicate: str
    module: str
    base: int
    current: int

    @property
    def delta(self) -> int:
        return self.current - self.base

    @property
    def is_new(self) -> bool:
        return self.base == 0 and self.current > 0

    @property
    def vanished(self) -> bool:
        return self.current == 0 and self.base > 0


@dataclass(frozen=True)
class ProfileDiff:
    """Every pair of either run, with both sides' steps."""

    base_label: str
    current_label: str
    base_total: int
    current_total: int
    deltas: tuple

    @property
    def total_delta(self) -> int:
        return self.current_total - self.base_total

    @property
    def new_hotspots(self) -> list:
        return [d for d in self.deltas if d.is_new]

    @property
    def vanished_hotspots(self) -> list:
        return [d for d in self.deltas if d.vanished]

    def reconciles(self) -> bool:
        """Both sides' per-key sums equal their run totals — exactly."""
        return (sum(d.base for d in self.deltas) == self.base_total
                and sum(d.current for d in self.deltas) == self.current_total)

    def render(self, top: int = 15) -> str:
        from repro.eval.report import format_table

        ranked = sorted(self.deltas, key=lambda d: (-abs(d.delta),
                                                    d.predicate, d.module))
        rows = []
        for d in ranked[:top]:
            share = (100.0 * d.delta / self.base_total
                     if self.base_total else 0.0)
            marker = ("new" if d.is_new
                      else "gone" if d.vanished else "")
            rows.append((d.predicate, d.module, d.base, d.current,
                         d.delta, round(share, 2), marker))
        table = format_table(
            ["predicate", "module", "base", "current", "delta",
             "% of base", ""],
            rows,
            title=f"microstep deltas: {self.base_label} -> "
                  f"{self.current_label} (top {min(top, len(ranked))} "
                  f"of {len(ranked)} pairs by |delta|)")
        check = "reconciled" if self.reconciles() else "MISMATCH"
        summary = (f"totals: base {self.base_total} -> current "
                   f"{self.current_total} ({self.total_delta:+d} steps); "
                   f"per-pair sums {check}; "
                   f"{len(self.new_hotspots)} new pair(s), "
                   f"{len(self.vanished_hotspots)} vanished")
        return f"{table}\n{summary}"


def diff_profiles(base: MicroProfile, current: MicroProfile,
                  base_label: str = "baseline",
                  current_label: str = "current") -> ProfileDiff:
    keys = sorted(set(base.samples) | set(current.samples),
                  key=lambda k: (k[0], k[1].value))
    deltas = tuple(
        KeyDelta(predicate=predicate, module=module.value,
                 base=base.samples.get((predicate, module), 0),
                 current=current.samples.get((predicate, module), 0))
        for predicate, module in keys)
    return ProfileDiff(base_label=base_label, current_label=current_label,
                       base_total=base.total_steps,
                       current_total=current.total_steps,
                       deltas=deltas)


def diff_snapshot_files(base_path, current_path) -> str:
    """Load two snapshot files, render the profile diff (+ metrics deltas)."""
    base_data = read_snapshot(base_path)
    current_data = read_snapshot(current_path)
    diff = diff_profiles(
        MicroProfile.from_dict(base_data["profile"]),
        MicroProfile.from_dict(current_data["profile"]),
        base_label=base_data.get("workload") or str(base_path),
        current_label=current_data.get("workload") or str(current_path))
    sections = [diff.render()]
    metrics = _metrics_deltas(base_data.get("metrics"),
                              current_data.get("metrics"))
    if metrics:
        sections.append(metrics)
    return "\n\n".join(sections)


def _metrics_deltas(base: dict | None, current: dict | None) -> str | None:
    if not base or not current:
        return None
    from repro.eval.report import format_table

    rows = []
    for name in sorted(set(base) | set(current)):
        b = (base.get(name) or {})
        c = (current.get(name) or {})
        if b.get("kind") != "counter" and c.get("kind") != "counter":
            continue
        b_value = b.get("value", 0)
        c_value = c.get("value", 0)
        if b_value or c_value:
            rows.append((name, b_value, c_value, c_value - b_value))
    if not rows:
        return None
    return format_table(["metric", "base", "current", "delta"], rows,
                        title="counter metric deltas")
