"""Machine-state log: the explorer's checkpoint stream as JSONL.

The HTML explorer is for eyes; this module is the same reconstruction
for pipelines.  :func:`write_statelog` walks a built
:class:`~repro.obs.timetravel.TraceExplorer` and emits one JSON object
per line:

* line 1 — a ``header`` record: workload goal, trace length, checkpoint
  stride, per-area register mnemonics, and (when a stats collector is
  supplied) the run's microinstruction statistics
  (:meth:`repro.core.stats.StatsCollector.state`);
* one ``state`` record per checkpoint — the microstep, the derived
  register file, choicepoint depth, cumulative backtracks, per-area
  extent/traffic summaries (heat maps elided: they belong to the HTML
  heatmap, not a log line), and the cache hit/miss totals;
* a final ``state`` record for the end of the run (appended when the
  last checkpoint does not already fall on the final microstep).

Like every obs artifact the log is derived and deterministic —
identical runs produce identical logs — and is never stored in the
persistent run cache.  :func:`read_statelog` parses a log back into
``(header, states)``.
"""

from __future__ import annotations

import json

from repro.core.memory import AREA_REGISTERS, AREAS
from repro.obs.timetravel import ReplayState, TraceExplorer


def state_record(state: ReplayState) -> dict:
    """One checkpoint's log record (plain data, heat maps elided)."""
    record = {
        "type": "state",
        "step": state.step,
        "registers": state.registers,
        "control_depth": state.control_depth,
        "backtracks": state.backtracks,
        "areas": {},
    }
    for area in AREAS:
        a = state.areas[area]
        record["areas"][area.name.lower()] = {
            "top": a.top, "high_water": a.high_water,
            "reads": a.reads, "writes": a.writes,
            "stack_writes": a.stack_writes,
            "reclaims": a.reclaims, "reclaimed_words": a.reclaimed_words,
        }
    if state.cache is not None:
        stats = state.cache.stats
        record["cache"] = {
            "hits": stats.hits, "misses": stats.misses,
            "resident_blocks": state.cache.resident_blocks,
            "writebacks": stats.writebacks,
        }
    return record


def write_statelog(path, explorer: TraceExplorer, *, goal: str = "",
                   stats=None) -> int:
    """Write the explorer's checkpoints to ``path``; returns the number
    of state records (checkpoints + the final state)."""
    header = {
        "type": "header",
        "goal": goal,
        "entries": explorer.n_steps,
        "stride": explorer.stride,
        "registers": {area.name.lower(): AREA_REGISTERS[area]
                      for area in AREAS},
    }
    if stats is not None:
        header["stats"] = stats.state()
    steps = explorer.checkpoint_steps
    states = [explorer.state_at(step) for step in steps]
    if explorer.n_steps != steps[-1]:
        states.append(explorer.final)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for state in states:
            handle.write(json.dumps(state_record(state), sort_keys=True) + "\n")
    return len(states)


def read_statelog(path) -> tuple[dict, list[dict]]:
    """Parse a state log back into ``(header, state records)``."""
    with open(path, encoding="utf-8") as handle:
        lines = [json.loads(line) for line in handle if line.strip()]
    if not lines or lines[0].get("type") != "header":
        raise ValueError(f"{path}: not a state log (missing header line)")
    return lines[0], lines[1:]
