"""``repro.obs`` — the observability layer of the reproduction.

The paper's contribution is *measurement*: Tables 2–7 and Figure 1 are
dynamic frequencies sampled from the PSI's console tools.  This
package is the reproduction's own console: it makes the inside of a
run observable — where microsteps, cache misses and modelled time go —
through three cooperating instruments:

* :mod:`repro.obs.trace` — a structured event tracer (ring-buffered
  spans/instants/counters on the deterministic microstep clock),
  exportable as JSONL and Chrome ``trace_event`` JSON for Perfetto;
* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  histograms snapshotted per run and merged across ``run_many``
  workers;
* :mod:`repro.obs.profile` — microstep attribution to
  ``(workload predicate × interpreter module)`` pairs, rendered as
  collapsed-stack flamegraph input and text top-N reports.

Everything is **off by default and zero-cost when disabled**: the
module-level :func:`enabled` flag is consulted once per collected run
(in :func:`repro.tools.collect.collect`), never per microstep.  When
disabled, the machine uses the plain
:class:`~repro.core.stats.StatsCollector` and no obs object exists.
Enable per process with :func:`enable` / the ``PSI_OBS=1`` environment
variable, or scoped with the :func:`observed` context manager; the
``psi-eval profile`` subcommand does it for you.

Observability output is *derived* from execution and deterministic
(identical runs produce identical traces, profiles and metrics); it is
never stored in the PR-1 persistent run cache.  See
``docs/OBSERVABILITY.md`` for the user guide and schemas.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import MicroProfile
from repro.obs.session import ObsConfig, ObsSession, RunObservation
from repro.obs.statelog import read_statelog, write_statelog
from repro.obs.timetravel import (Divergence, ReplayState, TraceExplorer,
                                  first_divergence)
from repro.obs.trace import RingBuffer, TraceEvent, Tracer, read_jsonl

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry",
    "MicroProfile", "ObsConfig", "ObsSession", "RunObservation",
    "RingBuffer", "TraceEvent", "Tracer", "read_jsonl",
    "Divergence", "ReplayState", "TraceExplorer", "first_divergence",
    "read_statelog", "write_statelog",
    "enabled", "enable", "disable", "observed",
    "begin_run", "record_run", "merge_snapshot", "global_metrics",
]

_enabled = False
_config = ObsConfig()

#: Process-global metrics registry: every observed run's snapshot is
#: merged here (locally collected runs in :func:`record_run`, worker
#: snapshots in :func:`repro.eval.runner.run_many`).
_GLOBAL_METRICS = MetricsRegistry()


def enabled() -> bool:
    """Is observability on for this process?"""
    return _enabled


def enable(config: ObsConfig | None = None, **overrides) -> None:
    """Turn observability on (optionally with config overrides).

    ``overrides`` are :class:`ObsConfig` fields, e.g.
    ``enable(trace_capacity=1 << 20, cache_window=4096)``.
    """
    global _enabled, _config
    if config is not None and overrides:
        raise ValueError("pass either a config or field overrides, not both")
    if config is None:
        from dataclasses import replace
        config = replace(_config, **overrides) if overrides else _config
    _config = config
    _enabled = True


def disable() -> None:
    global _enabled
    _enabled = False


def reset() -> None:
    """Disable and drop all accumulated global metrics (test isolation)."""
    global _config
    disable()
    _config = ObsConfig()
    _GLOBAL_METRICS.clear()


@contextmanager
def observed(config: ObsConfig | None = None, **overrides):
    """Context manager: observability on inside, previous state after."""
    global _config
    was_enabled, previous_config = _enabled, _config
    enable(config, **overrides)
    try:
        yield
    finally:
        _config = previous_config
        if not was_enabled:
            disable()


def config() -> ObsConfig:
    return _config


def begin_run(goal: str) -> ObsSession:
    """Create the instrumentation session for one run (enabled mode)."""
    return ObsSession(goal, _config)


def record_run(observation: RunObservation) -> None:
    """Merge a finished run's metrics into the process-global registry."""
    _GLOBAL_METRICS.merge(observation.metrics_snapshot)


def merge_snapshot(snapshot: dict) -> None:
    """Merge a metrics snapshot (e.g. from a ``run_many`` worker)."""
    _GLOBAL_METRICS.merge(snapshot)


def global_metrics() -> MetricsRegistry:
    return _GLOBAL_METRICS


if os.environ.get("PSI_OBS", "").strip() not in ("", "0"):
    enable()
