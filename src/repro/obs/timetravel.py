"""Time-travel state reconstruction over the packed memory trace.

The PSI's console tools dumped machine state to floppy so engineers
could inspect any point of a run after the fact; our equivalent
rebuilds machine state at **any microstep** from the packed int64
access stream a :class:`~repro.core.memory.TraceRecorder` already
records for the PMMS hand-off.  A *microstep* here is an index into
that stream: each entry is one memory-access microinstruction
(``address << 2 | command_code``), so seeking to microstep N means
replaying the first N accesses.

What the trace determines — and therefore what
:class:`ReplayState` models — is the machine's *memory geometry*, not
word values (the trace carries addresses, never data):

* per-area **extents**: the top-of-area register file
  (:data:`repro.core.memory.AREA_REGISTERS`), high-water marks, and
  read/write/write-stack counts;
* per-area **heat**: access counts in
  :data:`HEAT_BUCKET_WORDS`-word buckets — the memory heatmap;
* the **choicepoint chain**: the control stack holds nothing but
  10-word frames (:data:`repro.core.machine.CONTROL_FRAME_WORDS`), so
  its extent *is* the frame chain and every inferred truncation is a
  backtrack event;
* **cache state**: the production cache replayed access-for-access —
  resident blocks in true LRU order plus the full hit/miss statistics.

Stack truncations (``settop``) are not themselves traced; they are
*inferred* when a Write-stack lands below the observed top.  The model
is therefore the observed-extent semantics of the stream — exactly
reproducible, which is what checkpointing requires.

Checkpointed seek: :class:`TraceExplorer` replays the stream once,
storing a :meth:`ReplayState.snapshot` every K microsteps (K
auto-sized from the trace length, :func:`auto_stride`) plus a bucketed
timeline for the HTML explorer.  ``state_at(N)`` then costs one
snapshot restore plus at most K-1 replayed accesses instead of a full
re-execution; equality with a cold replay to N is pinned by
``tests/obs/test_timetravel.py``.

Differential mode: :func:`first_divergence` aligns the two engines'
canonical answer sequences (both machines consume the same frontend,
so solutions arrive in identical clause order when the engines agree)
and pinpoints the PSI microstep at which the first diverging answer
was emitted, using the answer marks
:func:`repro.tools.collect.collect` records.  ``psi-eval debug
--diff`` renders the result; ``psi-eval crosscheck`` prints the
one-command reproduction recipe on any divergence.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import CONTROL_FRAME_WORDS
from repro.core.memory import (
    AREA_REGISTERS,
    AREA_SHIFT,
    AREAS,
    N_AREAS,
    OFFSET_MASK,
    TraceRecorder,
)
from repro.core.micro import CMD_BY_CODE
from repro.memsys import Cache, CacheConfig

#: Heat-map granularity: access counts are binned per this many words.
#: Word-exact heat would make every checkpoint carry one dict entry
#: per touched word (~37k words on the window benchmark); 16-word
#: buckets keep checkpoints compact while staying finer than the
#: production cache's 8-word blocks.
HEAT_BUCKET_WORDS = 16
_HEAT_SHIFT = HEAT_BUCKET_WORDS.bit_length() - 1

#: Auto-sizing target: about this many checkpoints per trace keeps the
#: worst-case seek (one stride of replayed accesses) short without the
#: checkpoint array itself dominating memory.
AUTO_TARGET_CHECKPOINTS = 128

_CONTROL = 3  # Area.CONTROL — literal for the hot decode loop


def auto_stride(n_entries: int) -> int:
    """Checkpoint stride for a trace of ``n_entries`` accesses.

    Power of two, at least 256, chosen so the trace yields at most
    ~:data:`AUTO_TARGET_CHECKPOINTS` checkpoints: short traces seek
    almost instantly, long traces bound their checkpoint memory.
    """
    stride = 256
    while n_entries // stride > AUTO_TARGET_CHECKPOINTS:
        stride *= 2
    return stride


class AreaState:
    """Observed geometry of one memory area at a microstep."""

    __slots__ = ("top", "high_water", "reads", "writes", "stack_writes",
                 "reclaims", "reclaimed_words", "heat")

    def __init__(self) -> None:
        self.top = 0                #: observed extent (max touched offset + 1)
        self.high_water = 0
        self.reads = 0
        self.writes = 0
        self.stack_writes = 0
        self.reclaims = 0           #: inferred truncations (stack reclaim events)
        self.reclaimed_words = 0
        self.heat: dict[int, int] = {}   #: bucket -> access count

    @property
    def accesses(self) -> int:
        return self.reads + self.writes + self.stack_writes

    def to_dict(self) -> dict:
        return {"top": self.top, "high_water": self.high_water,
                "reads": self.reads, "writes": self.writes,
                "stack_writes": self.stack_writes,
                "reclaims": self.reclaims,
                "reclaimed_words": self.reclaimed_words,
                "heat": dict(self.heat)}

    @classmethod
    def from_dict(cls, data: dict) -> "AreaState":
        state = cls()
        state.top = data["top"]
        state.high_water = data["high_water"]
        state.reads = data["reads"]
        state.writes = data["writes"]
        state.stack_writes = data["stack_writes"]
        state.reclaims = data["reclaims"]
        state.reclaimed_words = data["reclaimed_words"]
        state.heat = dict(data["heat"])
        return state


def _cache_snapshot(cache: Cache) -> dict:
    """Full cache state including LRU order (JSON-unsafe: int keys)."""
    stats = cache.stats
    return {
        "sets": [list(ways.items()) for ways in cache._sets],
        "per_area": [(stats.per_area[area].hits, stats.per_area[area].misses)
                     for area in AREAS],
        "per_cmd": [(stats.per_cmd_hits[cmd], stats.per_cmd_misses[cmd])
                    for cmd in CMD_BY_CODE],
        "block_fetches": stats.block_fetches,
        "writebacks": stats.writebacks,
        "through_writes": stats.through_writes,
    }


def _cache_restore(snapshot: dict, config: CacheConfig) -> Cache:
    """Rebuild a cache whose future behaviour matches the snapshot's.

    Set dicts are rebuilt in the recorded insertion order, so LRU
    decisions after a restore are identical to never having paused.
    """
    cache = Cache(config)
    cache._sets = [dict(pairs) for pairs in snapshot["sets"]]
    stats = cache.stats
    for area, (hits, misses) in zip(AREAS, snapshot["per_area"]):
        counts = stats.per_area[area]
        counts.hits, counts.misses = hits, misses
    cache._area_counts = tuple(stats.per_area[area] for area in AREAS)
    for cmd, (hits, misses) in zip(CMD_BY_CODE, snapshot["per_cmd"]):
        stats.per_cmd_hits[cmd] = hits
        stats.per_cmd_misses[cmd] = misses
    stats.block_fetches = snapshot["block_fetches"]
    stats.writebacks = snapshot["writebacks"]
    stats.through_writes = snapshot["through_writes"]
    return cache


class ReplayState:
    """Reconstructed machine state after N replayed accesses.

    ``with_cache=True`` (the default) additionally replays the access
    through a simulated :class:`~repro.memsys.Cache` so cache
    occupancy and hit/miss statistics are part of the state.  Equality
    compares the full :meth:`snapshot`, LRU order included.
    """

    __slots__ = ("step", "areas", "backtracks", "cache", "cache_config")

    def __init__(self, *, with_cache: bool = True,
                 cache_config: CacheConfig | None = None):
        self.step = 0
        self.areas = [AreaState() for _ in range(N_AREAS)]
        self.backtracks = 0
        self.cache_config = (cache_config or CacheConfig()) \
            if with_cache else None
        self.cache = Cache(self.cache_config) if with_cache else None

    # -- replay ---------------------------------------------------------------

    def apply(self, packed: int) -> None:
        """Advance the state by one packed trace entry."""
        code = packed & 3
        address = packed >> 2
        area = self.areas[address >> AREA_SHIFT]
        offset = address & OFFSET_MASK
        bucket = offset >> _HEAT_SHIFT
        heat = area.heat
        heat[bucket] = heat.get(bucket, 0) + 1
        if code == 2:                      # WRITE_STACK: push, may reveal reclaim
            area.stack_writes += 1
            if offset < area.top:
                area.reclaims += 1
                area.reclaimed_words += area.top - offset
                if address >> AREA_SHIFT == _CONTROL:
                    self.backtracks += 1
            area.top = offset + 1
        else:
            if code == 0:
                area.reads += 1
            else:
                area.writes += 1
            if offset >= area.top:
                area.top = offset + 1
        if area.top > area.high_water:
            area.high_water = area.top
        if self.cache is not None:
            self.cache.access(CMD_BY_CODE[code], address)
        self.step += 1

    def apply_many(self, packed_entries) -> None:
        for packed in packed_entries:
            self.apply(packed)

    # -- derived registers ----------------------------------------------------

    @property
    def registers(self) -> dict[str, int]:
        """The derived register file: top-of-area pointers by mnemonic."""
        return {AREA_REGISTERS[area]: self.areas[area].top for area in AREAS}

    @property
    def control_depth(self) -> int:
        """Choicepoint-chain depth: the control stack holds only
         10-word frames, so its extent divides into whole frames."""
        return self.areas[_CONTROL].top // CONTROL_FRAME_WORDS

    @property
    def control_frames(self) -> list[int]:
        """Base offsets of the live control frames, innermost last."""
        return list(range(0, self.control_depth * CONTROL_FRAME_WORDS,
                          CONTROL_FRAME_WORDS))

    # -- checkpointing --------------------------------------------------------

    def snapshot(self) -> dict:
        """Deep plain-data copy of the whole state (checkpoint payload)."""
        return {
            "step": self.step,
            "backtracks": self.backtracks,
            "areas": [area.to_dict() for area in self.areas],
            "cache": _cache_snapshot(self.cache)
            if self.cache is not None else None,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict,
                      cache_config: CacheConfig | None = None) -> "ReplayState":
        state = cls(with_cache=False)
        state.step = snapshot["step"]
        state.backtracks = snapshot["backtracks"]
        state.areas = [AreaState.from_dict(d) for d in snapshot["areas"]]
        if snapshot["cache"] is not None:
            state.cache_config = cache_config or CacheConfig()
            state.cache = _cache_restore(snapshot["cache"], state.cache_config)
        return state

    def __eq__(self, other) -> bool:
        if not isinstance(other, ReplayState):
            return NotImplemented
        return self.snapshot() == other.snapshot()

    __hash__ = None

    # -- rendering ------------------------------------------------------------

    def render(self) -> str:
        """Terse text view (the ``psi-eval debug --step N`` output)."""
        lines = [f"state at microstep {self.step}"]
        lines.append("registers: " + "  ".join(
            f"{name}={value}" for name, value in self.registers.items()))
        lines.append(f"choicepoint chain: {self.control_depth} frame(s), "
                     f"{self.backtracks} backtrack(s) so far")
        for area in AREAS:
            a = self.areas[area]
            if not a.accesses and not a.top:
                continue
            lines.append(
                f"  {area.label:<13} top {a.top:>7}  high {a.high_water:>7}  "
                f"r/w/ws {a.reads}/{a.writes}/{a.stack_writes}  "
                f"reclaims {a.reclaims} ({a.reclaimed_words} words)")
        if self.cache is not None:
            stats = self.cache.stats
            lines.append(
                f"cache: {self.cache.resident_blocks} resident block(s), "
                f"{stats.hits} hits / {stats.misses} misses "
                f"({stats.hit_ratio:.2f}%), "
                f"{stats.writebacks} writebacks")
        return "\n".join(lines)


@dataclass
class TimelinePoint:
    """One bucket of the explorer's over-time aggregates."""

    step: int                     #: end microstep of the bucket (exclusive)
    area_accesses: list[int]      #: accesses per area within the bucket
    area_tops: list[int]          #: per-area top at the bucket end
    hits: int                     #: cache hits within the bucket
    misses: int                   #: cache misses within the bucket
    control_depth: int            #: choicepoint depth at the bucket end
    backtracks: int               #: backtracks within the bucket


class TraceExplorer:
    """Checkpointed random access into one recorded run.

    Construction replays the packed stream once, capturing

    * a state checkpoint every ``stride`` microsteps (auto-sized by
      default), and
    * a ``timeline`` of ~``timeline_buckets`` aggregate points for the
      HTML explorer's heatmaps and hit/miss chart.

    ``state_at(N)`` afterwards is checkpoint-restore + short replay.
    """

    def __init__(self, trace, *, stride: int | None = None,
                 with_cache: bool = True,
                 cache_config: CacheConfig | None = None,
                 timeline_buckets: int = 240):
        if isinstance(trace, TraceRecorder):
            self.data = trace.data
        elif isinstance(trace, (bytes, bytearray)):
            self.data = TraceRecorder.frombytes(bytes(trace)).data
        else:
            self.data = trace
        self.n_steps = len(self.data)
        self.stride = stride or auto_stride(self.n_steps)
        self.cache_config = cache_config or CacheConfig()
        self.with_cache = with_cache
        self.timeline: list[TimelinePoint] = []
        self._checkpoints: list[dict] = []
        self._build(max(1, min(timeline_buckets, self.n_steps) or 1))

    def _build(self, n_buckets: int) -> None:
        state = ReplayState(with_cache=self.with_cache,
                            cache_config=self.cache_config)
        stride = self.stride
        bucket_span = max(1, -(-self.n_steps // n_buckets))  # ceil division
        self._checkpoints.append(state.snapshot())
        prev = _TimelineCursor(state)
        apply = state.apply
        data = self.data
        for step in range(0, self.n_steps, stride):
            for packed in data[step:step + stride]:
                apply(packed)
                if state.step % bucket_span == 0:
                    self.timeline.append(prev.advance(state))
            if state.step % stride == 0 and state.step < self.n_steps:
                self._checkpoints.append(state.snapshot())
        if self.n_steps % bucket_span:
            self.timeline.append(prev.advance(state))
        self.final = state

    # -- seeking --------------------------------------------------------------

    @property
    def checkpoint_steps(self) -> list[int]:
        return [i * self.stride for i in range(len(self._checkpoints))]

    def state_at(self, step: int) -> ReplayState:
        """State after the first ``step`` accesses (checkpointed seek)."""
        if not 0 <= step <= self.n_steps:
            raise IndexError(
                f"microstep {step} outside [0, {self.n_steps}]")
        index = min(step // self.stride, len(self._checkpoints) - 1)
        state = ReplayState.from_snapshot(self._checkpoints[index],
                                          cache_config=self.cache_config)
        base = index * self.stride
        if step > base:
            state.apply_many(self.data[base:step])
        return state

    def cold_state_at(self, step: int) -> ReplayState:
        """State via a full replay from microstep 0 (the reference)."""
        if not 0 <= step <= self.n_steps:
            raise IndexError(
                f"microstep {step} outside [0, {self.n_steps}]")
        state = ReplayState(with_cache=self.with_cache,
                            cache_config=self.cache_config)
        state.apply_many(self.data[:step])
        return state


class _TimelineCursor:
    """Delta tracker between timeline bucket boundaries."""

    __slots__ = ("accesses", "hits", "misses", "backtracks")

    def __init__(self, state: ReplayState):
        self._capture(state)

    def _capture(self, state: ReplayState) -> None:
        self.accesses = [state.areas[a].accesses for a in range(N_AREAS)]
        if state.cache is not None:
            self.hits = state.cache.stats.hits
            self.misses = state.cache.stats.misses
        else:
            self.hits = self.misses = 0
        self.backtracks = state.backtracks

    def advance(self, state: ReplayState) -> TimelinePoint:
        hits = state.cache.stats.hits if state.cache is not None else 0
        misses = state.cache.stats.misses if state.cache is not None else 0
        point = TimelinePoint(
            step=state.step,
            area_accesses=[state.areas[a].accesses - self.accesses[a]
                           for a in range(N_AREAS)],
            area_tops=[state.areas[a].top for a in range(N_AREAS)],
            hits=hits - self.hits,
            misses=misses - self.misses,
            control_depth=state.control_depth,
            backtracks=state.backtracks - self.backtracks,
        )
        self._capture(state)
        return point


# -- differential mode ---------------------------------------------------------


@dataclass
class Divergence:
    """The first point where two engines' answer sequences part ways."""

    workload: str
    index: int                    #: answer index (0-based) of the divergence
    kind: str                     #: "answer" | "psi_missing" | "other_missing"
    psi_answer: str | None
    other_answer: str | None
    microstep: int                #: PSI microstep of the diverging answer
    total_microsteps: int
    other_label: str = "baseline"

    def describe(self) -> str:
        if self.kind == "answer":
            return (f"answer #{self.index + 1} diverges at PSI microstep "
                    f"{self.microstep}/{self.total_microsteps}: "
                    f"PSI {self.psi_answer!r} vs {self.other_label} "
                    f"{self.other_answer!r}")
        if self.kind == "psi_missing":
            return (f"PSI exhausts after {self.index} answer(s) at microstep "
                    f"{self.microstep}/{self.total_microsteps}; "
                    f"{self.other_label} also finds {self.other_answer!r}")
        return (f"{self.other_label} exhausts after {self.index} answer(s); "
                f"PSI also finds {self.psi_answer!r} at microstep "
                f"{self.microstep}/{self.total_microsteps}")


def first_divergence(workload: str, psi_answers, psi_marks,
                     other_answers, total_microsteps: int,
                     other_label: str = "baseline") -> Divergence | None:
    """Align two canonical answer sequences; pinpoint the first split.

    ``psi_marks`` are the microstep positions
    :func:`repro.tools.collect.collect` recorded per answer (the trace
    length when each solution was decoded).  Comparison is
    order-sensitive — both engines consume the same normalized clause
    order, so a sequence divergence is the sharpest aligned signal; the
    crosscheck oracle's multiset view remains the semantic gate.
    """
    from repro.engine.answers import render_answer

    psi_rendered = [render_answer(a) for a in psi_answers]
    other_rendered = [render_answer(a) for a in other_answers]

    def mark(i: int) -> int:
        if psi_marks and i < len(psi_marks):
            return psi_marks[i]
        return total_microsteps

    for i, (mine, theirs) in enumerate(zip(psi_rendered, other_rendered)):
        if mine != theirs:
            return Divergence(workload, i, "answer", mine, theirs,
                              mark(i), total_microsteps, other_label)
    if len(psi_rendered) < len(other_rendered):
        i = len(psi_rendered)
        return Divergence(workload, i, "psi_missing", None,
                          other_rendered[i], total_microsteps,
                          total_microsteps, other_label)
    if len(other_rendered) < len(psi_rendered):
        i = len(other_rendered)
        return Divergence(workload, i, "other_missing", psi_rendered[i],
                          None, mark(i), total_microsteps, other_label)
    return None


def diff_workload(name: str):
    """Replay ``name`` on both engines; returns
    ``(divergence | None, psi run, baseline run)``.

    The PSI side comes through the full cached runner (the stored trace
    and answer marks make the microstep pinpoint free); the baseline
    runs fresh per process.  This is the engine behind ``psi-eval debug
    --diff`` and the reproduction recipe crosscheck prints.
    """
    from repro.eval.runner import run_spec

    psi = run_spec(name, "faithful", record_trace=True)
    baseline = run_spec(name, "baseline")
    total = len(psi.trace.data) if psi.trace is not None else 0
    divergence = first_divergence(name, psi.answers, psi.answer_marks,
                                  baseline.answers, total)
    return divergence, psi, baseline
