"""Micro-op sequence mining: find the hot n-grams worth fusing.

The superinstruction table (:mod:`repro.core.fused_table`) is not
hand-guessed: it is derived from evidence.  This module records the
*unfused* micro-op emission stream of real workload runs and counts
the most frequent short sequences (n-grams), ranking each candidate by
the total number of microinstruction steps attributable to it across
the workload set.  ``scripts/gen_superinstructions.py`` uses the
ranking to regenerate the committed table; ``psi-eval profile
--sequences N`` surfaces it for inspection.

Event encoding
--------------

One journal event is one packed int::

    (times << 19) | (area << 16) | pair_index

``pair_index`` is the collector's flat pair index
(``routine.pair_base + module.idx``), which identifies the (module,
routine) pair in 16 bits.  ``area`` is the memory area for cache
accesses and the sentinel ``7`` for plain emissions.  ``times`` keeps
batched emissions (``emit(..., times=n)``, ``mem_access_n``) as a
*single* token: a run of ``n`` identical ops is one micro-op with a
repeat count in the reference stream, and the fused table models it
the same way (an ``emissions`` entry with a ``times`` field).

Because :class:`RecordingStatsCollector` is a *subclass* of
:class:`~repro.core.stats.StatsCollector`, the machine's fused-dispatch
gate (an exact ``type`` check) turns fusion off for mining runs — the
journal therefore always records the true per-op reference stream,
never the already-fused one.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core import micro
from repro.core.micro import MEM_PAIR_BASE, MODULE_BY_INDEX, N_MODULES
from repro.core.stats import StatsCollector

#: ``area`` value marking a non-memory emission token.
NO_AREA = 7

_AREA_NAMES = ("heap", "global", "local", "control", "trail")
_NO_AREA_BITS = NO_AREA << 16


class RecordingStatsCollector(StatsCollector):
    """A stats collector that additionally journals the emission stream.

    Every billing call appends one packed event to :attr:`events` after
    delegating to the base class, so the counters stay exactly those of
    a plain run while the journal captures the op order the counters
    erase.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        super().__init__()
        self.events: list[int] = []

    def emit(self, routine, times: int = 1) -> None:
        super().emit(routine, times)
        self.events.append((times << 19) | _NO_AREA_BITS
                           | (routine.pair_base + self.module.idx))

    def emit_in(self, module, routine, times: int = 1) -> None:
        super().emit_in(module, routine, times)
        self.events.append((times << 19) | _NO_AREA_BITS
                           | (routine.pair_base + module.idx))

    def mem_access(self, cmd, area) -> None:
        super().mem_access(cmd, area)
        self.events.append((1 << 19) | (area << 16)
                           | (MEM_PAIR_BASE[cmd.code] + self.module.idx))

    def mem_access_n(self, cmd, area, times: int) -> None:
        super().mem_access_n(cmd, area, times)
        self.events.append((times << 19) | (area << 16)
                           | (MEM_PAIR_BASE[cmd.code] + self.module.idx))

    # A machine never routes fused dispatch at this collector (the gate
    # is an exact type check), but if a superinstruction is billed
    # explicitly — tests, future callers — replay it through the
    # journaling primitives so the stream stays complete.
    def emit_fused(self, fused) -> None:
        fused.replay(self)

    def emit_fused_dyn(self, fused) -> None:
        fused.replay(self)


def token_label(token: int) -> str:
    """Human-readable form of one packed event.

    ``control:proc.lookup``, ``unify:cache.read@heap``,
    ``control:frame.init_slot×3`` — module, routine name, memory area
    when the token is an access, repeat count when batched.
    """
    index = token & 0xFFFF
    area = (token >> 16) & 0x7
    times = token >> 19
    module = MODULE_BY_INDEX[index % N_MODULES]
    routine = micro.routines_by_rid()[index // N_MODULES]
    label = f"{module.value}:{routine.name}"
    if area != NO_AREA:
        label += f"@{_AREA_NAMES[area]}"
    if times != 1:
        label += f"×{times}"
    return label


def token_steps(token: int) -> int:
    """Microinstruction steps one occurrence of this token bills."""
    index = token & 0xFFFF
    times = token >> 19
    return micro.routines_by_rid()[index // N_MODULES].n_steps * times


@dataclass(frozen=True)
class Candidate:
    """One mined n-gram, ranked by total attributed steps."""

    tokens: tuple[int, ...]
    count: int

    @property
    def length(self) -> int:
        return len(self.tokens)

    @property
    def steps_per(self) -> int:
        """Unfused steps one occurrence bills."""
        return sum(token_steps(t) for t in self.tokens)

    @property
    def steps(self) -> int:
        """Total steps attributed to this sequence across the corpus."""
        return self.count * self.steps_per

    @property
    def label(self) -> str:
        return " → ".join(token_label(t) for t in self.tokens)

    def to_json(self) -> dict:
        return {
            "ops": [token_label(t) for t in self.tokens],
            "length": self.length,
            "count": self.count,
            "steps_per_occurrence": self.steps_per,
            "total_steps": self.steps,
        }


def ngram_counts(events: list[int],
                 lengths: tuple[int, ...] = (2, 3, 4)) -> Counter:
    """Count every n-gram of the given lengths in one event journal."""
    counts: Counter = Counter()
    for n in lengths:
        if len(events) >= n:
            counts.update(zip(*(events[i:] for i in range(n))))
    return counts


def rank(counts: Counter, top: int = 20,
         min_count: int = 2) -> list[Candidate]:
    """The ``top`` candidates by total attributed steps.

    Longer grams containing a shorter one inherit its occurrences, so
    both appear; ranking by steps (not raw count) keeps the list from
    being dominated by cheap two-op pairs.
    """
    candidates = [Candidate(tokens=gram, count=n)
                  for gram, n in counts.items() if n >= min_count]
    candidates.sort(key=lambda c: (-c.steps, -c.count, c.tokens))
    return candidates[:top]


def record_workload(name: str) -> RecordingStatsCollector:
    """Run one registered workload unfused and return its journal."""
    from repro.tools.collect import collect
    from repro.workloads import get

    workload = get(name)
    rec = RecordingStatsCollector()
    collect(workload.source, workload.goal,
            all_solutions=workload.all_solutions,
            record_trace=False, with_cache=False,
            stats_collector=rec,
            setup_goals=workload.setup_goals)
    return rec


def mine_workload(name: str, lengths: tuple[int, ...] = (2, 3, 4),
                  top: int = 20) -> list[Candidate]:
    """Top fusion candidates for a single workload."""
    return rank(ngram_counts(record_workload(name).events, lengths), top)


def mine_many(names, lengths: tuple[int, ...] = (2, 3, 4),
              top: int = 20) -> list[Candidate]:
    """Top fusion candidates aggregated across a workload set.

    Counts are summed per n-gram before ranking, so a sequence hot in
    several medium workloads outranks one hot in a single outlier —
    the selection criterion the committed fused table is built with.
    """
    total: Counter = Counter()
    for name in names:
        total.update(ngram_counts(record_workload(name).events, lengths))
    return rank(total, top)
