"""Profiling over the microinstruction stream.

The PSI's firmware profile (Table 2) answers "which *interpreter
module* consumes the steps"; what it cannot answer — and what the
optimizer work queued behind this subsystem needs — is "which
*workload predicate* makes that module hot".  This profiler attributes
every microstep of a run to a ``(predicate, module)`` pair:

* **predicate** — the workload procedure being resolved when the step
  executed (``functor/arity``, e.g. ``ids/4``), maintained by the
  machine as execution context (:attr:`StatsCollector.predicate`);
* **module** — the firmware interpreter module (Table 2's axis:
  control / unify / trail / get_arg / cut / built).

Attribution happens inside
:class:`~repro.obs.session.ObservedStatsCollector` on the routine
*emission* path, weighted by each routine's precomputed step count, so
it is exact: the profile total equals ``stats.total_steps`` (under
test in ``tests/obs/test_profile.py``).  ``sample_interval > 1``
switches to statistical sampling — every Nth emission is attributed
with weight N — for minimum-overhead always-on profiling; totals then
approximate rather than equal the step count.

Outputs:

* :meth:`MicroProfile.collapsed_stacks` — the collapsed-stack format
  consumed by every flamegraph renderer (``flamegraph.pl``,
  speedscope, inferno): one ``frame;frame value`` line per stack;
* :meth:`MicroProfile.top_table` — a text top-N report for terminals
  (the ``psi-eval profile`` output).
"""

from __future__ import annotations

import json
import pathlib
from collections import Counter as _Counter
from typing import IO

from repro.core.micro import Module

#: Predicate label used before the first user-predicate dispatch.
UNATTRIBUTED = "(startup)"


class MicroProfile:
    """Microstep attribution to (predicate, module) pairs."""

    def __init__(self, sample_interval: int = 1):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.sample_interval = sample_interval
        self.samples: _Counter = _Counter()   # (predicate, module) -> steps
        self._tick = 0                        # emission counter for sampling

    # -- recording (called from ObservedStatsCollector) -----------------------

    def add(self, predicate: str, module: Module, steps: int) -> None:
        """Attribute ``steps`` microsteps (exact mode)."""
        self.samples[(predicate, module)] += steps

    def add_sampled(self, predicate: str, module: Module, steps: int) -> None:
        """Attribute every Nth emission with weight N (sampling mode)."""
        self._tick += 1
        if self._tick >= self.sample_interval:
            self._tick = 0
            self.samples[(predicate, module)] += steps * self.sample_interval

    # -- views ----------------------------------------------------------------

    @property
    def total_steps(self) -> int:
        return sum(self.samples.values())

    def by_predicate(self) -> _Counter:
        totals: _Counter = _Counter()
        for (predicate, _module), steps in self.samples.items():
            totals[predicate] += steps
        return totals

    def by_module(self) -> _Counter:
        totals: _Counter = _Counter()
        for (_predicate, module), steps in self.samples.items():
            totals[module] += steps
        return totals

    def merge(self, other: "MicroProfile") -> None:
        self.samples.update(other.samples)

    # -- snapshot (differential profiling, `psi-eval diff`) --------------------

    def to_dict(self) -> dict:
        """Plain-data snapshot: sorted ``[predicate, module, steps]``
        triples plus the total, losslessly invertible by :meth:`from_dict`."""
        samples = sorted(
            ([predicate, module.value, steps]
             for (predicate, module), steps in self.samples.items() if steps),
        )
        return {"kind": "micro_profile", "schema": 1,
                "sample_interval": self.sample_interval,
                "total_steps": self.total_steps,
                "samples": samples}

    @classmethod
    def from_dict(cls, data: dict) -> "MicroProfile":
        profile = cls(data.get("sample_interval", 1))
        for predicate, module_value, steps in data["samples"]:
            profile.samples[(predicate, Module(module_value))] += steps
        return profile

    def save(self, path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_dict(), indent=2) + "\n")

    @classmethod
    def load(cls, path) -> "MicroProfile":
        return cls.from_dict(json.loads(pathlib.Path(path).read_text()))

    # -- export ----------------------------------------------------------------

    def collapsed_stacks(self, root: str | None = None) -> list[str]:
        """Collapsed-stack lines: ``[root;]predicate;module steps``.

        Deterministic order (sorted by stack name) so repeated runs of
        the same workload produce identical files.
        """
        prefix = f"{root};" if root else ""
        lines = [
            f"{prefix}{predicate};{module.value} {steps}"
            for (predicate, module), steps in self.samples.items() if steps
        ]
        return sorted(lines)

    def write_collapsed(self, fp: IO[str], root: str | None = None) -> int:
        lines = self.collapsed_stacks(root)
        for line in lines:
            fp.write(line + "\n")
        return len(lines)

    def top_table(self, top: int = 10) -> str:
        """Text report: top-N predicates by steps, with module split."""
        total = self.total_steps
        if not total:
            return "no samples"
        per_pred: dict[str, _Counter] = {}
        for (predicate, module), steps in self.samples.items():
            per_pred.setdefault(predicate, _Counter())[module] += steps
        ranked = sorted(per_pred.items(),
                        key=lambda kv: (-sum(kv[1].values()), kv[0]))
        width = max((len(p) for p, _ in ranked[:top]), default=9)
        width = max(width, len("predicate"))
        lines = [f"{'predicate':<{width}}  {'steps':>12}  {'%':>6}  modules"]
        for predicate, modules in ranked[:top]:
            steps = sum(modules.values())
            split = ", ".join(
                f"{module.value} {100.0 * n / steps:.0f}%"
                for module, n in modules.most_common(3))
            lines.append(f"{predicate:<{width}}  {steps:>12}  "
                         f"{100.0 * steps / total:>5.1f}%  {split}")
        shown = sum(sum(m.values()) for _, m in ranked[:top])
        if len(ranked) > top:
            lines.append(f"{'(other)':<{width}}  {total - shown:>12}  "
                         f"{100.0 * (total - shown) / total:>5.1f}%")
        lines.append(f"{'total':<{width}}  {total:>12}  100.0%")
        return "\n".join(lines)
