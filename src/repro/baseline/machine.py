"""The WAM emulator: execution engine of the DEC-10 Prolog baseline.

A classic WAM with environments, choice points, trail, heap, and
read/write-mode unify instructions, driven by the compiled code from
:mod:`repro.baseline.compiler`.  Instead of modelling DEC-2060 memory
traffic (the paper never measures the DEC side's hardware), the
emulator charges each executed instruction its cost from
:data:`repro.baseline.isa.COSTS_NS` plus dynamic costs (dereferencing,
general unification, trailing, backtracking), producing the execution
times of Table 1's DEC column.

Heap cells are tagged tuples:

* ``(REF, idx)``    — unbound when ``heap[idx]`` is itself,
* ``(STR, idx)``    — ``heap[idx]`` is a ``(FUN, (name, arity))`` cell,
* ``(LIS, idx)``    — car at ``idx``, cdr at ``idx + 1``,
* ``(CON, value)``  — atoms as strings, ``'[]'`` as NIL_B,
* ``(INT, n)``.

Y registers live in environment frames (Python lists), X registers in
one register file list.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.compiler import (
    ClauseCompiler,
    CompiledProcedure,
    append_clause,
    assemble_procedure,
    patch_out_clause,
)
from repro.baseline.isa import COSTS_NS, DYNAMIC_COSTS_NS, Instr, Op, X, Y
from repro.engine.frontend import Frontend
from repro.errors import ExistenceError, MachineError, ResourceLimitExceeded
from repro.prolog.reader import parse_term
from repro.prolog.terms import Atom, Struct, Term, Var, term_variables

# Cell tags (ints for speed)
REF = 0
STR = 1
LIS = 2
CON = 3
INT = 4
FUN = 5

NIL_B = (CON, "[]")


class BaselineStats:
    """Instruction and event counts plus the derived DEC-2060 time."""

    def __init__(self) -> None:
        self.instr_counts: dict[Op, int] = {}
        self.dynamic_counts: dict[str, int] = {}
        self.inferences = 0
        self.builtin_calls = 0

    def count(self, op: Op) -> None:
        self.instr_counts[op] = self.instr_counts.get(op, 0) + 1

    def event(self, name: str, times: int = 1) -> None:
        self.dynamic_counts[name] = self.dynamic_counts.get(name, 0) + times

    @property
    def total_instructions(self) -> int:
        return sum(self.instr_counts.values())

    @property
    def time_ns(self) -> int:
        static = sum(COSTS_NS[op] * n for op, n in self.instr_counts.items())
        dynamic = sum(DYNAMIC_COSTS_NS[name] * n
                      for name, n in self.dynamic_counts.items())
        return static + dynamic

    @property
    def time_ms(self) -> float:
        return self.time_ns / 1e6

    @property
    def lips(self) -> float:
        seconds = self.time_ns / 1e9
        return self.inferences / seconds if seconds else 0.0


class Environment:
    __slots__ = ("parent", "cont", "ys")

    def __init__(self, parent, cont, n: int):
        self.parent = parent
        self.cont = cont            # (proc, index) to return to
        self.ys = [None] * n


class Choice:
    __slots__ = ("args", "env", "cont", "next", "trail_top", "heap_top", "level")

    def __init__(self, args, env, cont, next_pc, trail_top, heap_top, level):
        self.args = args
        self.env = env
        self.cont = cont
        self.next = next_pc         # (proc, index) of the retry instruction
        self.trail_top = trail_top
        self.heap_top = heap_top
        self.level = level          # choice stack depth below this one


@dataclass
class BaselineConfig:
    max_steps: int = 200_000_000
    heap_limit: int = 1 << 24


class WAMMachine:
    """A runnable WAM program with the DEC-2060 cost model."""

    def __init__(self, config: BaselineConfig | None = None):
        from repro.baseline.builtins import BASELINE_BUILTINS
        self.config = config or BaselineConfig()
        self.builtin_table = BASELINE_BUILTINS
        self.stats = BaselineStats()
        self.procedures: dict[tuple[str, int], CompiledProcedure] = {}
        self._frontend = Frontend(self.builtin_table)
        self.heap: list = []
        self.xregs: list = [None] * 64
        self.trail: list[int] = []
        self.choices: list[Choice] = []
        self.env: Environment | None = None
        self.cont: tuple | None = None   # (proc, index) continuation
        self.pc: tuple | None = None
        self.s = 0
        self.write_mode = False
        self.b0 = 0  # choice-stack depth at the current call (for cut)
        self.output: list[str] = []
        self.counters: dict[str, int] = {}
        self._query_counter = 0
        self._steps = 0

    # ------------------------------------------------------------------
    # Loading
    # ------------------------------------------------------------------

    def consult(self, text: str) -> None:
        batch = self._frontend.normalize_text(text)
        self._load_normalized(batch.clauses)

    def add_clause_term(self, term: Term) -> None:
        batch = self._frontend.expand_clause(term)
        self._load_normalized(batch.clauses)

    def _load_normalized(self, clauses) -> None:
        for norm in clauses:
            proc = self.procedures.setdefault(
                norm.indicator, CompiledProcedure(*norm.indicator))
            compiled = ClauseCompiler(norm, self.builtin_table).compile()
            if proc.code and not proc.dirty:
                # Runtime assert into an already-assembled procedure:
                # splice incrementally (O(#clauses) dispatch regen, no
                # body recompilation) — dynamic predicates keep their
                # first-argument index without a full rebuild.
                append_clause(proc, compiled)
            else:
                proc.clauses.append(compiled)
                proc.dirty = True
        for proc in self.procedures.values():
            if proc.dirty:
                assemble_procedure(proc)

    def retract_fact(self, cell) -> bool:
        """Remove the first fact whose head unifies with ``cell``.

        Mirrors the PSI machine's retract: facts only.  The dispatch
        chains are patched in place (:func:`patch_out_clause`) — the
        procedure is *not* reassembled, so heavy retract loops never
        re-run the compiler and remaining clause addresses stay put.
        """
        from repro.errors import TypeError_
        value = self.deref(cell)
        if value[0] == CON:
            key, arg_cells = (value[1], 0), []
        elif value[0] == STR:
            name, arity = self.heap[value[1]][1]
            key = (name, arity)
            arg_cells = [self.heap[value[1] + 1 + i] for i in range(arity)]
        else:
            raise TypeError_("callable term", value)
        proc = self.procedures.get(key)
        if proc is None:
            return False
        for index, clause in enumerate(proc.clauses):
            trial = self._head_match_fact(clause, arg_cells)
            if trial:
                proc.clauses.pop(index)
                patch_out_clause(proc, index)
                return True
        return False

    def _head_match_fact(self, clause, arg_cells) -> bool:
        """Try a fact's head-only code against argument cells, undoing
        bindings unless the match succeeds completely."""
        code = clause.code
        # Facts compile to get_* sequences ending in PROCEED.
        if not code or code[-1].op is not Op.PROCEED:
            return False
        if any(i.op in (Op.CALL, Op.EXECUTE, Op.BUILTIN, Op.BUILTIN_ARITH)
               for i in code):
            return False
        mark = len(self.trail)
        saved_regs = list(self.xregs[:len(arg_cells)])
        for i, cell in enumerate(arg_cells):
            self.xregs[i] = cell
        saved = (self.pc, self.cont, self.env, self.write_mode, self.s)
        fact_proc = CompiledProcedure("$retract", len(arg_cells))
        fact_proc.code = list(code)
        self.pc = (fact_proc, 0)
        self.cont = None
        matched = self._run_headonly(fact_proc)
        self.pc, self.cont, self.env, self.write_mode, self.s = saved
        for i, cell in enumerate(saved_regs):
            self.xregs[i] = cell
        if not matched:
            while len(self.trail) > mark:
                idx = self.trail.pop()
                self.heap[idx] = (REF, idx)
        return matched

    def _run_headonly(self, proc) -> bool:
        """Execute a head-only code sequence outside the main loop.

        The outer computation's choice points are hidden for the
        duration so a head mismatch cannot backtrack into them.
        """
        saved_choices = self.choices
        self.choices = []
        try:
            return self._run()
        finally:
            self.choices = saved_choices

    def procedure(self, functor: str, arity: int) -> CompiledProcedure:
        proc = self.procedures.get((functor, arity))
        if proc is None:
            raise ExistenceError(functor, arity)
        return proc

    # ------------------------------------------------------------------
    # Query API (mirrors the PSI machine's)
    # ------------------------------------------------------------------

    def solve(self, goal: str | Term) -> "BaselineSolver":
        term = parse_term(goal) if isinstance(goal, str) else goal
        variables = [v for v in term_variables(term) if not v.is_anonymous]
        self._query_counter += 1
        name = f"$query_{self._query_counter}"
        head: Term = Struct(name, tuple(variables)) if variables else Atom(name)
        self.add_clause_term(Struct(":-", (head, term)))
        return BaselineSolver(self, name, [v.name for v in variables])

    def run(self, goal: str | Term):
        return self.solve(goal).next()

    # ------------------------------------------------------------------
    # Heap helpers
    # ------------------------------------------------------------------

    def new_ref(self) -> int:
        idx = len(self.heap)
        self.heap.append((REF, idx))
        return idx

    def push(self, cell) -> int:
        idx = len(self.heap)
        self.heap.append(cell)
        return idx

    def deref(self, cell):
        heap = self.heap
        count = 0
        while cell[0] == REF:
            target = heap[cell[1]]
            if target is cell or target == cell:
                break
            cell = target
            count += 1
        if count:
            self.stats.event("deref_step", count)
        return cell

    def bind(self, ref_cell, value) -> None:
        """Bind the unbound REF cell to value, trailing conditionally."""
        idx = ref_cell[1]
        self.heap[idx] = value
        if self.choices and idx < self.choices[-1].heap_top:
            self.trail.append(idx)
            self.stats.event("trail_entry")

    def bind_or_order(self, a, b) -> None:
        """Bind two cells, at least one an unbound REF."""
        if a[0] == REF and b[0] == REF:
            # Bind the younger (higher index) to the older.
            if a[1] < b[1]:
                self.bind(b, (REF, a[1]))
            elif b[1] < a[1]:
                self.bind(a, (REF, b[1]))
        elif a[0] == REF:
            self.bind(a, b)
        else:
            self.bind(b, a)

    def unify(self, c1, c2) -> bool:
        """General unifier; charged per node pair."""
        stack = [(c1, c2)]
        stats = self.stats
        while stack:
            a, b = stack.pop()
            a = self.deref(a)
            b = self.deref(b)
            stats.event("general_unify_node")
            if a == b:
                continue
            if a[0] == REF or b[0] == REF:
                self.bind_or_order(a, b)
                continue
            if a[0] != b[0]:
                return False
            if a[0] in (CON, INT):
                if a[1] != b[1]:
                    return False
            elif a[0] == LIS:
                stack.append((self.heap[a[1] + 1], self.heap[b[1] + 1]))
                stack.append((self.heap[a[1]], self.heap[b[1]]))
            elif a[0] == STR:
                fa = self.heap[a[1]]
                fb = self.heap[b[1]]
                if fa[1] != fb[1]:
                    return False
                arity = fa[1][1]
                for i in range(arity, 0, -1):
                    stack.append((self.heap[a[1] + i], self.heap[b[1] + i]))
            else:
                return False
        return True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def _start(self, functor: str, arity: int, args: list) -> bool:
        self.choices.clear()
        self.trail.clear()
        self.env = None
        self.cont = None
        for i, cell in enumerate(args):
            self.xregs[i] = cell
        proc = self.procedure(functor, arity)
        self.stats.inferences += 1
        self.pc = (proc, proc.entry)
        return self._run()

    def backtrack(self) -> bool:
        """Restore the top choice point; returns False when none left."""
        self.stats.event("backtrack")
        if not self.choices:
            self.pc = None
            return False
        choice = self.choices[-1]
        heap = self.heap
        while len(self.trail) > choice.trail_top:
            idx = self.trail.pop()
            heap[idx] = (REF, idx)
            self.stats.event("untrail_entry")
        del heap[choice.heap_top:]
        for i, cell in enumerate(choice.args):
            self.xregs[i] = cell
        self.env = choice.env
        self.cont = choice.cont
        self.pc = choice.next
        return True

    def _value(self, slot):
        kind, index = slot
        if kind == X:
            return self.xregs[index]
        return self.env.ys[index]

    def _set(self, slot, cell) -> None:
        kind, index = slot
        if kind == X:
            if index >= len(self.xregs):
                self.xregs.extend([None] * (index + 16 - len(self.xregs)))
            self.xregs[index] = cell
        else:
            self.env.ys[index] = cell

    def _run(self) -> bool:
        """Run until success (continuation exhausted) or failure."""
        stats = self.stats
        heap = self.heap
        instr_counts = stats.instr_counts
        max_steps = self.config.max_steps
        # Dispatch comparands as locals (a LOAD_FAST per test instead of
        # an Enum class-attribute lookup), and the if/elif chain ordered
        # by measured frequency over the Table 1 workloads: the first
        # five branches cover over half of all executed instructions,
        # so the mean chain depth drops from ~11 identity checks to ~5.
        _UNIFY_VARIABLE = Op.UNIFY_VARIABLE
        _PUT_VALUE = Op.PUT_VALUE
        _GET_VARIABLE = Op.GET_VARIABLE
        _GET_LIST = Op.GET_LIST
        _UNIFY_VALUE = Op.UNIFY_VALUE
        _UNIFY_LOCAL_VALUE = Op.UNIFY_LOCAL_VALUE
        _GET_STRUCTURE = Op.GET_STRUCTURE
        _EXECUTE = Op.EXECUTE
        _TRY = Op.TRY
        _BUILTIN_ARITH = Op.BUILTIN_ARITH
        _PUT_UNSAFE_VALUE = Op.PUT_UNSAFE_VALUE
        _SWITCH_ON_TERM = Op.SWITCH_ON_TERM
        _CALL = Op.CALL
        _ALLOCATE = Op.ALLOCATE
        _PROCEED = Op.PROCEED
        _GET_CONSTANT = Op.GET_CONSTANT
        _TRUST = Op.TRUST
        _RETRY = Op.RETRY
        _UNIFY_CONSTANT = Op.UNIFY_CONSTANT
        _BUILTIN = Op.BUILTIN
        _GET_VALUE = Op.GET_VALUE
        _GET_NIL = Op.GET_NIL
        _UNIFY_NIL = Op.UNIFY_NIL
        _UNIFY_VOID = Op.UNIFY_VOID
        _PUT_VARIABLE = Op.PUT_VARIABLE
        _PUT_CONSTANT = Op.PUT_CONSTANT
        _PUT_NIL = Op.PUT_NIL
        _PUT_LIST = Op.PUT_LIST
        _PUT_STRUCTURE = Op.PUT_STRUCTURE
        _DEALLOCATE = Op.DEALLOCATE
        _SWITCH_ON_CONSTANT = Op.SWITCH_ON_CONSTANT
        _SWITCH_ON_STRUCTURE = Op.SWITCH_ON_STRUCTURE
        _NECK_CUT = Op.NECK_CUT
        _GET_LEVEL = Op.GET_LEVEL
        _CUT = Op.CUT
        _FAIL = Op.FAIL
        _NOOP = Op.NOOP
        _JUMP = Op.JUMP
        while True:
            if self.pc is None:
                return False
            proc, index = self.pc
            code = proc.code
            if index >= len(code):
                raise MachineError(
                    f"fell off code of {proc.functor}/{proc.arity}")
            instr = code[index]
            op = instr[0]
            # Inlined stats.count(op): one dict op instead of a method
            # call, on the single hottest line of the baseline.
            instr_counts[op] = instr_counts.get(op, 0) + 1
            self._steps += 1
            if self._steps > max_steps:
                raise ResourceLimitExceeded("baseline step limit exceeded")
            self.pc = (proc, index + 1)

            if op is _UNIFY_VARIABLE:
                if self.write_mode:
                    idx = self.new_ref()
                    stats.event("heap_cell")
                    self._set(instr[1], (REF, idx))
                else:
                    self._set(instr[1], heap[self.s])
                    self.s += 1
            elif op is _PUT_VALUE:
                value = self._value(instr[1])
                if value is None:
                    value = self._make_unbound_y(instr[1])
                self.xregs[instr[2]] = value
            elif op is _GET_VARIABLE:
                self._set(instr[1], self.xregs[instr[2]])
            elif op is _GET_LIST:
                cell = self.deref(self._operand(instr[1]))
                if cell[0] == LIS:
                    self.s = cell[1]
                    self.write_mode = False
                elif cell[0] == REF:
                    # Write mode: the two unify instructions that follow
                    # append car and cdr right here.
                    self.bind(cell, (LIS, len(heap)))
                    self.write_mode = True
                    stats.event("heap_cell")
                else:
                    if not self.backtrack():
                        return False
            elif op is _UNIFY_VALUE or op is _UNIFY_LOCAL_VALUE:
                value = self._value(instr[1])
                if op is _UNIFY_LOCAL_VALUE and value is None:
                    value = self._make_unbound_y(instr[1])
                if self.write_mode:
                    if value is None:
                        value = self._make_unbound_y(instr[1])
                    heap.append(value)
                    stats.event("heap_cell")
                else:
                    if value is None:
                        value = self._make_unbound_y(instr[1])
                    if not self.unify(value, heap[self.s]):
                        if not self.backtrack():
                            return False
                        continue
                    self.s += 1
            elif op is _GET_STRUCTURE:
                cell = self.deref(self._operand(instr[2]))
                if cell[0] == STR:
                    functor = heap[cell[1]]
                    if functor[1] != instr[1]:
                        if not self.backtrack():
                            return False
                    else:
                        self.s = cell[1] + 1
                        self.write_mode = False
                elif cell[0] == REF:
                    idx = len(heap)
                    heap.append((FUN, instr[1]))
                    self.bind(cell, (STR, idx))
                    self.write_mode = True
                    stats.event("heap_cell")
                else:
                    if not self.backtrack():
                        return False
            elif op is _EXECUTE:
                callee = self.procedures.get(instr[1])
                if callee is None:
                    raise ExistenceError(*instr[1])
                stats.inferences += 1
                self.b0 = len(self.choices)
                self.pc = (callee, callee.entry)
            elif op is _TRY:
                nargs = proc.arity
                choice = Choice(tuple(self.xregs[:nargs]), self.env, self.cont,
                                (proc, index + 1), len(self.trail), len(heap),
                                len(self.choices))
                self.choices.append(choice)
                self.pc = (proc, instr[1])
            elif op is _BUILTIN_ARITH:
                descriptor = instr[1]
                stats.builtin_calls += 1
                result = self._fastcode_arith(descriptor.name, instr[2])
                if result is False:
                    if not self.backtrack():
                        return False
            elif op is _PUT_UNSAFE_VALUE:
                value = self._value(instr[1])
                if value is None:
                    value = self._make_unbound_y(instr[1])
                value = self.deref(value)
                self.xregs[instr[2]] = value
            elif op is _SWITCH_ON_TERM:
                cell = self.deref(self.xregs[0])
                tag = cell[0]
                if tag == REF:
                    target = instr[1]
                elif tag in (CON, INT):
                    target = instr[2]
                elif tag == LIS:
                    target = instr[3]
                else:
                    target = instr[4]
                if target < 0:
                    if not self.backtrack():
                        return False
                else:
                    self.pc = (proc, target)
            elif op is _CALL:
                callee = self.procedures.get(instr[1])
                if callee is None:
                    raise ExistenceError(*instr[1])
                stats.inferences += 1
                self.cont = self.pc
                self.b0 = len(self.choices)
                self.pc = (callee, callee.entry)
            elif op is _ALLOCATE:
                self.env = Environment(self.env, self.cont, instr[1])
            elif op is _PROCEED:
                if self.cont is None:
                    return True
                self.pc = self.cont
            elif op is _GET_CONSTANT:
                cell = self.deref(self.xregs[instr[2]])
                want = (INT, instr[1]) if isinstance(instr[1], int) else (CON, instr[1])
                if cell[0] == REF:
                    self.bind(cell, want)
                elif cell != want:
                    if not self.backtrack():
                        return False
            elif op is _TRUST:
                self.choices.pop()
                self.b0 = len(self.choices)
                self.pc = (proc, instr[1])
            elif op is _RETRY:
                self.choices[-1].next = (proc, index + 1)
                self.b0 = len(self.choices) - 1
                self.pc = (proc, instr[1])
            elif op is _UNIFY_CONSTANT:
                want = (INT, instr[1]) if isinstance(instr[1], int) else (CON, instr[1])
                if self.write_mode:
                    heap.append(want)
                    stats.event("heap_cell")
                else:
                    cell = self.deref(heap[self.s])
                    self.s += 1
                    if cell[0] == REF:
                        self.bind(cell, want)
                    elif cell != want:
                        if not self.backtrack():
                            return False
            elif op is _BUILTIN:
                descriptor = instr[1]
                nargs = instr[2]
                stats.builtin_calls += 1
                stats.event("builtin_step", descriptor.weight)
                result = descriptor.fn(self, [self.xregs[i] for i in range(nargs)])
                if result is False:
                    if not self.backtrack():
                        return False
                elif result is not True:
                    # Meta-call request.  If the next instruction is the
                    # clause's PROCEED (tail meta-call with no environment
                    # to deallocate), behave like EXECUTE and leave the
                    # continuation register pointing at our caller;
                    # otherwise save the return point as CALL does.
                    _, functor, arity, call_args = result
                    callee = self.procedures.get((functor, arity))
                    if callee is None:
                        raise ExistenceError(functor, arity)
                    stats.inferences += 1
                    for i, cell in enumerate(call_args):
                        self.xregs[i] = cell
                    resume_proc, resume_index = self.pc
                    is_tail = (resume_index < len(resume_proc.code)
                               and resume_proc.code[resume_index].op is _PROCEED)
                    if not is_tail:
                        self.cont = self.pc
                    self.b0 = len(self.choices)
                    self.pc = (callee, callee.entry)
            elif op is _GET_VALUE:
                if not self.unify(self._value(instr[1]), self.xregs[instr[2]]):
                    if not self.backtrack():
                        return False
            elif op is _GET_NIL:
                cell = self.deref(self._operand(instr[1]))
                if cell[0] == REF:
                    self.bind(cell, NIL_B)
                elif cell != NIL_B:
                    if not self.backtrack():
                        return False
            elif op is _UNIFY_NIL:
                if self.write_mode:
                    heap.append(NIL_B)
                    stats.event("heap_cell")
                else:
                    cell = self.deref(heap[self.s])
                    self.s += 1
                    if cell[0] == REF:
                        self.bind(cell, NIL_B)
                    elif cell != NIL_B:
                        if not self.backtrack():
                            return False
            elif op is _UNIFY_VOID:
                count = instr[1]
                if self.write_mode:
                    for _ in range(count):
                        self.new_ref()
                    stats.event("heap_cell", count)
                else:
                    self.s += count
            elif op is _PUT_VARIABLE:
                idx = self.new_ref()
                stats.event("heap_cell")
                self._set(instr[1], (REF, idx))
                self.xregs[instr[2]] = (REF, idx)
            elif op is _PUT_CONSTANT:
                self.xregs[instr[2]] = (INT, instr[1]) if isinstance(instr[1], int) \
                    else (CON, instr[1])
            elif op is _PUT_NIL:
                self.xregs[instr[1]] = NIL_B
            elif op is _PUT_LIST:
                # The unify instructions that follow append car and cdr.
                cell = (LIS, len(heap))
                target = instr[1]
                if isinstance(target, tuple):
                    self._set(target, cell)
                else:
                    self.xregs[target] = cell
                self.write_mode = True
            elif op is _PUT_STRUCTURE:
                idx = self.push((FUN, instr[1]))
                stats.event("heap_cell")
                cell = (STR, idx)
                target = instr[2]
                if isinstance(target, tuple):
                    self._set(target, cell)
                else:
                    self.xregs[target] = cell
                self.write_mode = True
            elif op is _DEALLOCATE:
                self.cont = self.env.cont
                self.env = self.env.parent
            elif op is _SWITCH_ON_CONSTANT:
                cell = self.deref(self.xregs[0])
                key = cell[1]
                target = instr[1].get(key, -1)
                if target < 0:
                    if not self.backtrack():
                        return False
                else:
                    self.pc = (proc, target)
            elif op is _SWITCH_ON_STRUCTURE:
                cell = self.deref(self.xregs[0])
                functor = heap[cell[1]][1]
                target = instr[1].get(functor, -1)
                if target < 0:
                    if not self.backtrack():
                        return False
                else:
                    self.pc = (proc, target)
            elif op is _NECK_CUT:
                self._cut_to(self.b0)
            elif op is _GET_LEVEL:
                self.env.ys[instr[1][1]] = ("$level", self.b0)
            elif op is _CUT:
                level = self.env.ys[instr[1][1]]
                self._cut_to(level[1])
            elif op is _FAIL:
                if not self.backtrack():
                    return False
            elif op is _NOOP:
                pass
            elif op is _JUMP:
                self.pc = (proc, instr[1])
            else:  # pragma: no cover
                raise MachineError(f"unknown opcode {op}")

    def _fastcode_arith(self, name: str, specs) -> bool:
        """Fast-code arithmetic: evaluate expression specs directly from
        registers, with no argument terms built on the heap."""
        from repro.baseline.builtins import apply_arith
        if name == "is":
            value = self._eval_spec(specs[1])
            target = specs[0]
            if isinstance(target, int):
                return target == value
            if target[0] == "fv":
                self._set(target[1], (INT, value))
                return True
            if target[0] == "v":
                cell = self._value(target[1])
                if cell is None:
                    self._set(target[1], (INT, value))
                    return True
                cell = self.deref(cell)
                if cell[0] == REF:
                    self.bind(cell, (INT, value))
                    return True
                return cell == (INT, value)
            # target was itself an expression: compare values
            return self._eval_spec(target) == value
        a = self._eval_spec(specs[0])
        b = self._eval_spec(specs[1])
        return apply_arith(name, a, b)

    def _eval_spec(self, spec) -> int:
        """Evaluate one compiled expression tree."""
        from repro.baseline.builtins import eval_arith
        if isinstance(spec, int):
            return spec
        if spec[0] == "v":
            cell = self._value(spec[1])
            if cell is None:
                from repro.errors import InstantiationError
                raise InstantiationError("unbound variable in arithmetic")
            self.stats.event("arith_node")
            return eval_arith(self, cell)
        _, name, subs = spec
        values = [self._eval_spec(sub) for sub in subs]
        self.stats.event("arith_node")
        from repro.baseline.builtins import apply_arith_op
        return apply_arith_op(name, values)

    def _operand(self, target):
        """An instruction operand that is either an A-register index or a
        (X/Y, n) slot (deferred nested-structure temporaries)."""
        if isinstance(target, tuple):
            return self._value(target)
        return self.xregs[target]

    def _make_unbound_y(self, slot):
        idx = self.new_ref()
        cell = (REF, idx)
        self._set(slot, cell)
        return cell

    def _cut_to(self, level: int) -> None:
        while len(self.choices) > level:
            self.choices.pop()

    # ------------------------------------------------------------------
    # Term encoding / decoding
    # ------------------------------------------------------------------

    def encode_term(self, term: Term, bindings: dict[str, tuple]) -> tuple:
        if isinstance(term, int):
            return (INT, term)
        if isinstance(term, Atom):
            return NIL_B if term.name == "[]" else (CON, term.name)
        if isinstance(term, Var):
            if term.name not in bindings:
                bindings[term.name] = (REF, self.new_ref())
            return bindings[term.name]
        assert isinstance(term, Struct)
        if term.functor == "." and term.arity == 2:
            car = self.encode_term(term.args[0], bindings)
            cdr = self.encode_term(term.args[1], bindings)
            idx = len(self.heap)
            self.heap.append(car)
            self.heap.append(cdr)
            return (LIS, idx)
        arg_cells = [self.encode_term(a, bindings) for a in term.args]
        idx = self.push((FUN, (term.functor, term.arity)))
        for cell in arg_cells:
            self.heap.append(cell)
        return (STR, idx)

    def decode_cell(self, cell) -> Term:
        cell = self._peek_deref(cell)
        tag = cell[0]
        if tag == REF:
            return Var(f"_B{cell[1]}")
        if tag == INT:
            return cell[1]
        if tag == CON:
            return Atom(cell[1])
        if tag == LIS:
            items = []
            current = cell
            while current[0] == LIS:
                items.append(self.decode_cell(self.heap[current[1]]))
                current = self._peek_deref(self.heap[current[1] + 1])
            result: Term = self.decode_cell(current) if current[0] != CON or current[1] != "[]" \
                else Atom("[]")
            for item in reversed(items):
                result = Struct(".", (item, result))
            return result
        if tag == STR:
            name, arity = self.heap[cell[1]][1]
            args = tuple(self.decode_cell(self.heap[cell[1] + 1 + i])
                         for i in range(arity))
            return Struct(name, args)
        raise MachineError(f"cannot decode cell {cell!r}")

    def _peek_deref(self, cell):
        while cell[0] == REF:
            target = self.heap[cell[1]]
            if target == cell:
                break
            cell = target
        return cell


class BaselineSolution:
    def __init__(self, bindings: dict[str, Term]):
        self.bindings = bindings

    def __getitem__(self, name: str) -> Term:
        return self.bindings[name]

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.bindings.items())
        return f"BaselineSolution({inner})"


class BaselineSolver:
    """Resumable query execution over the WAM."""

    def __init__(self, machine: WAMMachine, query_name: str, var_names: list[str]):
        self.machine = machine
        self.query_name = query_name
        self.var_names = var_names
        self._cells: list = []
        self._started = False
        self._exhausted = False

    def next(self) -> BaselineSolution | None:
        if self._exhausted:
            return None
        m = self.machine
        if not self._started:
            self._started = True
            self._cells = [(REF, m.new_ref()) for _ in self.var_names]
            ok = m._start(self.query_name, len(self.var_names), list(self._cells))
        else:
            ok = m.backtrack() and m._run()
        if not ok:
            self._exhausted = True
            return None
        bindings = {name: m.decode_cell(cell)
                    for name, cell in zip(self.var_names, self._cells)}
        return BaselineSolution(bindings)

    def all(self, limit: int = 1_000_000) -> list[BaselineSolution]:
        out = []
        while len(out) < limit:
            solution = self.next()
            if solution is None:
                break
            out.append(solution)
        return out

    def count(self, limit: int = 1_000_000) -> int:
        return len(self.all(limit))
