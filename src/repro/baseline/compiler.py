"""Clause compiler for the WAM baseline (the DEC-10 Prolog compiler model).

Implements the classic compilation scheme:

* head arguments compile to ``get_*`` instructions, with nested
  compound terms flattened breadth-first into ``unify_*`` sequences and
  deferred ``get_structure``/``get_list`` on temporaries;
* body goals compile to ``put_*`` argument setup plus ``call``/
  ``execute`` (last-call optimisation) or inline ``builtin``;
* variables occurring in more than one chunk become permanent (Y)
  variables in an environment (``allocate``/``deallocate``), with
  ``put_unsafe_value``/``unify_local_value`` guarding against dangling
  references into deallocated environments;
* procedures whose clauses all have a non-variable first head argument
  get **first-argument indexing**: ``switch_on_term`` +
  ``switch_on_constant``/``switch_on_structure`` dispatch with
  try/retry/trust chains only where buckets still hold several clauses.
  This is the "close indexing method" of the paper's §3.1 — it is what
  lets DEC run NREVERSE-style deterministic code without choice points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.isa import COSTS_NS, Instr, Op, X, Y
from repro.engine.frontend import GOAL_CALL, GOAL_CUT, NormalizedClause
from repro.errors import PrologSyntaxError
from repro.prolog.terms import Atom, Struct, Term, Var, is_cons, is_nil

#: Builtins compiled to fast-code arithmetic: expression arguments are
#: evaluated inline (DEC-10 "fast-code" with mode declarations) instead
#: of being built as heap terms and re-traversed.
ARITH_FASTCODE = {("is", 2), ("=:=", 2), ("=\\=", 2),
                  ("<", 2), (">", 2), ("=<", 2), (">=", 2)}

# Indexing key kinds
KIND_CONST = "const"
KIND_LIST = "list"
KIND_STRUCT = "struct"
KIND_VAR = "var"


@dataclass
class CompiledClause:
    code: list[Instr]
    n_permanents: int
    first_arg_kind: str
    first_arg_key: object  # constant value or (name, arity)


@dataclass
class CompiledProcedure:
    functor: str
    arity: int
    clauses: list[CompiledClause] = field(default_factory=list)
    code: list[Instr] = field(default_factory=list)   # entry + clause bodies
    entry: int = 0
    dirty: bool = True

    @property
    def indicator(self):
        return (self.functor, self.arity)


def first_arg_descriptor(head: Term) -> tuple[str, object]:
    if not isinstance(head, Struct):
        return KIND_VAR, None
    arg = head.args[0]
    if isinstance(arg, Var):
        return KIND_VAR, None
    if isinstance(arg, int):
        return KIND_CONST, arg
    if isinstance(arg, Atom):
        return KIND_CONST, arg.name
    if is_cons(arg):
        return KIND_LIST, None
    assert isinstance(arg, Struct)
    return KIND_STRUCT, (arg.functor, arg.arity)


# ---------------------------------------------------------------------------
# Single clause compilation
# ---------------------------------------------------------------------------


class ClauseCompiler:
    """Compiles one normalized clause (shared frontend IR) to WAM code.

    Goal classification (user call / builtin / cut, meta-call marking)
    comes from :class:`repro.engine.frontend.NormalizedClause`; this
    compiler keeps only what is genuinely WAM register allocation — the
    chunk-based permanent-variable analysis.
    """

    def __init__(self, clause: NormalizedClause, builtin_table: dict):
        self.clause = clause
        self.builtin_table = builtin_table
        self.code: list[Instr] = []
        self.perms: dict[str, int] = {}
        self.temps: dict[str, int] = {}
        self.seen: set[str] = set()
        self.cut_level_slot: int | None = None
        self._xfree = 0

    # -- public -----------------------------------------------------------

    def compile(self) -> CompiledClause:
        head_args = self.clause.head_args
        goals = self.clause.goals
        calls = [i for i, g in enumerate(goals) if g.kind == GOAL_CALL]
        # Meta-calls (call/1 and variable goals) transfer control like
        # user calls: they end register lifetimes and require an
        # environment when non-final, so the continuation register can
        # be restored by deallocate.
        boundaries = [i for i, g in enumerate(goals)
                      if g.kind == GOAL_CALL or g.is_meta]
        needs_env = self._classify_variables(head_args, goals, boundaries)
        deep_cut = any(g.kind == GOAL_CUT for i, g in enumerate(goals)
                       if i > 0)
        if deep_cut and self.cut_level_slot is None:
            self.cut_level_slot = len(self.perms)
            self.perms["$cutlevel"] = self.cut_level_slot
            needs_env = True

        self._xfree = max([len(head_args)]
                          + [g.arity for g in goals]) \
            if (head_args or goals) else 0

        if needs_env:
            self.code.append(Instr(Op.ALLOCATE, len(self.perms)))
            if self.cut_level_slot is not None:
                self.code.append(Instr(Op.GET_LEVEL, (Y, self.cut_level_slot)))

        for i, arg in enumerate(head_args):
            self._compile_get(arg, i)

        last_call = calls[-1] if calls else None
        for i, goal in enumerate(goals):
            if goal.kind == GOAL_CUT:
                if i == 0 and not needs_env:
                    self.code.append(Instr(Op.NECK_CUT))
                elif self.cut_level_slot is not None:
                    self.code.append(Instr(Op.CUT, (Y, self.cut_level_slot)))
                else:
                    self.code.append(Instr(Op.NECK_CUT))
            elif goal.kind == GOAL_CALL:
                is_final = (i == last_call and i == len(goals) - 1)
                self._compile_call(goal.term, needs_env, tail=is_final)
                if is_final:
                    return self._finish(needs_env, tail_done=True)
            else:
                self._compile_builtin(goal.term)
        return self._finish(needs_env, tail_done=False)

    def _finish(self, needs_env: bool, tail_done: bool) -> CompiledClause:
        if not tail_done:
            if needs_env:
                self.code.append(Instr(Op.DEALLOCATE))
            self.code.append(Instr(Op.PROCEED))
        kind, key = first_arg_descriptor(self.clause.head)
        return CompiledClause(self.code, len(self.perms), kind, key)

    # -- classification ------------------------------------------------------

    def _is_meta(self, goal: Term) -> bool:
        if isinstance(goal, Var):
            return True
        return isinstance(goal, Struct) and goal.indicator == ("call", 1)

    def _classify_variables(self, head_args, goals, boundaries) -> bool:
        """Assign permanent (Y) slots; return whether an env is needed."""
        # Chunks: head+goals up to and including the first call, then one
        # chunk per subsequent inter-call segment.
        chunk_of: dict[str, set[int]] = {}
        chunk = 0
        def note(term: Term, chunk_id: int) -> None:
            stack = [term]
            while stack:
                current = stack.pop()
                if isinstance(current, Var):
                    chunk_of.setdefault(current.name, set()).add(chunk_id)
                elif isinstance(current, Struct):
                    stack.extend(current.args)
        for arg in head_args:
            note(arg, 0)
        for goal in goals:
            note(goal.term, chunk)
            if goal.kind == GOAL_CALL or goal.is_meta:
                chunk += 1
        for name, chunks in chunk_of.items():
            if len(chunks) > 1:
                self.perms[name] = len(self.perms)
        needs_env = bool(self.perms) or len(boundaries) > 1 or (
            len(boundaries) == 1 and boundaries[0] != len(goals) - 1)
        return needs_env

    # -- register handling ------------------------------------------------------

    def _fresh_x(self) -> int:
        index = self._xfree
        self._xfree += 1
        return index

    def _var_slot(self, name: str) -> tuple[str, int]:
        if name in self.perms:
            return (Y, self.perms[name])
        if name not in self.temps:
            self.temps[name] = self._fresh_x()
        return (X, self.temps[name])

    # -- head compilation ----------------------------------------------------------

    def _compile_get(self, arg: Term, areg: int) -> None:
        if isinstance(arg, Var):
            slot = self._var_slot(arg.name)
            if arg.name in self.seen:
                self.code.append(Instr(Op.GET_VALUE, slot, areg))
            else:
                self.seen.add(arg.name)
                self.code.append(Instr(Op.GET_VARIABLE, slot, areg))
            return
        if isinstance(arg, int):
            self.code.append(Instr(Op.GET_CONSTANT, arg, areg))
            return
        if isinstance(arg, Atom):
            if is_nil(arg):
                self.code.append(Instr(Op.GET_NIL, areg))
            else:
                self.code.append(Instr(Op.GET_CONSTANT, arg.name, areg))
            return
        assert isinstance(arg, Struct)
        queue: list[tuple[Term, tuple[str, int] | int]] = [(arg, areg)]
        while queue:
            term, where = queue.pop(0)
            if is_cons(term):
                self.code.append(Instr(Op.GET_LIST, where))
                self._unify_args([term.args[0], term.args[1]], queue)
            else:
                self.code.append(Instr(
                    Op.GET_STRUCTURE, (term.functor, term.arity), where))
                self._unify_args(list(term.args), queue)

    def _unify_args(self, args: list[Term], queue: list) -> None:
        for sub in args:
            if isinstance(sub, Var):
                slot = self._var_slot(sub.name)
                if sub.name in self.seen:
                    if slot[0] == Y:
                        self.code.append(Instr(Op.UNIFY_LOCAL_VALUE, slot))
                    else:
                        self.code.append(Instr(Op.UNIFY_VALUE, slot))
                else:
                    self.seen.add(sub.name)
                    self.code.append(Instr(Op.UNIFY_VARIABLE, slot))
            elif isinstance(sub, int):
                self.code.append(Instr(Op.UNIFY_CONSTANT, sub))
            elif isinstance(sub, Atom):
                if is_nil(sub):
                    self.code.append(Instr(Op.UNIFY_NIL))
                else:
                    self.code.append(Instr(Op.UNIFY_CONSTANT, sub.name))
            else:
                temp = (X, self._fresh_x())
                self.code.append(Instr(Op.UNIFY_VARIABLE, temp))
                queue.append((sub, temp))

    # -- body compilation --------------------------------------------------------------

    def _compile_call(self, goal: Term, needs_env: bool, tail: bool) -> None:
        name, args = _goal_parts(goal)
        for i, arg in enumerate(args):
            self._compile_put(arg, i, tail)
        if tail:
            if needs_env:
                self.code.append(Instr(Op.DEALLOCATE))
            self.code.append(Instr(Op.EXECUTE, (name, len(args))))
        else:
            self.code.append(Instr(Op.CALL, (name, len(args))))
            # A call ends the lifetime of every temporary register.
            self.temps.clear()

    def _compile_builtin(self, goal: Term) -> None:
        if isinstance(goal, Var):
            descriptor = self.builtin_table[("call", 1)]
            slot = self._var_slot(goal.name)
            self.code.append(Instr(Op.PUT_VALUE, slot, 0))
            self.code.append(Instr(Op.BUILTIN, descriptor, 1))
            return
        name, args = _goal_parts(goal)
        descriptor = self.builtin_table[(name, len(args))]
        if self._is_meta(goal):
            for i, arg in enumerate(args):
                self._compile_put(arg, i, tail=False)
            self.code.append(Instr(Op.BUILTIN, descriptor, len(args)))
            self.temps.clear()   # control transfer ends temp lifetimes
            return
        if (name, len(args)) in ARITH_FASTCODE:
            specs = list(args)
            if name == "is" and isinstance(args[0], Var) \
                    and args[0].name not in self.seen:
                # Fresh result variable: unconditional assignment (safe
                # across re-execution after backtracking).
                slot = self._var_slot(args[0].name)
                self.seen.add(args[0].name)
                target_spec = ("fv", slot)
                rhs = self._expression_spec(args[1])
                if rhs is not None:
                    self.code.append(Instr(Op.BUILTIN_ARITH, descriptor,
                                           (target_spec, rhs)))
                    return
            else:
                compiled = tuple(self._expression_spec(arg) for arg in args)
                if all(spec is not None for spec in compiled):
                    self.code.append(Instr(Op.BUILTIN_ARITH, descriptor,
                                           compiled))
                    return
        for i, arg in enumerate(args):
            self._compile_put(arg, i, tail=False)
        self.code.append(Instr(Op.BUILTIN, descriptor, len(args)))

    def _expression_spec(self, term: Term):
        """Compile an arithmetic argument to an inline expression tree:
        ints stay ints, variables become ("v", slot) (marking them seen,
        creating fresh slots for result variables), operators become
        ("op", name, subspecs).  Returns None for non-arithmetic shapes
        (atoms, lists), falling back to the generic builtin path."""
        if isinstance(term, int):
            return term
        if isinstance(term, Var):
            slot = self._var_slot(term.name)
            self.seen.add(term.name)
            return ("v", slot)
        if isinstance(term, Struct) and not is_cons(term):
            subs = tuple(self._expression_spec(a) for a in term.args)
            if any(s is None for s in subs):
                return None
            return ("op", term.functor, subs)
        return None

    def _compile_put(self, arg: Term, areg: int, tail: bool) -> None:
        if isinstance(arg, Var):
            slot = self._var_slot(arg.name)
            if arg.name not in self.seen:
                self.seen.add(arg.name)
                self.code.append(Instr(Op.PUT_VARIABLE, slot, areg))
            elif tail and slot[0] == Y:
                self.code.append(Instr(Op.PUT_UNSAFE_VALUE, slot, areg))
            else:
                self.code.append(Instr(Op.PUT_VALUE, slot, areg))
            return
        if isinstance(arg, int):
            self.code.append(Instr(Op.PUT_CONSTANT, arg, areg))
            return
        if isinstance(arg, Atom):
            if is_nil(arg):
                self.code.append(Instr(Op.PUT_NIL, areg))
            else:
                self.code.append(Instr(Op.PUT_CONSTANT, arg.name, areg))
            return
        assert isinstance(arg, Struct)
        self._put_compound(arg, areg)

    def _put_compound(self, term: Struct, where: tuple[str, int] | int) -> None:
        """Build a compound bottom-up: nested compounds into fresh temps."""
        prepared: list[object] = []
        for sub in term.args:
            if isinstance(sub, Struct):
                temp = (X, self._fresh_x())
                self._put_compound(sub, temp)
                prepared.append(("temp", temp))
            else:
                prepared.append(("plain", sub))
        if is_cons(term):
            self.code.append(Instr(Op.PUT_LIST, where))
        else:
            self.code.append(Instr(Op.PUT_STRUCTURE, (term.functor, term.arity), where))
        for kind, value in prepared:
            if kind == "temp":
                self.code.append(Instr(Op.UNIFY_VALUE, value))
                continue
            sub = value
            if isinstance(sub, Var):
                slot = self._var_slot(sub.name)
                if sub.name in self.seen:
                    if slot[0] == Y:
                        self.code.append(Instr(Op.UNIFY_LOCAL_VALUE, slot))
                    else:
                        self.code.append(Instr(Op.UNIFY_VALUE, slot))
                else:
                    self.seen.add(sub.name)
                    self.code.append(Instr(Op.UNIFY_VARIABLE, slot))
            elif isinstance(sub, int):
                self.code.append(Instr(Op.UNIFY_CONSTANT, sub))
            elif is_nil(sub):
                self.code.append(Instr(Op.UNIFY_NIL))
            else:
                assert isinstance(sub, Atom)
                self.code.append(Instr(Op.UNIFY_CONSTANT, sub.name))


def _goal_parts(goal: Term) -> tuple[str, tuple[Term, ...]]:
    if isinstance(goal, Atom):
        return goal.name, ()
    if isinstance(goal, Struct):
        return goal.functor, goal.args
    raise PrologSyntaxError(f"invalid goal {goal!r}")


# ---------------------------------------------------------------------------
# Procedure assembly with first-argument indexing
# ---------------------------------------------------------------------------


def assemble_procedure(proc: CompiledProcedure) -> None:
    """(Re)build a procedure's entry code with indexing.

    Layout: [entry dispatch][chains][clause code...].  All branch
    targets are absolute indices into ``proc.code``.
    """
    clauses = proc.clauses
    code: list[Instr] = []

    def emit_chain(targets: list[int]) -> int:
        """Emit a try/retry/trust chain over clause body addresses."""
        if len(targets) == 1:
            return targets[0]
        at = len(code)
        code.append(Instr(Op.TRY, targets[0]))
        for target in targets[1:-1]:
            code.append(Instr(Op.RETRY, target))
        code.append(Instr(Op.TRUST, targets[-1]))
        return at

    # First pass: lay out clause bodies after a reserved dispatch region.
    # We build dispatch lazily by emitting clause code first into a side
    # list, then the dispatch, then fixing offsets.
    bodies: list[list[Instr]] = [c.code for c in clauses]

    indexable = (proc.arity >= 1
                 and len(clauses) > 1
                 and all(c.first_arg_kind != KIND_VAR for c in clauses))

    # Compute dispatch size by generating with placeholder targets, then
    # regenerate once real offsets are known.  Simpler: emit bodies first
    # at the *end*, entry at the start, using a two-phase approach.
    dispatch: list[Instr] = []
    body_offsets: list[int] = []

    def layout(dispatch_length: int) -> None:
        body_offsets.clear()
        cursor = dispatch_length
        for body in bodies:
            body_offsets.append(cursor)
            cursor += len(body)

    # Build dispatch given body_offsets; returns instruction list.
    def generate() -> list[Instr]:
        nonlocal code
        code = []
        if not indexable:
            if len(clauses) > 1:
                emit_chain(body_offsets)
        else:
            # Buckets
            const_buckets: dict[object, list[int]] = {}
            list_targets: list[int] = []
            struct_buckets: dict[object, list[int]] = {}
            for i, clause in enumerate(clauses):
                if clause.first_arg_kind == KIND_CONST:
                    const_buckets.setdefault(clause.first_arg_key, []).append(body_offsets[i])
                elif clause.first_arg_kind == KIND_LIST:
                    list_targets.append(body_offsets[i])
                else:
                    struct_buckets.setdefault(clause.first_arg_key, []).append(body_offsets[i])
            # Reserve slot 0 for switch_on_term; chains follow.
            code.append(Instr(Op.NOOP))  # placeholder, patched below
            var_at = emit_chain(body_offsets)
            const_table = {}
            for key, targets in const_buckets.items():
                const_table[key] = emit_chain(targets)
            struct_table = {}
            for key, targets in struct_buckets.items():
                struct_table[key] = emit_chain(targets)
            list_at = emit_chain(list_targets) if list_targets else -1
            const_at = -1
            if const_table:
                const_at = len(code)
                code.append(Instr(Op.SWITCH_ON_CONSTANT, const_table))
            struct_at = -1
            if struct_table:
                struct_at = len(code)
                code.append(Instr(Op.SWITCH_ON_STRUCTURE, struct_table))
            code[0] = Instr(Op.SWITCH_ON_TERM, var_at, const_at, list_at, struct_at)
        return code

    # Iterate to a fixed point on dispatch length (it converges in two
    # rounds because chain shapes depend only on clause counts).
    layout(0)
    dispatch = generate()
    previous_length = -1
    while len(dispatch) != previous_length:
        previous_length = len(dispatch)
        layout(previous_length)
        dispatch = generate()

    final_code = list(dispatch)
    for body in bodies:
        final_code.extend(body)
    proc.code = final_code
    proc.entry = 0
    proc.dirty = False
