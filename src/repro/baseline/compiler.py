"""Clause compiler for the WAM baseline (the DEC-10 Prolog compiler model).

Implements the classic compilation scheme:

* head arguments compile to ``get_*`` instructions, with nested
  compound terms flattened breadth-first into ``unify_*`` sequences and
  deferred ``get_structure``/``get_list`` on temporaries;
* body goals compile to ``put_*`` argument setup plus ``call``/
  ``execute`` (last-call optimisation) or inline ``builtin``;
* variables occurring in more than one chunk become permanent (Y)
  variables in an environment (``allocate``/``deallocate``), with
  ``put_unsafe_value``/``unify_local_value`` guarding against dangling
  references into deallocated environments;
* procedures whose clauses all have a non-variable first head argument
  get **first-argument indexing**: ``switch_on_term`` +
  ``switch_on_constant``/``switch_on_structure`` dispatch with
  try/retry/trust chains only where buckets still hold several clauses.
  This is the "close indexing method" of the paper's §3.1 — it is what
  lets DEC run NREVERSE-style deterministic code without choice points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baseline.isa import COSTS_NS, Instr, Op, X, Y
from repro.engine.frontend import GOAL_CALL, GOAL_CUT, NormalizedClause
from repro.errors import PrologSyntaxError
from repro.prolog.terms import Atom, Struct, Term, Var, is_cons, is_nil

#: Builtins compiled to fast-code arithmetic: expression arguments are
#: evaluated inline (DEC-10 "fast-code" with mode declarations) instead
#: of being built as heap terms and re-traversed.
ARITH_FASTCODE = {("is", 2), ("=:=", 2), ("=\\=", 2),
                  ("<", 2), (">", 2), ("=<", 2), (">=", 2)}

# Indexing taxonomy and first-argument classifier now live in the
# backend-neutral analysis module (both engines consume it); re-exported
# here so existing importers keep working.
from repro.engine.index import (  # noqa: E402  (re-export)
    KIND_CONST, KIND_LIST, KIND_STRUCT, KIND_VAR, ClauseIndex,
    first_arg_descriptor,
)


@dataclass
class CompiledClause:
    code: list[Instr]
    n_permanents: int
    first_arg_kind: str
    first_arg_key: object  # constant value or (name, arity)


@dataclass
class CompiledProcedure:
    functor: str
    arity: int
    clauses: list[CompiledClause] = field(default_factory=list)
    code: list[Instr] = field(default_factory=list)   # entry + clause bodies
    entry: int = 0
    dirty: bool = True
    #: Absolute code offset of each clause's body, position-aligned
    #: with ``clauses`` — what the incremental assert/retract patching
    #: walks instead of re-deriving the layout.
    body_offsets: list[int] = field(default_factory=list)
    #: End (exclusive) of the *live* dispatch region starting at
    #: ``entry``; chain/table patching never looks outside it.
    dispatch_end: int = 0

    @property
    def indicator(self):
        return (self.functor, self.arity)


# ---------------------------------------------------------------------------
# Single clause compilation
# ---------------------------------------------------------------------------


class ClauseCompiler:
    """Compiles one normalized clause (shared frontend IR) to WAM code.

    Goal classification (user call / builtin / cut, meta-call marking)
    comes from :class:`repro.engine.frontend.NormalizedClause`; this
    compiler keeps only what is genuinely WAM register allocation — the
    chunk-based permanent-variable analysis.
    """

    def __init__(self, clause: NormalizedClause, builtin_table: dict):
        self.clause = clause
        self.builtin_table = builtin_table
        self.code: list[Instr] = []
        self.perms: dict[str, int] = {}
        self.temps: dict[str, int] = {}
        self.seen: set[str] = set()
        self.cut_level_slot: int | None = None
        self._xfree = 0

    # -- public -----------------------------------------------------------

    def compile(self) -> CompiledClause:
        head_args = self.clause.head_args
        goals = self.clause.goals
        calls = [i for i, g in enumerate(goals) if g.kind == GOAL_CALL]
        # Meta-calls (call/1 and variable goals) transfer control like
        # user calls: they end register lifetimes and require an
        # environment when non-final, so the continuation register can
        # be restored by deallocate.
        boundaries = [i for i, g in enumerate(goals)
                      if g.kind == GOAL_CALL or g.is_meta]
        needs_env = self._classify_variables(head_args, goals, boundaries)
        deep_cut = any(g.kind == GOAL_CUT for i, g in enumerate(goals)
                       if i > 0)
        if deep_cut and self.cut_level_slot is None:
            self.cut_level_slot = len(self.perms)
            self.perms["$cutlevel"] = self.cut_level_slot
            needs_env = True

        self._xfree = max([len(head_args)]
                          + [g.arity for g in goals]) \
            if (head_args or goals) else 0

        if needs_env:
            self.code.append(Instr(Op.ALLOCATE, len(self.perms)))
            if self.cut_level_slot is not None:
                self.code.append(Instr(Op.GET_LEVEL, (Y, self.cut_level_slot)))

        for i, arg in enumerate(head_args):
            self._compile_get(arg, i)

        last_call = calls[-1] if calls else None
        for i, goal in enumerate(goals):
            if goal.kind == GOAL_CUT:
                if i == 0 and not needs_env:
                    self.code.append(Instr(Op.NECK_CUT))
                elif self.cut_level_slot is not None:
                    self.code.append(Instr(Op.CUT, (Y, self.cut_level_slot)))
                else:
                    self.code.append(Instr(Op.NECK_CUT))
            elif goal.kind == GOAL_CALL:
                is_final = (i == last_call and i == len(goals) - 1)
                self._compile_call(goal.term, needs_env, tail=is_final)
                if is_final:
                    return self._finish(needs_env, tail_done=True)
            else:
                self._compile_builtin(goal.term)
        return self._finish(needs_env, tail_done=False)

    def _finish(self, needs_env: bool, tail_done: bool) -> CompiledClause:
        if not tail_done:
            if needs_env:
                self.code.append(Instr(Op.DEALLOCATE))
            self.code.append(Instr(Op.PROCEED))
        kind, key = first_arg_descriptor(self.clause.head)
        return CompiledClause(self.code, len(self.perms), kind, key)

    # -- classification ------------------------------------------------------

    def _is_meta(self, goal: Term) -> bool:
        if isinstance(goal, Var):
            return True
        return isinstance(goal, Struct) and goal.indicator == ("call", 1)

    def _classify_variables(self, head_args, goals, boundaries) -> bool:
        """Assign permanent (Y) slots; return whether an env is needed."""
        # Chunks: head+goals up to and including the first call, then one
        # chunk per subsequent inter-call segment.
        chunk_of: dict[str, set[int]] = {}
        chunk = 0
        def note(term: Term, chunk_id: int) -> None:
            stack = [term]
            while stack:
                current = stack.pop()
                if isinstance(current, Var):
                    chunk_of.setdefault(current.name, set()).add(chunk_id)
                elif isinstance(current, Struct):
                    stack.extend(current.args)
        for arg in head_args:
            note(arg, 0)
        for goal in goals:
            note(goal.term, chunk)
            if goal.kind == GOAL_CALL or goal.is_meta:
                chunk += 1
        for name, chunks in chunk_of.items():
            if len(chunks) > 1:
                self.perms[name] = len(self.perms)
        needs_env = bool(self.perms) or len(boundaries) > 1 or (
            len(boundaries) == 1 and boundaries[0] != len(goals) - 1)
        return needs_env

    # -- register handling ------------------------------------------------------

    def _fresh_x(self) -> int:
        index = self._xfree
        self._xfree += 1
        return index

    def _var_slot(self, name: str) -> tuple[str, int]:
        if name in self.perms:
            return (Y, self.perms[name])
        if name not in self.temps:
            self.temps[name] = self._fresh_x()
        return (X, self.temps[name])

    # -- head compilation ----------------------------------------------------------

    def _compile_get(self, arg: Term, areg: int) -> None:
        if isinstance(arg, Var):
            slot = self._var_slot(arg.name)
            if arg.name in self.seen:
                self.code.append(Instr(Op.GET_VALUE, slot, areg))
            else:
                self.seen.add(arg.name)
                self.code.append(Instr(Op.GET_VARIABLE, slot, areg))
            return
        if isinstance(arg, int):
            self.code.append(Instr(Op.GET_CONSTANT, arg, areg))
            return
        if isinstance(arg, Atom):
            if is_nil(arg):
                self.code.append(Instr(Op.GET_NIL, areg))
            else:
                self.code.append(Instr(Op.GET_CONSTANT, arg.name, areg))
            return
        assert isinstance(arg, Struct)
        queue: list[tuple[Term, tuple[str, int] | int]] = [(arg, areg)]
        while queue:
            term, where = queue.pop(0)
            if is_cons(term):
                self.code.append(Instr(Op.GET_LIST, where))
                self._unify_args([term.args[0], term.args[1]], queue)
            else:
                self.code.append(Instr(
                    Op.GET_STRUCTURE, (term.functor, term.arity), where))
                self._unify_args(list(term.args), queue)

    def _unify_args(self, args: list[Term], queue: list) -> None:
        for sub in args:
            if isinstance(sub, Var):
                slot = self._var_slot(sub.name)
                if sub.name in self.seen:
                    if slot[0] == Y:
                        self.code.append(Instr(Op.UNIFY_LOCAL_VALUE, slot))
                    else:
                        self.code.append(Instr(Op.UNIFY_VALUE, slot))
                else:
                    self.seen.add(sub.name)
                    self.code.append(Instr(Op.UNIFY_VARIABLE, slot))
            elif isinstance(sub, int):
                self.code.append(Instr(Op.UNIFY_CONSTANT, sub))
            elif isinstance(sub, Atom):
                if is_nil(sub):
                    self.code.append(Instr(Op.UNIFY_NIL))
                else:
                    self.code.append(Instr(Op.UNIFY_CONSTANT, sub.name))
            else:
                temp = (X, self._fresh_x())
                self.code.append(Instr(Op.UNIFY_VARIABLE, temp))
                queue.append((sub, temp))

    # -- body compilation --------------------------------------------------------------

    def _compile_call(self, goal: Term, needs_env: bool, tail: bool) -> None:
        name, args = _goal_parts(goal)
        for i, arg in enumerate(args):
            self._compile_put(arg, i, tail)
        if tail:
            if needs_env:
                self.code.append(Instr(Op.DEALLOCATE))
            self.code.append(Instr(Op.EXECUTE, (name, len(args))))
        else:
            self.code.append(Instr(Op.CALL, (name, len(args))))
            # A call ends the lifetime of every temporary register.
            self.temps.clear()

    def _compile_builtin(self, goal: Term) -> None:
        if isinstance(goal, Var):
            descriptor = self.builtin_table[("call", 1)]
            slot = self._var_slot(goal.name)
            self.code.append(Instr(Op.PUT_VALUE, slot, 0))
            self.code.append(Instr(Op.BUILTIN, descriptor, 1))
            return
        name, args = _goal_parts(goal)
        descriptor = self.builtin_table[(name, len(args))]
        if self._is_meta(goal):
            for i, arg in enumerate(args):
                self._compile_put(arg, i, tail=False)
            self.code.append(Instr(Op.BUILTIN, descriptor, len(args)))
            self.temps.clear()   # control transfer ends temp lifetimes
            return
        if (name, len(args)) in ARITH_FASTCODE:
            specs = list(args)
            if name == "is" and isinstance(args[0], Var) \
                    and args[0].name not in self.seen:
                # Fresh result variable: unconditional assignment (safe
                # across re-execution after backtracking).
                slot = self._var_slot(args[0].name)
                self.seen.add(args[0].name)
                target_spec = ("fv", slot)
                rhs = self._expression_spec(args[1])
                if rhs is not None:
                    self.code.append(Instr(Op.BUILTIN_ARITH, descriptor,
                                           (target_spec, rhs)))
                    return
            else:
                compiled = tuple(self._expression_spec(arg) for arg in args)
                if all(spec is not None for spec in compiled):
                    self.code.append(Instr(Op.BUILTIN_ARITH, descriptor,
                                           compiled))
                    return
        for i, arg in enumerate(args):
            self._compile_put(arg, i, tail=False)
        self.code.append(Instr(Op.BUILTIN, descriptor, len(args)))

    def _expression_spec(self, term: Term):
        """Compile an arithmetic argument to an inline expression tree:
        ints stay ints, variables become ("v", slot) (marking them seen,
        creating fresh slots for result variables), operators become
        ("op", name, subspecs).  Returns None for non-arithmetic shapes
        (atoms, lists), falling back to the generic builtin path."""
        if isinstance(term, int):
            return term
        if isinstance(term, Var):
            slot = self._var_slot(term.name)
            self.seen.add(term.name)
            return ("v", slot)
        if isinstance(term, Struct) and not is_cons(term):
            subs = tuple(self._expression_spec(a) for a in term.args)
            if any(s is None for s in subs):
                return None
            return ("op", term.functor, subs)
        return None

    def _compile_put(self, arg: Term, areg: int, tail: bool) -> None:
        if isinstance(arg, Var):
            slot = self._var_slot(arg.name)
            if arg.name not in self.seen:
                self.seen.add(arg.name)
                self.code.append(Instr(Op.PUT_VARIABLE, slot, areg))
            elif tail and slot[0] == Y:
                self.code.append(Instr(Op.PUT_UNSAFE_VALUE, slot, areg))
            else:
                self.code.append(Instr(Op.PUT_VALUE, slot, areg))
            return
        if isinstance(arg, int):
            self.code.append(Instr(Op.PUT_CONSTANT, arg, areg))
            return
        if isinstance(arg, Atom):
            if is_nil(arg):
                self.code.append(Instr(Op.PUT_NIL, areg))
            else:
                self.code.append(Instr(Op.PUT_CONSTANT, arg.name, areg))
            return
        assert isinstance(arg, Struct)
        self._put_compound(arg, areg)

    def _put_compound(self, term: Struct, where: tuple[str, int] | int) -> None:
        """Build a compound bottom-up: nested compounds into fresh temps."""
        prepared: list[object] = []
        for sub in term.args:
            if isinstance(sub, Struct):
                temp = (X, self._fresh_x())
                self._put_compound(sub, temp)
                prepared.append(("temp", temp))
            else:
                prepared.append(("plain", sub))
        if is_cons(term):
            self.code.append(Instr(Op.PUT_LIST, where))
        else:
            self.code.append(Instr(Op.PUT_STRUCTURE, (term.functor, term.arity), where))
        for kind, value in prepared:
            if kind == "temp":
                self.code.append(Instr(Op.UNIFY_VALUE, value))
                continue
            sub = value
            if isinstance(sub, Var):
                slot = self._var_slot(sub.name)
                if sub.name in self.seen:
                    if slot[0] == Y:
                        self.code.append(Instr(Op.UNIFY_LOCAL_VALUE, slot))
                    else:
                        self.code.append(Instr(Op.UNIFY_VALUE, slot))
                else:
                    self.seen.add(sub.name)
                    self.code.append(Instr(Op.UNIFY_VARIABLE, slot))
            elif isinstance(sub, int):
                self.code.append(Instr(Op.UNIFY_CONSTANT, sub))
            elif is_nil(sub):
                self.code.append(Instr(Op.UNIFY_NIL))
            else:
                assert isinstance(sub, Atom)
                self.code.append(Instr(Op.UNIFY_CONSTANT, sub.name))


def _goal_parts(goal: Term) -> tuple[str, tuple[Term, ...]]:
    if isinstance(goal, Atom):
        return goal.name, ()
    if isinstance(goal, Struct):
        return goal.functor, goal.args
    raise PrologSyntaxError(f"invalid goal {goal!r}")


# ---------------------------------------------------------------------------
# Procedure assembly with first-argument indexing
# ---------------------------------------------------------------------------


def _generate_dispatch(clauses: list[CompiledClause], arity: int,
                       body_offsets: list[int], base: int) -> list[Instr]:
    """Dispatch instructions for clause bodies at absolute
    ``body_offsets``, assuming the dispatch itself is placed at code
    offset ``base`` (all chain/table addresses are absolute).

    Bucket construction goes through the backend-neutral
    :class:`repro.engine.index.ClauseIndex` — the same analysis the PSI
    interpreter's indexed configuration dispatches through — so both
    engines provably select from identical candidate chains.  The
    ``indexable`` precondition (no var first arguments) means the
    eagerly-merged buckets degenerate to plain per-key clause lists
    here, keeping the emitted dispatch identical to the historical
    DEC-10 layout.
    """
    code: list[Instr] = []

    def emit_chain(targets: list[int]) -> int:
        """Emit a try/retry/trust chain over clause body addresses."""
        if len(targets) == 1:
            return targets[0]
        at = base + len(code)
        code.append(Instr(Op.TRY, targets[0]))
        for target in targets[1:-1]:
            code.append(Instr(Op.RETRY, target))
        code.append(Instr(Op.TRUST, targets[-1]))
        return at

    indexable = (arity >= 1
                 and len(clauses) > 1
                 and all(c.first_arg_kind != KIND_VAR for c in clauses))
    if not indexable:
        if len(clauses) > 1:
            emit_chain(list(body_offsets))
        return code

    index = ClauseIndex()
    for clause in clauses:
        index.add_clause(clause.first_arg_kind, clause.first_arg_key)
    # Reserve slot 0 for switch_on_term; chains follow.
    code.append(Instr(Op.NOOP))  # placeholder, patched below
    var_at = emit_chain(list(body_offsets))
    const_table = {}
    for key, ids in index.const_buckets.items():
        const_table[key] = emit_chain([body_offsets[i] for i in ids])
    struct_table = {}
    for key, ids in index.struct_buckets.items():
        struct_table[key] = emit_chain([body_offsets[i] for i in ids])
    list_at = emit_chain([body_offsets[i] for i in index.list_ids]) \
        if index.list_ids else -1
    const_at = -1
    if const_table:
        const_at = base + len(code)
        code.append(Instr(Op.SWITCH_ON_CONSTANT, const_table))
    struct_at = -1
    if struct_table:
        struct_at = base + len(code)
        code.append(Instr(Op.SWITCH_ON_STRUCTURE, struct_table))
    code[0] = Instr(Op.SWITCH_ON_TERM, var_at, const_at, list_at, struct_at)
    return code


def assemble_procedure(proc: CompiledProcedure) -> None:
    """(Re)build a procedure's entry code with indexing.

    Layout: [entry dispatch][chains][clause code...].  All branch
    targets are absolute indices into ``proc.code``.
    """
    clauses = proc.clauses
    bodies: list[list[Instr]] = [c.code for c in clauses]
    body_offsets: list[int] = []

    def layout(dispatch_length: int) -> None:
        body_offsets.clear()
        cursor = dispatch_length
        for body in bodies:
            body_offsets.append(cursor)
            cursor += len(body)

    # Iterate to a fixed point on dispatch length (it converges in two
    # rounds because chain shapes depend only on clause counts).
    layout(0)
    dispatch = _generate_dispatch(clauses, proc.arity, body_offsets, 0)
    previous_length = -1
    while len(dispatch) != previous_length:
        previous_length = len(dispatch)
        layout(previous_length)
        dispatch = _generate_dispatch(clauses, proc.arity, body_offsets, 0)

    final_code = list(dispatch)
    for body in bodies:
        final_code.extend(body)
    proc.code = final_code
    proc.entry = 0
    proc.dirty = False
    proc.body_offsets = list(body_offsets)
    proc.dispatch_end = len(dispatch)


def append_clause(proc: CompiledProcedure, compiled: CompiledClause) -> None:
    """Incremental assert: splice one compiled clause into an already
    assembled procedure without reassembling it.

    The new body goes at the end of the code vector and a fresh
    dispatch region is appended after it (``proc.entry`` moves; the old
    dispatch becomes dead code).  Only the dispatch — O(#clauses)
    instructions — is regenerated; no clause body is recompiled or
    copied, so heavy assert loops cost O(new clause) instead of
    O(procedure).  Existing body offsets never move, which also keeps
    any live choice point's saved code addresses valid — something the
    full reassembly could not guarantee.
    """
    proc.clauses.append(compiled)
    base = len(proc.code)
    proc.code.extend(compiled.code)
    proc.body_offsets.append(base)
    dispatch_base = len(proc.code)
    dispatch = _generate_dispatch(proc.clauses, proc.arity,
                                  proc.body_offsets, dispatch_base)
    if dispatch:
        proc.code.extend(dispatch)
        proc.entry = dispatch_base
        proc.dispatch_end = len(proc.code)
    else:
        # Single clause: enter the body directly, no dispatch region.
        proc.entry = proc.body_offsets[0]
        proc.dispatch_end = proc.entry
    proc.dirty = False


def patch_out_clause(proc: CompiledProcedure, position: int) -> None:
    """In-place retract patch: drop clause ``position``'s targets from
    the live dispatch region without reassembling the procedure.

    The caller has already popped ``proc.clauses[position]``.  Every
    try/retry/trust chain containing the clause's body offset is
    rewritten *within its own span* (shrunk chains are padded with
    unreachable FAILs; a chain reduced to one target becomes a JUMP,
    to zero targets a FAIL), and switch-table entries pointing directly
    at the body are deleted.  Remaining body offsets never move, so no
    other target in the procedure — including addresses saved in live
    choice points — needs fixing.
    """
    target = proc.body_offsets.pop(position)
    code = proc.code
    if not proc.clauses:
        # Last clause gone: the procedure now always fails.
        proc.entry = len(code)
        code.append(Instr(Op.FAIL))
        proc.dispatch_end = len(code)
        return
    i, end = proc.entry, proc.dispatch_end
    while i < end:
        ins = code[i]
        op = ins.op
        if op is Op.TRY:
            j = i
            targets = [ins[1]]
            while code[j + 1].op is Op.RETRY:
                j += 1
                targets.append(code[j][1])
            j += 1
            assert code[j].op is Op.TRUST
            targets.append(code[j][1])
            if target in targets:
                remaining = [t for t in targets if t != target]
                if len(remaining) == 1:
                    fill = [Instr(Op.JUMP, remaining[0])]
                else:
                    fill = ([Instr(Op.TRY, remaining[0])]
                            + [Instr(Op.RETRY, t) for t in remaining[1:-1]]
                            + [Instr(Op.TRUST, remaining[-1])])
                fill += [Instr(Op.FAIL)] * (j - i + 1 - len(fill))
                code[i:j + 1] = fill
            i = j + 1
        elif op is Op.JUMP:
            # A chain already reduced to one clause by an earlier patch.
            if ins[1] == target:
                code[i] = Instr(Op.FAIL)
            i += 1
        elif op is Op.SWITCH_ON_CONSTANT or op is Op.SWITCH_ON_STRUCTURE:
            table = ins[1]
            for key in [k for k, v in table.items() if v == target]:
                del table[key]
            i += 1
        elif op is Op.SWITCH_ON_TERM:
            if target in (ins[1], ins[2], ins[3], ins[4]):
                code[i] = Instr(Op.SWITCH_ON_TERM,
                                *[-1 if t == target else t
                                  for t in (ins[1], ins[2], ins[3], ins[4])])
            i += 1
        else:
            i += 1
