"""The DEC-10 Prolog baseline: a WAM compiler + emulator with a
DEC-2060 cost model (the comparison system of Table 1)."""

from repro.baseline.isa import COSTS_NS, DYNAMIC_COSTS_NS, Instr, Op
from repro.baseline.machine import (
    BaselineConfig,
    BaselineSolution,
    BaselineSolver,
    BaselineStats,
    WAMMachine,
)

__all__ = [
    "WAMMachine", "BaselineConfig", "BaselineStats",
    "BaselineSolver", "BaselineSolution",
    "Op", "Instr", "COSTS_NS", "DYNAMIC_COSTS_NS",
]
