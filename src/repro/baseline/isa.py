"""WAM-style instruction set and the DEC-2060 cost model.

The paper's baseline is "DEC-10 Prolog compiled code on the DEC-2060"
with mode and fast-code declarations.  DEC-10 Prolog's compiled
execution model is the direct ancestor of Warren's Abstract Machine, so
the baseline engine is a WAM: compiled head unification (get/unify
instructions), argument setup (put instructions), environment
allocation with last-call optimisation, and — crucially for Table 1 —
**first-argument clause indexing** (``switch_on_term`` etc.), the
"close indexing method" the paper credits for DEC's wins on
deterministic list code like NREVERSE.

Costs are nanoseconds per instruction on the modelled DEC-2060,
calibrated once so that NREVERSE(30) lands near the paper's 9.48 ms
(≈ 52 KLIPS) and then frozen; see EXPERIMENTS.md.  ``unify_*`` costs in
write mode and general unification are charged by the emulator through
the ``dynamic`` entries.
"""

from __future__ import annotations

from enum import Enum, auto


class Op(Enum):
    # Members are singletons, so identity hashing is equivalent to the
    # default Enum name hash — but it is a C-level slot instead of a
    # Python-level __hash__ call, and Op is a dict key on the
    # instruction-counting hot line of the baseline interpreter.
    __hash__ = object.__hash__

    # head (get) instructions
    GET_VARIABLE = auto()     # Vn, Ai
    GET_VALUE = auto()        # Vn, Ai
    GET_CONSTANT = auto()     # const, Ai
    GET_NIL = auto()          # Ai
    GET_LIST = auto()         # Ai
    GET_STRUCTURE = auto()    # (name, arity), Ai
    # unify instructions (head structure args / write mode)
    UNIFY_VARIABLE = auto()   # Vn
    UNIFY_VALUE = auto()      # Vn
    UNIFY_LOCAL_VALUE = auto()
    UNIFY_CONSTANT = auto()   # const
    UNIFY_NIL = auto()
    UNIFY_VOID = auto()       # n
    # body (put) instructions
    PUT_VARIABLE = auto()     # Vn, Ai   (fresh; Y variant allocates heap cell)
    PUT_VALUE = auto()        # Vn, Ai
    PUT_UNSAFE_VALUE = auto()  # Yn, Ai
    PUT_CONSTANT = auto()     # const, Ai
    PUT_NIL = auto()          # Ai
    PUT_LIST = auto()         # Ai
    PUT_STRUCTURE = auto()    # (name, arity), Ai
    # control
    ALLOCATE = auto()         # n permanent variables
    DEALLOCATE = auto()
    CALL = auto()             # (name, arity)
    EXECUTE = auto()          # (name, arity)
    PROCEED = auto()
    # choice
    TRY_ME_ELSE = auto()      # label
    RETRY_ME_ELSE = auto()    # label
    TRUST_ME = auto()
    TRY = auto()              # label
    RETRY = auto()            # label
    TRUST = auto()            # label
    # indexing
    SWITCH_ON_TERM = auto()   # (var_l, const_l, list_l, struct_l)
    SWITCH_ON_CONSTANT = auto()  # {const: label}, default
    SWITCH_ON_STRUCTURE = auto()  # {(name,arity): label}, default
    # cut
    NECK_CUT = auto()
    GET_LEVEL = auto()        # Yn
    CUT = auto()              # Yn
    # builtins / misc
    BUILTIN = auto()          # descriptor, nargs
    BUILTIN_ARITH = auto()    # descriptor, arg_specs (fast-code arithmetic)
    FAIL = auto()
    NOOP = auto()             # label placeholder
    JUMP = auto()             # label — a dispatch chain that the in-place
    #                           retract patch reduced to a single clause


#: Registers: ("x", n) temporaries / argument registers, ("y", n) permanents.
X = "x"
Y = "y"


class Instr(tuple):
    """One instruction: (Op, operands...).  Tuple subclass: cheap, hashable."""

    __slots__ = ()

    def __new__(cls, op: Op, *operands):
        return super().__new__(cls, (op, *operands))

    @property
    def op(self) -> Op:
        return self[0]

    def __repr__(self) -> str:
        parts = ", ".join(repr(x) for x in self[1:])
        return f"{self[0].name.lower()}({parts})"


# ---------------------------------------------------------------------------
# DEC-2060 cost model (nanoseconds per instruction execution).
#
# The values below are the frozen result of the calibration fit in
# scripts/fit_dec_costs.py against the paper's Table 1 ratios (see
# EXPERIMENTS.md).  Their structure: register moves and indexed control
# transfer are cheap; structure unification (get_structure, get_value,
# unify_local_value, the general unifier) is expensive — this is the
# term the paper's "performance of the structure unification falls
# down" remark lives in — while fast-code arithmetic is cheap, which is
# why DEC wins arithmetic-and-list programs but loses the
# structure-and-backtracking applications.
# ---------------------------------------------------------------------------

COSTS_NS: dict[Op, int] = {
    Op.GET_VARIABLE: 756,
    Op.GET_VALUE: 9384,
    Op.GET_CONSTANT: 1620,
    Op.GET_NIL: 1512,
    Op.GET_LIST: 1944,
    Op.GET_STRUCTURE: 13247,
    Op.UNIFY_VARIABLE: 1188,
    Op.UNIFY_VALUE: 2280,
    Op.UNIFY_LOCAL_VALUE: 11592,
    Op.UNIFY_CONSTANT: 1620,
    Op.UNIFY_NIL: 1512,
    Op.UNIFY_VOID: 1080,
    Op.PUT_VARIABLE: 1092,
    Op.PUT_VALUE: 756,
    Op.PUT_UNSAFE_VALUE: 1596,
    Op.PUT_CONSTANT: 1080,
    Op.PUT_NIL: 1080,
    Op.PUT_LIST: 1512,
    Op.PUT_STRUCTURE: 11040,
    Op.ALLOCATE: 1847,
    Op.DEALLOCATE: 1428,
    Op.CALL: 2688,
    Op.EXECUTE: 2184,
    Op.PROCEED: 1260,
    Op.TRY_ME_ELSE: 4320,
    Op.RETRY_ME_ELSE: 3600,
    Op.TRUST_ME: 3120,
    Op.TRY: 4320,
    Op.RETRY: 3600,
    Op.TRUST: 3120,
    Op.SWITCH_ON_TERM: 1092,
    Op.SWITCH_ON_CONSTANT: 1344,
    Op.SWITCH_ON_STRUCTURE: 8832,
    Op.NECK_CUT: 1440,
    Op.GET_LEVEL: 960,
    Op.CUT: 2160,
    Op.BUILTIN: 4320,
    Op.BUILTIN_ARITH: 2520,
    Op.FAIL: 1440,
    Op.NOOP: 0,
    # Zero-cost like NOOP: a reassembled procedure would enter the sole
    # remaining clause directly with no chain instruction at all, so the
    # patched-in jump must not perturb the DEC timing model.
    Op.JUMP: 0,
}

#: Extra dynamic costs the emulator charges per event (ns).
DYNAMIC_COSTS_NS = {
    "general_unify_node": 14351,       # per node pair handled by the general unifier
    "deref_step": 600,         # per reference chased
    "trail_entry": 840,         # per conditional trail push
    "untrail_entry": 960,         # per binding undone on backtracking
    "backtrack": 3360,        # per failure handled
    "heap_cell": 648,         # per heap cell written in write mode
    "builtin_step": 2700,        # per unit of builtin internal work
    "arith_node": 2340,        # per arithmetic expression node
}
