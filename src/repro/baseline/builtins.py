"""Builtin predicates of the DEC-10 baseline.

The same surface predicates the PSI's KL0 offers (minus heap vectors
and process switching, which only the PSI-side OS workload uses), so
that every Table 1 benchmark runs unchanged on both engines.  Costs are
charged through the descriptor weight (units of ``builtin_step``) plus
per-node ``arith_node``/``general_unify_node`` events — DEC-10 Prolog's
fast-code compilation made builtins cheap, which the low weights model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.engine.builtins_spec import (
    ARITH_BINARY,
    ARITH_UNARY,
    apply_arith_op,
    apply_compare,
)
from repro.errors import InstantiationError, TypeError_
from repro.prolog.writer import term_to_string


@dataclass(frozen=True)
class BaselineBuiltin:
    name: str
    arity: int
    fn: Callable
    weight: int = 1

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)


BASELINE_BUILTINS: dict[tuple[str, int], BaselineBuiltin] = {}


def _register(name: str, arity: int, weight: int = 1):
    def decorator(fn):
        BASELINE_BUILTINS[(name, arity)] = BaselineBuiltin(name, arity, fn, weight)
        return fn
    return decorator


# Tags duplicated locally to avoid importing the machine (circular import).
REF = 0
STR = 1
LIS = 2
CON = 3
INT = 4

# Operator tables and division semantics are shared with the KL0 engine
# through repro.engine.builtins_spec; only the traversal driver below is
# the baseline's (it charges one "arith_node" event per expression node).
_ARITH_BINARY = ARITH_BINARY
_ARITH_UNARY = ARITH_UNARY


def apply_arith(name: str, a: int, b: int) -> bool:
    """Apply a fast-code arithmetic comparison."""
    return apply_compare(name, a, b)


def eval_arith(m, cell) -> int:
    cell = m.deref(cell)
    m.stats.event("arith_node")
    tag = cell[0]
    if tag == INT:
        return cell[1]
    if tag == REF:
        raise InstantiationError("unbound variable in arithmetic expression")
    if tag == STR:
        name, arity = m.heap[cell[1]][1]
        if arity == 2 and name in _ARITH_BINARY:
            a = eval_arith(m, m.heap[cell[1] + 1])
            b = eval_arith(m, m.heap[cell[1] + 2])
            return _ARITH_BINARY[name](a, b)
        if arity == 1 and name in _ARITH_UNARY:
            return _ARITH_UNARY[name](eval_arith(m, m.heap[cell[1] + 1]))
        raise TypeError_("evaluable functor", f"{name}/{arity}")
    raise TypeError_("evaluable term", cell)


# -- control -----------------------------------------------------------------


@_register("true", 0)
def bb_true(m, args) -> bool:
    return True


@_register("fail", 0)
def bb_fail(m, args) -> bool:
    return False


@_register("false", 0)
def bb_false(m, args) -> bool:
    return False


@_register("=", 2)
def bb_unify(m, args) -> bool:
    return m.unify(args[0], args[1])


@_register("\\=", 2, weight=2)
def bb_not_unify(m, args) -> bool:
    mark = len(m.trail)
    heap_top = len(m.heap)
    result = m.unify(args[0], args[1])
    while len(m.trail) > mark:
        idx = m.trail.pop()
        m.heap[idx] = (REF, idx)
        m.stats.event("untrail_entry")
    if not m.choices or m.choices[-1].heap_top <= heap_top:
        del m.heap[heap_top:]
    return not result


@_register("call", 1, weight=2)
def bb_call(m, args):
    cell = m.deref(args[0])
    if cell[0] == CON:
        name = cell[1]
        if (name, 0) in BASELINE_BUILTINS:
            return BASELINE_BUILTINS[(name, 0)].fn(m, [])
        return ("call", name, 0, [])
    if cell[0] == STR:
        name, arity = m.heap[cell[1]][1]
        call_args = [m.heap[cell[1] + 1 + i] for i in range(arity)]
        if (name, arity) in BASELINE_BUILTINS:
            return BASELINE_BUILTINS[(name, arity)].fn(m, call_args)
        return ("call", name, arity, call_args)
    if cell[0] == REF:
        raise InstantiationError("call/1 of an unbound variable")
    raise TypeError_("callable term", cell)


# -- type tests -----------------------------------------------------------------


@_register("var", 1)
def bb_var(m, args) -> bool:
    return m.deref(args[0])[0] == REF


@_register("nonvar", 1)
def bb_nonvar(m, args) -> bool:
    return m.deref(args[0])[0] != REF


@_register("atom", 1)
def bb_atom(m, args) -> bool:
    return m.deref(args[0])[0] == CON


@_register("integer", 1)
def bb_integer(m, args) -> bool:
    return m.deref(args[0])[0] == INT


@_register("atomic", 1)
def bb_atomic(m, args) -> bool:
    return m.deref(args[0])[0] in (CON, INT)


@_register("compound", 1)
def bb_compound(m, args) -> bool:
    return m.deref(args[0])[0] in (LIS, STR)


@_register("is_list", 1, weight=2)
def bb_is_list(m, args) -> bool:
    cell = m.deref(args[0])
    while cell[0] == LIS:
        cell = m.deref(m.heap[cell[1] + 1])
    return cell == (CON, "[]")


# -- arithmetic ---------------------------------------------------------------------


@_register("is", 2)
def bb_is(m, args) -> bool:
    value = eval_arith(m, args[1])
    return m.unify(args[0], (INT, value))


def _compare_arith(m, args, op) -> bool:
    return op(eval_arith(m, args[0]), eval_arith(m, args[1]))


@_register("=:=", 2)
def bb_eq(m, args) -> bool:
    return _compare_arith(m, args, lambda a, b: a == b)


@_register("=\\=", 2)
def bb_ne(m, args) -> bool:
    return _compare_arith(m, args, lambda a, b: a != b)


@_register("<", 2)
def bb_lt(m, args) -> bool:
    return _compare_arith(m, args, lambda a, b: a < b)


@_register(">", 2)
def bb_gt(m, args) -> bool:
    return _compare_arith(m, args, lambda a, b: a > b)


@_register("=<", 2)
def bb_le(m, args) -> bool:
    return _compare_arith(m, args, lambda a, b: a <= b)


@_register(">=", 2)
def bb_ge(m, args) -> bool:
    return _compare_arith(m, args, lambda a, b: a >= b)


# -- structural comparison ------------------------------------------------------------


def _compare_cells(m, c1, c2) -> int:
    a = m.deref(c1)
    b = m.deref(c2)
    order_a = _order_class(a[0])
    order_b = _order_class(b[0])
    if order_a != order_b:
        return -1 if order_a < order_b else 1
    if order_a in (0, 1):
        return (a[1] > b[1]) - (a[1] < b[1])
    if order_a == 2:
        return (a[1] > b[1]) - (a[1] < b[1])
    name_a, arity_a, args_a = _parts(m, a)
    name_b, arity_b, args_b = _parts(m, b)
    if arity_a != arity_b:
        return -1 if arity_a < arity_b else 1
    if name_a != name_b:
        return -1 if name_a < name_b else 1
    for x, y in zip(args_a, args_b):
        result = _compare_cells(m, x, y)
        if result:
            return result
    return 0


def _order_class(tag) -> int:
    return {REF: 0, INT: 1, CON: 2, LIS: 3, STR: 3}[tag]


def _parts(m, cell):
    if cell[0] == LIS:
        return ".", 2, [m.heap[cell[1]], m.heap[cell[1] + 1]]
    name, arity = m.heap[cell[1]][1]
    return name, arity, [m.heap[cell[1] + 1 + i] for i in range(arity)]


@_register("==", 2)
def bb_struct_eq(m, args) -> bool:
    return _compare_cells(m, args[0], args[1]) == 0


@_register("\\==", 2)
def bb_struct_ne(m, args) -> bool:
    return _compare_cells(m, args[0], args[1]) != 0


@_register("@<", 2)
def bb_term_lt(m, args) -> bool:
    return _compare_cells(m, args[0], args[1]) < 0


@_register("@>", 2)
def bb_term_gt(m, args) -> bool:
    return _compare_cells(m, args[0], args[1]) > 0


@_register("@=<", 2)
def bb_term_le(m, args) -> bool:
    return _compare_cells(m, args[0], args[1]) <= 0


@_register("@>=", 2)
def bb_term_ge(m, args) -> bool:
    return _compare_cells(m, args[0], args[1]) >= 0


@_register("compare", 3)
def bb_compare(m, args) -> bool:
    result = _compare_cells(m, args[1], args[2])
    name = "<" if result < 0 else (">" if result > 0 else "=")
    return m.unify(args[0], (CON, name))


# -- term construction / inspection ----------------------------------------------------


@_register("functor", 3, weight=2)
def bb_functor(m, args) -> bool:
    cell = m.deref(args[0])
    tag = cell[0]
    if tag != REF:
        if tag == LIS:
            name_cell, arity = (CON, "."), 2
        elif tag == STR:
            name, arity = m.heap[cell[1]][1]
            name_cell = (CON, name)
        else:
            name_cell, arity = cell, 0
        return m.unify(args[1], name_cell) and m.unify(args[2], (INT, arity))
    name = m.deref(args[1])
    arity_cell = m.deref(args[2])
    if name[0] == REF or arity_cell[0] != INT:
        raise InstantiationError("functor/3 needs name and arity")
    arity = arity_cell[1]
    if arity == 0:
        return m.unify(args[0], name)
    if name[0] != CON:
        raise TypeError_("atom", name)
    if name[1] == "." and arity == 2:
        idx = len(m.heap)
        m.new_ref()
        m.new_ref()
        built = (LIS, idx)
    else:
        idx = m.push((5, (name[1], arity)))  # FUN
        for _ in range(arity):
            m.new_ref()
        built = (STR, idx)
    m.stats.event("heap_cell", arity + 1)
    return m.unify(args[0], built)


@_register("arg", 3)
def bb_arg(m, args) -> bool:
    index = m.deref(args[0])
    cell = m.deref(args[1])
    if index[0] != INT:
        raise InstantiationError("arg/3 needs an integer index")
    n = index[1]
    if cell[0] == STR:
        _, arity = m.heap[cell[1]][1]
        if not 1 <= n <= arity:
            return False
        return m.unify(args[2], m.heap[cell[1] + n])
    if cell[0] == LIS:
        if not 1 <= n <= 2:
            return False
        return m.unify(args[2], m.heap[cell[1] + n - 1])
    return False


@_register("=..", 2, weight=3)
def bb_univ(m, args) -> bool:
    cell = m.deref(args[0])
    tag = cell[0]
    if tag != REF:
        if tag == STR:
            name, arity = m.heap[cell[1]][1]
            items = [(CON, name)] + [m.heap[cell[1] + 1 + i] for i in range(arity)]
        elif tag == LIS:
            items = [(CON, "."), m.heap[cell[1]], m.heap[cell[1] + 1]]
        else:
            items = [cell]
        return m.unify(args[1], _make_list(m, items))
    items = []
    current = m.deref(args[1])
    while current[0] == LIS:
        items.append(m.deref(m.heap[current[1]]))
        current = m.deref(m.heap[current[1] + 1])
    if current != (CON, "[]") or not items:
        raise InstantiationError("=../2 needs a proper, bound list")
    head, rest = items[0], items[1:]
    if not rest:
        return m.unify(args[0], head)
    if head[0] != CON:
        raise TypeError_("atom", head)
    if head[1] == "." and len(rest) == 2:
        idx = len(m.heap)
        m.heap.append(rest[0])
        m.heap.append(rest[1])
        built = (LIS, idx)
    else:
        idx = m.push((5, (head[1], len(rest))))
        for item in rest:
            m.heap.append(item)
        built = (STR, idx)
    m.stats.event("heap_cell", len(rest) + 1)
    return m.unify(args[0], built)


def _make_list(m, items):
    result = (CON, "[]")
    for item in reversed(items):
        idx = len(m.heap)
        m.heap.append(item)
        m.heap.append(result)
        result = (LIS, idx)
    m.stats.event("heap_cell", 2 * len(items))
    return result


@_register("length", 2, weight=2)
def bb_length(m, args) -> bool:
    cell = m.deref(args[0])
    if cell[0] in (LIS,) or cell == (CON, "[]"):
        count = 0
        while cell[0] == LIS:
            count += 1
            cell = m.deref(m.heap[cell[1] + 1])
        if cell != (CON, "[]"):
            return False
        return m.unify(args[1], (INT, count))
    n = m.deref(args[1])
    if n[0] != INT or n[1] < 0:
        raise InstantiationError("length/2 needs a list or a length")
    cells = [(REF, m.new_ref()) for _ in range(n[1])]
    return m.unify(args[0], _make_list(m, cells))


# -- output & counters -------------------------------------------------------------------


@_register("write", 1, weight=2)
def bb_write(m, args) -> bool:
    m.output.append(term_to_string(m.decode_cell(args[0]), quoted=False))
    return True


@_register("print", 1, weight=2)
def bb_print(m, args) -> bool:
    return bb_write(m, args)


@_register("nl", 0)
def bb_nl(m, args) -> bool:
    m.output.append("\n")
    return True


@_register("tab", 1)
def bb_tab(m, args) -> bool:
    m.output.append(" " * max(eval_arith(m, args[0]), 0))
    return True


@_register("counter_reset", 1)
def bb_counter_reset(m, args) -> bool:
    m.counters[_atom(m, args[0])] = 0
    return True


@_register("counter_inc", 1)
def bb_counter_inc(m, args) -> bool:
    name = _atom(m, args[0])
    m.counters[name] = m.counters.get(name, 0) + 1
    return True


@_register("counter_value", 2)
def bb_counter_value(m, args) -> bool:
    return m.unify(args[1], (INT, m.counters.get(_atom(m, args[0]), 0)))


def _atom(m, cell) -> str:
    cell = m.deref(cell)
    if cell[0] != CON:
        raise TypeError_("atom", cell)
    return cell[1]


@_register("assertz", 1, weight=4)
def bb_assertz(m, args) -> bool:
    m.add_clause_term(m.decode_cell(args[0]))
    return True


@_register("assert", 1, weight=4)
def bb_assert(m, args) -> bool:
    return bb_assertz(m, args)


@_register("retract", 1, weight=4)
def bb_retract(m, args) -> bool:
    return m.retract_fact(args[0])


@_register("garbage_collect", 0)
def bb_gc(m, args) -> bool:
    return True
