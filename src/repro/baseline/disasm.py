"""Disassembler for compiled WAM procedures.

Renders the instruction stream the compiler produced — dispatch tables,
try/retry/trust chains, clause bodies — with resolved jump targets, the
way DEC-10 Prolog's ``listing``-with-code tools did.  Used for
debugging compilations and by the compiler tests.
"""

from __future__ import annotations

from repro.baseline.compiler import CompiledProcedure
from repro.baseline.isa import Instr, Op

_JUMPS = {Op.TRY, Op.RETRY, Op.TRUST}


def _operand(value) -> str:
    if isinstance(value, tuple) and len(value) == 2 \
            and value[0] in ("x", "y"):
        return f"{value[0].upper()}{value[1]}"
    if isinstance(value, tuple) and len(value) == 2 \
            and isinstance(value[0], str):
        return f"{value[0]}/{value[1]}"
    if isinstance(value, dict):
        inner = ", ".join(f"{_operand(k)}->L{v}" for k, v in value.items())
        return "{" + inner + "}"
    if hasattr(value, "indicator"):   # builtin descriptor
        name, arity = value.indicator
        return f"<{name}/{arity}>"
    return repr(value)


def disassemble_instr(instr: Instr, index: int | None = None) -> str:
    """One instruction as text; jump targets rendered as L<n>."""
    op = instr[0]
    parts = []
    for position, value in enumerate(instr[1:], start=1):
        if op in _JUMPS and position == 1:
            parts.append(f"L{value}")
        elif op is Op.SWITCH_ON_TERM:
            parts.append(f"L{value}" if isinstance(value, int) and value >= 0
                         else "fail")
        else:
            parts.append(_operand(value))
    text = op.name.lower() + (" " + ", ".join(parts) if parts else "")
    if index is not None:
        return f"L{index:<4} {text}"
    return text


def disassemble(proc: CompiledProcedure) -> str:
    """Full listing of a procedure's code with label column."""
    header = (f"% {proc.functor}/{proc.arity}: "
              f"{len(proc.clauses)} clause(s), {len(proc.code)} instructions")
    lines = [header]
    targets = set()
    for instr in proc.code:
        if instr[0] in _JUMPS:
            targets.add(instr[1])
        elif instr[0] is Op.SWITCH_ON_TERM:
            targets.update(v for v in instr[1:] if isinstance(v, int) and v >= 0)
        elif instr[0] in (Op.SWITCH_ON_CONSTANT, Op.SWITCH_ON_STRUCTURE):
            targets.update(instr[1].values())
    for index, instr in enumerate(proc.code):
        marker = ">" if index in targets else " "
        lines.append(f"{marker} {disassemble_instr(instr, index)}")
    return "\n".join(lines)


def disassemble_machine(machine) -> str:
    """Listing of every user procedure in a machine, sorted by name."""
    sections = []
    for key in sorted(machine.procedures):
        if key[0].startswith("$"):
            continue
        sections.append(disassemble(machine.procedures[key]))
    return "\n\n".join(sections)
