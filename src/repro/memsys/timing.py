"""Timing model: microsteps + cache behaviour → execution time.

Constants come straight from the paper's cache specification (§2.2):
200 ns microinstruction cycle (= hit access time), 800 ns miss access
time, 800 ns four-word block transfer.  A miss therefore stalls the
pipeline for ``MISS_NS - CYCLE_NS`` beyond its own step, each block
movement (fetch on miss, dirty write-back, store-through word write)
costs one ``TRANSFER_NS``-class memory transaction.

``execution_time_ns`` is what Table 1 (PSI column), Figure 1 and the
store-in/store-through ablation are computed from.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memsys.cache import CacheStats

#: Microinstruction cycle time; also the cache hit access time.
CYCLE_NS = 200
#: Cache miss access time (the missing word's latency).
MISS_NS = 800
#: Four-word block transfer between cache and main memory.
TRANSFER_NS = 800
#: Effective cost of a single-word main-memory write on the
#: store-through path.  A one-entry write buffer overlaps most of the
#: 800 ns transaction with continuing execution; only the residual
#: stall is charged.  Calibrated so the store-in vs store-through
#: ablation lands near the paper's ~8% gap (see EXPERIMENTS.md).
WORD_WRITE_NS = 120


@dataclass(frozen=True)
class TimingBreakdown:
    """Execution-time decomposition for one run."""

    steps: int
    compute_ns: int
    miss_stall_ns: int
    writeback_ns: int
    through_write_ns: int

    @property
    def total_ns(self) -> int:
        return (self.compute_ns + self.miss_stall_ns
                + self.writeback_ns + self.through_write_ns)

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6


def execution_time(steps: int, cache: CacheStats | None) -> TimingBreakdown:
    """Time for ``steps`` microinstructions given cache behaviour.

    With ``cache=None`` the machine is modelled *without* cache memory:
    every memory access pays the full main-memory latency (this is the
    Tnc of Figure 1's performance improvement ratio; pass the access
    count via a zero-capacity run instead — see :func:`time_without_cache`).
    """
    compute = steps * CYCLE_NS
    if cache is None:
        return TimingBreakdown(steps, compute, 0, 0, 0)
    fetch_stall = cache.block_fetches * (MISS_NS - CYCLE_NS)
    writeback = cache.writebacks * TRANSFER_NS
    through = cache.through_writes * WORD_WRITE_NS
    return TimingBreakdown(steps, compute, fetch_stall, writeback, through)


def time_without_cache(steps: int, mem_accesses: int) -> TimingBreakdown:
    """Tnc: every memory access pays main-memory latency (800 ns)."""
    compute = steps * CYCLE_NS
    stall = mem_accesses * (MISS_NS - CYCLE_NS)
    return TimingBreakdown(steps, compute, stall, 0, 0)


def improvement_ratio(time_nc_ns: int, time_c_ns: int) -> float:
    """The paper's Figure 1 metric: ((Tnc / Tc) - 1) x 100."""
    if time_c_ns == 0:
        return 0.0
    return (time_nc_ns / time_c_ns - 1.0) * 100.0
