"""Set-associative cache model — the reproduction of PMMS.

The PSI cache (§2.2): 8K words, two-way set associative, store-in
(write-back), 4-word blocks, 200 ns hit / 800 ns miss, 800 ns 4-word
block transfer, and a specialised *Write-stack* command that skips
block read-in on a write miss (used for pushes to stack tops).

The model is trace-driven: feed it ``(command, address)`` pairs either
online (attach it to a running machine as a memory listener) or offline
from a :class:`~repro.core.memory.TraceRecorder` via
:mod:`repro.tools.pmms`.  It keeps per-area hit/miss counts so Table 5
falls straight out, and event counts the timing model converts to
stall time for Figure 1 and the store-in/store-through ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory import AREA_SHIFT, Area
from repro.core.micro import CacheCmd


class WritePolicy:
    """Write policies: the paper's store-in vs store-through comparison."""

    STORE_IN = "store-in"          # write-back, write-allocate
    STORE_THROUGH = "store-through"  # write-through, no write-allocate


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one simulated cache."""

    capacity_words: int = 8192
    ways: int = 2
    block_words: int = 4
    policy: str = WritePolicy.STORE_IN
    #: the specialised Write-stack command allocates without block read-in
    write_stack_no_fetch: bool = True

    def __post_init__(self) -> None:
        if self.capacity_words % (self.ways * self.block_words):
            raise ValueError("capacity must be a multiple of ways * block size")
        if self.capacity_words < self.ways * self.block_words:
            raise ValueError("capacity smaller than one set")
        if self.policy not in (WritePolicy.STORE_IN, WritePolicy.STORE_THROUGH):
            raise ValueError(f"unknown write policy {self.policy!r}")

    @property
    def sets(self) -> int:
        return self.capacity_words // (self.ways * self.block_words)


@dataclass
class AreaCounts:
    """Hit/miss counts for one memory area."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hit ratio in percent (100.0 when never accessed)."""
        if not self.accesses:
            return 100.0
        return 100.0 * self.hits / self.accesses


class CacheStats:
    """Aggregate statistics of one simulation run."""

    def __init__(self) -> None:
        self.per_area: dict[Area, AreaCounts] = {area: AreaCounts() for area in Area}
        self.per_cmd_hits: dict[CacheCmd, int] = {cmd: 0 for cmd in CacheCmd}
        self.per_cmd_misses: dict[CacheCmd, int] = {cmd: 0 for cmd in CacheCmd}
        self.block_fetches = 0      # block read-ins from main memory
        self.writebacks = 0         # dirty block write-backs (store-in)
        self.through_writes = 0     # individual word writes to memory (store-through)

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.per_area.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.per_area.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 100.0
        return 100.0 * self.hits / self.accesses

    def area_hit_ratio(self, area: Area) -> float:
        return self.per_area[area].hit_ratio


class Cache:
    """One simulated cache (usable directly as a memory listener).

    Replacement is true LRU within each set.  Tags are full block
    numbers, so distinct areas never alias.
    """

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        cfg = self.config
        self._set_mask = cfg.sets - 1 if (cfg.sets & (cfg.sets - 1)) == 0 else None
        # Each set: list of [block_number, dirty] in LRU order (front = MRU).
        self._sets: list[list[list]] = [[] for _ in range(cfg.sets)]
        self._block_shift = (cfg.block_words - 1).bit_length() \
            if cfg.block_words > 1 else 0
        if 1 << self._block_shift != cfg.block_words:
            raise ValueError("block size must be a power of two")

    # -- MemoryListener interface -------------------------------------------------

    def access(self, cmd: CacheCmd, address: int) -> bool:
        """Simulate one access; returns True on hit."""
        block = address >> self._block_shift
        index = block % self.config.sets
        ways = self._sets[index]
        counts = self.stats.per_area[Area(address >> AREA_SHIFT)]
        entry = None
        for i, candidate in enumerate(ways):
            if candidate[0] == block:
                entry = candidate
                if i:
                    ways.pop(i)
                    ways.insert(0, entry)
                break

        is_write = cmd is not CacheCmd.READ
        if entry is not None:
            counts.hits += 1
            self.stats.per_cmd_hits[cmd] += 1
            if is_write:
                if self.config.policy == WritePolicy.STORE_IN:
                    entry[1] = True
                else:
                    self.stats.through_writes += 1
            return True

        counts.misses += 1
        self.stats.per_cmd_misses[cmd] += 1
        if is_write and self.config.policy == WritePolicy.STORE_THROUGH:
            # No write-allocate: the word goes straight to memory.
            self.stats.through_writes += 1
            return False
        fetch = not (is_write
                     and cmd is CacheCmd.WRITE_STACK
                     and self.config.write_stack_no_fetch)
        if fetch:
            self.stats.block_fetches += 1
        self._fill(ways, block, dirty=is_write
                   and self.config.policy == WritePolicy.STORE_IN)
        return False

    def _fill(self, ways: list, block: int, dirty: bool) -> None:
        if len(ways) >= self.config.ways:
            victim = ways.pop()
            if victim[1]:
                self.stats.writebacks += 1
        ways.insert(0, [block, dirty])

    # -- maintenance -----------------------------------------------------------------

    def flush(self) -> int:
        """Write back all dirty blocks; returns how many were dirty."""
        dirty = 0
        for ways in self._sets:
            for entry in ways:
                if entry[1]:
                    dirty += 1
                    entry[1] = False
        self.stats.writebacks += dirty
        return dirty

    def reset(self) -> None:
        self.stats = CacheStats()
        self._sets = [[] for _ in range(self.config.sets)]

    @property
    def resident_blocks(self) -> int:
        return sum(len(ways) for ways in self._sets)
