"""Set-associative cache model — the reproduction of PMMS.

The PSI cache (§2.2): 8K words, two-way set associative, store-in
(write-back), 4-word blocks, 200 ns hit / 800 ns miss, 800 ns 4-word
block transfer, and a specialised *Write-stack* command that skips
block read-in on a write miss (used for pushes to stack tops).

The model is trace-driven: feed it ``(command, address)`` pairs either
online (attach it to a running machine as a memory listener) or offline
from a :class:`~repro.core.memory.TraceRecorder` via
:mod:`repro.tools.pmms`.  It keeps per-area hit/miss counts so Table 5
falls straight out, and event counts the timing model converts to
stall time for Figure 1 and the store-in/store-through ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.memory import AREA_SHIFT, AREAS, Area
from repro.core.micro import CMD_BY_CODE, CacheCmd


class WritePolicy:
    """Write policies: the paper's store-in vs store-through comparison."""

    STORE_IN = "store-in"          # write-back, write-allocate
    STORE_THROUGH = "store-through"  # write-through, no write-allocate


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one simulated cache."""

    capacity_words: int = 8192
    ways: int = 2
    block_words: int = 4
    policy: str = WritePolicy.STORE_IN
    #: the specialised Write-stack command allocates without block read-in
    write_stack_no_fetch: bool = True

    def __post_init__(self) -> None:
        if self.capacity_words % (self.ways * self.block_words):
            raise ValueError("capacity must be a multiple of ways * block size")
        if self.capacity_words < self.ways * self.block_words:
            raise ValueError("capacity smaller than one set")
        if self.policy not in (WritePolicy.STORE_IN, WritePolicy.STORE_THROUGH):
            raise ValueError(f"unknown write policy {self.policy!r}")

    @property
    def sets(self) -> int:
        return self.capacity_words // (self.ways * self.block_words)


@dataclass
class AreaCounts:
    """Hit/miss counts for one memory area."""

    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hit ratio in percent (100.0 when never accessed)."""
        if not self.accesses:
            return 100.0
        return 100.0 * self.hits / self.accesses


class CacheStats:
    """Aggregate statistics of one simulation run."""

    def __init__(self) -> None:
        self.per_area: dict[Area, AreaCounts] = {area: AreaCounts() for area in Area}
        self.per_cmd_hits: dict[CacheCmd, int] = {cmd: 0 for cmd in CacheCmd}
        self.per_cmd_misses: dict[CacheCmd, int] = {cmd: 0 for cmd in CacheCmd}
        self.block_fetches = 0      # block read-ins from main memory
        self.writebacks = 0         # dirty block write-backs (store-in)
        self.through_writes = 0     # individual word writes to memory (store-through)

    @property
    def hits(self) -> int:
        return sum(c.hits for c in self.per_area.values())

    @property
    def misses(self) -> int:
        return sum(c.misses for c in self.per_area.values())

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        if not self.accesses:
            return 100.0
        return 100.0 * self.hits / self.accesses

    def area_hit_ratio(self, area: Area) -> float:
        return self.per_area[area].hit_ratio

    def snapshot(self) -> dict:
        """Plain-data summary of the statistics (JSON-serialisable).

        Used by the observability layer (``psi.cache.*`` metrics) and
        handy for ad-hoc inspection; cumulative totals only — windowed
        hit ratios over time come from
        :class:`repro.obs.session.CacheWindowSampler`, which samples a
        live cache while the run executes.
        """
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
            "block_fetches": self.block_fetches,
            "writebacks": self.writebacks,
            "through_writes": self.through_writes,
            "per_area": {area.name.lower(): {"hits": c.hits, "misses": c.misses}
                         for area, c in self.per_area.items()},
        }


def count_entries(entries) -> tuple[dict, dict]:
    """Per-area and per-command access totals of a decoded trace.

    One pass, shared by every configuration replaying the same trace:
    :meth:`Cache.access_many` turns these totals plus its miss counts
    into full hit/miss statistics without touching a counter on the
    (overwhelmingly more frequent) hit path.
    """
    area_counts = dict.fromkeys(range(len(Area)), 0)
    cmd_counts = dict.fromkeys(CacheCmd, 0)
    shift = AREA_SHIFT
    for cmd, address in entries:
        cmd_counts[cmd] += 1
        area_counts[address >> shift] += 1
    return area_counts, cmd_counts


def count_entries_packed(data) -> tuple[list, list]:
    """Per-area and per-command access totals of a *packed* trace.

    The packed form is :attr:`repro.core.memory.TraceRecorder.data` —
    ``address << 2 | command_code`` ints, never decoded.  Returns flat
    lists indexed by area value and command code, the shape
    :meth:`Cache.access_many_packed` consumes.
    """
    area_counts = [0] * len(AREAS)
    cmd_counts = [0] * len(CMD_BY_CODE)
    shift = AREA_SHIFT + 2
    for packed in data:
        cmd_counts[packed & 3] += 1
        area_counts[packed >> shift] += 1
    return area_counts, cmd_counts


#: Sentinel distinguishing "absent" from a stored False dirty bit.
_ABSENT = object()


class Cache:
    """One simulated cache (usable directly as a memory listener).

    Replacement is true LRU within each set.  Tags are full block
    numbers, so distinct areas never alias.

    Each set is an insertion-ordered dict ``{block_number: dirty}``
    whose key order *is* the LRU order (first = least recent): a hit
    pops and re-inserts its block, eviction pops the first key.  Dict
    sets keep both the per-access listener path (:meth:`access`) and
    the batched replay path (:meth:`access_many`) free of Python-level
    scan loops.
    """

    def __init__(self, config: CacheConfig | None = None):
        self.config = config or CacheConfig()
        self.stats = CacheStats()
        cfg = self.config
        # Each set: {block_number: dirty} in LRU order (first = LRU).
        self._sets: list[dict[int, bool]] = [{} for _ in range(cfg.sets)]
        self._block_shift = (cfg.block_words - 1).bit_length() \
            if cfg.block_words > 1 else 0
        if 1 << self._block_shift != cfg.block_words:
            raise ValueError("block size must be a power of two")
        # Hot-path constants hoisted out of the per-access listener call.
        self._n_sets = cfg.sets
        self._max_ways = cfg.ways
        self._store_in = cfg.policy == WritePolicy.STORE_IN
        self._ws_no_fetch = cfg.write_stack_no_fetch
        self._area_counts = tuple(self.stats.per_area[area] for area in AREAS)

    # -- MemoryListener interface -------------------------------------------------

    def access(self, cmd: CacheCmd, address: int) -> bool:
        """Simulate one access; returns True on hit."""
        block = address >> self._block_shift
        ways = self._sets[block % self._n_sets]
        counts = self._area_counts[address >> AREA_SHIFT]
        stats = self.stats
        dirty = ways.pop(block, _ABSENT)

        is_write = cmd is not CacheCmd.READ
        if dirty is not _ABSENT:
            counts.hits += 1
            stats.per_cmd_hits[cmd] += 1
            if is_write:
                if self._store_in:
                    dirty = True
                else:
                    stats.through_writes += 1
            ways[block] = dirty        # re-insert at the MRU end
            return True

        counts.misses += 1
        stats.per_cmd_misses[cmd] += 1
        if is_write and not self._store_in:
            # No write-allocate: the word goes straight to memory.
            stats.through_writes += 1
            return False
        fetch = not (is_write
                     and cmd is CacheCmd.WRITE_STACK
                     and self._ws_no_fetch)
        if fetch:
            stats.block_fetches += 1
        if len(ways) >= self._max_ways:
            if ways.pop(next(iter(ways))):      # evict the LRU block
                stats.writebacks += 1
        ways[block] = is_write and self._store_in
        return False

    def access_many(self, entries, totals=None) -> None:
        """Replay a whole ``(command, address)`` sequence in one call.

        Semantically identical to calling :meth:`access` per entry, but
        every per-access attribute lookup is hoisted out of the loop and
        — the decisive part — the hot loop counts only *misses*: hits
        fall out as ``totals - misses`` at the end.  ``totals`` is the
        ``(area_counts, cmd_counts)`` pair from :func:`count_entries`;
        pass it in when replaying one trace through many configurations
        (:func:`repro.tools.pmms.simulate_many`) so it is computed once.
        """
        cfg = self.config
        sets = self._sets
        n_sets = cfg.sets
        block_shift = self._block_shift
        max_ways = cfg.ways
        store_in = cfg.policy == WritePolicy.STORE_IN
        ws_no_fetch = cfg.write_stack_no_fetch
        read_cmd = CacheCmd.READ
        ws_cmd = CacheCmd.WRITE_STACK
        area_shift = AREA_SHIFT

        if totals is None:
            entries = list(entries)
            totals = count_entries(entries)
        area_totals, cmd_totals = totals

        stats = self.stats
        absent = _ABSENT
        next_ = next
        iter_ = iter
        area_misses = dict.fromkeys(range(len(Area)), 0)
        cmd_misses = dict.fromkeys(CacheCmd, 0)
        block_fetches = 0
        writebacks = 0

        if store_in:
            for cmd, address in entries:
                block = address >> block_shift
                ways = sets[block % n_sets]
                dirty = ways.pop(block, absent)
                if dirty is not absent:
                    # Hit: re-insert at the MRU end; a write dirties.
                    ways[block] = True if cmd is not read_cmd else dirty
                    continue
                area_misses[address >> area_shift] += 1
                cmd_misses[cmd] += 1
                if not (ws_no_fetch and cmd is ws_cmd):
                    block_fetches += 1
                if len(ways) >= max_ways:
                    if ways.pop(next_(iter_(ways))):
                        writebacks += 1
                # Write-allocate: a write miss installs a dirty block.
                ways[block] = cmd is not read_cmd
            through_writes = 0
        else:
            # Store-through: every write (hit or miss) goes to memory,
            # write misses do not allocate, and blocks are never dirty.
            for cmd, address in entries:
                block = address >> block_shift
                ways = sets[block % n_sets]
                if ways.pop(block, absent) is not absent:
                    ways[block] = False
                    continue
                area_misses[address >> area_shift] += 1
                cmd_misses[cmd] += 1
                if cmd is not read_cmd:
                    continue
                block_fetches += 1
                if len(ways) >= max_ways:
                    ways.pop(next_(iter_(ways)))
                ways[block] = False
            through_writes = sum(n for cmd, n in cmd_totals.items()
                                 if cmd is not read_cmd)

        per_area = stats.per_area
        for area in Area:
            counts = per_area[area]
            misses = area_misses[area]
            counts.hits += area_totals[area] - misses
            counts.misses += misses
        per_cmd_hits = stats.per_cmd_hits
        per_cmd_misses = stats.per_cmd_misses
        for cmd in CacheCmd:
            misses = cmd_misses[cmd]
            per_cmd_hits[cmd] += cmd_totals[cmd] - misses
            per_cmd_misses[cmd] += misses
        stats.block_fetches += block_fetches
        stats.writebacks += writebacks
        stats.through_writes += through_writes

    def access_many_packed(self, data, totals=None) -> None:
        """Replay a packed int trace (``address << 2 | code``) in one call.

        Semantically identical to :meth:`access_many` over the decoded
        entries, but the command objects are never rebuilt: commands are
        compared as the 2-bit codes the trace already carries
        (``CMD_BY_CODE`` order — READ=0, WRITE=1, WRITE_STACK=2).
        ``totals`` is the pair from :func:`count_entries_packed`; pass
        it when replaying one trace through many configurations.
        """
        sets = self._sets
        n_sets = self._n_sets
        block_shift = self._block_shift + 2
        area_shift = AREA_SHIFT + 2
        max_ways = self._max_ways
        store_in = self._store_in
        ws_no_fetch = self._ws_no_fetch

        if totals is None:
            totals = count_entries_packed(data)
        area_totals, cmd_totals = totals

        stats = self.stats
        absent = _ABSENT
        next_ = next
        iter_ = iter
        area_misses = [0] * len(AREAS)
        cmd_misses = [0] * len(CMD_BY_CODE)
        block_fetches = 0
        writebacks = 0

        if store_in:
            for packed in data:
                block = packed >> block_shift
                ways = sets[block % n_sets]
                dirty = ways.pop(block, absent)
                code = packed & 3
                if dirty is not absent:
                    # Hit: re-insert at the MRU end; a write dirties.
                    ways[block] = True if code else dirty
                    continue
                area_misses[packed >> area_shift] += 1
                cmd_misses[code] += 1
                if not (ws_no_fetch and code == 2):
                    block_fetches += 1
                if len(ways) >= max_ways:
                    if ways.pop(next_(iter_(ways))):
                        writebacks += 1
                # Write-allocate: a write miss installs a dirty block.
                ways[block] = code != 0
            through_writes = 0
        else:
            # Store-through: every write (hit or miss) goes to memory,
            # write misses do not allocate, and blocks are never dirty.
            for packed in data:
                block = packed >> block_shift
                ways = sets[block % n_sets]
                if ways.pop(block, absent) is not absent:
                    ways[block] = False
                    continue
                area_misses[packed >> area_shift] += 1
                code = packed & 3
                cmd_misses[code] += 1
                if code:
                    continue
                block_fetches += 1
                if len(ways) >= max_ways:
                    ways.pop(next_(iter_(ways)))
                ways[block] = False
            through_writes = cmd_totals[1] + cmd_totals[2]

        per_area = stats.per_area
        for area in AREAS:
            counts = per_area[area]
            misses = area_misses[area]
            counts.hits += area_totals[area] - misses
            counts.misses += misses
        per_cmd_hits = stats.per_cmd_hits
        per_cmd_misses = stats.per_cmd_misses
        for code, cmd in enumerate(CMD_BY_CODE):
            misses = cmd_misses[code]
            per_cmd_hits[cmd] += cmd_totals[code] - misses
            per_cmd_misses[cmd] += misses
        stats.block_fetches += block_fetches
        stats.writebacks += writebacks
        stats.through_writes += through_writes

    def _fill(self, ways: dict, block: int, dirty: bool) -> None:
        if len(ways) >= self.config.ways:
            if ways.pop(next(iter(ways))):      # evict the LRU block
                self.stats.writebacks += 1
        ways[block] = dirty

    # -- maintenance -----------------------------------------------------------------

    def flush(self) -> int:
        """Write back all dirty blocks; returns how many were dirty."""
        dirty = 0
        for ways in self._sets:
            for block, is_dirty in ways.items():
                if is_dirty:
                    dirty += 1
                    ways[block] = False
        self.stats.writebacks += dirty
        return dirty

    def reset(self) -> None:
        self.stats = CacheStats()
        self._sets = [{} for _ in range(self.config.sets)]
        self._area_counts = tuple(self.stats.per_area[area] for area in AREAS)

    @property
    def resident_blocks(self) -> int:
        return sum(len(ways) for ways in self._sets)
