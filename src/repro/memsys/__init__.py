"""Memory-system simulation: the PMMS cache simulator and timing model."""

from repro.memsys.cache import (AreaCounts, Cache, CacheConfig, CacheStats,
                                WritePolicy, count_entries,
                                count_entries_packed)
from repro.memsys.timing import (
    CYCLE_NS,
    MISS_NS,
    TRANSFER_NS,
    TimingBreakdown,
    execution_time,
    improvement_ratio,
    time_without_cache,
)

#: The production PSI cache configuration (§2.2 of the paper).
PSI_CACHE = CacheConfig()

__all__ = [
    "Cache", "CacheConfig", "CacheStats", "AreaCounts", "WritePolicy",
    "count_entries", "count_entries_packed",
    "PSI_CACHE",
    "TimingBreakdown", "execution_time", "time_without_cache",
    "improvement_ratio", "CYCLE_NS", "MISS_NS", "TRANSFER_NS",
]
