"""Benchmark workloads: every program of the paper's evaluation."""

from repro.workloads.registry import (
    Workload,
    all_workloads,
    get,
    hardware_eval_workloads,
    shared_workloads,
    table1_workloads,
)

__all__ = [
    "Workload", "get", "all_workloads",
    "table1_workloads", "hardware_eval_workloads", "shared_workloads",
]
