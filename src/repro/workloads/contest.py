"""Table 1 rows (1)-(10): the Prolog-contest small benchmarks.

All are "small-scale programs that contain frequent list processing"
(§3.1).  Rows (4)-(6) run a Lisp interpreter written in Prolog — a
meta-interpreter over s-expressions — executing tarai (Takeuchi), fib
and nreverse, as the contest did.
"""

from __future__ import annotations

from repro.workloads.library import LISTS, RANGE, SELECT
from repro.workloads.registry import Workload, register

# ---------------------------------------------------------------------------
# (1) nreverse (30)
# ---------------------------------------------------------------------------

NREVERSE_SOURCE = LISTS + RANGE + """
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).

run_nreverse(R) :- range(1, 30, L), nrev(L, R).
"""

register(Workload(
    name="nreverse",
    paper_id="(1)",
    title="nreverse (30)",
    source=NREVERSE_SOURCE,
    goal="run_nreverse(R)",
    description="Naive reverse of a 30-element list; the classic LIPS "
                "benchmark.  Deterministic list code the DEC compiler "
                "optimises well (indexing removes all choice points).",
    expected={"first_element": 30},
))

# ---------------------------------------------------------------------------
# (2) quick sort (50) — Warren's 50-element data set
# ---------------------------------------------------------------------------

QSORT_SOURCE = """
qsort([], R, R).
qsort([X|L], R, R0) :-
    partition(L, X, L1, L2),
    qsort(L2, R1, R0),
    qsort(L1, R, [X|R1]).

partition([], _, [], []).
partition([X|L], Y, [X|L1], L2) :- X =< Y, !, partition(L, Y, L1, L2).
partition([X|L], Y, L1, [X|L2]) :- partition(L, Y, L1, L2).

data([27,74,17,33,94,18,46,83,65,2,32,53,28,85,99,47,28,82,6,11,
      55,29,39,81,90,37,10,0,66,51,7,21,85,27,31,63,75,4,95,99,
      11,28,61,74,18,92,40,53,59,8]).

run_qsort(R) :- data(L), qsort(L, R, []).
"""

register(Workload(
    name="qsort",
    paper_id="(2)",
    title="quick sort (50)",
    source=QSORT_SOURCE,
    goal="run_qsort(R)",
    description="Warren's quicksort benchmark on the traditional "
                "50-integer data set; deterministic with shallow "
                "backtracking in partition/4.",
    expected={"sorted_length": 50},
))

# ---------------------------------------------------------------------------
# (3) tree traversing
# ---------------------------------------------------------------------------

TREE_SOURCE = LISTS + """
insert(X, leaf, node(leaf, X, leaf)).
insert(X, node(L, Y, R), node(L1, Y, R)) :- X < Y, !, insert(X, L, L1).
insert(X, node(L, Y, R), node(L, Y, R1)) :- insert(X, R, R1).

build([], T, T).
build([X|Xs], T0, T) :- insert(X, T0, T1), build(Xs, T1, T).

inorder(leaf, []).
inorder(node(L, X, R), Out) :-
    inorder(L, LO), inorder(R, RO), append(LO, [X|RO], Out).

mirror(leaf, leaf).
mirror(node(L, X, R), node(RM, X, LM)) :- mirror(L, LM), mirror(R, RM).

tree_data([17,9,25,4,13,21,29,2,6,11,15,19,23,27,31,1,3,5,7,
           10,12,14,16,18,20,22,24,26,28,30,8,32,33,34,35,36]).

run_tree(N) :-
    tree_data(L), build(L, leaf, T),
    mirror(T, M), mirror(M, T2),
    inorder(T2, Flat), length(Flat, N).
"""

register(Workload(
    name="tree",
    paper_id="(3)",
    title="tree traversing",
    source=TREE_SOURCE,
    goal="run_tree(N)",
    description="Binary search tree: insert 36 keys, double mirror, "
                "inorder flatten.  Structure unification on node/3 terms.",
    expected={"N": 36},
))

# ---------------------------------------------------------------------------
# (4)-(6): a Lisp interpreter in Prolog
# ---------------------------------------------------------------------------

LISP_SOURCE = """
% A small Lisp: s-expressions as Prolog lists, environments as
% bind(Name, Value) association lists, nil as the false value.

eval_(X, _, X) :- integer(X), !.
eval_(nil, _, nil) :- !.
eval_(t, _, t) :- !.
eval_(X, Env, V) :- atom(X), !, lookup(X, Env, V).
eval_([quote, X], _, X) :- !.
eval_([if, C, T, E], Env, V) :- !,
    eval_(C, Env, CV),
    ( CV = nil -> eval_(E, Env, V) ; eval_(T, Env, V) ).
eval_([Op|Args], Env, V) :-
    prim(Op), !,
    evlis(Args, Env, Vs),
    apply_prim(Op, Vs, V).
eval_([F|Args], Env, V) :-
    evlis(Args, Env, Vs),
    fun(F, Params, Body),
    bind_args(Params, Vs, NewEnv),
    eval_(Body, NewEnv, V).

evlis([], _, []).
evlis([A|As], Env, [V|Vs]) :- eval_(A, Env, V), evlis(As, Env, Vs).

lookup(X, [bind(X, V)|_], V) :- !.
lookup(X, [_|Env], V) :- lookup(X, Env, V).

bind_args([], [], []).
bind_args([P|Ps], [V|Vs], [bind(P, V)|Env]) :- bind_args(Ps, Vs, Env).

prim(+). prim(-). prim(<). prim(>). prim(sub1).
prim(cons). prim(car). prim(cdr). prim(null).

apply_prim(+, [A, B], V) :- V is A + B.
apply_prim(-, [A, B], V) :- V is A - B.
apply_prim(sub1, [A], V) :- V is A - 1.
apply_prim(<, [A, B], V) :- ( A < B -> V = t ; V = nil ).
apply_prim(>, [A, B], V) :- ( A > B -> V = t ; V = nil ).
apply_prim(cons, [A, B], [A|B]).
apply_prim(car, [[H|_]], H).
apply_prim(cdr, [[_|T]], T).
apply_prim(null, [nil], t) :- !.
apply_prim(null, [[]], t) :- !.
apply_prim(null, [_], nil).

% (defun tarai (x y z) (if (< y x) (tarai (tarai (1- x) y z)
%                                         (tarai (1- y) z x)
%                                         (tarai (1- z) x y)) y))
fun(tarai, [x, y, z],
    [if, [<, y, x],
         [tarai, [tarai, [sub1, x], y, z],
                 [tarai, [sub1, y], z, x],
                 [tarai, [sub1, z], x, y]],
         y]).

% (defun fib (n) (if (< n 2) 1 (+ (fib (- n 1)) (fib (- n 2)))))
fun(fib, [n],
    [if, [<, n, 2],
         1,
         [+, [fib, [-, n, 1]], [fib, [-, n, 2]]]]).

% (defun app (a b) (if (null a) b (cons (car a) (app (cdr a) b))))
% (defun nrev (l) (if (null l) nil (app (nrev (cdr l)) (cons (car l) nil))))
fun(app, [a, b],
    [if, [null, a], b, [cons, [car, a], [app, [cdr, a], b]]]).
fun(nrev, [l],
    [if, [null, l],
         nil,
         [app, [nrev, [cdr, l]], [cons, [car, l], [quote, nil]]]]).

run_tarai(V) :- eval_([tarai, 6, 3, 0], [], V).
run_fib(V) :- eval_([fib, 10], [], V).
run_lisp_nrev(V) :-
    eval_([nrev, [quote, [1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16]]], [], V).
"""

register(Workload(
    name="lisp-tarai",
    paper_id="(4)",
    title="lisp (tarai3)",
    source=LISP_SOURCE,
    goal="run_tarai(V)",
    description="Takeuchi's tarai through the Lisp-in-Prolog "
                "meta-interpreter; heavy meta-call style dispatch on "
                "list structures.",
    expected={"V": 6},
))

register(Workload(
    name="lisp-fib",
    paper_id="(5)",
    title="lisp (fib10)",
    source=LISP_SOURCE,
    goal="run_fib(V)",
    description="Interpreted fib(10).",
    expected={"V": 89},
))

register(Workload(
    name="lisp-nreverse",
    paper_id="(6)",
    title="lisp (nreverse)",
    source=LISP_SOURCE,
    goal="run_lisp_nrev(V)",
    description="Interpreted naive reverse of a 16-element Lisp list.",
    expected={"first": 16},
))

# ---------------------------------------------------------------------------
# (7)/(8): 8 queens
# ---------------------------------------------------------------------------

QUEENS_SOURCE = RANGE + SELECT + """
queens(N, Qs) :- range(1, N, Ns), place(Ns, [], Qs).

place([], Qs, Qs).
place(Unplaced, Safe, Qs) :-
    select(Q, Unplaced, Rest),
    no_attack(Safe, Q, 1),
    place(Rest, [Q|Safe], Qs).

no_attack([], _, _).
no_attack([Y|Ys], Q, D) :-
    Q =\\= Y + D, Q =\\= Y - D,
    D1 is D + 1,
    no_attack(Ys, Q, D1).

queens_all :- queens(8, _), counter_inc(solutions), fail.
queens_all.
"""

register(Workload(
    name="queens-one",
    paper_id="(7)",
    title="8 queens (1)",
    source=QUEENS_SOURCE,
    goal="queens(8, Qs)",
    description="First solution of 8 queens: generate-and-test with "
                "select/3 and arithmetic safety checks.",
))

register(Workload(
    name="queens-all",
    paper_id="(8)",
    title="8 queens (all)",
    source=QUEENS_SOURCE,
    goal="queens_all",
    description="All 92 solutions via a failure-driven loop and a "
                "side-effect counter (the DEC-10-era all-solutions idiom).",
    expected={"solutions": 92},
))

# ---------------------------------------------------------------------------
# (9) reverse function — accumulator ('function-style') reverse
# ---------------------------------------------------------------------------

REVERSE_FUNCTION_SOURCE = RANGE + """
rev([], Acc, Acc).
rev([H|T], Acc, R) :- rev(T, [H|Acc], R).

run_reverse(R) :- range(1, 400, L), rev(L, [], R).
"""

register(Workload(
    name="reverse-function",
    paper_id="(9)",
    title="reverse function",
    source=REVERSE_FUNCTION_SOURCE,
    goal="run_reverse(R)",
    description="Linear accumulator reverse of a 400-element list: a "
                "pure tail-recursive loop.",
    expected={"first_element": 400},
))

# ---------------------------------------------------------------------------
# (10) slow reverse (6)
# ---------------------------------------------------------------------------

SLOW_REVERSE_SOURCE = LISTS + RANGE + """
% Reverse by repeatedly extracting the last element, with a
% deliberately naive double check that re-reverses the tail: an
% exponential specification-style program.
slow_rev([], []).
slow_rev(L, [X|R]) :-
    last_of(L, X),
    butlast(L, L1),
    slow_rev(L1, R),
    slow_rev(R, Check),
    Check = L1.

last_of([X], X) :- !.
last_of([_|T], X) :- last_of(T, X).

butlast([_], []) :- !.
butlast([H|T], [H|T1]) :- butlast(T, T1).

run_slow_reverse(R) :- range(1, 6, L), slow_rev(L, R).
"""

register(Workload(
    name="slow-reverse",
    paper_id="(10)",
    title="slow reverse (6)",
    source=SLOW_REVERSE_SOURCE,
    goal="run_slow_reverse(R)",
    description="Exponential-time reverse of a 6-element list "
                "(each step re-reverses its own result as a check).",
    expected={"first_element": 6},
))
