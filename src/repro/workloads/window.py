"""WINDOW: the PSI operating system's window component (Tables 2-5).

The paper's WINDOW workload is part of SIMPOS, written in ESP (an
object-oriented KL0 dialect).  Its measured characteristics: builtin
calls are 82% of all predicate calls; it "rarely uses the functions of
Prolog" (few structure unifications, little backtracking, cut ~10% of
steps); it is the only program using heap-vector data, raising heap
traffic; and window-2/3 perform process switches for I/O services,
which lowers their cache hit ratios.

This replacement models ESP objects the way ESP compiled them: method
dispatch predicates over class atoms with cuts, instance state in heap
vectors (slots: x, y, width, height, z-order, visible, style, cursor),
border drawing and damage computation via integer arithmetic, and an
event loop of create/move/resize/draw/scroll/overlap operations.

* window-1: one task, 4 windows, no process switching
* window-2: 6 windows, process switches between operation bursts
* window-3: 8 windows, frequent process switches and cross-class calls
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

WINDOW_SOURCE = """
% Slot layout of a window instance vector.
slot(x, 0). slot(y, 1). slot(width, 2). slot(height, 3).
slot(zorder, 4). slot(visible, 5). slot(style, 6). slot(cursor_x, 7).
slot(cursor_y, 8). slot(damage, 9).

% ESP method bodies commit to the (deterministic) slot lookup with a
% cut, as the ESP compiler did for every method selection; slot access
% is the hottest operation in the window system, which is why WINDOW
% spends around a tenth of its steps in the cut routine (Table 2).
get_slot(W, Name, V) :- slot(Name, I), !, vector_ref(W, I, V).
set_slot(W, Name, V) :- slot(Name, I), !, vector_set(W, I, V).

% -------------------------------------------------------------- classes
% ESP-style method dispatch: class atom first, cut after selection.

new(window, W, X, Y) :- !,
    new_vector(W, 10),
    set_slot(W, x, X), set_slot(W, y, Y),
    set_slot(W, width, 40), set_slot(W, height, 12),
    set_slot(W, zorder, 0), set_slot(W, visible, 1),
    set_slot(W, style, 0), set_slot(W, damage, 1).
new(title_window, W, X, Y) :- !,
    new(window, W, X, Y),
    set_slot(W, style, 1).
new(scroll_window, W, X, Y) :-
    new(window, W, X, Y),
    set_slot(W, style, 2), set_slot(W, cursor_x, 0),
    set_slot(W, cursor_y, 0).

% method(Class, Selector, Window, Args...)
send(W, move(DX, DY)) :- !,
    get_slot(W, x, X), get_slot(W, y, Y),
    X1 is X + DX, Y1 is Y + DY,
    clamp(X1, 0, 200, X2), clamp(Y1, 0, 120, Y2),
    set_slot(W, x, X2), set_slot(W, y, Y2),
    set_slot(W, damage, 1).
send(W, resize(DW, DH)) :- !,
    get_slot(W, width, Wd), get_slot(W, height, Ht),
    W1 is Wd + DW, H1 is Ht + DH,
    clamp(W1, 8, 120, W2), clamp(H1, 4, 60, H2),
    set_slot(W, width, W2), set_slot(W, height, H2),
    set_slot(W, damage, 1).
send(W, raise(Z)) :- !,
    set_slot(W, zorder, Z), set_slot(W, damage, 1).
send(W, scroll(N)) :- !,
    get_slot(W, cursor_y, CY),
    get_slot(W, height, H),
    CY1 is CY + N,
    ( CY1 >= H -> set_slot(W, cursor_y, 0) ; set_slot(W, cursor_y, CY1) ),
    set_slot(W, damage, 1).
send(W, draw) :- !,
    get_slot(W, damage, D),
    ( D =:= 0 -> true ; draw_window(W) ).
send(_, _).

% Border drawing: per-edge cell arithmetic, the builtin-heavy kernel.
draw_window(W) :-
    get_slot(W, x, X), get_slot(W, y, Y),
    get_slot(W, width, Wd), get_slot(W, height, Ht),
    X2 is X + Wd - 1, Y2 is Y + Ht - 1,
    draw_hline(X, X2, Y), draw_hline(X, X2, Y2),
    draw_vline(Y, Y2, X), draw_vline(Y, Y2, X2),
    get_slot(W, style, Style),
    draw_decor(Style, W),
    set_slot(W, damage, 0).

draw_hline(X, X2, _) :- X > X2, !.
draw_hline(X, X2, Y) :-
    Cell is Y * 256 + X, Cell >= 0,
    X1 is X + 4,
    draw_hline(X1, X2, Y).

draw_vline(Y, Y2, _) :- Y > Y2, !.
draw_vline(Y, Y2, X) :-
    Cell is Y * 256 + X, Cell >= 0,
    Y1 is Y + 2,
    draw_vline(Y1, Y2, X).

draw_decor(0, _) :- !.
draw_decor(1, W) :- !,
    get_slot(W, x, X), get_slot(W, y, Y),
    T is Y - 1, T >= -1, X >= 0,
    set_slot(W, cursor_x, X).
draw_decor(2, W) :-
    get_slot(W, cursor_y, CY),
    get_slot(W, y, Y),
    P is Y + CY, P >= 0,
    set_slot(W, cursor_x, 0).

clamp(V, Lo, _, Lo) :- V < Lo, !.
clamp(V, _, Hi, Hi) :- V > Hi, !.
clamp(V, _, _, V).

% Overlap test between two windows (pure arithmetic + comparison).
overlaps(W1, W2) :-
    get_slot(W1, x, X1), get_slot(W1, width, Wd1),
    get_slot(W2, x, X2), get_slot(W2, width, Wd2),
    X1 < X2 + Wd2, X2 < X1 + Wd1,
    get_slot(W1, y, Y1), get_slot(W1, height, H1),
    get_slot(W2, y, Y2), get_slot(W2, height, H2),
    Y1 < Y2 + H2, Y2 < Y1 + H1.

damage_overlapping(_, []).
damage_overlapping(W, [V|Vs]) :-
    ( overlaps(W, V) -> set_slot(V, damage, 1) ; true ),
    damage_overlapping(W, Vs).

% ------------------------------------------------------------ event loop

make_windows(0, []) :- !.
make_windows(N, [W|Ws]) :-
    X is (N * 23) mod 160, Y is (N * 17) mod 100,
    Class is N mod 3,
    make_window(Class, W, X, Y),
    N1 is N - 1,
    make_windows(N1, Ws).

make_window(0, W, X, Y) :- !, new(window, W, X, Y).
make_window(1, W, X, Y) :- !, new(title_window, W, X, Y).
make_window(2, W, X, Y) :- new(scroll_window, W, X, Y).

burst(_, [], _) :- !.
burst(0, _, _) :- !.
burst(N, [W|Ws], All) :-
    DX is (N * 7) mod 11 - 5, DY is (N * 5) mod 7 - 3,
    send(W, move(DX, DY)),
    send(W, resize(DY, DX)),
    send(W, scroll(1)),
    damage_overlapping(W, All),
    send(W, draw),
    send(W, raise(N)),
    N1 is N - 1,
    burst(N1, Ws, All).

rounds(0, _, _) :- !.
rounds(K, Ws, Switch) :-
    burst(6, Ws, Ws),
    do_switch(Switch),
    K1 is K - 1,
    rounds(K1, Ws, Switch).

do_switch(0) :- !.
do_switch(_) :- process_switch.

run_window(NWin, Rounds, Switch) :-
    make_windows(NWin, Ws),
    rounds(Rounds, Ws, Switch).

run_window1 :- run_window(4, 14, 0).
run_window2 :- run_window(6, 12, 1).
run_window3 :- run_window(8, 12, 1), run_window(5, 6, 1).
"""

register(Workload(
    name="window-1",
    paper_id="w1",
    title="window-1",
    source=WINDOW_SOURCE,
    goal="run_window1",
    psi_only=True,
    description="Window-system burst without process switching.",
))

register(Workload(
    name="window-2",
    paper_id="w2",
    title="window-2",
    source=WINDOW_SOURCE,
    goal="run_window2",
    psi_only=True,
    description="Window bursts with a process switch per round.",
))

register(Workload(
    name="window-3",
    paper_id="w3",
    title="window-3",
    source=WINDOW_SOURCE,
    goal="run_window3",
    psi_only=True,
    description="Two window tasks with frequent process switches and "
                "cross-class traffic.",
))
