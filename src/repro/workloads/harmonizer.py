"""HARMONIZER: knowledge-based harmony assignment (rows 14-16).

"A music generation system that attaches harmonies to melodies
according to musical knowledge ... uses frequent backtracking" (§3.1).

This replacement harmonises a melody (a list of pitch classes, one per
beat) by choosing a chord for every beat subject to musical rules:

* the melody note must be a chord tone,
* consecutive chords must form an allowed progression,
* no chord may repeat three times in a row,
* phrases must end with an authentic cadence (V -> I),
* voice-leading: consecutive bass notes may not leap more than a
  fifth except at the cadence.

Chords are structured terms ``chord(Name, Degree, notes(A, B, C))``;
the constraint propagation fails late and often, producing exactly the
deep chronological backtracking (and trail traffic) the paper measures
for this program.  harmonizer-1/2/3 harmonise 8-, 12- and 24-note
melodies.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

HARMONIZER_SOURCE = """
% Chord knowledge: chord(Name, Degree, notes(N1, N2, N3)) in C major.
chord(i,  1, notes(0, 4, 7)).
chord(ii, 2, notes(2, 5, 9)).
chord(iii, 3, notes(4, 7, 11)).
chord(iv, 4, notes(5, 9, 0)).
chord(v,  5, notes(7, 11, 2)).
chord(vi, 6, notes(9, 0, 4)).

chord_tone(N, notes(N, _, _)).
chord_tone(N, notes(_, N, _)).
chord_tone(N, notes(_, _, N)).

bass(chord(_, _, notes(B, _, _)), B).

% Allowed progressions (degree pairs); tonal harmony core moves.
prog(1, 1). prog(1, 2). prog(1, 3). prog(1, 4). prog(1, 5). prog(1, 6).
prog(2, 5). prog(2, 3).
prog(3, 6). prog(3, 4).
prog(4, 5). prog(4, 2). prog(4, 1).
prog(5, 1). prog(5, 6).
prog(6, 2). prog(6, 4).

% Bass voice leading: interval of at most a fifth (7 semitones).
smooth(B1, B2) :- D is B1 - B2, D =< 7, D >= -7.

% harmonize(Melody, PrevChord, PrevPrev, Chords)
harmonize([], _, _, []).
harmonize([Note], chord(_, D1, _), _, [C]) :-
    chord(Name, 1, Notes),          % final chord is the tonic
    C = chord(Name, 1, Notes),
    chord_tone(Note, Notes),
    prog(D1, 1),
    D1 =:= 5.                       % authentic cadence: V -> I
harmonize([Note|Rest], Prev, PrevPrev, [C|Cs]) :-
    Rest = [_|_],
    chord(Name, Degree, Notes),
    C = chord(Name, Degree, Notes),
    chord_tone(Note, Notes),
    compatible(Prev, C),
    no_triple(PrevPrev, Prev, C),
    leads(Prev, C),
    harmonize(Rest, C, Prev, Cs).

compatible(start, _).
compatible(chord(_, D1, _), chord(_, D2, _)) :- prog(D1, D2).

no_triple(start, _, _).
no_triple(chord(N1, _, _), chord(N2, _, _), chord(N3, _, _)) :-
    distinct_somewhere(N1, N2, N3).
distinct_somewhere(N1, N2, _) :- N1 \\== N2.
distinct_somewhere(N1, N2, N3) :- N1 == N2, N2 \\== N3.

leads(start, _).
leads(P, C) :-
    bass(P, B1), bass(C, B2), smooth(B1, B2),
    tension(P, C, T), T =< 9.

% A simple tension metric over the root interval and degree distance —
% the kind of numeric musical knowledge the harmonizer applied.
tension(chord(_, D1, notes(B1, _, _)), chord(_, D2, notes(B2, _, _)), T) :-
    Interval is abs(B1 - B2) mod 12,
    Dist is abs(D1 - D2),
    T is Interval // 2 + Dist.

% ----------------------------------------------------- global form rules
% Checked on the completed harmonisation; failures here backtrack into
% the chord assignment (generate and test), which is where this
% program's "frequent backtracking" comes from.

good_form(Cs) :-
    distinct_degrees(Cs, [], Ds),
    length(Ds, ND), ND >= 5,
    count_repeats(Cs, 0, Reps), Reps =< 2,
    length(Cs, Len), MaxLeaps is Len // 3,
    count_leaps(Cs, 0, Leaps), Leaps =< MaxLeaps.

mem(X, [X|_]).
mem(X, [_|T]) :- mem(X, T).

distinct_degrees([], Acc, Acc).
distinct_degrees([chord(_, D, _)|Cs], Acc, Ds) :-
    ( mem(D, Acc) -> distinct_degrees(Cs, Acc, Ds)
    ; distinct_degrees(Cs, [D|Acc], Ds) ).

count_repeats([], N, N).
count_repeats([_], N, N).
count_repeats([chord(N1, _, _), C2|Cs], Acc, R) :-
    C2 = chord(N2, _, _),
    ( N1 == N2 -> Acc1 is Acc + 1 ; Acc1 = Acc ),
    count_repeats([C2|Cs], Acc1, R).

count_leaps([], N, N).
count_leaps([_], N, N).
count_leaps([C1, C2|Cs], Acc, R) :-
    bass(C1, B1), bass(C2, B2),
    D is B1 - B2, A is abs(D),
    ( A >= 5 -> Acc1 is Acc + 1 ; Acc1 = Acc ),
    count_leaps([C2|Cs], Acc1, R).

% Melodies chosen (by an offline search documented in EXPERIMENTS.md)
% so that backtracking volume grows steeply with length, mirroring the
% paper's harmonizer-1/2/3 scaling.
melody1([4, 9, 7, 7, 4, 9, 11, 0]).
melody2([11, 4, 0, 7, 7, 0, 7, 4, 0, 7, 11, 0]).
melody3([9, 9, 4, 11, 7, 4, 9, 9, 0, 4, 9, 11,
         7, 7, 9, 7, 4, 7, 0, 7, 9, 5, 11, 0]).

run_harmonizer1(Cs) :- melody1(M), harmonize(M, start, start, Cs), good_form(Cs).
run_harmonizer2(Cs) :- melody2(M), harmonize(M, start, start, Cs), good_form(Cs).
run_harmonizer3(Cs) :- melody3(M), harmonize(M, start, start, Cs), good_form(Cs).
"""

register(Workload(
    name="harmonizer-1",
    paper_id="(14)",
    title="harmonizer-1",
    source=HARMONIZER_SOURCE,
    goal="run_harmonizer1(Cs)",
    description="Harmonise an 8-note melody under progression, "
                "repetition, voice-leading and cadence constraints.",
))

register(Workload(
    name="harmonizer-2",
    paper_id="(15)",
    title="harmonizer-2",
    source=HARMONIZER_SOURCE,
    goal="run_harmonizer2(Cs)",
    description="Harmonise a 12-note melody (deeper backtracking).",
))

register(Workload(
    name="harmonizer-3",
    paper_id="(16)",
    title="harmonizer-3",
    source=HARMONIZER_SOURCE,
    goal="run_harmonizer3(Cs)",
    description="Harmonise a 24-note melody; the cadence constraint at "
                "the end forces long backtracking chains.",
))
