"""LCP: a left-corner parser written in expert DEC-10 style (rows 17-19).

The paper notes LCP ran *faster on DEC than on PSI* although it
processes structural data, attributing this to its author (F. Pereira)
writing in a style that plays to the DEC-10 compiler's strengths.  This
replacement is written the same way:

* dictionary facts keyed on the word atom in the **first argument**, so
  ``switch_on_constant`` resolves every lexical lookup without a choice
  point;
* rule predicates keyed on the left-corner category atom in the first
  argument;
* flat, shallow structures (plain atoms for categories, one parse-tree
  term) instead of nested feature bundles;
* cuts after deterministic commitments.

lcp-1/2/3 parse 5-, 9- and 14-word sentences deterministically.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

LCP_SOURCE = """
% Dictionary: word atom first, so the compiler indexes on it.
word(the, det).
word(a, det).
word(man, n).
word(men, n).
word(dog, n).
word(girl, n).
word(park, n).
word(hill, n).
word(telescope, n).
word(saw, v).
word(walked, v).
word(liked, v).
word(old, adj).
word(small, adj).
word(in, p).
word(with, p).
word(on, p).

% Left-corner table: corner category first for indexing.
corner(det, np).
corner(np, s).
corner(n, np).
corner(adj, np).
corner(v, vp).
corner(p, pp).

% parse(Goal, Tree, S0, S): left-corner parse with eager commitment.
parse(Goal, Tree, [W|S0], S) :-
    word(W, C), !,
    complete(C, leaf(C, W), Goal, Tree, S0, S).

% complete(Corner, CornerTree, Goal, Tree, S0, S)
% Termination clauses are written per category so the compiler's
% first-argument indexing keeps every call deterministic (the expert
% DEC-10 style the paper attributes to this program's author).
complete(s, T, s, T, S, S).
complete(np, T, np, T, S, S).
complete(n1, T, n1, T, S, S).
complete(vp, T, vp, T, S, S).
complete(pp, T, pp, T, S, S).
complete(det, T, det, T, S, S).
complete(n, T, n, T, S, S).
complete(adj, T, adj, T, S, S).
complete(v, T, v, T, S, S).
complete(p, T, p, T, S, S).
complete(det, T, Goal, Tree, S0, S) :-
    parse(n1, TN, S0, S1),
    complete(np, np(T, TN), Goal, Tree, S1, S).
complete(n, T, Goal, Tree, S0, S) :-
    complete(n1, n1(T), Goal, Tree, S0, S).
complete(adj, T, Goal, Tree, S0, S) :-
    parse(n1, TN, S0, S1),
    complete(n1, n1mod(T, TN), Goal, Tree, S1, S).
complete(np, T, Goal, Tree, S0, S) :-
    maybe_pp(T, T1, S0, S1),
    complete_np(T1, Goal, Tree, S1, S).
complete(v, T, Goal, Tree, S0, S) :-
    parse_np_or_none(TO, S0, S1),
    complete(vp, vp(T, TO), Goal, Tree, S1, S).
complete(vp, T, Goal, Tree, S0, S) :-
    maybe_pp(T, T1, S0, S1),
    complete_vp(T1, Goal, Tree, S1, S).
complete(p, T, Goal, Tree, S0, S) :-
    parse(np, TN, S0, S1),
    complete(pp, pp(T, TN), Goal, Tree, S1, S).

% Deterministic continuations, committed with cut.
complete_np(T, np, T, S, S) :- !.
complete_np(T, Goal, Tree, S0, S) :-
    parse(vp, TV, S0, S1),
    complete(s, s(T, TV), Goal, Tree, S1, S).

complete_vp(T, vp, T, S, S) :- !.
complete_vp(T, s, T, S, S).

% Eager PP attachment (low attachment, committed).
maybe_pp(T, Tree, [W|S0], S) :-
    word(W, p), !,
    parse(np, TN, S0, S1),
    maybe_pp(ppmod(T, pp(leaf(p, W), TN)), Tree, S1, S).
maybe_pp(T, T, S, S).

parse_np_or_none(TO, [W|S0], S) :-
    word(W, C), noun_starter(C), !,
    word(W, C1),
    complete_obj(C1, W, TO, S0, S).
parse_np_or_none(none, S, S).

complete_obj(C, W, TO, S0, S) :- complete(C, leaf(C, W), np, TO, S0, S).

noun_starter(det).
noun_starter(n).
noun_starter(adj).

sentence1([the, man, walked]).
sentence2([the, old, man, saw, a, dog, in, the, park]).
sentence3([the, girl, saw, the, small, dog, on, the, hill,
           with, a, telescope, in, the, park]).

run_lcp1(T) :- sentence1(S), parse(s, T, S, []).
run_lcp2(T) :- sentence2(S), parse(s, T, S, []).
run_lcp3(T) :- sentence3(S), parse(s, T, S, []).

% Hardware-evaluation driver: repeated parsing of all sentences.
lcp_session(0) :- !.
lcp_session(N) :-
    sentence1(S1), parse(s, _, S1, []),
    sentence2(S2), parse(s, _, S2, []),
    sentence3(S3), parse(s, _, S3, []),
    N1 is N - 1,
    lcp_session(N1).
run_lcp_eval :- lcp_session(20).
"""

register(Workload(
    name="lcp-eval",
    paper_id="lcp-hw",
    title="LCP (hardware evaluation)",
    source=LCP_SOURCE,
    goal="run_lcp_eval",
    description="Sustained parsing session for the Tables 3-5 "
                "measurements.",
))

register(Workload(
    name="lcp-1",
    paper_id="(17)",
    title="LCP-1",
    source=LCP_SOURCE,
    goal="run_lcp1(T)",
    description="Deterministic left-corner parse, 3 words.",
))

register(Workload(
    name="lcp-2",
    paper_id="(18)",
    title="LCP-2",
    source=LCP_SOURCE,
    goal="run_lcp2(T)",
    description="Deterministic left-corner parse, 9 words.",
))

register(Workload(
    name="lcp-3",
    paper_id="(19)",
    title="LCP-3",
    source=LCP_SOURCE,
    goal="run_lcp3(T)",
    description="Deterministic left-corner parse, 14 words.",
))
