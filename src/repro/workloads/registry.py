"""Workload registry: every benchmark program of the paper.

Table 1 rows (1)-(10) are the Prolog-contest programs, (11)-(19) the
practical-scale applications; WINDOW and 8-PUZZLE additionally feed the
hardware evaluation (Tables 2-7).  The original sources are lost; each
entry documents the dynamic behaviour the paper attributes to its
program, and the replacement is written to exhibit that behaviour (see
DESIGN.md's substitution table).

Problem sizes are scaled so each run stays within a few million PSI
microsteps (the simulator is Python, the PSI was hardware); Table 1
compares *ratios*, which scaling preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Workload:
    """One runnable benchmark."""

    name: str                     # registry key, e.g. "bup-2"
    paper_id: str                 # e.g. "(12)" from Table 1
    title: str                    # the paper's program name
    source: str                   # Prolog program text
    goal: str                     # the measured goal
    all_solutions: bool = False   # drive the goal to exhaustion
    setup_goals: tuple[str, ...] = ()
    description: str = ""
    psi_only: bool = False        # uses KL0-only builtins (vectors, switch)
    expected: dict = field(default_factory=dict)  # result checks


_REGISTRY: dict[str, Workload] = {}


def register(workload: Workload) -> Workload:
    if workload.name in _REGISTRY:
        raise ValueError(f"duplicate workload {workload.name!r}")
    _REGISTRY[workload.name] = workload
    return workload


def get(name: str) -> Workload:
    _ensure_loaded()
    return _REGISTRY[name]


def all_workloads() -> dict[str, Workload]:
    _ensure_loaded()
    return dict(_REGISTRY)


def table1_workloads() -> list[Workload]:
    """The 19 rows of Table 1, in order."""
    _ensure_loaded()
    names = [
        "nreverse", "qsort", "tree", "lisp-tarai", "lisp-fib",
        "lisp-nreverse", "queens-one", "queens-all", "reverse-function",
        "slow-reverse",
        "bup-1", "bup-2", "bup-3",
        "harmonizer-1", "harmonizer-2", "harmonizer-3",
        "lcp-1", "lcp-2", "lcp-3",
    ]
    return [_REGISTRY[name] for name in names]


def hardware_eval_workloads() -> list[Workload]:
    """The programs of Tables 3-5: window-1..3, 8 puzzle, BUP,
    harmonizer, LCP."""
    _ensure_loaded()
    names = ["window-1", "window-2", "window-3", "puzzle8",
             "bup-eval", "harmonizer-2", "lcp-eval"]
    return [_REGISTRY[name] for name in names]


def shared_workloads() -> list[Workload]:
    """Every registered workload both engines can run (not ``psi_only``),
    in registration order — the differential crosscheck's domain."""
    _ensure_loaded()
    return [w for w in _REGISTRY.values() if not w.psi_only]


_loaded = False


def _ensure_loaded() -> None:
    global _loaded
    if _loaded:
        return
    _loaded = True
    # Importing the modules registers their workloads.
    from repro.workloads import bup, contest, harmonizer, lcp, puzzle8, window  # noqa: F401
