"""Shared Prolog library snippets included by workload sources."""

LISTS = """
append([], L, L).
append([H|T], L, [H|R]) :- append(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
"""

BETWEEN = """
between(L, H, L) :- L =< H.
between(L, H, X) :- L < H, L1 is L + 1, between(L1, H, X).
"""

RANGE = """
range(N, N, [N]) :- !.
range(M, N, [M|Ns]) :- M < N, M1 is M + 1, range(M1, N, Ns).
"""

SELECT = """
select(X, [X|Xs], Xs).
select(X, [Y|Ys], [Y|Zs]) :- select(X, Ys, Zs).
"""
