"""BUP: a bottom-up parser for natural language (Table 1 rows 11-13).

The original BUP (Matsumoto et al., ICOT) compiled context-free rules
into Prolog clauses for bottom-up left-corner parsing.  This program
uses the same scheme: a ``goal/4`` driver takes the next word's
category as a left corner and climbs rules via per-category left-corner
clauses, with termination clauses ``cat(cat, ...)``.

Matching the paper's characterisation: category terms carry nested
feature structures — agreement ``agr(Person, Number)``, and a semantics
term assembled during parsing; lexical entries carry a wide
``features/9`` structure ("BUP treats structures larger than eight
elements and nested structures"), and PP-attachment ambiguity causes
the frequent backtracking and re-unification the paper measures
(unify = 43% of interpreter steps, Table 2).

bup-1/2/3 parse sentences of 5, 9 and 13 words; bup-3 additionally
enumerates every parse of an ambiguous sentence.
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

BUP_SOURCE = """
% ---------------------------------------------------------------- lexicon
% dict(Category, Sentence, Rest): consume one word.
% Lexical entries carry a 9-element feature structure.

% Every lexical lookup inspects the word and its feature bundle with
% builtins (type check, feature-structure arity check, slot access),
% the way the original BUP's dictionary interface worked; this is a
% large part of BUP's 65% builtin call rate (§3.2).
dict(det(Agr, Sem), [W|S], S) :- atom(W), det_word(W, Agr, Sem, F), wf(F).
dict(n(Agr, Sem), [W|S], S) :- atom(W), noun_word(W, Agr, Sem, F), wf(F).
dict(v(Agr, Sem), [W|S], S) :- atom(W), verb_word(W, Agr, Sem, F), wf(F).
dict(adj(Sem), [W|S], S) :- atom(W), adj_word(W, Sem, F), wf(F).
dict(p(Sem), [W|S], S) :- atom(W), prep_word(W, Sem, F), wf(F).

% Feature-bundle well-formedness: inspect the structure with builtins.
wf(F) :-
    nonvar(F),
    functor(F, features, N),
    N >= 9,
    arg(5, F, Valence),
    integer(Valence),
    Valence >= 0,
    Valence =< 2.

det_word(the, agr(3, _), def,
    features(det, def, any, weak, 0, closed, article, common, core)).
det_word(a, agr(3, sg), indef,
    features(det, indef, sg, weak, 0, closed, article, common, core)).

noun_word(man, agr(3, sg), man,
    features(n, count, sg, animate, 1, open, entity, human, core)).
noun_word(men, agr(3, pl), man,
    features(n, count, pl, animate, 1, open, entity, human, core)).
noun_word(telescope, agr(3, sg), telescope,
    features(n, count, sg, inanimate, 1, open, entity, instrument, core)).
noun_word(park, agr(3, sg), park,
    features(n, count, sg, inanimate, 1, open, entity, location, core)).
noun_word(dog, agr(3, sg), dog,
    features(n, count, sg, animate, 1, open, entity, animal, core)).
noun_word(girl, agr(3, sg), girl,
    features(n, count, sg, animate, 1, open, entity, human, core)).
noun_word(hill, agr(3, sg), hill,
    features(n, count, sg, inanimate, 1, open, entity, location, core)).

verb_word(saw, agr(_, _), see,
    features(v, trans, past, active, 2, open, event, perception, core)).
verb_word(walked, agr(_, _), walk,
    features(v, intrans, past, active, 1, open, event, motion, core)).
verb_word(liked, agr(_, _), like,
    features(v, trans, past, active, 2, open, event, attitude, core)).

adj_word(old, old, features(adj, qual, _, _, 1, open, property, age, core)).
adj_word(small, small,
    features(adj, qual, _, _, 1, open, property, size, core)).

prep_word(in, in, features(p, loc, _, _, 2, closed, relation, place, core)).
prep_word(with, with,
    features(p, instr, _, _, 2, closed, relation, comit, core)).
prep_word(on, on, features(p, loc, _, _, 2, closed, relation, place, core)).

% ------------------------------------------------------- link relation
% link(LeftCornerCat, GoalCat): can LC begin a phrase of the goal?

link(det(_, _), np(_, _)).
link(det(_, _), s(_)).
link(np(_, _), np(_, _)).
link(np(_, _), s(_)).
link(n(_, _), n1(_, _)).
link(n(_, _), np(_, _)).
link(n(_, _), s(_)).
link(adj(_), n1(_, _)).
link(adj(_), np(_, _)).
link(adj(_), s(_)).
link(v(_, _), vp(_, _)).
link(p(_), pp(_)).
link(X, X).

% ---------------------------------------------------------- BUP driver
% goal(GoalCat, S0, S): parse a phrase of GoalCat from S0 leaving S.
% The driver keeps arithmetic bookkeeping (rule-application counter via
% a length computation on the remaining sentence), as the original used
% for its chart statistics.

goal(G, S0, S) :-
    dict(C, S0, S1),
    length(S1, Remaining),
    Remaining >= 0,
    link(C, G),
    lc(C, G, S1, S).

% lc(Category, Goal, S0, S): climb from a completed left corner.
% Termination: the completed category is the goal itself.
lc(s(Sem), s(Sem), S, S).
lc(np(Agr, Sem), np(Agr, Sem), S, S).
lc(n1(Agr, Sem), n1(Agr, Sem), S, S).
lc(n(Agr, Sem), n(Agr, Sem), S, S).
lc(vp(Agr, Sem), vp(Agr, Sem), S, S).
lc(pp(Sem), pp(Sem), S, S).
lc(det(Agr, Sem), det(Agr, Sem), S, S).
lc(v(Agr, Sem), v(Agr, Sem), S, S).
lc(adj(Sem), adj(Sem), S, S).
lc(p(Sem), p(Sem), S, S).

% Rule s -> np vp        (agreement checked between subject and verb)
lc(np(Agr, SemNP), G, S0, S) :-
    goal(vp(Agr, SemVP), S0, S1),
    lc(s(sent(SemNP, SemVP)), G, S1, S).

% Rule np -> det n1
lc(det(Agr, SemD), G, S0, S) :-
    goal(n1(Agr, SemN), S0, S1),
    lc(np(Agr, np(SemD, SemN)), G, S1, S).

% Rule n1 -> n
lc(n(Agr, SemN), G, S, S1) :-
    lc(n1(Agr, nbar(SemN, [])), G, S, S1).

% Rule n1 -> adj n1
lc(adj(SemA), G, S0, S) :-
    goal(n1(Agr, nbar(SemN, Mods)), S0, S1),
    lc(n1(Agr, nbar(SemN, [SemA|Mods])), G, S1, S).

% Rule np -> np pp      (attachment ambiguity source)
lc(np(Agr, SemNP), G, S0, S) :-
    goal(pp(SemPP), S0, S1),
    lc(np(Agr, npmod(SemNP, SemPP)), G, S1, S).

% Rule vp -> v np
lc(v(Agr, SemV), G, S0, S) :-
    goal(np(_, SemO), S0, S1),
    lc(vp(Agr, vp(SemV, SemO)), G, S1, S).

% Rule vp -> v
lc(v(Agr, SemV), G, S, S1) :-
    lc(vp(Agr, vp(SemV, nil)), G, S, S1).

% Rule vp -> vp pp
lc(vp(Agr, SemVP), G, S0, S) :-
    goal(pp(SemPP), S0, S1),
    lc(vp(Agr, vpmod(SemVP, SemPP)), G, S1, S).

% Rule pp -> p np
lc(p(SemP), G, S0, S) :-
    goal(np(_, SemNP), S0, S1),
    lc(pp(pp(SemP, SemNP)), G, S1, S).

% ------------------------------------------------------------- drivers

parse(Sentence, Sem) :- goal(s(Sem), Sentence, []).

sentence1([the, man, walked]).
sentence2([the, old, man, saw, a, dog, in, the, park]).
sentence3([the, girl, saw, the, small, dog, on, the, hill,
           with, a, telescope]).

run_bup1(Sem) :- sentence1(S), parse(S, Sem).
run_bup2(Sem) :- sentence2(S), parse(S, Sem).
run_bup3 :- sentence3(S), parse(S, _), counter_inc(parses), fail.
run_bup3.

% Hardware-evaluation driver: a sustained parsing session (all parses
% of every sentence, several rounds) so cache statistics reflect steady
% state rather than cold-start compulsory misses.
parse_all(S) :- parse(S, _), fail.
parse_all(_).
bup_session(0) :- !.
bup_session(N) :-
    sentence1(S1), parse_all(S1),
    sentence2(S2), parse_all(S2),
    sentence3(S3), parse_all(S3),
    N1 is N - 1,
    bup_session(N1).
run_bup_eval :- bup_session(6).
"""

register(Workload(
    name="bup-1",
    paper_id="(11)",
    title="BUP-1",
    source=BUP_SOURCE,
    goal="run_bup1(Sem)",
    description="Bottom-up left-corner parse of a 3-word sentence.",
))

register(Workload(
    name="bup-2",
    paper_id="(12)",
    title="BUP-2",
    source=BUP_SOURCE,
    goal="run_bup2(Sem)",
    description="Parse of a 9-word sentence with one PP attachment.",
))

register(Workload(
    name="bup-eval",
    paper_id="bup-hw",
    title="BUP (hardware evaluation)",
    source=BUP_SOURCE,
    goal="run_bup_eval",
    description="Sustained parsing session for the Tables 3-5 "
                "measurements (steady-state cache behaviour).",
))

register(Workload(
    name="bup-3",
    paper_id="(13)",
    title="BUP-3",
    source=BUP_SOURCE,
    goal="run_bup3",
    all_solutions=False,
    description="All parses of an ambiguous 12-word sentence with two "
                "prepositional phrases (failure-driven enumeration).",
    expected={"parses_min": 2},
))
