"""8 PUZZLE: sliding-tile search (Tables 2-5).

"8 PUZZLE is a search problem and contains much backtracking" (§3.2).
Table 2 shows its profile: no cut at all, heavy builtin and
argument-fetch work (arithmetic move generation and term surgery),
modest unification, high trail activity.

This replacement runs iterative-deepening depth-first search over the
3x3 sliding puzzle.  The board is a 9-argument structure ``b/9``
accessed with ``arg/3`` and rebuilt with ``=../2`` — builtin term
surgery rather than list pattern matching — and the blank position is
tracked numerically with arithmetic legality checks, which is what
gives the program its measured builtin/get_arg-dominated profile.  The
program deliberately contains no cut and no if-then-else (which would
compile to cuts).
"""

from __future__ import annotations

from repro.workloads.registry import Workload, register

PUZZLE8_SOURCE = """
% Moves of the blank: delta and a legality test on the square index.
% 0 1 2
% 3 4 5
% 6 7 8

delta(up, -3).
delta(down, 3).
delta(left, -1).
delta(right, 1).

legal(up, B) :- B >= 3.
legal(down, B) :- B =< 5.
legal(left, B) :- B mod 3 >= 1.
legal(right, B) :- B mod 3 =< 1.

% A move must not immediately undo the previous one.
opposite(up, down). opposite(down, up).
opposite(left, right). opposite(right, left).

allowed(M, start) :- delta(M, _).
allowed(M, Last) :- delta(M, _), opposite(M, Op), Op \\== Last.

% move(Board, Blank, M, Board1, Blank1)
move(Board, Blank, M, Board1, Blank1) :-
    legal(M, Blank),
    delta(M, D),
    Blank1 is Blank + D,
    I is Blank + 1,
    J is Blank1 + 1,
    arg(J, Board, Tile),
    Board =.. [F|Cells],
    rebuild(Cells, 1, I, Tile, J, Cells1),
    Board1 =.. [F|Cells1].

% rebuild(Cells, K, I, Tile, J, Cells1): square I receives the moved
% tile, square J becomes the blank, every other square is copied.
rebuild([], _, _, _, _, []).
rebuild([C|Cs], K, I, Tile, J, [C1|Cs1]) :-
    cell_value(K, I, Tile, J, C, C1),
    K1 is K + 1,
    rebuild(Cs, K1, I, Tile, J, Cs1).

cell_value(K, K, Tile, _, _, Tile).
cell_value(K, I, _, K, _, 0) :- K =\\= I.
cell_value(K, I, _, J, C, C) :- K =\\= I, K =\\= J.

goal_board(b(0, 1, 2, 3, 4, 5, 6, 7, 8)).

% Depth-limited DFS; backtracks over move choices.
dfs(Board, _, _, _, []) :- goal_board(Board).
dfs(Board, Blank, Last, Depth, [M|Ms]) :-
    Depth > 0,
    allowed(M, Last),
    move(Board, Blank, M, Board1, Blank1),
    Depth1 is Depth - 1,
    dfs(Board1, Blank1, M, Depth1, Ms).

% Iterative deepening.
ids(Board, Blank, Depth, _, Moves) :- dfs(Board, Blank, start, Depth, Moves).
ids(Board, Blank, Depth, Max, Moves) :-
    Depth < Max,
    Depth1 is Depth + 1,
    ids(Board, Blank, Depth1, Max, Moves).

% Start state: exactly 7 moves from the goal (verified by BFS).
start_board(b(3, 1, 2, 7, 6, 5, 4, 0, 8), 7).

run_puzzle(Moves) :-
    start_board(Board, Blank),
    ids(Board, Blank, 1, 8, Moves).
"""

register(Workload(
    name="puzzle8",
    paper_id="p8",
    title="8 puzzle",
    source=PUZZLE8_SOURCE,
    goal="run_puzzle(Moves)",
    description="Iterative-deepening search over the 8 puzzle; "
                "arithmetic move generation and builtin term surgery, "
                "no cut.",
))
