"""Canonical answer representation for differential cross-validation.

The two engines decode solution bindings to the same source-level term
AST (:mod:`repro.prolog.terms`), with one engine-specific wart: unbound
variables decode to machine-address names (``_A<addr>`` on the PSI,
``_B<idx>`` on the WAM), which can never agree across engines.  A
*canonical answer* erases that:

* variables are renamed ``_G0, _G1, ...`` in order of first appearance
  while walking the bindings in sorted variable-name order (aliasing
  between bindings is preserved — two goal variables bound to the same
  unbound cell keep the same canonical name);
* every binding is rendered with the deterministic quoted writer
  (:func:`repro.prolog.writer.term_to_string`);
* an answer is the sorted tuple of ``(variable, rendered value)``
  pairs, and a result set is the sorted tuple of answers — a multiset
  insensitive to solution order.

Canonical answers are plain strings/tuples: picklable (they ride in
the persistent run cache), hashable, and directly comparable across
engines.  :func:`check_expected` interprets a workload's ``expected``
dict against them plus the run's counters.
"""

from __future__ import annotations

from repro.prolog.reader import parse_term
from repro.prolog.terms import Atom, Struct, Term, Var, is_cons, is_nil
from repro.prolog.writer import term_to_string

#: One canonical answer: sorted ``((var, rendered), ...)`` pairs.
Answer = tuple[tuple[str, str], ...]


def canonical_term(term: Term, renaming: dict[str, Var]) -> Term:
    """Rewrite ``term`` with variables renamed in first-appearance order.

    ``renaming`` maps original (engine-specific) variable names to the
    shared canonical :class:`Var` objects; passing the same dict across
    the bindings of one answer preserves aliasing.
    """
    if isinstance(term, Var):
        canonical = renaming.get(term.name)
        if canonical is None:
            canonical = Var(f"_G{len(renaming)}")
            renaming[term.name] = canonical
        return canonical
    if isinstance(term, Struct):
        return Struct(term.functor,
                      tuple(canonical_term(arg, renaming)
                            for arg in term.args))
    return term


def canonical_answer(bindings: dict[str, Term]) -> Answer:
    """Canonicalize one solution's bindings.

    Bindings are visited in sorted variable-name order so the ``_G``
    numbering is deterministic regardless of decode order.
    """
    renaming: dict[str, Var] = {}
    return tuple((name, term_to_string(canonical_term(bindings[name],
                                                      renaming)))
                 for name in sorted(bindings))


def answer_multiset(answers) -> tuple[Answer, ...]:
    """Order-insensitive form of a solution sequence (sorted tuple)."""
    return tuple(sorted(answers))


def render_answer(answer: Answer) -> str:
    """Human-readable one-line form of a canonical answer."""
    if not answer:
        return "true"
    return ", ".join(f"{name} = {value}" for name, value in answer)


# ---------------------------------------------------------------------------
# Expected-result validation
# ---------------------------------------------------------------------------


def _parse_answer_terms(answer: Answer) -> dict[str, Term]:
    return {name: parse_term(value) for name, value in answer}


def _list_elements(term: Term) -> list[Term] | None:
    """Elements of a proper list term, or None if not a proper list."""
    items: list[Term] = []
    while is_cons(term):
        assert isinstance(term, Struct)
        items.append(term.args[0])
        term = term.args[1]
    if not (isinstance(term, Atom) and is_nil(term)):
        return None
    return items


def _sole_binding(bindings: dict[str, Term], key: str) -> Term:
    if len(bindings) != 1:
        raise ValueError(
            f"expected key {key!r} needs a single-variable goal, "
            f"got bindings for {sorted(bindings)}")
    return next(iter(bindings.values()))


def check_expected(expected: dict, *, answers: tuple[Answer, ...],
                   counters: dict[str, int]) -> list[str]:
    """Validate a workload's ``expected`` dict against a run's results.

    Returns a list of human-readable problems (empty = all checks
    pass).  Key semantics, matching how the workloads declare them:

    * ``first_element`` / ``first`` — the goal's sole binding is a list
      whose first element equals the value;
    * ``sorted_length`` — the sole binding is a nondecreasing integer
      list of exactly that length;
    * ``solutions`` — the run's ``solutions`` counter (failure-driven
      all-solutions loops count through ``counter_inc``) equals the
      value;
    * ``parses_min`` — the ``parses`` counter is at least the value;
    * any other key names a goal variable whose binding must render to
      the value.
    """
    problems: list[str] = []
    if not expected:
        return problems
    if not answers:
        return [f"no answers captured but expected {expected!r}"]
    bindings = _parse_answer_terms(answers[0])

    for key, value in expected.items():
        try:
            if key in ("first_element", "first"):
                # Head of the first cons cell; deliberately tolerant of
                # the tail terminator (the Lisp-interpreter workloads
                # build nil-terminated chains rather than []-lists).
                term = _sole_binding(bindings, key)
                if not is_cons(term):
                    problems.append(f"{key}: binding is not a list, "
                                    f"wanted first element {value}")
                else:
                    assert isinstance(term, Struct)
                    head = term.args[0]
                    if head != value:
                        problems.append(
                            f"{key}: got {term_to_string(head)}, "
                            f"wanted {value}")
            elif key == "sorted_length":
                items = _list_elements(_sole_binding(bindings, key))
                if items is None:
                    problems.append(f"{key}: binding is not a proper list")
                elif len(items) != value:
                    problems.append(
                        f"{key}: length {len(items)}, wanted {value}")
                elif any(not isinstance(item, int) for item in items):
                    problems.append(f"{key}: non-integer elements")
                elif any(a > b for a, b in zip(items, items[1:])):
                    problems.append(f"{key}: list is not sorted")
            elif key == "solutions":
                got = counters.get("solutions")
                if got != value:
                    problems.append(
                        f"solutions counter: got {got}, wanted {value}")
            elif key == "parses_min":
                got = counters.get("parses", 0)
                if got < value:
                    problems.append(
                        f"parses counter: got {got}, wanted >= {value}")
            elif key in bindings:
                got = term_to_string(bindings[key])
                want = (term_to_string(value)
                        if not isinstance(value, (int, str)) else str(value))
                if got != want:
                    problems.append(f"{key}: got {got}, wanted {want}")
            else:
                problems.append(f"unknown expected key {key!r} "
                                f"(bindings: {sorted(bindings)})")
        except ValueError as exc:
            problems.append(str(exc))
    return problems
