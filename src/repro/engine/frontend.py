"""Shared compilation frontend: parse → control expansion → clause IR.

Both execution backends used to re-derive clause structure from
:mod:`repro.prolog` independently — the PSI code compiler
(:mod:`repro.core.code`) and the WAM clause compiler
(:mod:`repro.baseline.compiler`) each classified goals against their
own builtin table and walked terms for variable occurrence data.  This
module is now the single owner of that analysis:

* :class:`Frontend` — parses source text, expands control constructs
  (``;``, ``->``, ``\\+``, ``not/1``) through one long-lived
  :class:`~repro.prolog.transform.ControlExpander`, and normalizes
  every resulting flat clause;
* :class:`NormalizedClause` — the normalized clause IR: the flat head
  and body terms, every body goal classified
  (:class:`NormalizedGoal`: user call / builtin / cut, with meta-call
  marking), and the clause's variable classification
  (:class:`VarInfo`: void / local / global with slot assignments).

The variable classification is the PSI's (nested occurrences are
global, single top-level occurrences are void, the rest local) — moved
here *verbatim* from ``repro.core.code`` because the PSI emission
stream is pinned bit-for-bit by golden digests
(``tests/core/test_stream_equivalence.py``).  The WAM backend consumes
the goal classification and keeps its own permanent-variable (Y slot)
chunk analysis, which is register allocation, not language semantics.

Goal classification is parameterized by the backend's builtin indicator
set: the engines differ by the documented KL0-only allowlist
(:data:`repro.engine.builtins_spec.KL0_ONLY`), and a ``new_vector/2``
goal must compile to a builtin call on the PSI but to an (undefined)
user call on the baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.errors import PrologSyntaxError
from repro.prolog.reader import parse_program
from repro.prolog.terms import Atom, Struct, Term, Var
from repro.prolog.transform import ControlExpander, FlatClause, TransformResult

GOAL_CALL = "call"
GOAL_BUILTIN = "builtin"
GOAL_CUT = "cut"

#: Slot value marking a void variable (single, top-level occurrence).
VOID_SLOT = -2


# ---------------------------------------------------------------------------
# Variable classification (moved verbatim from repro.core.code)
# ---------------------------------------------------------------------------


@dataclass
class VarInfo:
    """Occurrence data and classification for one clause variable."""

    occurrences: int = 0
    nested: bool = False          # occurs inside a compound term
    slot: int = -1                # local/global slot, or VOID_SLOT
    is_global: bool = False
    seen: bool = False            # first-occurrence marking during build


def scan_term(term: Term, info: dict[str, VarInfo], nested: bool) -> None:
    """Accumulate variable occurrence data over one argument term."""
    if isinstance(term, Var):
        entry = info.setdefault(term.name, VarInfo())
        entry.occurrences += 1
        entry.nested = entry.nested or nested
    elif isinstance(term, Struct):
        for arg in term.args:
            scan_term(arg, info, True)


# ---------------------------------------------------------------------------
# Goal classification
# ---------------------------------------------------------------------------


class NormalizedGoal:
    """One classified body goal of a normalized clause."""

    __slots__ = ("term", "kind", "name", "arity", "args", "is_meta")

    def __init__(self, term: Term, kind: str, name: str, arity: int,
                 args: tuple[Term, ...], is_meta: bool):
        self.term = term
        self.kind = kind          # GOAL_CALL | GOAL_BUILTIN | GOAL_CUT
        self.name = name
        self.arity = arity
        self.args = args
        self.is_meta = is_meta    # variable goal or call/1

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)

    def __repr__(self) -> str:
        meta = ", meta" if self.is_meta else ""
        return f"NormalizedGoal({self.kind}: {self.name}/{self.arity}{meta})"


def classify_goal(goal: Term,
                  builtin_indicators: frozenset[tuple[str, int]]
                  ) -> NormalizedGoal:
    """Classify one (control-expanded) body goal.

    A variable goal is a meta-call — it classifies as the builtin
    ``call/1`` with the variable itself as the argument, exactly as
    both backends have always treated it.
    """
    if isinstance(goal, Var):
        return NormalizedGoal(goal, GOAL_BUILTIN, "call", 1, (goal,), True)
    if isinstance(goal, Atom):
        name, args = goal.name, ()
    elif isinstance(goal, Struct):
        name, args = goal.functor, goal.args
    else:
        raise PrologSyntaxError(f"invalid goal: {goal!r}")
    if name == "!" and not args:
        return NormalizedGoal(goal, GOAL_CUT, "!", 0, (), False)
    arity = len(args)
    is_meta = (name, arity) == ("call", 1)
    kind = GOAL_BUILTIN if (name, arity) in builtin_indicators else GOAL_CALL
    return NormalizedGoal(goal, kind, name, arity, tuple(args), is_meta)


# ---------------------------------------------------------------------------
# Normalized clause IR
# ---------------------------------------------------------------------------


class NormalizedClause:
    """A flat clause with goal and variable classification attached.

    ``var_info`` preserves first-occurrence insertion order (head
    arguments, then body goal arguments, left to right) — the PSI
    backend's slot numbering and serialisation order depend on it.
    The ``seen`` flags inside are mutated by the PSI code builder, so a
    NormalizedClause is compiled by exactly one backend (each machine
    owns its own :class:`Frontend`).
    """

    __slots__ = ("head", "functor", "arity", "head_args", "goals",
                 "var_info", "nlocals", "nglobals",
                 "local_names", "global_names")

    def __init__(self, head: Term, functor: str, arity: int,
                 head_args: tuple[Term, ...],
                 goals: tuple[NormalizedGoal, ...],
                 var_info: dict[str, VarInfo],
                 local_names: tuple[str, ...],
                 global_names: tuple[str, ...]):
        self.head = head
        self.functor = functor
        self.arity = arity
        self.head_args = head_args
        self.goals = goals
        self.var_info = var_info
        self.local_names = local_names
        self.global_names = global_names
        self.nlocals = len(local_names)
        self.nglobals = len(global_names)

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.functor, self.arity)

    def __repr__(self) -> str:
        return (f"NormalizedClause({self.functor}/{self.arity}, "
                f"{len(self.goals)} goals, "
                f"{self.nlocals}L/{self.nglobals}G)")


def normalize_flat(flat: FlatClause,
                   builtin_indicators: frozenset[tuple[str, int]]
                   ) -> NormalizedClause:
    """Normalize one flat clause: classify goals and variables.

    The classification rule (the PSI's): variables nested inside
    compound terms are global (their cells live on the global stack);
    single top-level occurrences are void; the rest are local frame
    slots.  Slot numbers follow first-occurrence order.
    """
    functor, arity = flat.indicator
    head_args = flat.head_args
    info: dict[str, VarInfo] = {}
    for arg in head_args:
        scan_term(arg, info, False)
    goals: list[NormalizedGoal] = []
    for goal in flat.body:
        normalized = classify_goal(goal, builtin_indicators)
        goals.append(normalized)
        for arg in normalized.args:
            scan_term(arg, info, False)

    locals_: list[str] = []
    globals_: list[str] = []
    for name, entry in info.items():
        if entry.occurrences == 1 and not entry.nested:
            entry.slot = VOID_SLOT
        elif entry.nested:
            entry.is_global = True
            entry.slot = len(globals_)
            globals_.append(name)
        else:
            entry.slot = len(locals_)
            locals_.append(name)

    return NormalizedClause(flat.head, functor, arity, head_args,
                            tuple(goals), info,
                            tuple(locals_), tuple(globals_))


@dataclass
class ClauseBatch:
    """Everything one source clause normalizes into.

    ``clauses`` contains the main clause plus any auxiliary clauses its
    control constructs expanded into; ``auxiliary`` names the auxiliary
    predicates created (``$dsj``/``$not``/``$ite`` helpers).
    """

    main: NormalizedClause
    clauses: list[NormalizedClause]
    auxiliary: set[tuple[str, int]]


@dataclass
class ProgramBatch:
    """A whole program's normalized clauses, in load order."""

    clauses: list[NormalizedClause]
    auxiliary: set[tuple[str, int]]


class Frontend:
    """The shared parse + expand + normalize pipeline for one backend.

    One frontend lives as long as its machine so auxiliary predicate
    names stay unique across incremental loads (assert/consult), same
    as the control expander it wraps.
    """

    def __init__(self, builtin_indicators: Iterable[tuple[str, int]]):
        self.builtin_indicators = frozenset(builtin_indicators)
        self._expander = ControlExpander()

    def expand_clause(self, term: Term) -> ClauseBatch:
        """Expand + normalize one source clause term."""
        result = TransformResult()
        main_flat = self._expander.expand_clause(term, result)
        main: NormalizedClause | None = None
        clauses: list[NormalizedClause] = []
        for flat in result.clauses:
            normalized = normalize_flat(flat, self.builtin_indicators)
            clauses.append(normalized)
            if flat is main_flat:
                main = normalized
        assert main is not None
        return ClauseBatch(main, clauses, result.auxiliary)

    def expand_terms(self, terms: Iterable[Term]) -> ProgramBatch:
        """Expand + normalize a sequence of parsed clause terms."""
        result = TransformResult()
        for term in terms:
            self._expander.expand_clause(term, result)
        clauses = [normalize_flat(flat, self.builtin_indicators)
                   for flat in result.clauses]
        return ProgramBatch(clauses, result.auxiliary)

    def normalize_text(self, text: str) -> ProgramBatch:
        """Parse program source text and normalize every clause."""
        return self.expand_terms(parse_program(text))
