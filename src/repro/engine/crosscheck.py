"""Differential answer cross-validation between the two engines.

The PSI interpreter and the DEC baseline are independent
implementations of the same language; any workload whose canonical
answers differ between them has found a bug in one of the machines (or
a semantic divergence between the dispatch tables).  This module runs
every shared (non-``psi_only``) workload on both engines through the
cache-aware :mod:`repro.eval.runner` paths and compares

* the canonical answer multisets (order-insensitive; variable names
  canonicalized, so engine-internal naming cannot cause noise), and
* the side-effect counter snapshots (how failure-driven all-solutions
  loops report their result counts).

Exceptions raised while running a workload on either engine are folded
into the report as divergences rather than aborting the sweep — a
crash on one engine *is* a differential finding.

``psi-eval crosscheck`` (see :mod:`repro.eval.cli`) renders the report
and exits non-zero on any divergence; ``--report FILE`` writes the
machine-readable form for CI artifact upload.

``--specs A,B`` generalizes the oracle to any registered run-spec pair
(:mod:`repro.eval.specs`): ``psi-eval crosscheck --specs
faithful,indexed`` validates the clause-indexed configuration against
the faithful one (subsuming the older ``--indexed`` flag, which is
kept as an alias), and a future ``--specs faithful,unfused`` or any
pair involving a freshly registered spec works the same way.  When
both specs run the PSI engine the default scope widens to the *full*
registry (``psi_only`` workloads included) and, on shared workloads,
the pair is additionally checked against the independent DEC baseline.
This is the semantic gate for every optimisation spec: a configuration
may only ever change *how* answers are found, never the answer
multiset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.answers import Answer, answer_multiset, render_answer


@dataclass
class WorkloadCheck:
    """Outcome of crosschecking one workload."""

    name: str
    ok: bool
    detail: str = ""
    psi_answers: tuple[Answer, ...] = ()
    baseline_answers: tuple[Answer, ...] = ()

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
            "psi_answers": [list(map(list, a)) for a in self.psi_answers],
            "baseline_answers": [list(map(list, a))
                                 for a in self.baseline_answers],
        }


@dataclass
class CrosscheckReport:
    """Every workload's verdict plus convenience accessors."""

    checks: list[WorkloadCheck] = field(default_factory=list)
    #: True when the sweep was cut short (Ctrl-C): the report covers
    #: only the workloads checked so far and must not read as a clean
    #: full-sweep pass.
    interrupted: bool = False
    #: Workloads the interrupted sweep never reached.
    skipped: list[str] = field(default_factory=list)
    #: True when the sweep compared the clause-indexed PSI
    #: configuration against the faithful one (``--indexed`` or
    #: ``--specs faithful,indexed``).
    indexed: bool = False
    #: The run-spec pair the sweep compared (names), e.g.
    #: ``("faithful", "baseline")`` or ``("faithful", "indexed")``.
    specs: tuple[str, str] | None = None

    @property
    def divergences(self) -> list[WorkloadCheck]:
        return [c for c in self.checks if not c.ok]

    @property
    def divergent_names(self) -> list[str]:
        return [c.name for c in self.divergences]

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.interrupted

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "indexed": self.indexed,
            "specs": list(self.specs) if self.specs else None,
            "checked": len(self.checks),
            "divergences": len(self.divergences),
            "divergent": self.divergent_names,
            "interrupted": self.interrupted,
            "skipped": list(self.skipped),
            "workloads": [c.to_dict() for c in self.checks],
        }

    def render(self) -> str:
        if self.indexed:
            header = ("differential crosscheck: indexed PSI vs faithful PSI "
                      "(and DEC baseline)")
        elif self.specs and set(self.specs) != {"faithful", "baseline"}:
            header = (f"differential crosscheck: {self.specs[0]} vs "
                      f"{self.specs[1]} run specs")
        else:
            header = "differential crosscheck: PSI vs DEC baseline"
        lines = [header, ""]
        width = max((len(c.name) for c in self.checks), default=4)
        for check in self.checks:
            status = "ok" if check.ok else "DIVERGED"
            line = f"  {check.name:<{width}}  {status}"
            if check.detail:
                line += f"  ({check.detail})"
            lines.append(line)
        lines.append("")
        if self.interrupted:
            lines.append(f"sweep INTERRUPTED after {len(self.checks)} "
                         f"workload(s); {len(self.skipped)} never ran"
                         + (f" ({', '.join(self.skipped)})"
                            if self.skipped else ""))
        if not self.divergences:
            if not self.interrupted:
                lines.append(f"{len(self.checks)} workload(s) checked, "
                             "zero answer divergences")
        else:
            lines.append(f"{len(self.divergences)} of {len(self.checks)} "
                         "workload(s) DIVERGED between the engines")
            lines.append("")
            lines.append("replay a divergence microstep-by-microstep with:")
            for name in self.divergent_names:
                lines.append(f"  psi-eval debug --diff {name}")
        return "\n".join(lines)


def _diff_answers(psi: tuple[Answer, ...],
                  baseline: tuple[Answer, ...],
                  psi_label: str = "PSI",
                  other_label: str = "baseline") -> str:
    psi_set = answer_multiset(psi)
    base_set = answer_multiset(baseline)
    if psi_set == base_set:
        return ""
    only_psi = [a for a in psi_set if a not in base_set]
    only_base = [a for a in base_set if a not in psi_set]
    parts = []
    if len(psi_set) != len(base_set):
        parts.append(f"{len(psi_set)} {psi_label} answer(s) vs "
                     f"{len(base_set)} {other_label} answer(s)")
    if only_psi:
        parts.append(f"{psi_label} only: "
                     + " | ".join(render_answer(a) for a in only_psi[:3]))
    if only_base:
        parts.append(f"{other_label} only: "
                     + " | ".join(render_answer(a) for a in only_base[:3]))
    return "; ".join(parts)


def _diff_counters(psi: dict[str, int], baseline: dict[str, int],
                   psi_label: str = "psi",
                   other_label: str = "baseline") -> str:
    if psi == baseline:
        return ""
    keys = sorted(set(psi) | set(baseline))
    diffs = [f"{key}: {psi_label}={psi.get(key)} "
             f"{other_label}={baseline.get(key)}"
             for key in keys if psi.get(key) != baseline.get(key)]
    return "counters differ — " + ", ".join(diffs)


def crosscheck_workload(name: str) -> WorkloadCheck:
    """Run one workload on both engines and compare canonical results."""
    from repro.eval.runner import run_engine

    try:
        psi = run_engine(name, engine="psi", record_trace=False)
    except Exception as exc:
        return WorkloadCheck(name, ok=False,
                             detail=f"PSI run failed: {exc}")
    try:
        baseline = run_engine(name, engine="baseline")
    except Exception as exc:
        return WorkloadCheck(name, ok=False,
                             detail=f"baseline run failed: {exc}")

    detail = _diff_answers(psi.answers, baseline.answers)
    if not detail:
        detail = _diff_counters(psi.counters, baseline.counters)
    return WorkloadCheck(name, ok=not detail, detail=detail,
                         psi_answers=psi.answers,
                         baseline_answers=baseline.answers)


def crosscheck_workload_indexed(name: str) -> WorkloadCheck:
    """Compare the clause-indexed PSI run against the faithful one
    (and, on shared workloads, against the DEC baseline too).

    ``psi_answers`` carries the *indexed* run's answers and
    ``baseline_answers`` the faithful reference's — same slots, same
    report plumbing, different oracle.
    """
    from repro.eval.runner import run_engine
    from repro.workloads import get

    try:
        indexed = run_engine(name, engine="psi-indexed", record_trace=False)
    except Exception as exc:
        return WorkloadCheck(name, ok=False,
                             detail=f"indexed PSI run failed: {exc}")
    try:
        faithful = run_engine(name, engine="psi", record_trace=False)
    except Exception as exc:
        return WorkloadCheck(name, ok=False,
                             detail=f"faithful PSI run failed: {exc}")

    detail = _diff_answers(indexed.answers, faithful.answers,
                           psi_label="indexed", other_label="faithful")
    if not detail:
        detail = _diff_counters(indexed.counters, faithful.counters,
                                psi_label="indexed", other_label="faithful")
    if not detail and not get(name).psi_only:
        try:
            baseline = run_engine(name, engine="baseline")
        except Exception as exc:
            return WorkloadCheck(name, ok=False,
                                 detail=f"baseline run failed: {exc}")
        detail = _diff_answers(indexed.answers, baseline.answers,
                               psi_label="indexed")
        if not detail:
            detail = _diff_counters(indexed.counters, baseline.counters,
                                    psi_label="indexed")
    return WorkloadCheck(name, ok=not detail, detail=detail,
                         psi_answers=indexed.answers,
                         baseline_answers=faithful.answers)


def crosscheck_workload_specs(name: str, spec_a, spec_b) -> WorkloadCheck:
    """Run one workload under two run specs and compare canonical results.

    When both specs run the PSI engine and the workload is shared, the
    first spec's results are additionally compared against the DEC
    baseline — an independent implementation is a stronger oracle than
    two configurations of one machine.  ``psi_answers`` carries the
    first spec's answers, ``baseline_answers`` the second's (same
    report plumbing as the fixed checkers, different oracle).
    """
    from repro.eval.runner import run_spec
    from repro.eval.specs import get_spec
    from repro.workloads import get

    spec_a, spec_b = get_spec(spec_a), get_spec(spec_b)
    try:
        first = run_spec(name, spec_a, record_trace=False)
    except Exception as exc:
        return WorkloadCheck(name, ok=False,
                             detail=f"{spec_a.name} run failed: {exc}")
    try:
        second = run_spec(name, spec_b, record_trace=False)
    except Exception as exc:
        return WorkloadCheck(name, ok=False,
                             detail=f"{spec_b.name} run failed: {exc}")

    detail = _diff_answers(first.answers, second.answers,
                           psi_label=spec_a.name, other_label=spec_b.name)
    if not detail:
        detail = _diff_counters(first.counters, second.counters,
                                psi_label=spec_a.name,
                                other_label=spec_b.name)
    if (not detail and spec_a.engine == "psi" and spec_b.engine == "psi"
            and not get(name).psi_only):
        try:
            baseline = run_spec(name, "baseline")
        except Exception as exc:
            return WorkloadCheck(name, ok=False,
                                 detail=f"baseline run failed: {exc}")
        detail = _diff_answers(first.answers, baseline.answers,
                               psi_label=spec_a.name)
        if not detail:
            detail = _diff_counters(first.counters, baseline.counters,
                                    psi_label=spec_a.name)
    return WorkloadCheck(name, ok=not detail, detail=detail,
                         psi_answers=first.answers,
                         baseline_answers=second.answers)


def crosscheck(names=None, indexed: bool = False,
               specs=None) -> CrosscheckReport:
    """Crosscheck ``names`` (default: every shared workload).

    ``specs`` names any registered run-spec pair to compare (``("faithful",
    "indexed")``, ``("faithful", "unfused")``, …); when both specs run
    the PSI engine the default scope is the *full* registry
    (``psi_only`` workloads included) and the pair is additionally
    checked against the DEC baseline on shared workloads.
    ``indexed=True`` is the legacy spelling of ``specs=("indexed",
    "faithful")``.

    A ``KeyboardInterrupt`` mid-sweep does not discard the verdicts
    already gathered: the partial report comes back flagged
    ``interrupted`` (and therefore not ``ok``), listing the workloads
    never reached — so ``psi-eval crosscheck --report`` still writes
    the divergences found so far when a long sweep is cut short.
    """
    from repro.workloads import all_workloads, shared_workloads

    if specs is not None:
        from repro.eval.specs import get_spec

        spec_a, spec_b = (get_spec(spec) for spec in specs)
        psi_pair = spec_a.engine == "psi" and spec_b.engine == "psi"
        if names is None:
            names = (sorted(all_workloads()) if psi_pair
                     else [w.name for w in shared_workloads()])

        def check_one(name):
            return crosscheck_workload_specs(name, spec_a, spec_b)

        report = CrosscheckReport(
            indexed={spec_a.name, spec_b.name} == {"faithful", "indexed"},
            specs=(spec_a.name, spec_b.name))
    else:
        if names is None:
            names = (sorted(all_workloads()) if indexed
                     else [w.name for w in shared_workloads()])
        check_one = (crosscheck_workload_indexed if indexed
                     else crosscheck_workload)
        report = CrosscheckReport(
            indexed=indexed,
            specs=(("indexed", "faithful") if indexed
                   else ("faithful", "baseline")))
    names = list(names)
    for index, name in enumerate(names):
        try:
            report.checks.append(check_one(name))
        except KeyboardInterrupt:
            report.interrupted = True
            report.skipped = names[index:]
            break
    return report
