"""Backend-neutral first-argument clause indexing.

The DEC-10 compiler's "close indexing method" (paper §3.1) dispatches a
call on the *principal functor of the first argument* so clauses whose
heads cannot possibly unify are never tried.  The WAM baseline already
compiles a ``switch_on_term`` dispatch; the PSI interpreter historically
tried clauses strictly in source order.  This module is the shared
analysis both backends consume:

* :func:`first_arg_descriptor` classifies a clause head's first argument
  into the four-way taxonomy ``var / const / list / struct`` with a
  backend-neutral key (Python ``int`` for integers, the atom *name* for
  atoms — ``"[]"`` for nil on both engines — and ``(name, arity)`` for
  structures).
* :class:`ClauseIndex` holds the per-predicate dispatch structure: hash
  buckets on constants and functor/arity, a list-cell chain, and the
  var-clause chain, supporting O(1) incremental ``add_clause`` (the
  ``assert`` path) and in-place ``remove_clause`` (the ``retract``
  path) — no full recompilation of the predicate.

Supersequence guarantee
-----------------------

``select(kind, key)`` returns clause ids **in source order**, and the
returned sequence is always a *subsequence* of source order that
contains every clause the call could unify with (equivalently: source
order is a supersequence of the selection, and the clauses dropped are
exactly ones whose first argument is a non-var term with a different
principal functor).  Therefore running the selected clauses in the
returned order produces the same answer sequence as running all clauses
in source order — first-argument indexing is solution-preserving, not
just solution-set-preserving.  The invariant is maintained eagerly:

* every bucket list is kept sorted by clause id (ids are assigned in
  source order and renumbered downward on removal, so id order *is*
  source order);
* a var-headed clause is appended to *every* bucket (and to the default
  var chain new buckets are seeded from), because an unbound or any
  concrete first argument can unify with it.

``tests/engine/test_index.py`` checks the guarantee property-style
against a brute-force oracle.
"""

from __future__ import annotations

from repro.prolog.terms import Atom, Struct, Term, Var, is_cons

#: First-argument taxonomy (shared with :mod:`repro.baseline.compiler`,
#: which re-exports these names for backward compatibility).
KIND_VAR = "var"
KIND_CONST = "const"
KIND_LIST = "list"
KIND_STRUCT = "struct"


def first_arg_descriptor(head: Term) -> tuple[str, object]:
    """Classify ``head``'s first argument for indexing.

    Returns ``(kind, key)`` where ``kind`` is one of the ``KIND_*``
    constants and ``key`` is the backend-neutral dispatch key —
    ``None`` for var/list, the integer value or atom name for
    constants (nil is the name ``"[]"``), ``(functor, arity)`` for
    structures.  A head that is not a structure (an atom: arity-0
    predicate) indexes as var: there is no argument to dispatch on.
    """
    if not isinstance(head, Struct):
        return KIND_VAR, None
    arg = head.args[0]
    if isinstance(arg, Var):
        return KIND_VAR, None
    if isinstance(arg, int):
        return KIND_CONST, arg
    if isinstance(arg, Atom):
        return KIND_CONST, arg.name
    if is_cons(arg):
        return KIND_LIST, None
    assert isinstance(arg, Struct)
    return KIND_STRUCT, (arg.functor, arg.arity)


class ClauseIndex:
    """First-argument dispatch structure for one predicate.

    Clause ids are dense ``0..n-1`` positions into the owner's clause
    list, in source order.  The index is *eagerly merged*: each const
    and struct bucket already interleaves the var-headed clauses at
    their source positions, so ``select`` is a single dict probe with
    no merge step on the call path.
    """

    __slots__ = ("kinds", "keys", "var_ids", "list_ids",
                 "const_buckets", "struct_buckets")

    def __init__(self) -> None:
        #: Per-clause classification, position-aligned with the owner's
        #: clause list.
        self.kinds: list[str] = []
        self.keys: list[object] = []
        #: Clauses whose first argument is a variable (match anything).
        self.var_ids: list[int] = []
        #: Var clauses ∪ list-cell clauses, merged in source order.
        self.list_ids: list[int] = []
        #: key -> var clauses ∪ same-key clauses, merged in source order.
        self.const_buckets: dict[object, list[int]] = {}
        #: (functor, arity) -> same, for structure first arguments.
        self.struct_buckets: dict[tuple, list[int]] = {}

    def __len__(self) -> int:
        return len(self.kinds)

    # -- building / maintenance -------------------------------------------

    def add_clause(self, kind: str, key: object) -> int:
        """Append a clause with the given descriptor; return its id.

        Ids are appended in increasing order, so every bucket list
        stays sorted by construction — this is what makes ``select``
        order-preserving without ever sorting.
        """
        cid = len(self.kinds)
        self.kinds.append(kind)
        self.keys.append(key)
        if kind == KIND_VAR:
            # A var head can unify with any caller argument: it belongs
            # to every chain, current and future (new buckets are
            # seeded from var_ids below).
            self.var_ids.append(cid)
            self.list_ids.append(cid)
            for bucket in self.const_buckets.values():
                bucket.append(cid)
            for bucket in self.struct_buckets.values():
                bucket.append(cid)
        elif kind == KIND_CONST:
            bucket = self.const_buckets.get(key)
            if bucket is None:
                self.const_buckets[key] = bucket = list(self.var_ids)
            bucket.append(cid)
        elif kind == KIND_LIST:
            self.list_ids.append(cid)
        else:
            assert kind == KIND_STRUCT
            bucket = self.struct_buckets.get(key)
            if bucket is None:
                self.struct_buckets[key] = bucket = list(self.var_ids)
            bucket.append(cid)
        return cid

    def remove_clause(self, cid: int) -> None:
        """Remove clause ``cid`` and renumber higher ids down by one.

        Callers pop position ``cid`` from their own clause list in the
        same operation, keeping ids position-aligned.  The patch is in
        place — no bucket is rebuilt, only filtered and shifted.
        """
        self.kinds.pop(cid)
        self.keys.pop(cid)
        self.var_ids = _drop_and_shift(self.var_ids, cid)
        self.list_ids = _drop_and_shift(self.list_ids, cid)
        for key, bucket in list(self.const_buckets.items()):
            patched = _drop_and_shift(bucket, cid)
            if patched:
                self.const_buckets[key] = patched
            else:
                del self.const_buckets[key]
        for key, bucket in list(self.struct_buckets.items()):
            patched = _drop_and_shift(bucket, cid)
            if patched:
                self.struct_buckets[key] = patched
            else:
                del self.struct_buckets[key]

    # -- call-path selection ----------------------------------------------

    def select(self, kind: str, key: object) -> list[int]:
        """Candidate clause ids for a call whose (dereferenced) first
        argument has the given descriptor, in source order.

        ``kind == KIND_VAR`` means the caller's argument is unbound:
        every clause is a candidate.  A const/struct key with no bucket
        falls back to the var chain (only var-headed clauses can match
        an unknown constant).
        """
        if kind == KIND_VAR:
            return list(range(len(self.kinds)))
        if kind == KIND_CONST:
            bucket = self.const_buckets.get(key)
            return bucket if bucket is not None else self.var_ids
        if kind == KIND_LIST:
            return self.list_ids
        assert kind == KIND_STRUCT
        bucket = self.struct_buckets.get(key)
        return bucket if bucket is not None else self.var_ids

    def selects_exactly(self, kind: str, key: object) -> bool:
        """True when ``select`` would hit a dedicated chain (an index
        *hit*); False for the unbound-argument full scan."""
        return kind != KIND_VAR

    # -- verification helpers ---------------------------------------------

    def reference_select(self, kind: str, key: object) -> list[int]:
        """Brute-force oracle for ``select``: linear scan of the clause
        descriptors applying the unification-possibility rule directly.
        Used by tests to check the supersequence guarantee."""
        out = []
        for cid, (ckind, ckey) in enumerate(zip(self.kinds, self.keys)):
            if ckind == KIND_VAR or kind == KIND_VAR:
                out.append(cid)
            elif ckind == kind and ckey == key:
                out.append(cid)
        return out


def _drop_and_shift(ids: list[int], cid: int) -> list[int]:
    """Copy ``ids`` without ``cid``, decrementing every id above it."""
    return [i - 1 if i > cid else i for i in ids if i != cid]


def build_index(descriptors) -> ClauseIndex:
    """Build a :class:`ClauseIndex` from an iterable of ``(kind, key)``
    descriptors in source order (one per clause)."""
    index = ClauseIndex()
    for kind, key in descriptors:
        index.add_clause(kind, key)
    return index
