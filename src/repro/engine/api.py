"""The engine protocol and the two adapters implementing it.

:class:`AbstractEngine` is the surface the differential oracle (and any
other engine-agnostic tooling) programs against: load a program, solve
a goal to a tuple of canonical answers, read counters/output, get a
uniform stats facade.  :class:`PSIEngine` and :class:`WAMEngine` adapt
:class:`~repro.core.machine.PSIMachine` and
:class:`~repro.baseline.machine.WAMMachine` to it.

Answer capture is *billing-free*: both adapters go through the
machines' existing solver decode paths (``decode_word`` on the PSI,
``decode_cell`` on the WAM), which peek at memory without charging
microinstructions or cost-model events.  Solving through an adapter
therefore leaves the machine's accounting exactly as a direct
``machine.solve`` would — the golden-digest and eval-report contracts
see no difference.

The facade's ``work``/``work_unit`` pair deliberately does not try to
make the machines' effort commensurable (microsteps and WAM
instructions are different currencies); it exists so engine-agnostic
code can *report* effort without knowing which engine ran.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.engine.answers import Answer, canonical_answer

#: Names :func:`create_engine` accepts, in preference order.
#: ``psi-indexed`` is the PSI machine under
#: :class:`~repro.core.machine.MachineConfig` ``indexed=True`` —
#: first-argument clause selection, same answer semantics.
ENGINE_NAMES = ("psi", "psi-indexed", "baseline")


@dataclass(frozen=True)
class EngineStatsFacade:
    """Uniform view of one engine's accounting after a run.

    ``work`` is the engine's native effort measure and ``work_unit``
    names it (``"microsteps"`` on the PSI, ``"instructions"`` on the
    WAM); ``time_ms`` is each cost model's modelled time, comparable
    across engines the same way Table 1 compares them.
    """

    engine: str
    inferences: int
    time_ms: float
    work: int
    work_unit: str


@runtime_checkable
class AbstractEngine(Protocol):
    """What both execution engines look like to engine-agnostic code."""

    name: str

    def load(self, text: str) -> None:
        """Parse and load program source text."""
        ...

    def solve(self, goal: str, *,
              max_solutions: int | None = 1) -> tuple[Answer, ...]:
        """Run ``goal``; return captured canonical answers in order.

        ``max_solutions=None`` enumerates every solution (bounded by
        the solvers' internal limit); the default captures only the
        first, matching how the workload registry runs its goals.
        """
        ...

    @property
    def counters(self) -> dict[str, int]:
        """The program-visible counters (``counter_inc`` et al.)."""
        ...

    @property
    def output(self) -> list[str]:
        """Collected ``write``/``print`` output."""
        ...

    def stats_facade(self) -> EngineStatsFacade:
        """Uniform accounting snapshot for the work done so far."""
        ...


class PSIEngine:
    """:class:`AbstractEngine` over the PSI microcode interpreter."""

    name = "psi"

    def __init__(self, machine=None):
        from repro.core.machine import PSIMachine
        self.machine = machine if machine is not None else PSIMachine()

    def load(self, text: str) -> None:
        self.machine.consult(text)

    def solve(self, goal: str, *,
              max_solutions: int | None = 1) -> tuple[Answer, ...]:
        solver = self.machine.solve(goal)
        solutions = (solver.all() if max_solutions is None
                     else solver.all(max_solutions))
        return tuple(canonical_answer(s.bindings) for s in solutions)

    @property
    def counters(self) -> dict[str, int]:
        return self.machine.counters

    @property
    def output(self) -> list[str]:
        return self.machine.output

    def stats_facade(self) -> EngineStatsFacade:
        from repro.memsys import execution_time
        stats = self.machine.stats
        timing = execution_time(stats.total_steps, None)
        return EngineStatsFacade(engine=self.name,
                                 inferences=stats.inferences,
                                 time_ms=timing.total_ms,
                                 work=stats.total_steps,
                                 work_unit="microsteps")


class WAMEngine:
    """:class:`AbstractEngine` over the DEC-10 WAM baseline."""

    name = "baseline"

    def __init__(self, machine=None):
        from repro.baseline.machine import WAMMachine
        self.machine = machine if machine is not None else WAMMachine()

    def load(self, text: str) -> None:
        self.machine.consult(text)

    def solve(self, goal: str, *,
              max_solutions: int | None = 1) -> tuple[Answer, ...]:
        solver = self.machine.solve(goal)
        solutions = (solver.all() if max_solutions is None
                     else solver.all(max_solutions))
        return tuple(canonical_answer(s.bindings) for s in solutions)

    @property
    def counters(self) -> dict[str, int]:
        return self.machine.counters

    @property
    def output(self) -> list[str]:
        return self.machine.output

    def stats_facade(self) -> EngineStatsFacade:
        stats = self.machine.stats
        return EngineStatsFacade(engine=self.name,
                                 inferences=stats.inferences,
                                 time_ms=stats.time_ms,
                                 work=stats.total_instructions,
                                 work_unit="instructions")


def create_engine(name: str) -> AbstractEngine:
    """Instantiate a fresh engine by name.

    Accepts the legacy engine vocabulary (``psi``, ``psi-indexed``,
    ``baseline`` and their aliases) plus any registered run-spec name
    (:mod:`repro.eval.specs`): a PSI-engine spec yields a
    :class:`PSIEngine` whose machine is built from the spec's
    configuration, a baseline-engine spec a :class:`WAMEngine`.  The
    legacy names keep their historical ``engine.name`` values
    (``test_api`` pins them); spec-built engines are named after the
    spec.
    """
    if name == "psi":
        return PSIEngine()
    if name in ("psi-indexed", "indexed"):
        from repro.core.machine import MachineConfig, PSIMachine
        engine = PSIEngine(PSIMachine(config=MachineConfig(indexed=True)))
        engine.name = "psi-indexed"
        return engine
    if name in ("baseline", "dec", "wam"):
        return WAMEngine()
    # Fall through to the run-spec registry (imported lazily: eval sits
    # above engine in the layer diagram, so the dependency must not be
    # at module scope).
    try:
        from repro.eval.specs import get_spec
        spec = get_spec(name)
    except Exception:
        raise ValueError(f"unknown engine {name!r}; expected one of "
                         f"{ENGINE_NAMES} or a registered run spec") from None
    if spec.engine == "baseline":
        return WAMEngine()
    import dataclasses

    from repro.core.machine import PSIMachine

    # Copy the config: MachineConfig is a plain mutable dataclass and
    # the registry's instance must not be aliased by a live machine.
    engine = PSIEngine(PSIMachine(
        config=dataclasses.replace(spec.machine_config)))
    engine.name = spec.name
    return engine
