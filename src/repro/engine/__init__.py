"""Shared engine layer: everything both execution engines plug into.

The PSI interpreter (:mod:`repro.core`) and the DEC-10 WAM baseline
(:mod:`repro.baseline`) are deliberately parallel implementations — the
paper's Table 1 compares them — but the *language* they execute must be
identical or the comparison is meaningless.  This package owns the
parts that define that language once:

* :mod:`repro.engine.frontend` — parse + control expansion + the
  normalized clause IR (goal classification, variable classification)
  both backends compile from;
* :mod:`repro.engine.builtins_spec` — the single builtin specification
  table (name, arity, determinism) and the shared pure arithmetic
  evaluation both dispatch tables derive from;
* :mod:`repro.engine.answers` — canonical answer representation
  (deterministic term rendering, answer multisets) making solutions
  from both engines comparable;
* :mod:`repro.engine.api` — the :class:`AbstractEngine` protocol and
  the :class:`PSIEngine`/:class:`WAMEngine` adapters implementing it;
* :mod:`repro.engine.crosscheck` — the differential oracle behind
  ``psi-eval crosscheck``.
"""

from repro.engine.answers import (
    Answer,
    answer_multiset,
    canonical_answer,
    check_expected,
    render_answer,
)
from repro.engine.api import (
    ENGINE_NAMES,
    AbstractEngine,
    EngineStatsFacade,
    PSIEngine,
    WAMEngine,
    create_engine,
)
from repro.engine.builtins_spec import (
    BUILTIN_SPECS,
    DEC_ONLY,
    KL0_ONLY,
    BuiltinSpec,
    dec_indicators,
    kl0_indicators,
    shared_indicators,
)
from repro.engine.frontend import (
    Frontend,
    NormalizedClause,
    NormalizedGoal,
    VarInfo,
)

__all__ = [
    "Frontend", "NormalizedClause", "NormalizedGoal", "VarInfo",
    "BuiltinSpec", "BUILTIN_SPECS", "KL0_ONLY", "DEC_ONLY",
    "shared_indicators", "kl0_indicators", "dec_indicators",
    "Answer", "canonical_answer", "answer_multiset", "render_answer",
    "check_expected",
    "AbstractEngine", "EngineStatsFacade", "PSIEngine", "WAMEngine",
    "create_engine", "ENGINE_NAMES",
]
