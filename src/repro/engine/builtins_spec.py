"""The single builtin specification table both engines derive from.

The PSI's KL0 and the DEC-10 baseline must expose the *same* builtin
surface (name, arity, semantics) for Table 1 to compare like with like;
only their cost models differ.  Historically each engine kept its own
registration table and its own copy of the arithmetic evaluation — this
module is the one place that now defines

* :data:`BUILTIN_SPECS` — every builtin's indicator, determinism class
  and category.  The engine dispatch tables
  (:data:`repro.core.builtins.BUILTIN_TABLE` and
  :data:`repro.baseline.builtins.BASELINE_BUILTINS`) register concrete
  implementations *against* this spec; a test asserts each engine
  covers exactly the spec minus the other engine's exclusive
  allowlist.
* :data:`KL0_ONLY` / :data:`DEC_ONLY` — the documented allowlists.
  KL0-only builtins are the heap-vector operations and the OS process
  switch (rewritable structures and I/O service, used by the WINDOW
  workload, §4.2 of the paper); there are currently **no** DEC-only
  builtins.
* the pure integer arithmetic — operator tables and division/modulo
  semantics (KL0 is an integer machine; ``/`` truncates towards zero).
  Each engine keeps its own ``eval_arith`` *driver* because expression
  traversal is billed differently (PSI emits microinstructions, DEC
  charges ``arith_node`` events), but the values they compute come
  from these shared tables, so the engines cannot drift numerically.

Weights (microcode step charges / instruction costs) stay with the
engines: they are cost-model facts, not language facts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EvaluationError, TypeError_

# ---------------------------------------------------------------------------
# Shared pure arithmetic (KL0 = integer machine; / truncates)
# ---------------------------------------------------------------------------


def int_div(a: int, b: int) -> int:
    """Integer division truncating towards zero (KL0 ``/`` and ``//``)."""
    if b == 0:
        raise EvaluationError("division by zero")
    quotient = abs(a) // abs(b)
    return quotient if (a >= 0) == (b >= 0) else -quotient


def int_mod(a: int, b: int) -> int:
    """``mod``: sign follows the divisor (Python semantics, both engines)."""
    if b == 0:
        raise EvaluationError("division by zero")
    return a % b


def int_rem(a: int, b: int) -> int:
    """``rem``: remainder of truncating division (sign follows dividend)."""
    if b == 0:
        raise EvaluationError("division by zero")
    return a - int_div(a, b) * b


ARITH_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": int_div,
    "/": int_div,                  # KL0 is an integer machine
    "mod": int_mod,
    "rem": int_rem,
    "min": min,
    "max": max,
    ">>": lambda a, b: a >> b,
    "<<": lambda a, b: a << b,
    "/\\": lambda a, b: a & b,
    "\\/": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
}

ARITH_UNARY = {
    "-": lambda a: -a,
    "+": lambda a: a,
    "abs": abs,
    "\\": lambda a: ~a,
}

ARITH_COMPARE = {
    "=:=": lambda a, b: a == b,
    "=\\=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "=<": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}


def apply_arith_op(name: str, values: list) -> int:
    """Apply one arithmetic operator to already-evaluated operands."""
    if len(values) == 2 and name in ARITH_BINARY:
        return ARITH_BINARY[name](values[0], values[1])
    if len(values) == 1 and name in ARITH_UNARY:
        return ARITH_UNARY[name](values[0])
    raise TypeError_("evaluable functor", f"{name}/{len(values)}")


def apply_compare(name: str, a: int, b: int) -> bool:
    """Apply an arithmetic comparison operator to evaluated operands."""
    return ARITH_COMPARE[name](a, b)


# ---------------------------------------------------------------------------
# Builtin specification table
# ---------------------------------------------------------------------------

#: Determinism classes: ``det`` always succeeds exactly once; ``semidet``
#: succeeds at most once; ``failure`` always fails; ``meta`` inherits the
#: determinism of the goal it calls.  No builtin is backtrackable on
#: either engine.
DETERMINISM_CLASSES = ("det", "semidet", "failure", "meta")


@dataclass(frozen=True)
class BuiltinSpec:
    """One builtin's engine-independent contract."""

    name: str
    arity: int
    determinism: str   # one of DETERMINISM_CLASSES
    kind: str          # category, e.g. "arith", "type", "io"

    @property
    def indicator(self) -> tuple[str, int]:
        return (self.name, self.arity)


BUILTIN_SPECS: dict[tuple[str, int], BuiltinSpec] = {}


def _spec(name: str, arity: int, determinism: str, kind: str) -> None:
    assert determinism in DETERMINISM_CLASSES, determinism
    BUILTIN_SPECS[(name, arity)] = BuiltinSpec(name, arity, determinism, kind)


# Control and unification
_spec("true", 0, "det", "control")
_spec("fail", 0, "failure", "control")
_spec("false", 0, "failure", "control")
_spec("call", 1, "meta", "control")
_spec("=", 2, "semidet", "unify")
_spec("\\=", 2, "semidet", "unify")

# Type tests
_spec("var", 1, "semidet", "type")
_spec("nonvar", 1, "semidet", "type")
_spec("atom", 1, "semidet", "type")
_spec("integer", 1, "semidet", "type")
_spec("atomic", 1, "semidet", "type")
_spec("compound", 1, "semidet", "type")
_spec("is_list", 1, "semidet", "type")

# Arithmetic
_spec("is", 2, "semidet", "arith")
_spec("=:=", 2, "semidet", "arith")
_spec("=\\=", 2, "semidet", "arith")
_spec("<", 2, "semidet", "arith")
_spec(">", 2, "semidet", "arith")
_spec("=<", 2, "semidet", "arith")
_spec(">=", 2, "semidet", "arith")

# Standard order of terms
_spec("==", 2, "semidet", "order")
_spec("\\==", 2, "semidet", "order")
_spec("@<", 2, "semidet", "order")
_spec("@>", 2, "semidet", "order")
_spec("@=<", 2, "semidet", "order")
_spec("@>=", 2, "semidet", "order")
_spec("compare", 3, "semidet", "order")

# Term construction / inspection
_spec("functor", 3, "semidet", "term")
_spec("arg", 3, "semidet", "term")
_spec("=..", 2, "semidet", "term")
_spec("length", 2, "semidet", "term")

# KL0 heap vectors (rewritable structures; WINDOW's data)
_spec("new_vector", 2, "det", "vector")
_spec("vector_ref", 3, "semidet", "vector")
_spec("vector_set", 3, "det", "vector")
_spec("vector_size", 2, "semidet", "vector")

# Output (collected, not printed) and counters
_spec("write", 1, "det", "io")
_spec("print", 1, "det", "io")
_spec("nl", 0, "det", "io")
_spec("tab", 1, "det", "io")
_spec("counter_reset", 1, "det", "counter")
_spec("counter_inc", 1, "det", "counter")
_spec("counter_value", 2, "semidet", "counter")

# Dynamic database and misc
_spec("assertz", 1, "det", "db")
_spec("assert", 1, "det", "db")
_spec("retract", 1, "semidet", "db")
_spec("garbage_collect", 0, "det", "db")

# OS interaction (PSI console processor service)
_spec("process_switch", 0, "det", "os")


#: Builtins only the KL0 engine implements: the heap-vector operations
#: and the OS process switch, used exclusively by the ``psi_only``
#: WINDOW workloads.  The WAM baseline never sees programs that call
#: these (``run_baseline`` rejects ``psi_only`` workloads).
KL0_ONLY = frozenset({
    ("new_vector", 2),
    ("vector_ref", 3),
    ("vector_set", 3),
    ("vector_size", 2),
    ("process_switch", 0),
})

#: Builtins only the DEC baseline implements.  Deliberately empty: the
#: baseline's surface is a strict subset of KL0's so every shared
#: workload runs unchanged on both engines.
DEC_ONLY: frozenset[tuple[str, int]] = frozenset()


def shared_indicators() -> frozenset[tuple[str, int]]:
    """Indicators both engines must implement."""
    return frozenset(BUILTIN_SPECS) - KL0_ONLY - DEC_ONLY


def kl0_indicators() -> frozenset[tuple[str, int]]:
    """Indicators the PSI (KL0) dispatch table must cover exactly."""
    return frozenset(BUILTIN_SPECS) - DEC_ONLY


def dec_indicators() -> frozenset[tuple[str, int]]:
    """Indicators the DEC baseline dispatch table must cover exactly."""
    return frozenset(BUILTIN_SPECS) - KL0_ONLY
