"""MAP: microinstruction pattern analysis.

The original MAP counted occurrences of specific patterns in specific
microinstruction fields over an address trace collected by COLLECT.
Our microinstruction stream is the routine-emission record inside
:class:`~repro.core.stats.StatsCollector`; MAP projects it onto the
fields the paper analyses:

* the branch field (Table 7),
* the three work-file-controlling fields Source-1/Source-2/Destination
  (Table 6),
* per-module step counts (Table 2),
* and a per-routine histogram for drill-down.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.micro import BRANCH_TYPE, BranchOp, Module, WFMode
from repro.core.stats import StatsCollector


@dataclass(frozen=True)
class BranchRow:
    op: BranchOp
    branch_type: int
    percent: float


@dataclass(frozen=True)
class WFRow:
    mode: WFMode
    source1: tuple[float, float] | None   # (% of field accesses, % of steps)
    source2: tuple[float, float] | None
    dest: tuple[float, float] | None


def branch_analysis(stats: StatsCollector) -> list[BranchRow]:
    """Table 7 rows: dynamic frequency of each branch-field operation."""
    ratios = stats.branch_ratios()
    return [BranchRow(op, BRANCH_TYPE[op], ratios[op]) for op in BranchOp]


def wf_analysis(stats: StatsCollector) -> list[WFRow]:
    """Table 6 rows: per access mode, per field, the access-count share
    and the share of total microprogram steps."""
    table = stats.wf_table()
    rows = []
    for mode in WFMode:
        s1 = table["source1"][mode]
        s2 = table["source2"][mode]
        d = table["dest"][mode]
        rows.append(WFRow(
            mode,
            s1 if s1[0] or s1[1] else None,
            s2 if mode is WFMode.WF00_0F else None,
            d if (d[0] or d[1]) and mode is not WFMode.CONSTANT else
            (0.0, 0.0) if mode is not WFMode.CONSTANT else None,
        ))
    return rows


def module_analysis(stats: StatsCollector) -> dict[Module, float]:
    """Table 2 row: execution step ratio of each interpreter module."""
    return stats.module_ratios()


def routine_histogram(stats: StatsCollector, top: int = 30) -> list[tuple[str, str, int]]:
    """Most-executed microroutines: (module, routine name, step count)."""
    rows = [(module.value, routine.name, count * routine.n_steps)
            for (module, routine), count in stats.routine_counts.items()]
    rows.sort(key=lambda r: -r[2])
    return rows[:top]
