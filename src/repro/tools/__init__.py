"""Measurement tools: the COLLECT / MAP / PMMS equivalents (§4.1)."""

from repro.tools.collect import CollectedRun, RunSummary, collect
from repro.tools.map import (
    BranchRow,
    WFRow,
    branch_analysis,
    module_analysis,
    routine_histogram,
    wf_analysis,
)
from repro.tools.pmms import (
    FIGURE1_CAPACITIES,
    ComparisonResult,
    SweepPoint,
    capacity_sweep,
    compare_associativity,
    compare_write_policy,
    improvement_from_stats,
    performance_improvement,
    simulate,
    simulate_many,
)

__all__ = [
    "collect", "CollectedRun", "RunSummary",
    "branch_analysis", "wf_analysis", "module_analysis", "routine_histogram",
    "BranchRow", "WFRow",
    "simulate", "simulate_many", "capacity_sweep", "performance_improvement",
    "improvement_from_stats",
    "compare_associativity", "compare_write_policy",
    "SweepPoint", "ComparisonResult", "FIGURE1_CAPACITIES",
]
