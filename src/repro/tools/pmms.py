"""PMMS: the cache memory simulator driver.

The original PMMS replayed cache-command/address traces collected by
COLLECT against various cache specifications to produce hit ratios and
the capacity/organisation studies of §4.2.  This module does exactly
that over a :class:`~repro.core.memory.TraceRecorder`:

* :func:`simulate` — one configuration over one trace,
* :func:`simulate_many` — many configurations over one trace, decoding
  the packed trace exactly once (the fast path all studies use),
* :func:`capacity_sweep` — Figure 1's 8-word → 8K-word sweep,
* :func:`compare_associativity` — the 1-set vs 2-set 4KW study,
* :func:`compare_write_policy` — the store-in vs store-through study.

Every multi-configuration study accepts either a
:class:`~repro.core.memory.TraceRecorder` or an already-decoded list of
``(CacheCmd, address)`` pairs (see ``TraceRecorder.decoded``), so a
caller replaying one trace through several studies — e.g. the §4.2
ablations, which run both comparisons on WINDOW — can pay the decode
cost once.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.memory import TraceRecorder
from repro.memsys import (
    Cache,
    CacheConfig,
    CacheStats,
    WritePolicy,
    count_entries,
    count_entries_packed,
    execution_time,
    improvement_ratio,
    time_without_cache,
)

#: Figure 1's x axis: cache capacity from 8 words to 8K words.
FIGURE1_CAPACITIES = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


def _decoded(trace) -> list:
    """Accept a TraceRecorder or an already-decoded entry list."""
    if isinstance(trace, TraceRecorder):
        return trace.decoded()
    return trace


def simulate(trace: TraceRecorder, config: CacheConfig | None = None) -> CacheStats:
    """Replay ``trace`` through a fresh cache with ``config``.

    This is the reference implementation: one :meth:`Cache.access` call
    per trace entry.  The batched path (:func:`simulate_many`) is tested
    bit-identical against it.
    """
    cache = Cache(config or CacheConfig())
    access = cache.access
    for cmd, address in _decoded(trace):
        access(cmd, address)
    return cache.stats


def simulate_many(trace, configs) -> list[CacheStats]:
    """Replay one trace through many configurations in a single pass.

    The packed trace is decoded once and each configuration's cache
    consumes the decoded list through the batched
    :meth:`~repro.memsys.Cache.access_many` — for Figure 1's 11
    capacities this removes 10 redundant decode passes and all
    per-access attribute traffic.  Statistics are bit-identical to
    running :func:`simulate` once per configuration.

    In the evaluation pipeline the trace usually arrives from the
    persistent run cache (``RunSummary.trace_bytes`` rebuilt by
    :func:`repro.eval.runner.run_psi`); replay is pure — deterministic
    in (trace, config) and independent of how the trace was obtained —
    which is what makes caching the trace instead of the replay results
    safe.
    """
    stats = []
    if isinstance(trace, TraceRecorder):
        # Packed fast path: the 2-bit command codes in the trace drive
        # the replay directly — CacheCmd objects are never rebuilt.
        data = trace.data
        totals = count_entries_packed(data)
        for config in configs:
            cache = Cache(config)
            cache.access_many_packed(data, totals)
            stats.append(cache.stats)
        return stats
    entries = _decoded(trace)
    totals = count_entries(entries)
    for config in configs:
        cache = Cache(config)
        cache.access_many(entries, totals)
        stats.append(cache.stats)
    return stats


@dataclass(frozen=True)
class SweepPoint:
    """One Figure-1 data point."""

    capacity_words: int
    hit_ratio: float
    improvement_percent: float


def improvement_from_stats(steps: int, stats: CacheStats) -> float:
    """The paper's metric ((Tnc/Tc) - 1) x 100 from replayed stats."""
    t_c = execution_time(steps, stats).total_ns
    t_nc = time_without_cache(steps, stats.accesses).total_ns
    return improvement_ratio(t_nc, t_c)


def performance_improvement(trace, steps: int,
                            config: CacheConfig) -> tuple[float, CacheStats]:
    """The paper's metric: ((Tnc/Tc) - 1) x 100 for one configuration."""
    (stats,) = simulate_many(trace, [config])
    return improvement_from_stats(steps, stats), stats


def capacity_sweep(trace, steps: int,
                   capacities=FIGURE1_CAPACITIES,
                   base: CacheConfig | None = None) -> list[SweepPoint]:
    """Vary capacity with other parameters fixed at the PSI values.

    For capacities too small to hold one two-way set of 4-word blocks
    the way count is reduced to keep the geometry legal (the smallest
    point, 8 words, is two 4-word blocks in one set — as in the paper,
    which swept down to 8 words).

    All capacities replay in one decode pass via :func:`simulate_many`.
    """
    base = base or CacheConfig()
    configs = []
    for capacity in capacities:
        ways = min(base.ways, max(1, capacity // base.block_words))
        configs.append(replace(base, capacity_words=capacity, ways=ways))
    return [SweepPoint(capacity, stats.hit_ratio,
                       improvement_from_stats(steps, stats))
            for capacity, stats in zip(capacities, simulate_many(trace, configs))]


@dataclass(frozen=True)
class ComparisonResult:
    label_a: str
    label_b: str
    improvement_a: float
    improvement_b: float

    @property
    def difference(self) -> float:
        return self.improvement_a - self.improvement_b

    @property
    def relative_loss_percent(self) -> float:
        """How much lower b's improvement is, relative to a's."""
        if self.improvement_a == 0:
            return 0.0
        return 100.0 * (self.improvement_a - self.improvement_b) / self.improvement_a


def _compare(trace, steps: int, label_a: str, config_a: CacheConfig,
             label_b: str, config_b: CacheConfig) -> ComparisonResult:
    stats_a, stats_b = simulate_many(trace, [config_a, config_b])
    return ComparisonResult(label_a, label_b,
                            improvement_from_stats(steps, stats_a),
                            improvement_from_stats(steps, stats_b))


def compare_associativity(trace, steps: int,
                          set_capacity_words: int = 4096) -> ComparisonResult:
    """Two 4KW sets vs one 4KW set (§4.2: one set was only ~3% lower)."""
    two_set = CacheConfig(capacity_words=2 * set_capacity_words, ways=2)
    one_set = CacheConfig(capacity_words=set_capacity_words, ways=1)
    return _compare(trace, steps, "two 4KW sets", two_set,
                    "one 4KW set", one_set)


def compare_write_policy(trace, steps: int,
                         base: CacheConfig | None = None) -> ComparisonResult:
    """Store-in vs store-through (§4.2: store-in ~8% higher)."""
    base = base or CacheConfig()
    store_in = replace(base, policy=WritePolicy.STORE_IN)
    store_through = replace(base, policy=WritePolicy.STORE_THROUGH)
    return _compare(trace, steps, "store-in", store_in,
                    "store-through", store_through)
