"""PMMS: the cache memory simulator driver.

The original PMMS replayed cache-command/address traces collected by
COLLECT against various cache specifications to produce hit ratios and
the capacity/organisation studies of §4.2.  This module does exactly
that over a :class:`~repro.core.memory.TraceRecorder`:

* :func:`simulate` — one configuration over one trace,
* :func:`capacity_sweep` — Figure 1's 8-word → 8K-word sweep,
* :func:`compare_associativity` — the 1-set vs 2-set 4KW study,
* :func:`compare_write_policy` — the store-in vs store-through study.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.memory import TraceRecorder
from repro.memsys import (
    Cache,
    CacheConfig,
    CacheStats,
    WritePolicy,
    execution_time,
    improvement_ratio,
    time_without_cache,
)

#: Figure 1's x axis: cache capacity from 8 words to 8K words.
FIGURE1_CAPACITIES = (8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192)


def simulate(trace: TraceRecorder, config: CacheConfig | None = None) -> CacheStats:
    """Replay ``trace`` through a fresh cache with ``config``."""
    cache = Cache(config or CacheConfig())
    access = cache.access
    for cmd, address in trace.entries():
        access(cmd, address)
    return cache.stats


@dataclass(frozen=True)
class SweepPoint:
    """One Figure-1 data point."""

    capacity_words: int
    hit_ratio: float
    improvement_percent: float


def performance_improvement(trace: TraceRecorder, steps: int,
                            config: CacheConfig) -> tuple[float, CacheStats]:
    """The paper's metric: ((Tnc/Tc) - 1) x 100 for one configuration."""
    stats = simulate(trace, config)
    t_c = execution_time(steps, stats).total_ns
    t_nc = time_without_cache(steps, stats.accesses).total_ns
    return improvement_ratio(t_nc, t_c), stats


def capacity_sweep(trace: TraceRecorder, steps: int,
                   capacities=FIGURE1_CAPACITIES,
                   base: CacheConfig | None = None) -> list[SweepPoint]:
    """Vary capacity with other parameters fixed at the PSI values.

    For capacities too small to hold one two-way set of 4-word blocks
    the way count is reduced to keep the geometry legal (the smallest
    point, 8 words, is two 4-word blocks in one set — as in the paper,
    which swept down to 8 words).
    """
    base = base or CacheConfig()
    points = []
    for capacity in capacities:
        ways = min(base.ways, max(1, capacity // base.block_words))
        config = replace(base, capacity_words=capacity, ways=ways)
        improvement, stats = performance_improvement(trace, steps, config)
        points.append(SweepPoint(capacity, stats.hit_ratio, improvement))
    return points


@dataclass(frozen=True)
class ComparisonResult:
    label_a: str
    label_b: str
    improvement_a: float
    improvement_b: float

    @property
    def difference(self) -> float:
        return self.improvement_a - self.improvement_b

    @property
    def relative_loss_percent(self) -> float:
        """How much lower b's improvement is, relative to a's."""
        if self.improvement_a == 0:
            return 0.0
        return 100.0 * (self.improvement_a - self.improvement_b) / self.improvement_a


def compare_associativity(trace: TraceRecorder, steps: int,
                          set_capacity_words: int = 4096) -> ComparisonResult:
    """Two 4KW sets vs one 4KW set (§4.2: one set was only ~3% lower)."""
    two_set = CacheConfig(capacity_words=2 * set_capacity_words, ways=2)
    one_set = CacheConfig(capacity_words=set_capacity_words, ways=1)
    improvement_two, _ = performance_improvement(trace, steps, two_set)
    improvement_one, _ = performance_improvement(trace, steps, one_set)
    return ComparisonResult("two 4KW sets", "one 4KW set",
                            improvement_two, improvement_one)


def compare_write_policy(trace: TraceRecorder, steps: int,
                         base: CacheConfig | None = None) -> ComparisonResult:
    """Store-in vs store-through (§4.2: store-in ~8% higher)."""
    base = base or CacheConfig()
    store_in = replace(base, policy=WritePolicy.STORE_IN)
    store_through = replace(base, policy=WritePolicy.STORE_THROUGH)
    improvement_in, _ = performance_improvement(trace, steps, store_in)
    improvement_through, _ = performance_improvement(trace, steps, store_through)
    return ComparisonResult("store-in", "store-through",
                            improvement_in, improvement_through)
