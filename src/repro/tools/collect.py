"""COLLECT: run a program on the PSI model and capture everything.

The original COLLECT was an interpreter in the PSI's console processor
that single-stepped the CPU and dumped microinstruction addresses,
register and memory contents to floppy disk.  Our equivalent runs a
goal on :class:`~repro.core.machine.PSIMachine` with

* the stats collector (microinstruction-stream statistics),
* optionally a :class:`~repro.core.memory.TraceRecorder` (the memory
  access stream handed to PMMS), and
* optionally an online :class:`~repro.memsys.Cache` in the paper's
  production configuration, for end-to-end execution-time measurement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.machine import MachineConfig, PSIMachine
from repro.core.memory import TraceRecorder
from repro.core.stats import StatsCollector
from repro.memsys import Cache, CacheConfig, CacheStats, TimingBreakdown, execution_time


@dataclass
class CollectedRun:
    """Everything COLLECT gathered from one run.

    ``machine`` is ``None`` for runs rebuilt from a
    :class:`RunSummary` (worker-process or disk-cache round trips):
    all table/figure statistics live in ``stats``/``trace``/``cache``,
    only interactive inspection of the live machine is lost.
    """

    goal: str
    succeeded: bool
    solutions: int
    stats: StatsCollector
    trace: TraceRecorder | None
    cache: Cache | None
    machine: PSIMachine | None

    @property
    def steps(self) -> int:
        return self.stats.total_steps

    @property
    def timing(self) -> TimingBreakdown:
        """PSI execution time (requires the online cache)."""
        cache_stats = self.cache.stats if self.cache is not None else None
        return execution_time(self.steps, cache_stats)

    @property
    def time_ms(self) -> float:
        return self.timing.total_ms

    @property
    def lips(self) -> float:
        """Logical inferences per second at the modelled clock."""
        seconds = self.timing.total_ns / 1e9
        return self.stats.inferences / seconds if seconds else 0.0

    def to_summary(self) -> "RunSummary":
        """Shrink to the picklable hand-off form (drops the machine)."""
        return RunSummary(
            goal=self.goal,
            succeeded=self.succeeded,
            solutions=self.solutions,
            stats=self.stats,
            trace_bytes=self.trace.tobytes() if self.trace is not None else None,
            cache_stats=self.cache.stats if self.cache is not None else None,
            cache_config=self.cache.config if self.cache is not None else None,
        )


@dataclass
class RunSummary:
    """Picklable essence of a :class:`CollectedRun`.

    This is what worker processes return to the parent and what the
    persistent run cache stores: the stats counters (compact — routine
    objects pickle by registry name), the packed trace bytes, and the
    online cache's statistics.  The live machine is deliberately
    dropped; it holds unpicklable interpreter state and none of the
    paper's numbers need it.
    """

    goal: str
    succeeded: bool
    solutions: int
    stats: StatsCollector
    trace_bytes: bytes | None
    cache_stats: CacheStats | None
    cache_config: CacheConfig | None

    def to_collected_run(self) -> CollectedRun:
        """Rebuild a table-ready :class:`CollectedRun` (``machine=None``)."""
        trace = (TraceRecorder.frombytes(self.trace_bytes)
                 if self.trace_bytes is not None else None)
        cache = None
        if self.cache_stats is not None:
            cache = Cache(self.cache_config or CacheConfig())
            cache.stats = self.cache_stats
        return CollectedRun(self.goal, self.succeeded, self.solutions,
                            self.stats, trace, cache, machine=None)


def collect(program: str, goal: str, *,
            all_solutions: bool = False,
            record_trace: bool = True,
            with_cache: bool = True,
            cache_config: CacheConfig | None = None,
            machine_config: MachineConfig | None = None,
            setup_goals: tuple[str, ...] = ()) -> CollectedRun:
    """Load ``program``, run ``goal``, return the collected data.

    ``setup_goals`` run before measurement starts (their traffic is
    excluded) — used by workloads that build input data first.
    """
    machine = PSIMachine(config=machine_config)
    machine.consult(program)
    for setup in setup_goals:
        if machine.run(setup) is None:
            raise RuntimeError(f"setup goal failed: {setup}")
    # Fresh collectors so measurement excludes loading and setup.
    stats = StatsCollector()
    machine.stats = stats
    machine.mem.stats = stats
    machine.wf.stats = stats
    trace = TraceRecorder() if record_trace else None
    if trace is not None:
        machine.mem.attach(trace)
    cache = Cache(cache_config or CacheConfig()) if with_cache else None
    if cache is not None:
        machine.mem.attach(cache)

    solver = machine.solve(goal)
    if all_solutions:
        solutions = solver.count()
        succeeded = solutions > 0
    else:
        solution = solver.next()
        succeeded = solution is not None
        solutions = 1 if succeeded else 0

    if trace is not None:
        machine.mem.detach(trace)
    if cache is not None:
        machine.mem.detach(cache)
    return CollectedRun(goal, succeeded, solutions, stats, trace, cache, machine)
