"""COLLECT: run a program on the PSI model and capture everything.

The original COLLECT was an interpreter in the PSI's console processor
that single-stepped the CPU and dumped microinstruction addresses,
register and memory contents to floppy disk.  Our equivalent runs a
goal on :class:`~repro.core.machine.PSIMachine` with

* the stats collector (microinstruction-stream statistics),
* optionally a :class:`~repro.core.memory.TraceRecorder` (the memory
  access stream handed to PMMS), and
* optionally an online :class:`~repro.memsys.Cache` in the paper's
  production configuration, for end-to-end execution-time measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.core.machine import MachineConfig, PSIMachine
from repro.core.memory import TraceRecorder
from repro.core.stats import StatsCollector
from repro.engine.answers import Answer, canonical_answer
from repro.memsys import Cache, CacheConfig, CacheStats, TimingBreakdown, execution_time
from repro.obs.session import RunObservation


@dataclass
class CollectedRun:
    """Everything COLLECT gathered from one run.

    ``machine`` is ``None`` for runs rebuilt from a
    :class:`RunSummary` (worker-process or disk-cache round trips):
    all table/figure statistics live in ``stats``/``trace``/``cache``,
    only interactive inspection of the live machine is lost.
    """

    goal: str
    succeeded: bool
    solutions: int
    stats: StatsCollector
    trace: TraceRecorder | None
    cache: Cache | None
    machine: PSIMachine | None
    #: Observability artifact (trace/profile/metrics) when the run was
    #: collected with :func:`repro.obs.enabled` on; ``None`` otherwise.
    #: Derived data — excluded from :meth:`to_summary` and therefore
    #: never pickled to workers or the persistent run cache.
    observation: RunObservation | None = field(default=None, compare=False)
    #: Canonical answers captured from the solutions (one per solution
    #: found; a single entry for a first-solution run).  Decoding is
    #: billing-free, so capture does not perturb any statistic.
    answers: tuple[Answer, ...] = ()
    #: Snapshot of the machine's side-effect counters after the run
    #: (``counter_inc`` et al. — how failure-driven loops report).
    counters: dict[str, int] = field(default_factory=dict)
    #: Trace length (= microstep) observed right after each solution was
    #: decoded, one mark per entry of ``answers``.  This is the answer
    #: index → microstep map the time-travel explorer's differential
    #: mode uses to pinpoint where a diverging answer was emitted.
    #: Empty when no trace/cache feed recorded the run.
    answer_marks: tuple[int, ...] = ()
    #: Clause-selection counters (``index_hits`` / ``index_misses`` /
    #: ``choicepoints_avoided``) from the machine's first-argument
    #: index.  All zero on a faithful (non-``indexed``) run.
    index_stats: dict[str, int] = field(default_factory=dict)

    @property
    def steps(self) -> int:
        return self.stats.total_steps

    @property
    def timing(self) -> TimingBreakdown:
        """PSI execution time (requires the online cache)."""
        cache_stats = self.cache.stats if self.cache is not None else None
        return execution_time(self.steps, cache_stats)

    @property
    def time_ms(self) -> float:
        return self.timing.total_ms

    @property
    def lips(self) -> float:
        """Logical inferences per second at the modelled clock."""
        seconds = self.timing.total_ns / 1e9
        return self.stats.inferences / seconds if seconds else 0.0

    def to_summary(self) -> "RunSummary":
        """Shrink to the picklable hand-off form (drops the machine).

        Also drops the observability artifact and strips an
        :class:`~repro.obs.session.ObservedStatsCollector` back to the
        plain base class, so the bytes the persistent run cache stores
        are identical whether or not the run was observed.
        """
        return RunSummary(
            goal=self.goal,
            succeeded=self.succeeded,
            solutions=self.solutions,
            stats=_plain_stats(self.stats),
            trace_bytes=self.trace.tobytes() if self.trace is not None else None,
            cache_stats=self.cache.stats if self.cache is not None else None,
            cache_config=self.cache.config if self.cache is not None else None,
            answers=self.answers,
            counters=self.counters,
            answer_marks=self.answer_marks,
            index_stats=dict(self.index_stats),
        )


def _plain_stats(stats: StatsCollector) -> StatsCollector:
    """Reduce a collector to the exact base class for serialisation.

    An observed collector carries tracer/profiler references that must
    never reach a pickle (worker hand-off or disk cache); the counters
    themselves are identical to an unobserved run's, so the copy is
    bit-for-bit what the plain collector would have held.
    """
    if type(stats) is StatsCollector:
        return stats
    plain = StatsCollector()
    plain.merge(stats)
    plain.module = stats.module
    plain.predicate = stats.predicate
    return plain


@dataclass
class RunSummary:
    """Picklable essence of a :class:`CollectedRun`.

    This is what worker processes return to the parent and what the
    persistent run cache stores: the stats counters (compact — routine
    objects pickle by registry name), the packed trace bytes, and the
    online cache's statistics.  The live machine is deliberately
    dropped; it holds unpicklable interpreter state and none of the
    paper's numbers need it.
    """

    goal: str
    succeeded: bool
    solutions: int
    stats: StatsCollector
    trace_bytes: bytes | None
    cache_stats: CacheStats | None
    cache_config: CacheConfig | None
    #: Canonical answers and counter snapshot, carried verbatim so
    #: cache-served and worker-shipped runs stay crosscheckable.
    answers: tuple[Answer, ...] = ()
    counters: dict[str, int] = field(default_factory=dict)
    #: Per-answer microstep marks (see :attr:`CollectedRun.answer_marks`).
    answer_marks: tuple[int, ...] = ()
    #: Clause-selection counters (see :attr:`CollectedRun.index_stats`).
    index_stats: dict[str, int] = field(default_factory=dict)
    #: Observability metrics snapshot (plain dict) when the producing
    #: process ran with obs enabled.  Set only on summaries shipped
    #: from ``run_many`` workers to the parent — :meth:`to_summary`
    #: leaves it ``None``, so the persistent run cache (which stores
    #: ``to_summary()`` output) never contains derived obs data.
    metrics: dict | None = None

    def to_collected_run(self) -> CollectedRun:
        """Rebuild a table-ready :class:`CollectedRun` (``machine=None``)."""
        trace = (TraceRecorder.frombytes(self.trace_bytes)
                 if self.trace_bytes is not None else None)
        cache = None
        if self.cache_stats is not None:
            cache = Cache(self.cache_config or CacheConfig())
            cache.stats = self.cache_stats
        return CollectedRun(self.goal, self.succeeded, self.solutions,
                            self.stats, trace, cache, machine=None,
                            answers=self.answers, counters=self.counters,
                            answer_marks=self.answer_marks,
                            index_stats=dict(self.index_stats))


def _totals_from_stats(stats: StatsCollector) -> tuple[list, list]:
    """Per-area / per-command access totals in the shape
    :meth:`repro.memsys.Cache.access_many_packed` expects, taken from
    the collector instead of a counting pass over the packed trace.
    Equality with :func:`repro.memsys.cache.count_entries_packed` is
    pinned by tests/tools/test_collect_and_pmms.py."""
    from repro.core.memory import AREAS
    from repro.core.micro import CMD_BY_CODE

    area_totals = [0] * len(AREAS)
    cmd_totals = [0] * len(CMD_BY_CODE)
    for (cmd, area), n in stats.mem_counts.items():
        area_totals[area] += n
        cmd_totals[cmd.code] += n
    return area_totals, cmd_totals


def collect(program: str, goal: str, *,
            all_solutions: bool = False,
            record_trace: bool = True,
            with_cache: bool = True,
            cache_config: CacheConfig | None = None,
            machine_config: MachineConfig | None = None,
            stats_collector: StatsCollector | None = None,
            setup_goals: tuple[str, ...] = ()) -> CollectedRun:
    """Load ``program``, run ``goal``, return the collected data.

    ``setup_goals`` run before measurement starts (their traffic is
    excluded) — used by workloads that build input data first.

    ``stats_collector`` substitutes an instrumented collector (e.g. the
    sequence miner's recording subclass) for the plain one.  Such runs
    are measurement-internal, so no observation session is opened for
    them even when :func:`repro.obs.enabled` is on.
    """
    machine = PSIMachine(config=machine_config)
    machine.consult(program)
    for setup in setup_goals:
        if machine.run(setup) is None:
            raise RuntimeError(f"setup goal failed: {setup}")
    # Fresh collectors so measurement excludes loading and setup.  The
    # enabled() flag is consulted exactly once per run: when off, the
    # machine gets the plain collector and no obs object exists.
    session = None
    if stats_collector is not None:
        stats = stats_collector
    else:
        session = obs.begin_run(goal) if obs.enabled() else None
        stats = session.collector if session is not None else StatsCollector()
    machine.stats = stats
    machine.mem.stats = stats
    machine.wf.stats = stats
    trace = TraceRecorder() if record_trace else None
    cache = Cache(cache_config or CacheConfig()) if with_cache else None
    # Deferred cache replay: without an observation session nothing
    # reads ``cache.stats`` mid-run (the window sampler is the only
    # live consumer), so the cache need not listen online.  Feeding it
    # the packed trace afterwards — :meth:`Cache.access_many_packed`
    # is access-for-access equivalent — keeps the memory system on its
    # single-listener fast path for the whole run.
    cache_feed = None
    if cache is not None and session is None:
        cache_feed = trace if trace is not None else TraceRecorder()
    recorder = trace if trace is not None else cache_feed
    if recorder is not None:
        machine.mem.attach(recorder)
    if cache is not None and cache_feed is None:
        machine.mem.attach(cache)
    if session is not None:
        machine.mem.observer = session.stack_observer
        # Driven by the collector's billing path, not a mem listener:
        # keeps the fan-out on the single-listener fast path.
        session.cache_sampler(cache)

    solver = machine.solve(goal)
    # Manual iteration (exactly what ``solver.all()`` does) so each
    # solution can be paired with the trace length at the moment it was
    # decoded — the answer → microstep marks the time-travel explorer's
    # differential mode seeks by.  Marks are taken only from the
    # caller-requested trace (they index into it; the internal
    # cache-feed recorder is not returned, and whether it exists
    # depends on the obs session — summaries must not).  Reading
    # ``len(trace.data)`` between solutions is a pure observation of
    # already-recorded state, so the emission stream is identical to
    # an unmarked run.
    captured = []
    marks: list[int] = []
    if all_solutions:
        while True:
            solution = solver.next()
            if solution is None:
                break
            captured.append(solution)
            if trace is not None:
                marks.append(len(trace.data))
        solutions = len(captured)
        succeeded = solutions > 0
    else:
        solution = solver.next()
        succeeded = solution is not None
        solutions = 1 if succeeded else 0
        captured = [solution] if succeeded else []
        if succeeded and trace is not None:
            marks.append(len(trace.data))
    # Canonical answer capture is pure term manipulation over the
    # solver's (unbilled) decode output — the emission stream and all
    # statistics are exactly those of an uncaptured run.
    answers = tuple(canonical_answer(s.bindings) for s in captured)

    if recorder is not None:
        machine.mem.detach(recorder)
    if cache is not None:
        if cache_feed is not None:
            # The collector already holds the per-(command, area) access
            # totals — billing and trace notification are paired at
            # every memory-system site — so the replay can skip its
            # counting pass over the packed trace.
            cache.access_many_packed(cache_feed.data,
                                     totals=_totals_from_stats(stats))
        else:
            machine.mem.detach(cache)
    observation = None
    if session is not None:
        machine.mem.observer = None
        # Clause-selection counters live on the machine, not the
        # collector, so they flow into the metrics registry here.
        # Faithful runs contribute zeros (the counters never move
        # unless ``MachineConfig.indexed`` is on).
        for key, value in machine.index_stats.items():
            session.metrics.counter(f"psi.index.{key}").inc(value)
        observation = session.finish(cache)
        obs.record_run(observation)
    return CollectedRun(goal, succeeded, solutions, stats, trace, cache,
                        machine, observation,
                        answers=answers, counters=dict(machine.counters),
                        answer_marks=tuple(marks),
                        index_stats=dict(machine.index_stats))
