"""Wire protocol of the evaluation service.

Framing is deliberately minimal — a 4-byte big-endian unsigned length
followed by that many bytes of UTF-8 JSON — so any language (or a
50-line Python script, see :mod:`repro.serve.client`) can speak it
without an HTTP stack, and the stdlib-only constraint holds.

Every request is a JSON object with

* ``"op"`` — the operation name (see ``docs/SERVING.md`` for the op
  table and per-op fields), and
* ``"id"`` — an opaque client-chosen correlation value, echoed
  verbatim on the response.  Responses to one connection's requests
  may complete out of order (they run concurrently on the worker
  pool), so clients match on ``id``, not arrival order.

Every response carries the echoed ``"id"``, ``"ok"`` (boolean), and
either ``"result"`` (an op-specific object) or ``"error"`` (a message
string).  Malformed frames raise :class:`ProtocolError` server-side and
close the connection; application-level failures (unknown workload,
failed run) travel as ``ok: false`` responses and leave the connection
usable.

This module also owns the JSON codecs for the two simulator dataclasses
that cross the wire: :class:`~repro.memsys.CacheConfig` (replay request
operand) and :class:`~repro.memsys.CacheStats` (replay result).
"""

from __future__ import annotations

import asyncio
import json
import struct

#: Frame header: one 4-byte big-endian unsigned length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's body — a full metrics snapshot is a few
#: KB and replay batches a few hundred bytes, so anything near this is
#: a corrupt or hostile frame, not a real message.
MAX_MESSAGE_BYTES = 16 << 20


class ProtocolError(Exception):
    """A frame that cannot be part of a valid conversation."""


def encode_message(message: dict) -> bytes:
    """One complete frame: header + compact JSON body."""
    body = json.dumps(message, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if len(body) > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"message of {len(body)} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte frame limit")
    return HEADER.pack(len(body)) + body


def decode_frames(buffer: bytes) -> tuple[list[dict], bytes]:
    """Split ``buffer`` into complete messages plus the unconsumed tail.

    The synchronous mirror of :func:`read_message` for callers that
    manage their own socket reads (the blocking client).
    """
    messages: list[dict] = []
    offset = 0
    while len(buffer) - offset >= HEADER.size:
        (length,) = HEADER.unpack_from(buffer, offset)
        if length > MAX_MESSAGE_BYTES:
            raise ProtocolError(f"frame of {length} bytes exceeds the "
                                f"{MAX_MESSAGE_BYTES}-byte limit")
        if len(buffer) - offset - HEADER.size < length:
            break
        start = offset + HEADER.size
        messages.append(_decode_body(buffer[start:start + length]))
        offset = start + length
    return messages, buffer[offset:]


def _decode_body(body: bytes) -> dict:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"undecodable frame body: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError("frame body must be a JSON object")
    return message


async def read_message(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF at a frame boundary."""
    try:
        header = await reader.readexactly(HEADER.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection closed mid-header") from None
    (length,) = HEADER.unpack(header)
    if length > MAX_MESSAGE_BYTES:
        raise ProtocolError(f"frame of {length} bytes exceeds the "
                            f"{MAX_MESSAGE_BYTES}-byte limit")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("connection closed mid-frame") from None
    return _decode_body(body)


async def write_message(writer: asyncio.StreamWriter, message: dict) -> None:
    writer.write(encode_message(message))
    await writer.drain()


# ---------------------------------------------------------------------------
# CacheConfig / CacheStats codecs

#: JSON-adjustable CacheConfig fields, in canonical (sorted) order.
_CONFIG_FIELDS = ("block_words", "capacity_words", "policy", "ways",
                  "write_stack_no_fetch")


def cache_config_to_json(config) -> dict:
    """Plain-dict form of a :class:`~repro.memsys.CacheConfig`."""
    return {name: getattr(config, name) for name in _CONFIG_FIELDS}


def cache_config_from_json(data: dict):
    """Build a validated :class:`~repro.memsys.CacheConfig` from JSON.

    Unknown fields are rejected (a typo like ``"capcity_words"`` must
    not silently simulate the default geometry) and the dataclass's own
    ``__post_init__`` validation applies, so a geometry error comes
    back to the client as an ``ok: false`` response.
    """
    from repro.memsys import CacheConfig

    unknown = sorted(set(data) - set(_CONFIG_FIELDS))
    if unknown:
        raise ProtocolError(f"unknown cache config field(s): "
                            f"{', '.join(unknown)} "
                            f"(valid: {', '.join(_CONFIG_FIELDS)})")
    return CacheConfig(**data)


def canonical_config_key(data: dict) -> tuple:
    """Hashable identity of one requested configuration.

    Defaults are filled in before keying, so ``{}`` and an explicit
    spelling of the default geometry deduplicate to one simulation.
    """
    return tuple(sorted(cache_config_to_json(
        cache_config_from_json(data)).items()))


def cache_stats_to_json(stats) -> dict:
    """Wire form of replayed :class:`~repro.memsys.CacheStats`.

    ``snapshot()`` already carries every scalar the paper's metric
    needs; ``accesses`` is added so clients need no arithmetic to
    sanity-check hit ratios.
    """
    data = stats.snapshot()
    data["accesses"] = stats.accesses
    return data
